//! # `maxmin-lp`
//!
//! A local (constant-time distributed) approximation framework for
//! **max-min linear programs**, reproducing
//!
//! > P. Floréen, J. Kaasinen, P. Kaski, J. Suomela.
//! > *An Optimal Local Approximation Algorithm for Max-Min Linear
//! > Programs.* Proc. 21st ACM SPAA, 2009.
//!
//! A max-min LP maximises `min_k Σ_v c_kv x_v` subject to
//! `Σ_v a_iv x_v ≤ 1` and `x ≥ 0` on a network with one node per
//! variable/constraint/objective. The headline result is a local algorithm
//! whose approximation ratio `ΔI (1 − 1/ΔK) + ε` matches the unconditional
//! lower bound for local algorithms.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`instance`] — problem representation (`Instance`, `Solution`,
//!   `CommGraph`, validation, text format).
//! * [`lp`] — from-scratch LP substrate (two-phase simplex, max-min
//!   reduction, bisection, exact tree solver).
//! * [`net`] — synchronous port-numbered message-passing simulator.
//! * [`core`] — the paper's algorithm: unfolding (§3), local
//!   transformations (§4), alternating trees and smoothing (§5), the
//!   analysis artefacts (§6), the safe baseline and the packing/covering
//!   application.
//! * [`gen`] — seeded workload generators (random families, sensor grids,
//!   bandwidth allocation, regular graphs/lifts, lower-bound gadgets).
//! * [`lab`] — the experiment-campaign subsystem: declarative grid
//!   specs, a resumable parallel scheduler, structured JSONL results
//!   and ratio/scaling reports (`maxmin-lp campaign …`).
//! * [`obs`] — the observability layer: a lock-free metrics registry
//!   (counters, gauges, log-bucketed histograms) with Prometheus text
//!   exposition, solve spans with per-phase breakdowns, a bounded
//!   trace ring and the phase-timeline renderer (`maxmin-lp obs`,
//!   the server's `METRICS` op; `specs/OBSERVABILITY.md`).
//! * [`serve`] — the concurrent solver service: a TCP line protocol
//!   with a content-addressed result cache, bounded-queue backpressure
//!   and a closed-loop load generator (`maxmin-lp serve` /
//!   `maxmin-lp loadgen`).
//! * [`store`] — the persistence layer: a checksummed binary codec for
//!   instances and solutions, and a sharded append-only
//!   content-addressed store with crash recovery, `gc` and `verify`
//!   (`maxmin-lp store …`; mounted by the server via `--store-dir`).
//!
//! ## Quickstart
//!
//! ```
//! use maxmin_lp::prelude::*;
//!
//! // Fair sharing: two customers (objectives) compete through two shared
//! // capacity constraints.
//! let mut b = InstanceBuilder::new();
//! let x0 = b.add_agent();
//! let x1 = b.add_agent();
//! let x2 = b.add_agent();
//! b.add_constraint(&[(x0, 1.0), (x1, 1.0)]).unwrap();
//! b.add_constraint(&[(x1, 1.0), (x2, 1.0)]).unwrap();
//! b.add_objective(&[(x0, 1.0), (x1, 1.0)]).unwrap();
//! b.add_objective(&[(x1, 1.0), (x2, 1.0)]).unwrap();
//! let inst = b.build().unwrap();
//!
//! // The paper's local algorithm with locality parameter R.
//! let solver = LocalSolver::new(3);
//! let out = solver.solve(&inst);
//! assert!(out.solution.is_feasible(&inst, 1e-9));
//!
//! // Certified a-posteriori quality versus the true LP optimum.
//! let opt = solve_maxmin(&inst).expect("bounded instance");
//! assert!(out.solution.utility(&inst) > 0.0);
//! assert!(opt.omega >= out.solution.utility(&inst) - 1e-9);
//! ```

pub use mmlp_core as core;
pub use mmlp_gen as gen;
pub use mmlp_instance as instance;
pub use mmlp_lab as lab;
pub use mmlp_lp as lp;
pub use mmlp_net as net;
pub use mmlp_obs as obs;
pub use mmlp_serve as serve;
pub use mmlp_store as store;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use mmlp_core::dynamic::DynamicSolver;
    pub use mmlp_core::safe::safe_solution;
    pub use mmlp_core::solver::{LocalSolver, LocalSolverOutput};
    pub use mmlp_core::SpecialForm;
    pub use mmlp_instance::{
        AgentId, CommGraph, ConstraintId, DegreeStats, Instance, InstanceBuilder, ObjectiveId,
        Solution,
    };
    pub use mmlp_lab::prelude::{
        expand, parse_spec, run_campaign, run_in_memory, write_spec, CampaignSpec, Job, JobRecord,
        SolverKind,
    };
    pub use mmlp_lp::maxmin::{certify_optimum, solve_maxmin};
    pub use mmlp_serve::prelude::{
        run_loadgen, Client, LoadConfig, Op, ServeConfig, Server, ServerSummary,
    };
    pub use mmlp_store::prelude::{ResultKey, Store, StoreConfig};
}
