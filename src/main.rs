//! `maxmin-lp` — command-line interface to the local max-min LP solver.
//!
//! ```text
//! maxmin-lp solve <instance.mmlp> [-R <R>] [--certify]   local algorithm
//! maxmin-lp optimum <instance.mmlp>                      exact simplex
//! maxmin-lp safe <instance.mmlp>                         factor-ΔI baseline
//! maxmin-lp generate <family> <size> <seed>              emit an instance
//! maxmin-lp info <instance.mmlp>                         sizes and degrees
//! ```
//!
//! Instances use the line-oriented text format of
//! `mmlp_instance::textfmt` (see `maxmin-lp generate`). All output goes
//! to stdout; exit code 0 on success, 2 on usage errors.

use maxmin_lp::core::safe::safe_solution;
use maxmin_lp::core::solver::LocalSolver;
use maxmin_lp::gen::catalog;
use maxmin_lp::instance::{textfmt, DegreeStats, Instance};
use maxmin_lp::lp::solve_maxmin;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  maxmin-lp solve <file> [-R <R>] [--certify]\n  \
         maxmin-lp optimum <file>\n  maxmin-lp safe <file>\n  \
         maxmin-lp generate <family> <size> <seed>\n  maxmin-lp info <file>\n\n\
         families: {}",
        catalog()
            .iter()
            .map(|f| f.name)
            .collect::<Vec<_>>()
            .join(", ")
    );
    ExitCode::from(2)
}

fn load(path: &str) -> Result<Instance, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    textfmt::parse_instance(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match run(cmd, &args[1..]) {
        Ok(()) => ExitCode::SUCCESS,
        Err(UsageError::Usage) => usage(),
        Err(UsageError::Message(m)) => {
            eprintln!("error: {m}");
            ExitCode::FAILURE
        }
    }
}

enum UsageError {
    Usage,
    Message(String),
}

impl From<String> for UsageError {
    fn from(m: String) -> Self {
        UsageError::Message(m)
    }
}

fn run(cmd: &str, rest: &[String]) -> Result<(), UsageError> {
    match cmd {
        "solve" => {
            let path = rest.first().ok_or(UsageError::Usage)?;
            let mut big_r = 3usize;
            let mut certify = false;
            let mut it = rest[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "-R" => {
                        big_r = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .filter(|r| *r >= 2)
                            .ok_or(UsageError::Usage)?;
                    }
                    "--certify" => certify = true,
                    _ => return Err(UsageError::Usage),
                }
            }
            let inst = load(path)?;
            let stats = DegreeStats::of(&inst);
            let solver = LocalSolver::new(big_r).with_threads(4);
            let out = solver.solve(&inst);
            let utility = out.solution.utility(&inst);
            println!("# local solve R={big_r}");
            println!("utility {utility}");
            println!(
                "guarantee {}",
                solver.guarantee(stats.delta_i.max(2), stats.delta_k.max(2))
            );
            println!("optimum_upper_bound {}", out.optimum_upper_bound());
            for v in inst.agents() {
                println!("x {} {}", v.raw(), out.solution.value(v));
            }
            if certify {
                let opt = solve_maxmin(&inst).map_err(|e| e.to_string())?;
                println!("# certification");
                println!("optimum {}", opt.omega);
                println!("ratio {}", opt.omega / utility);
            }
            Ok(())
        }
        "optimum" => {
            let path = rest.first().ok_or(UsageError::Usage)?;
            let inst = load(path)?;
            let opt = solve_maxmin(&inst).map_err(|e| e.to_string())?;
            println!("optimum {}", opt.omega);
            for v in inst.agents() {
                println!("x {} {}", v.raw(), opt.solution.value(v));
            }
            Ok(())
        }
        "safe" => {
            let path = rest.first().ok_or(UsageError::Usage)?;
            let inst = load(path)?;
            let x = safe_solution(&inst);
            println!("utility {}", x.utility(&inst));
            for v in inst.agents() {
                println!("x {} {}", v.raw(), x.value(v));
            }
            Ok(())
        }
        "generate" => {
            let (name, size, seed) = match rest {
                [n, s, d] => (
                    n.as_str(),
                    s.parse::<usize>().map_err(|e| e.to_string())?,
                    d.parse::<u64>().map_err(|e| e.to_string())?,
                ),
                _ => return Err(UsageError::Usage),
            };
            let fams = catalog();
            let fam = fams
                .iter()
                .find(|f| f.name == name)
                .ok_or_else(|| format!("unknown family '{name}'"))?;
            print!("{}", textfmt::write_instance(&fam.instance(size, seed)));
            Ok(())
        }
        "info" => {
            let path = rest.first().ok_or(UsageError::Usage)?;
            let inst = load(path)?;
            let s = DegreeStats::of(&inst);
            println!("agents {}", inst.n_agents());
            println!("constraints {}", inst.n_constraints());
            println!("objectives {}", inst.n_objectives());
            println!("delta_i {}", s.delta_i);
            println!("delta_k {}", s.delta_k);
            match maxmin_lp::instance::validate::check(&inst) {
                Ok(()) => println!("valid true"),
                Err(e) => println!("valid false  # {e}"),
            }
            if s.delta_i >= 2 && s.delta_k >= 2 {
                println!(
                    "threshold {}",
                    maxmin_lp::core::ratio::threshold(s.delta_i, s.delta_k)
                );
            }
            Ok(())
        }
        _ => Err(UsageError::Usage),
    }
}
