//! `maxmin-lp` — command-line interface to the local max-min LP solver.
//!
//! ```text
//! maxmin-lp solve <instance.mmlp> [-R <R>] [--threads <n>] [--certify]
//! maxmin-lp optimum <instance.mmlp>                      exact simplex
//! maxmin-lp safe <instance.mmlp>                         factor-ΔI baseline
//! maxmin-lp generate <family> <size> <seed> [--out <f>]  emit an instance
//! maxmin-lp info <instance.mmlp>                         sizes, degrees, paper bound
//! maxmin-lp obs [--file <f>] [--size <n>] [--seed <s>] [-R <R>]
//!               [--threads <n>] [--slowest <n>]        phase timelines
//! maxmin-lp obs --addr <a>                             scrape + lint METRICS
//! maxmin-lp obs trace <id> --journal <dir>             render a span tree
//! maxmin-lp obs journal --journal <dir> [--tail <n>]   dump the event journal
//! maxmin-lp obs lint <scrape> [<scrape2>]              lint exposition files
//! maxmin-lp obs slo <spec> (--scrape <f> | --addr <a>) evaluate SLOs
//! maxmin-lp campaign run <spec.lab> [--out <dir>] [--workers <n>] [--quiet]
//!                 [--journal-dir <dir>]
//! maxmin-lp campaign report <dir> [--csv]
//! maxmin-lp campaign status <dir>
//! maxmin-lp campaign spill <dir> --store <store-dir>     persist results
//! maxmin-lp serve [--addr <a>] [--workers <n>] [--cache-mb <m>]
//!                 [--queue <n>] [--timeout-ms <t>] [--event-loops <n>]
//!                 [--store-dir <dir>] [--journal-dir <dir>]  solver service
//! maxmin-lp loadgen --instance <f> [--addr <a>] [--clients <n>]
//!                 [--requests <n>] [-R <R>] [--op <op>] [--inline]
//!                 [--shutdown] [--mutate] [--seed <n>] [--trace]
//!                 [--connections <n>] [--pipeline <d>]   drive the service
//! maxmin-lp store import <dir> <file>... | --catalog <size> <seed>
//! maxmin-lp store export <dir> <hash> [--out <file>]
//! maxmin-lp store convert <in> <out>                     text ↔ binary
//! maxmin-lp store ls <dir>
//! maxmin-lp store gc <dir>
//! maxmin-lp store verify <dir>
//! ```
//!
//! Instances use the line-oriented text format of
//! `mmlp_instance::textfmt` (see `maxmin-lp generate`); campaign specs
//! use the `mmlp_lab::spec` format. All output goes to stdout; exit
//! code 0 on success, 2 on usage errors.

use maxmin_lp::core::safe::safe_solution;
use maxmin_lp::core::solver::LocalSolver;
use maxmin_lp::gen::catalog;
use maxmin_lp::instance::{textfmt, DegreeStats, Instance};
use maxmin_lp::lab::campaign::{self, RunOptions};
use maxmin_lp::lab::{report, spec};
use maxmin_lp::lp::solve_maxmin;
use maxmin_lp::serve::loadgen::{self, LoadConfig};
use maxmin_lp::serve::protocol::Op;
use maxmin_lp::serve::server::{ServeConfig, Server};
use maxmin_lp::store::{codec, Store};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  maxmin-lp solve <file> [-R <R>] [--threads <n>] [--certify]\n  \
         maxmin-lp optimum <file>\n  maxmin-lp safe <file>\n  \
         maxmin-lp generate <family> <size> <seed> [--out <file>]\n  \
         maxmin-lp info <file>\n  \
         maxmin-lp obs [--file <f>] [--size <n>] [--seed <s>] [-R <R>] [--threads <n>] \
         [--slowest <n>] | --addr <a>\n  \
         maxmin-lp obs trace <id> --journal <dir>\n  \
         maxmin-lp obs journal --journal <dir> [--tail <n>]\n  \
         maxmin-lp obs lint <scrape> [<scrape2>]\n  \
         maxmin-lp obs slo <spec> (--scrape <file> | --addr <a>)\n  \
         maxmin-lp campaign run <spec.lab> [--out <dir>] [--workers <n>] [--quiet] \
         [--journal-dir <dir>]\n  \
         maxmin-lp campaign report <dir> [--csv]\n  \
         maxmin-lp campaign status <dir>\n  \
         maxmin-lp campaign spill <dir> --store <store-dir>\n  \
         maxmin-lp serve [--addr <a>] [--workers <n>] [--cache-mb <m>] \
         [--queue <n>] [--timeout-ms <t>] [--event-loops <n>] [--store-dir <dir>] \
         [--journal-dir <dir>]\n  \
         maxmin-lp loadgen --instance <file> [--addr <a>] [--clients <n>] \
         [--requests <n>] [-R <R>] [--op solve|optimum|safe|info] [--inline] [--shutdown] \
         [--mutate] [--seed <n>] [--trace] [--connections <n>] [--pipeline <d>]\n  \
         maxmin-lp store import <dir> <file>... | --catalog <size> <seed>\n  \
         maxmin-lp store export <dir> <hash> [--out <file>]\n  \
         maxmin-lp store convert <in> <out>\n  \
         maxmin-lp store ls|gc|verify <dir>\n\n\
         families: {}",
        catalog()
            .iter()
            .map(|f| f.name)
            .collect::<Vec<_>>()
            .join(", ")
    );
    ExitCode::from(2)
}

fn load(path: &str) -> Result<Instance, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    textfmt::parse_instance(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match run(cmd, &args[1..]) {
        Ok(()) => ExitCode::SUCCESS,
        Err(UsageError::Usage) => usage(),
        Err(UsageError::Message(m)) => {
            eprintln!("error: {m}");
            ExitCode::FAILURE
        }
    }
}

enum UsageError {
    Usage,
    Message(String),
}

impl From<String> for UsageError {
    fn from(m: String) -> Self {
        UsageError::Message(m)
    }
}

fn run(cmd: &str, rest: &[String]) -> Result<(), UsageError> {
    match cmd {
        "solve" => {
            let path = rest.first().ok_or(UsageError::Usage)?;
            let mut big_r = 3usize;
            let mut threads = 4usize;
            let mut certify = false;
            let mut it = rest[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "-R" => {
                        big_r = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .filter(|r| *r >= 2)
                            .ok_or(UsageError::Usage)?;
                    }
                    "--threads" => {
                        threads = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .filter(|t| *t >= 1)
                            .ok_or(UsageError::Usage)?;
                    }
                    "--certify" => certify = true,
                    _ => return Err(UsageError::Usage),
                }
            }
            let inst = load(path)?;
            let stats = DegreeStats::of(&inst);
            let solver = LocalSolver::new(big_r).with_threads(threads);
            let out = solver.solve(&inst);
            let utility = out.solution.utility(&inst);
            println!("# local solve R={big_r} threads={threads}");
            println!("utility {utility}");
            println!(
                "guarantee {}",
                solver.guarantee(stats.delta_i.max(2), stats.delta_k.max(2))
            );
            println!("optimum_upper_bound {}", out.optimum_upper_bound());
            for v in inst.agents() {
                println!("x {} {}", v.raw(), out.solution.value(v));
            }
            if certify {
                let opt = solve_maxmin(&inst).map_err(|e| e.to_string())?;
                println!("# certification");
                println!("optimum {}", opt.omega);
                println!("ratio {}", opt.omega / utility);
            }
            Ok(())
        }
        "optimum" => {
            let path = rest.first().ok_or(UsageError::Usage)?;
            let inst = load(path)?;
            let opt = solve_maxmin(&inst).map_err(|e| e.to_string())?;
            println!("optimum {}", opt.omega);
            for v in inst.agents() {
                println!("x {} {}", v.raw(), opt.solution.value(v));
            }
            Ok(())
        }
        "safe" => {
            let path = rest.first().ok_or(UsageError::Usage)?;
            let inst = load(path)?;
            let x = safe_solution(&inst);
            println!("utility {}", x.utility(&inst));
            for v in inst.agents() {
                println!("x {} {}", v.raw(), x.value(v));
            }
            Ok(())
        }
        "generate" => {
            let (name, size, seed, flags) = match rest {
                [n, s, d, flags @ ..] => (
                    n.as_str(),
                    s.parse::<usize>().map_err(|e| e.to_string())?,
                    d.parse::<u64>().map_err(|e| e.to_string())?,
                    flags,
                ),
                _ => return Err(UsageError::Usage),
            };
            let mut out_file: Option<PathBuf> = None;
            let mut it = flags.iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--out" => out_file = Some(PathBuf::from(it.next().ok_or(UsageError::Usage)?)),
                    _ => return Err(UsageError::Usage),
                }
            }
            let fams = catalog();
            let fam = fams
                .iter()
                .find(|f| f.name == name)
                .ok_or_else(|| format!("unknown family '{name}'"))?;
            let text = textfmt::write_instance(&fam.instance(size, seed));
            match out_file {
                None => print!("{text}"),
                Some(path) => {
                    write_atomically(&path, text.as_bytes()).map_err(|e| e.to_string())?;
                    println!("wrote {}", path.display());
                }
            }
            Ok(())
        }
        "info" => {
            let path = rest.first().ok_or(UsageError::Usage)?;
            let inst = load(path)?;
            let s = DegreeStats::of(&inst);
            println!("agents {}", inst.n_agents());
            println!("constraints {}", inst.n_constraints());
            println!("objectives {}", inst.n_objectives());
            println!("delta_i {}", s.delta_i);
            println!("delta_k {}", s.delta_k);
            // The paper's optimal local approximation ratio for these
            // degree bounds: any ratio headroom reads directly off
            // `solve`'s ratio vs this line.
            let (di, dk) = (s.delta_i.max(2), s.delta_k.max(2));
            println!(
                "paper_bound {}  # ΔI(1 − 1/ΔK) at ΔI={di}, ΔK={dk}",
                maxmin_lp::core::ratio::threshold(di, dk)
            );
            match maxmin_lp::instance::validate::check(&inst) {
                Ok(()) => println!("valid true"),
                Err(e) => println!("valid false  # {e}"),
            }
            Ok(())
        }
        "obs" => obs_cmd(rest),
        "campaign" => {
            let sub = rest.first().ok_or(UsageError::Usage)?;
            campaign_cmd(sub, &rest[1..])
        }
        "serve" => serve_cmd(rest),
        "loadgen" => loadgen_cmd(rest),
        "store" => {
            let sub = rest.first().ok_or(UsageError::Usage)?;
            store_cmd(sub, &rest[1..])
        }
        _ => Err(UsageError::Usage),
    }
}

/// Writes `bytes` to `path` atomically: temp file in the same
/// directory, then `rename`, so readers (and a crash mid-write) never
/// observe a half-written file.
fn write_atomically(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "no file name"))?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => PathBuf::from(&tmp_name),
    };
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

/// `maxmin-lp obs …` — the observability report.
///
/// With `--addr`, scrapes a running server's `METRICS` op and prints
/// the Prometheus text body. Otherwise runs **traced** flat distributed
/// solves locally — over one `--file`, or the whole generator catalogue
/// at `--size`/`--seed` — and renders the phase timeline of the slowest
/// solves plus the memo-table aggregate.
fn obs_cmd(rest: &[String]) -> Result<(), UsageError> {
    use maxmin_lp::core::distributed::solve_distributed_flat_traced;
    use maxmin_lp::core::transform::to_special_form;
    use maxmin_lp::core::SpecialForm;
    use maxmin_lp::obs::{next_trace_id, render_timeline, SolveTrace, TraceRing};

    match rest.first().map(String::as_str) {
        Some("trace") => return obs_trace_cmd(&rest[1..]),
        Some("journal") => return obs_journal_cmd(&rest[1..]),
        Some("lint") => return obs_lint_cmd(&rest[1..]),
        Some("slo") => return obs_slo_cmd(&rest[1..]),
        _ => {}
    }

    let mut addr: Option<String> = None;
    let mut file: Option<String> = None;
    let mut size = 16usize;
    let mut seed = 0u64;
    let mut big_r = 3usize;
    let mut threads = 1usize;
    let mut slowest = 8usize;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => addr = Some(it.next().ok_or(UsageError::Usage)?.clone()),
            "--file" => file = Some(it.next().ok_or(UsageError::Usage)?.clone()),
            "--size" => {
                size = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|s| *s >= 1)
                    .ok_or(UsageError::Usage)?;
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or(UsageError::Usage)?;
            }
            "-R" => {
                big_r = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|r| *r >= 2)
                    .ok_or(UsageError::Usage)?;
            }
            "--threads" => {
                threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|t| *t >= 1)
                    .ok_or(UsageError::Usage)?;
            }
            "--slowest" => {
                slowest = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|n| *n >= 1)
                    .ok_or(UsageError::Usage)?;
            }
            _ => return Err(UsageError::Usage),
        }
    }

    if let Some(addr) = addr {
        // Scrape mode: print the server's registry verbatim — after
        // linting it, so a malformed exposition is a typed error (exit
        // 1), not something silently passed downstream.
        let body = fetch_metrics(&addr)?;
        if let Err(errors) = maxmin_lp::obs::parse_exposition(&body) {
            return Err(UsageError::Message(format!(
                "scrape from {addr} failed lint:\n  {}",
                errors.join("\n  ")
            )));
        }
        print!("{body}");
        return Ok(());
    }

    // Trace mode: one traced solve per workload, ring-buffered exactly
    // like the server's, then the slowest-first timeline.
    let workloads: Vec<(String, Instance)> = match file {
        Some(path) => vec![(path.clone(), load(&path)?)],
        None => catalog()
            .iter()
            .map(|f| (f.name.to_string(), f.instance(size, seed)))
            .collect(),
    };
    let ring = TraceRing::new(workloads.len().max(1));
    let (mut hits, mut misses, mut skips) = (0u64, 0u64, 0u64);
    for (name, inst) in &workloads {
        let transformed = to_special_form(inst);
        let sf = SpecialForm::new(transformed.instance.clone())
            .map_err(|e| format!("{name}: special form: {e:?}"))?;
        let (run, trace) = solve_distributed_flat_traced(&sf, big_r, threads);
        hits += trace.batch.memo_hits;
        misses += trace.batch.memo_misses;
        skips += trace.batch.memo_skips;
        ring.push(SolveTrace {
            trace_id: next_trace_id(),
            label: format!(
                "{name} n={} R={big_r} rounds={}",
                inst.n_agents(),
                run.stats.rounds
            ),
            total_ns: trace.total_ns,
            phases: vec![
                ("gather".into(), trace.gather_ns),
                ("t_eval".into(), trace.t_eval_ns),
                ("flood".into(), trace.flood_ns),
                ("g".into(), trace.g_ns),
            ],
        });
    }
    println!(
        "# obs timeline R={big_r} threads={threads} ({} solve(s), slowest {})",
        workloads.len(),
        slowest.min(workloads.len())
    );
    print!("{}", render_timeline(&ring.slowest(slowest)));
    let lookups = hits + misses + skips;
    println!("# memo: {hits} hits / {misses} misses / {skips} skips");
    if lookups > 0 {
        println!(
            "# memo hit rate {:.1}%",
            100.0 * hits as f64 / lookups as f64
        );
    }
    Ok(())
}

/// Scrapes `METRICS` from a running server, with connection and
/// protocol failures surfaced as typed errors (exit code 1), never a
/// panic.
fn fetch_metrics(addr: &str) -> Result<String, UsageError> {
    let mut client = maxmin_lp::serve::client::Client::connect(addr)
        .map_err(|e| format!("connect {addr}: {e}"))?;
    client
        .metrics()
        .map_err(|e| UsageError::Message(format!("METRICS from {addr}: {e}")))
}

/// `maxmin-lp obs trace <id> --journal <dir>` — renders the span tree
/// of one traced request out of the crash-safe event journal, plus any
/// other journal events carrying the same trace id.
fn obs_trace_cmd(rest: &[String]) -> Result<(), UsageError> {
    use maxmin_lp::obs::journal::{kind_name, read_journal_dir, EV_SPAN};
    use maxmin_lp::obs::{format_trace_id, parse_trace_id, render_span_tree, SpanTree};

    let id_text = rest.first().ok_or(UsageError::Usage)?;
    let trace_id = parse_trace_id(id_text)
        .ok_or_else(|| format!("bad trace id '{id_text}' (1-16 hex digits, nonzero)"))?;
    let mut journal_dir: Option<PathBuf> = None;
    let mut it = rest[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--journal" => journal_dir = Some(PathBuf::from(it.next().ok_or(UsageError::Usage)?)),
            _ => return Err(UsageError::Usage),
        }
    }
    let dir = journal_dir.ok_or(UsageError::Usage)?;
    let (records, report) =
        read_journal_dir(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let tree = records
        .iter()
        .rev()
        .filter(|r| r.kind == EV_SPAN && r.trace_id == trace_id)
        .find_map(|r| SpanTree::parse_text(&r.text).ok())
        .ok_or_else(|| {
            format!(
                "no span tree for trace {} in {} ({} journal record(s) scanned)",
                format_trace_id(trace_id),
                dir.display(),
                records.len()
            )
        })?;
    print!("{}", render_span_tree(&tree));
    for r in records
        .iter()
        .filter(|r| r.trace_id == trace_id && r.kind != EV_SPAN)
    {
        println!("event {}: {}", kind_name(r.kind), r.text);
    }
    if report.corrupt > 0 || report.torn_files > 0 {
        eprintln!(
            "# journal damage skipped: {} corrupt record(s), {} torn file(s)",
            report.corrupt, report.torn_files
        );
    }
    Ok(())
}

/// `maxmin-lp obs journal --journal <dir> [--tail <n>]` — dumps the
/// event journal, one line per record (span trees are summarised).
fn obs_journal_cmd(rest: &[String]) -> Result<(), UsageError> {
    use maxmin_lp::obs::journal::{kind_name, read_journal_dir, EV_SPAN};
    use maxmin_lp::obs::{format_trace_id, SpanTree};

    let mut journal_dir: Option<PathBuf> = None;
    let mut tail: Option<usize> = None;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--journal" => journal_dir = Some(PathBuf::from(it.next().ok_or(UsageError::Usage)?)),
            "--tail" => {
                tail = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|n| *n >= 1)
                        .ok_or(UsageError::Usage)?,
                );
            }
            _ => return Err(UsageError::Usage),
        }
    }
    let dir = journal_dir.ok_or(UsageError::Usage)?;
    let (records, report) =
        read_journal_dir(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let skip = records.len().saturating_sub(tail.unwrap_or(records.len()));
    for r in &records[skip..] {
        let id = format_trace_id(r.trace_id);
        if r.kind == EV_SPAN {
            match SpanTree::parse_text(&r.text) {
                Ok(t) => println!(
                    "span  {id}  {}  total {} ns  ({} span(s))",
                    t.label,
                    t.total_ns,
                    t.spans.len()
                ),
                Err(e) => println!("span  {id}  <unparseable: {e}>"),
            }
        } else {
            println!("{:<5} {id}  {}", kind_name(r.kind), r.text);
        }
    }
    println!(
        "# {} record(s) in {} file(s), {} torn, {} corrupt",
        records.len(),
        report.files,
        report.torn_files,
        report.corrupt
    );
    Ok(())
}

/// `maxmin-lp obs lint <scrape> [<scrape2>]` — parses Prometheus text
/// exposition file(s) and fails on format damage; with two scrapes of
/// the same server it also fails on drift between them (series that
/// disappeared, counters or histograms that went backwards).
fn obs_lint_cmd(rest: &[String]) -> Result<(), UsageError> {
    use maxmin_lp::obs::{lint_pair, parse_exposition};

    let (first, second) = match rest {
        [f] => (f, None),
        [f, s] => (f, Some(s)),
        _ => return Err(UsageError::Usage),
    };
    let parse = |path: &str| -> Result<maxmin_lp::obs::Exposition, UsageError> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        parse_exposition(&text).map_err(|errors| {
            UsageError::Message(format!("{path} failed lint:\n  {}", errors.join("\n  ")))
        })
    };
    let prev = parse(first)?;
    let mut checked = format!("{first}: {} metric families ok", prev.families.len());
    if let Some(second) = second {
        let next = parse(second)?;
        let drift = lint_pair(&prev, &next);
        if !drift.is_empty() {
            return Err(UsageError::Message(format!(
                "drift between {first} and {second}:\n  {}",
                drift.join("\n  ")
            )));
        }
        checked.push_str(&format!(
            "\n{second}: {} metric families ok, no drift",
            next.families.len()
        ));
    }
    println!("{checked}");
    Ok(())
}

/// `maxmin-lp obs slo <spec> (--scrape <file> | --addr <a>)` —
/// evaluates declarative SLOs against a scrape and exits nonzero on
/// any violated objective (CI's SLO gate).
fn obs_slo_cmd(rest: &[String]) -> Result<(), UsageError> {
    use maxmin_lp::obs::{evaluate_slos, parse_exposition, parse_slo_specs, render_slo_report};

    let spec_path = rest.first().ok_or(UsageError::Usage)?;
    let mut scrape_file: Option<String> = None;
    let mut addr: Option<String> = None;
    let mut it = rest[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scrape" => scrape_file = Some(it.next().ok_or(UsageError::Usage)?.clone()),
            "--addr" => addr = Some(it.next().ok_or(UsageError::Usage)?.clone()),
            _ => return Err(UsageError::Usage),
        }
    }
    let spec_text = std::fs::read_to_string(spec_path).map_err(|e| format!("{spec_path}: {e}"))?;
    let specs = parse_slo_specs(&spec_text).map_err(|e| format!("{spec_path}: {e}"))?;
    let body = match (scrape_file, addr) {
        (Some(path), None) => std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?,
        (None, Some(addr)) => fetch_metrics(&addr)?,
        _ => return Err(UsageError::Usage),
    };
    let exp = parse_exposition(&body).map_err(|errors| {
        UsageError::Message(format!("scrape failed lint:\n  {}", errors.join("\n  ")))
    })?;
    let results = evaluate_slos(&specs, &exp);
    print!("{}", render_slo_report(&results));
    let violated = results.iter().filter(|r| !r.ok).count();
    if violated > 0 {
        return Err(UsageError::Message(format!(
            "{violated} of {} objective(s) violated",
            results.len()
        )));
    }
    Ok(())
}

/// `maxmin-lp serve [--addr <a>] [--workers <n>] [--cache-mb <m>]
/// [--queue <n>] [--timeout-ms <t>] [--event-loops <n>]
/// [--store-dir <dir>] [--journal-dir <dir>]`.
fn serve_cmd(rest: &[String]) -> Result<(), UsageError> {
    let mut cfg = ServeConfig::default();
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => cfg.addr = it.next().ok_or(UsageError::Usage)?.clone(),
            "--store-dir" => {
                cfg.store_dir = Some(PathBuf::from(it.next().ok_or(UsageError::Usage)?))
            }
            "--journal-dir" => {
                cfg.journal_dir = Some(PathBuf::from(it.next().ok_or(UsageError::Usage)?))
            }
            "--workers" => {
                cfg.workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|w| *w >= 1)
                    .ok_or(UsageError::Usage)?;
            }
            "--cache-mb" => {
                let mb: u64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|m| *m >= 1)
                    .ok_or(UsageError::Usage)?;
                cfg.cache_bytes = mb << 20;
            }
            "--queue" => {
                cfg.queue_cap = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|q| *q >= 1)
                    .ok_or(UsageError::Usage)?;
            }
            "--timeout-ms" => {
                let ms: u64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or(UsageError::Usage)?;
                cfg.timeout = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--event-loops" => {
                cfg.event_loops = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|n| *n >= 1)
                    .ok_or(UsageError::Usage)?;
            }
            _ => return Err(UsageError::Usage),
        }
    }
    let server = Server::bind(cfg.clone()).map_err(|e| format!("bind {}: {e}", cfg.addr))?;
    println!("listening {}", server.local_addr());
    println!(
        "workers {}  queue {}  cache_mb {}  timeout_ms {}",
        cfg.workers,
        cfg.queue_cap,
        cfg.cache_bytes >> 20,
        cfg.timeout.map_or(0, |d| d.as_millis())
    );
    if let Some(dir) = &cfg.store_dir {
        println!("store_dir {}", dir.display());
    }
    if let Some(dir) = &cfg.journal_dir {
        println!("journal_dir {}", dir.display());
    }
    println!("event_loops {}", cfg.event_loops.max(1));
    // The CI smoke (and any supervisor) waits for the "listening" line.
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    let summary = server.run().map_err(|e| e.to_string())?;
    println!("# shutdown");
    println!("requests {}", summary.requests);
    println!("cache_hits {}", summary.cache_hits);
    println!("cache_misses {}", summary.cache_misses);
    println!("busy {}", summary.busy);
    println!("errors {}", summary.errors);
    println!("timeouts {}", summary.timeouts);
    println!("connections {}", summary.connections);
    if !summary.slowest.is_empty() {
        println!("# slowest solves");
        print!("{}", maxmin_lp::obs::render_timeline(&summary.slowest));
    }
    Ok(())
}

/// `maxmin-lp loadgen --instance <file> [--addr <a>] [--clients <n>]
/// [--requests <n>] [-R <R>] [--op <op>] [--inline] [--shutdown]
/// [--mutate] [--seed <n>] [--connections <n>] [--pipeline <d>]`.
///
/// `--mutate` streams random single-coefficient edits as `SOLVE_DELTA`
/// and byte-compares each incremental body against a from-scratch
/// `SOLVE` of the same revision; a mismatch counts as an error.
///
/// `--pipeline <d>` with `d > 1` switches to open-pipeline mode: each
/// connection (`--connections`, a synonym for `--clients`) keeps `d`
/// requests in flight, exercising the server's pipelined parsing.
///
/// Exit code 1 when any request failed (transport error, a non-BUSY
/// `ERR` reply, or a mutate-mode bit-identity mismatch), so CI can
/// assert a clean run.
fn loadgen_cmd(rest: &[String]) -> Result<(), UsageError> {
    let mut cfg = LoadConfig::default();
    let mut instance_path: Option<PathBuf> = None;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--instance" => {
                instance_path = Some(PathBuf::from(it.next().ok_or(UsageError::Usage)?))
            }
            "--addr" => cfg.addr = it.next().ok_or(UsageError::Usage)?.clone(),
            "--clients" => {
                cfg.clients = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|c| *c >= 1)
                    .ok_or(UsageError::Usage)?;
            }
            "--requests" => {
                cfg.requests = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|r| *r >= 1)
                    .ok_or(UsageError::Usage)?;
            }
            "-R" => {
                cfg.big_r = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|r| *r >= 2)
                    .ok_or(UsageError::Usage)?;
            }
            "--op" => {
                cfg.op = match it.next().ok_or(UsageError::Usage)?.as_str() {
                    "solve" => Op::Solve,
                    "optimum" => Op::Optimum,
                    "safe" => Op::Safe,
                    "info" => Op::Info,
                    _ => return Err(UsageError::Usage),
                };
            }
            "--inline" => cfg.by_hash = false,
            "--shutdown" => cfg.shutdown_after = true,
            "--mutate" => cfg.mutate = true,
            "--trace" => cfg.trace = true,
            // --connections is the open-pipeline-mode spelling of
            // --clients (each connection is one pipelined stream).
            "--connections" => {
                cfg.clients = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|c| *c >= 1)
                    .ok_or(UsageError::Usage)?;
            }
            "--pipeline" => {
                cfg.pipeline = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|d| *d >= 1)
                    .ok_or(UsageError::Usage)?;
            }
            "--seed" => {
                cfg.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or(UsageError::Usage)?;
            }
            _ => return Err(UsageError::Usage),
        }
    }
    let path = instance_path.ok_or(UsageError::Usage)?;
    cfg.instance_text =
        std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    let report = loadgen::run_loadgen(&cfg).map_err(UsageError::Message)?;
    print!("{}", loadgen::render_report(&cfg, &report));
    // Any unserved request fails the run: hard errors, but also
    // requests dropped after exhausting their BUSY retries — CI's
    // zero-error gate must not mistake a saturated run for a clean one.
    if report.ok < report.sent {
        return Err(UsageError::Message(format!(
            "{} of {} requests not served ({} errors, {} busy-dropped){}",
            report.sent - report.ok,
            report.sent,
            report.errors,
            report.busy,
            report
                .first_error
                .as_deref()
                .map(|e| format!(" (first error: {e})"))
                .unwrap_or_default()
        )));
    }
    Ok(())
}

/// `maxmin-lp campaign run|report|status …`.
fn campaign_cmd(sub: &str, rest: &[String]) -> Result<(), UsageError> {
    match sub {
        "run" => {
            let spec_path = rest.first().ok_or(UsageError::Usage)?;
            let mut out_dir: Option<PathBuf> = None;
            let mut workers: Option<usize> = None;
            let mut progress = true;
            let mut journal_dir: Option<PathBuf> = None;
            let mut it = rest[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--out" => out_dir = Some(PathBuf::from(it.next().ok_or(UsageError::Usage)?)),
                    "--workers" => {
                        workers = Some(
                            it.next()
                                .and_then(|v| v.parse().ok())
                                .filter(|w| *w >= 1)
                                .ok_or(UsageError::Usage)?,
                        );
                    }
                    "--quiet" => progress = false,
                    "--journal-dir" => {
                        journal_dir = Some(PathBuf::from(it.next().ok_or(UsageError::Usage)?))
                    }
                    _ => return Err(UsageError::Usage),
                }
            }
            let text =
                std::fs::read_to_string(spec_path).map_err(|e| format!("{spec_path}: {e}"))?;
            let spec = spec::parse_spec(&text).map_err(|e| format!("{spec_path}: {e}"))?;
            let fams = catalog();
            let known: Vec<&str> = fams.iter().map(|f| f.name).collect();
            spec.validate(&known).map_err(|e| e.to_string())?;
            let dir = out_dir
                .unwrap_or_else(|| PathBuf::from(format!("{}.campaign", spec_path.as_str())));
            let opts = RunOptions {
                workers,
                progress,
                journal_dir,
            };
            let summary = campaign::run_campaign(&spec, &dir, &opts).map_err(|e| e.to_string())?;
            println!("# campaign run {}", dir.display());
            println!("total {}", summary.total);
            println!("skipped {}", summary.skipped);
            println!("executed {}", summary.executed);
            println!("ok {}", summary.ok);
            println!("errors {}", summary.errors);
            println!("panics {}", summary.panics);
            println!("timeouts {}", summary.timeouts);
            if summary.errors + summary.panics + summary.timeouts > 0 {
                return Err(UsageError::Message(format!(
                    "{} of {} executed jobs failed (see {})",
                    summary.errors + summary.panics + summary.timeouts,
                    summary.executed,
                    dir.join(campaign::RESULTS_FILE).display()
                )));
            }
            Ok(())
        }
        "report" => {
            let dir = rest.first().ok_or(UsageError::Usage)?;
            let mut csv = false;
            for a in &rest[1..] {
                match a.as_str() {
                    "--csv" => csv = true,
                    _ => return Err(UsageError::Usage),
                }
            }
            let dir = Path::new(dir);
            let records = campaign::load_records(dir).map_err(|e| e.to_string())?;
            if records.is_empty() {
                return Err(UsageError::Message(format!(
                    "no records in {}",
                    dir.join(campaign::RESULTS_FILE).display()
                )));
            }
            print!("{}", report::render_report(&records));
            if csv {
                let written = report::write_csv_files(&records, dir).map_err(|e| e.to_string())?;
                for p in written {
                    println!("csv {}", p.display());
                }
            }
            if !report::violations(&records).is_empty() {
                return Err(UsageError::Message("guarantee violations found".into()));
            }
            Ok(())
        }
        "spill" => {
            let dir = rest.first().ok_or(UsageError::Usage)?;
            let mut store_dir: Option<PathBuf> = None;
            let mut it = rest[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--store" => {
                        store_dir = Some(PathBuf::from(it.next().ok_or(UsageError::Usage)?))
                    }
                    _ => return Err(UsageError::Usage),
                }
            }
            let store_dir = store_dir.ok_or(UsageError::Usage)?;
            let records = campaign::load_records(Path::new(dir)).map_err(|e| e.to_string())?;
            if records.is_empty() {
                return Err(UsageError::Message(format!(
                    "no records in {}",
                    Path::new(dir).join(campaign::RESULTS_FILE).display()
                )));
            }
            let (store, open) = Store::open(&store_dir).map_err(|e| e.to_string())?;
            let summary = maxmin_lp::lab::spill::spill_records(&records, &store)
                .map_err(|e| e.to_string())?;
            println!("# spill {} -> {}", dir, store_dir.display());
            println!("records {}", records.len());
            println!("instances_put {}", summary.instances);
            println!("results_put {}", summary.results);
            println!("skipped {}", summary.skipped);
            let (live_inst, live_res) = store.counts();
            println!("store_instances {live_inst}");
            println!("store_results {live_res}");
            if open.corrupt > 0 || open.torn_bytes > 0 {
                println!(
                    "# store open repaired: corrupt {} torn_bytes {}",
                    open.corrupt, open.torn_bytes
                );
            }
            Ok(())
        }
        "status" => {
            let dir = rest.first().ok_or(UsageError::Usage)?;
            let st = campaign::status(Path::new(dir)).map_err(|e| e.to_string())?;
            if !st.name.is_empty() {
                println!("name {}", st.name);
            }
            println!("total {}", st.total);
            println!("completed {}", st.completed);
            println!("failed {}", st.failed);
            println!("pending {}", st.pending);
            if st.stale_records > 0 {
                println!("stale_records {}", st.stale_records);
            }
            println!("complete {}", st.is_complete());
            Ok(())
        }
        _ => Err(UsageError::Usage),
    }
}

/// Reads an instance file in either format: binary-codec blobs are
/// recognised by their magic, anything else parses as text.
fn load_any(path: &str) -> Result<Instance, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    if bytes.starts_with(&codec::MAGIC) {
        return codec::decode_instance(&bytes).map_err(|e| format!("{path}: {e}"));
    }
    let text = String::from_utf8(bytes).map_err(|_| format!("{path}: neither binary nor UTF-8"))?;
    textfmt::parse_instance(&text).map_err(|e| format!("{path}: {e}"))
}

/// Human name of a result record's `op` namespace byte: the service
/// codes resolve through `Op::from_code` (the single owner of that
/// mapping), the lab codes through the spiller's `SolverKind` base.
fn op_name(code: u8) -> String {
    use maxmin_lp::lab::job::SolverKind;
    use maxmin_lp::lab::spill::{op_code, LAB_OP_BASE};
    if let Some(op) = Op::from_code(code) {
        return op.tag().into();
    }
    if code >= LAB_OP_BASE {
        if let Some(kind) = SolverKind::all().into_iter().find(|k| op_code(*k) == code) {
            return format!("lab-{}", kind.name());
        }
    }
    format!("op{code}")
}

/// `maxmin-lp store import|export|convert|ls|gc|verify …`.
fn store_cmd(sub: &str, rest: &[String]) -> Result<(), UsageError> {
    use maxmin_lp::instance::hash::{hash_hex, parse_hash_hex};
    match sub {
        // import <dir> <file>...  |  import <dir> --catalog <size> <seed>
        "import" => {
            let dir = rest.first().ok_or(UsageError::Usage)?;
            let (store, _) = Store::open(dir).map_err(|e| e.to_string())?;
            let mut imported = 0usize;
            match rest.get(1).map(String::as_str) {
                Some("--catalog") => {
                    let size: usize = rest
                        .get(2)
                        .and_then(|v| v.parse().ok())
                        .ok_or(UsageError::Usage)?;
                    let seed: u64 = rest
                        .get(3)
                        .and_then(|v| v.parse().ok())
                        .ok_or(UsageError::Usage)?;
                    if rest.len() > 4 {
                        return Err(UsageError::Usage);
                    }
                    for fam in catalog() {
                        let h = store
                            .put_instance(&fam.instance(size, seed))
                            .map_err(|e| e.to_string())?;
                        println!("imported {} {}", hash_hex(h), fam.name);
                        imported += 1;
                    }
                }
                Some(_) => {
                    for path in &rest[1..] {
                        let inst = load_any(path)?;
                        let h = store.put_instance(&inst).map_err(|e| e.to_string())?;
                        println!("imported {} {path}", hash_hex(h));
                        imported += 1;
                    }
                }
                None => return Err(UsageError::Usage),
            }
            let (instances, results) = store.counts();
            println!("imported_total {imported}");
            println!("store_instances {instances}");
            println!("store_results {results}");
            Ok(())
        }
        // export <dir> <hash> [--out <file>] — text to stdout, or to a
        // file (binary when the file name ends in .mmlpb).
        "export" => {
            let dir = rest.first().ok_or(UsageError::Usage)?;
            let hash = rest
                .get(1)
                .and_then(|h| parse_hash_hex(h))
                .ok_or(UsageError::Usage)?;
            let mut out_file: Option<PathBuf> = None;
            let mut it = rest[2..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--out" => out_file = Some(PathBuf::from(it.next().ok_or(UsageError::Usage)?)),
                    _ => return Err(UsageError::Usage),
                }
            }
            let (store, _) = Store::open(dir).map_err(|e| e.to_string())?;
            let inst = store
                .get_instance(hash)
                .map_err(|e| e.to_string())?
                .ok_or_else(|| format!("no instance {} in {dir}", hash_hex(hash)))?;
            match out_file {
                None => print!("{}", textfmt::write_instance(&inst)),
                Some(path) => {
                    let bytes = if path.extension().is_some_and(|e| e == "mmlpb") {
                        codec::encode_instance(&inst)
                    } else {
                        textfmt::write_instance(&inst).into_bytes()
                    };
                    write_atomically(&path, &bytes).map_err(|e| e.to_string())?;
                    println!("wrote {}", path.display());
                }
            }
            Ok(())
        }
        // convert <in> <out> — output format chosen by the output
        // extension (.mmlpb = binary, anything else = text).
        "convert" => {
            let (input, output) = match rest {
                [i, o] => (i.as_str(), Path::new(o.as_str())),
                _ => return Err(UsageError::Usage),
            };
            let inst = load_any(input)?;
            let bytes = if output.extension().is_some_and(|e| e == "mmlpb") {
                codec::encode_instance(&inst)
            } else {
                textfmt::write_instance(&inst).into_bytes()
            };
            write_atomically(output, &bytes).map_err(|e| e.to_string())?;
            println!("wrote {} ({} bytes)", output.display(), bytes.len());
            Ok(())
        }
        "ls" => {
            let dir = rest.first().ok_or(UsageError::Usage)?;
            if rest.len() > 1 {
                return Err(UsageError::Usage);
            }
            let (store, _) = Store::open(dir).map_err(|e| e.to_string())?;
            for h in store.instance_hashes() {
                let inst = store
                    .get_instance(h)
                    .map_err(|e| e.to_string())?
                    .ok_or_else(|| format!("index lied about {}", hash_hex(h)))?;
                println!(
                    "instance {} agents {} constraints {} objectives {}",
                    hash_hex(h),
                    inst.n_agents(),
                    inst.n_constraints(),
                    inst.n_objectives()
                );
            }
            // Lengths come off the in-memory index (framed on-disk
            // bytes): listing a large store does no record I/O.
            for (k, disk_len) in store.result_records() {
                println!(
                    "result {} {} R={} threads={} bytes {}",
                    hash_hex(k.instance),
                    op_name(k.op),
                    k.big_r,
                    k.threads,
                    disk_len
                );
            }
            let (instances, results) = store.counts();
            println!("total instances {instances} results {results}");
            Ok(())
        }
        "gc" => {
            let dir = rest.first().ok_or(UsageError::Usage)?;
            if rest.len() > 1 {
                return Err(UsageError::Usage);
            }
            let (store, _) = Store::open(dir).map_err(|e| e.to_string())?;
            let gc = store.gc().map_err(|e| e.to_string())?;
            println!("records_kept {}", gc.records_kept);
            println!("bytes_reclaimed {}", gc.bytes_reclaimed);
            Ok(())
        }
        // verify prints the sweep report and exits non-zero on any
        // damage, so CI can gate on it.
        "verify" => {
            let dir = rest.first().ok_or(UsageError::Usage)?;
            if rest.len() > 1 {
                return Err(UsageError::Usage);
            }
            let (store, _) = Store::open(dir).map_err(|e| e.to_string())?;
            let v = store.verify().map_err(|e| e.to_string())?;
            print!("{}", v.render());
            if !v.clean() {
                return Err(UsageError::Message(format!(
                    "store {dir} has damage: {} corrupt record(s), {} torn segment(s)",
                    v.corrupt, v.torn_segments
                )));
            }
            Ok(())
        }
        _ => Err(UsageError::Usage),
    }
}
