//! Balanced data gathering in a wireless sensor network — the paper's
//! first motivating application (§1).
//!
//! Every cell of a toroidal grid hosts a sensor; each sensor can route
//! its data through itself or one of its four neighbours; every relay
//! has a unit energy budget. Maximising the minimum data gathered per
//! sensor is a max-min LP with ΔI = ΔK = 5, and the local algorithm
//! lets every sensor decide its routing split after a constant number
//! of communication rounds — no base station, no global view.
//!
//! Run with `cargo run --release --example sensor_network`.

use maxmin_lp::core::distributed::{rounds_needed, solve_distributed_flat};
use maxmin_lp::core::safe::safe_solution;
use maxmin_lp::core::transform::to_special_form;
use maxmin_lp::gen::apps::{sensor_grid, SensorGridConfig};
use maxmin_lp::prelude::*;

fn main() {
    println!("balanced data gathering on a torus (ΔI = ΔK = 5)\n");
    println!(
        "{:>6} {:>8} {:>10} {:>10} {:>10} {:>9}",
        "grid", "agents", "ω(local)", "ω(safe)", "ω*(LP)", "ratio"
    );

    let big_r = 3;
    for side in [4, 6, 8] {
        let cfg = SensorGridConfig {
            width: side,
            height: side,
            cost_range: (1.0, 2.0),
        };
        let inst = sensor_grid(&cfg, 7);
        let solver = LocalSolver::new(big_r).with_threads(4);
        let local = solver.solve(&inst);
        let safe = safe_solution(&inst);
        let opt = solve_maxmin(&inst).expect("bounded");
        let lu = local.solution.utility(&inst);
        println!(
            "{:>4}x{:<1} {:>8} {:>10.5} {:>10.5} {:>10.5} {:>9.4}",
            side,
            side,
            inst.n_agents(),
            lu,
            safe.utility(&inst),
            opt.omega,
            opt.omega / lu
        );
        assert!(local.solution.is_feasible(&inst, 1e-9));
    }

    // Run the genuinely distributed protocol on the (transformed) grid
    // and show that the round count does not depend on the grid size —
    // the defining property of a local algorithm.
    println!("\ndistributed protocol (R = {big_r}) on the transformed grid:");
    println!(
        "{:>6} {:>8} {:>8} {:>12} {:>14}",
        "grid", "nodes", "rounds", "messages", "peak bytes/rnd"
    );
    for side in [4, 6, 8] {
        let inst = sensor_grid(
            &SensorGridConfig {
                width: side,
                height: side,
                cost_range: (1.0, 2.0),
            },
            7,
        );
        let transformed = to_special_form(&inst);
        let sf = maxmin_lp::core::SpecialForm::new(transformed.instance.clone()).unwrap();
        let run = solve_distributed_flat(&sf, big_r, 1);
        println!(
            "{:>4}x{:<1} {:>8} {:>8} {:>12} {:>14}",
            side,
            side,
            sf.instance().n_agents() + sf.instance().n_constraints() + sf.instance().n_objectives(),
            run.stats.rounds,
            run.stats.messages,
            run.stats.peak_round_bytes()
        );
    }
    println!(
        "\nround count is 3·(4r+2) = {} for R = {big_r}, independent of n.",
        rounds_needed(big_r)
    );
}
