//! The impossibility side of Theorem 1, demonstrated mechanically.
//!
//! No local algorithm can approximate max-min LPs better than
//! `ΔI (1 − 1/ΔK)`. The engine of the proof (Floréen et al.,
//! Algosensors 2008) is a pair of instances that *look identical* to
//! every node within the local horizon yet have very different optima:
//!
//! * the **regular gadget** — the incidence instance of a
//!   `(d, ΔI)`-biregular structure graph — has optimum exactly `d/ΔI`
//!   (a global averaging argument);
//! * its **tree unfolding** has optimum ≥ `d − 1`.
//!
//! Interior nodes of both have equal views, so any deterministic local
//! algorithm must output the same values on them — it cannot be
//! near-optimal on both, forcing ratio ≥ (d−1)/(d/ΔI) = ΔI(1 − 1/ΔK)
//! (with ΔK = d). This example measures all the ingredients.
//!
//! Run with `cargo run --release --example lower_bound_demo`.

use maxmin_lp::core::{ratio, unfold};
use maxmin_lp::gen::lower_bound::{regular_gadget, regular_gadget_optimum, tree_gadget};
use maxmin_lp::instance::Node;
use maxmin_lp::prelude::*;

fn main() {
    let d = 3; // objective degree = ΔK
    let delta_i = 2;
    println!(
        "lower-bound family with ΔI = {delta_i}, ΔK = d = {d}: threshold ΔI(1−1/ΔK) = {:.4}\n",
        ratio::threshold(delta_i, d)
    );

    // 1. The optimum gap.
    let (regular, girth) = regular_gadget(60, d, delta_i, 6, 11);
    let opt_regular = solve_maxmin(&regular).expect("bounded").omega;
    println!(
        "regular gadget: {} agents, structure girth {girth}, optimum = {:.4} (= d/ΔI = {:.4})",
        regular.n_agents(),
        opt_regular,
        regular_gadget_optimum(d, delta_i)
    );
    let (tree, witness) = tree_gadget(d, delta_i, 4);
    let opt_tree = solve_maxmin(&tree).expect("bounded").omega;
    println!(
        "tree unfolding: {} agents, optimum = {:.4} (witness gives {:.4} ≥ d−1 = {})",
        tree.n_agents(),
        opt_tree,
        witness.utility(&tree),
        d - 1
    );
    println!(
        "optimum ratio tree/regular = {:.4}  →  ΔI(1−1/ΔK) = {:.4} as d grows\n",
        opt_tree / opt_regular,
        ratio::threshold(delta_i, d)
    );

    // 2. Indistinguishability: canonical (port-order-independent)
    // interned view ids match between interior tree agents and gadget
    // agents; the port-exact `views_equal` is stricter and generally
    // fails across generators with different port conventions.
    let depth = 4.min(girth as usize - 1);
    let mut arena = maxmin_lp::net::ViewArena::new();
    let mut it_reg = unfold::ViewInterner::new(&regular);
    let mut it_tree = unfold::ViewInterner::new(&tree);
    let id_reg = it_reg.intern_canonical(&mut arena, Node::Agent(AgentId::new(0)), depth);
    let matching_tree_agent = tree
        .agents()
        .find(|w| it_tree.intern_canonical(&mut arena, Node::Agent(*w), depth) == id_reg);
    println!(
        "a regular-gadget agent's depth-{depth} view is isomorphic to tree agent {:?}",
        matching_tree_agent
    );
    println!(
        "girth of the regular instance graph = {:?} (2× structure girth)",
        unfold::girth(&regular)
    );

    // 3. What *this paper's* algorithm does on both instances.
    println!(
        "\n{:>3} {:>18} {:>18} {:>12}",
        "R", "ratio(regular)", "ratio(tree)", "max"
    );
    for big_r in [2, 3, 4] {
        let solver = LocalSolver::new(big_r);
        let u_reg = solver.solve(&regular).solution.utility(&regular);
        let u_tree = solver.solve(&tree).solution.utility(&tree);
        let (r1, r2) = (opt_regular / u_reg, opt_tree / u_tree);
        println!(
            "{:>3} {:>18.4} {:>18.4} {:>12.4}",
            big_r,
            r1,
            r2,
            r1.max(r2)
        );
    }
    println!(
        "\nThe worse of the two ratios can approach — but by Theorem 1 never \
         beat — the threshold {:.4}; the algorithm's guarantee {:.4} (R = 4) \
         shows how close the upper bound sits to the lower bound.",
        ratio::threshold(delta_i, d),
        ratio::guarantee(delta_i, d, 4)
    );
}
