//! Mixed packing/covering LPs via max-min LPs — the application the
//! paper highlights in §1 (citing Young, FOCS 2001), including the
//! special case of solving a nonnegative system of linear equations.
//!
//! Run with `cargo run --example packing_covering`.

use maxmin_lp::core::packing::{solve_mixed, solve_nonneg_system, MixedProblem, MixedVerdict};

fn main() {
    // --- a feasible mixed system -------------------------------------
    // Capacity: x0 + x1 ≤ 2 and x1 + x2 ≤ 2; demands: x0 + x1 ≥ 1 and
    // x1 + x2 ≥ 1.
    let mut p = MixedProblem::new(3);
    p.add_packing(vec![(0, 1.0), (1, 1.0)], 2.0);
    p.add_packing(vec![(1, 1.0), (2, 1.0)], 2.0);
    p.add_covering(vec![(0, 1.0), (1, 1.0)], 1.0);
    p.add_covering(vec![(1, 1.0), (2, 1.0)], 1.0);
    println!("feasible mixed system:");
    match solve_mixed(&p, 3) {
        MixedVerdict::Feasible { x } => {
            println!("  witness x = {x:?}");
            println!("  max violation = {:.2e}", p.max_violation(&x));
        }
        other => println!("  unexpected verdict {other:?}"),
    }

    // --- an infeasible one --------------------------------------------
    // x0 ≤ 1/4 yet x0 ≥ 1.
    let mut q = MixedProblem::new(1);
    q.add_packing(vec![(0, 4.0)], 1.0);
    q.add_covering(vec![(0, 1.0)], 1.0);
    println!("\ninfeasible mixed system:");
    match solve_mixed(&q, 3) {
        MixedVerdict::Infeasible { omega_upper } => {
            println!("  certified: normalised covering optimum ≤ {omega_upper:.4} < 1");
        }
        other => println!("  unexpected verdict {other:?}"),
    }

    // --- a nonnegative linear system ----------------------------------
    //   x0 + x1 = 2
    //        x1 = 1
    println!("\nnonnegative linear system (x0 + x1 = 2, x1 = 1):");
    let rows = vec![vec![(0usize, 1.0), (1usize, 1.0)], vec![(1usize, 1.0)]];
    match solve_nonneg_system(&rows, &[2.0, 1.0], 2, 6) {
        Some((x, err)) => {
            println!("  x ≈ {x:?}");
            println!("  max relative equation error = {err:.4}");
            println!("  (the error shrinks towards 1 − 1/ratio as R grows)");
        }
        None => println!("  certified inconsistent"),
    }

    // An inconsistent system: x0 = 1 and x0 = 4.
    println!("\ninconsistent linear system (x0 = 1, x0 = 4):");
    let rows = vec![vec![(0usize, 1.0)], vec![(0usize, 1.0)]];
    match solve_nonneg_system(&rows, &[1.0, 4.0], 1, 3) {
        Some((x, err)) => println!("  unexpected solution {x:?} (err {err})"),
        None => println!("  certified inconsistent — as it should be"),
    }
}
