//! Fair bandwidth allocation — the paper's second motivating application
//! (§1): customers share ring links and the network must maximise the
//! minimum bandwidth any customer receives.
//!
//! Demonstrates the ε-vs-R trade-off of Theorem 1: the guarantee
//! `ΔI(1 − 1/ΔK)(1 + 1/(R−1))` tightens towards the unconditional
//! threshold `ΔI(1 − 1/ΔK)` as the local horizon grows.
//!
//! Run with `cargo run --release --example bandwidth_allocation`.

use maxmin_lp::core::ratio;
use maxmin_lp::gen::apps::{bandwidth_ladder, BandwidthConfig};
use maxmin_lp::prelude::*;

fn main() {
    let cfg = BandwidthConfig {
        n_customers: 36,
        window: 3,
        coef_range: (0.8, 1.25),
    };
    let inst = bandwidth_ladder(&cfg, 21);
    let stats = DegreeStats::of(&inst);
    println!(
        "fair bandwidth: {} customers, {} links, ΔI = {}, ΔK = {}",
        cfg.n_customers,
        inst.n_constraints(),
        stats.delta_i,
        stats.delta_k
    );

    let opt = solve_maxmin(&inst).expect("bounded");
    println!("exact optimum ω* = {:.6}\n", opt.omega);
    println!(
        "{:>3} {:>12} {:>10} {:>12} {:>12}",
        "R", "ω(local)", "ratio", "guarantee", "threshold"
    );
    let threshold = ratio::threshold(stats.delta_i, stats.delta_k);
    for big_r in [2, 3, 4, 6, 10] {
        let solver = LocalSolver::new(big_r);
        let out = solver.solve(&inst);
        let u = out.solution.utility(&inst);
        println!(
            "{:>3} {:>12.6} {:>10.4} {:>12.4} {:>12.4}",
            big_r,
            u,
            opt.omega / u,
            solver.guarantee(stats.delta_i, stats.delta_k),
            threshold
        );
    }

    // Show one concrete allocation: how customer 0 splits its demand
    // over the two rails, and that every link stays within capacity.
    let out = LocalSolver::new(4).solve(&inst);
    let x = &out.solution;
    println!("\nR = 4 allocation for the first four customers (upper/lower rail):");
    for j in 0..4 {
        println!(
            "  customer {j}: {:.4} + {:.4} = {:.4}",
            x.value(AgentId::new(2 * j)),
            x.value(AgentId::new(2 * j + 1)),
            x.value(AgentId::new(2 * j)) + x.value(AgentId::new(2 * j + 1)),
        );
    }
    let report = x.feasibility(&inst);
    println!(
        "worst link overload: {:.2e} (feasible: {})",
        report.max_constraint_violation,
        report.is_feasible(1e-9)
    );
}
