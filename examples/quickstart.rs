//! Quickstart: build a max-min LP, solve it locally, and certify the
//! result against the exact LP optimum.
//!
//! Run with `cargo run --example quickstart`.

use maxmin_lp::core::{ratio, safe::safe_solution};
use maxmin_lp::prelude::*;

fn main() {
    // A tiny fair-sharing program: three flows, two capacity constraints,
    // two customers.
    //
    //   maximise min( x0 + x1 , x1 + 3·x2 )
    //   s.t.     x0 + 2·x1      ≤ 1
    //                 x1 +  x2  ≤ 1
    //            x ≥ 0
    let mut b = InstanceBuilder::new();
    let x0 = b.add_agent();
    let x1 = b.add_agent();
    let x2 = b.add_agent();
    b.add_constraint(&[(x0, 1.0), (x1, 2.0)]).unwrap();
    b.add_constraint(&[(x1, 1.0), (x2, 1.0)]).unwrap();
    b.add_objective(&[(x0, 1.0), (x1, 1.0)]).unwrap();
    b.add_objective(&[(x1, 1.0), (x2, 3.0)]).unwrap();
    let inst = b.build().unwrap();

    let stats = DegreeStats::of(&inst);
    println!(
        "instance: {} agents, {} constraints, {} objectives (ΔI = {}, ΔK = {})",
        inst.n_agents(),
        inst.n_constraints(),
        inst.n_objectives(),
        stats.delta_i,
        stats.delta_k
    );

    // The paper's local algorithm at a few locality parameters. Each
    // agent decides its value after Θ(R) communication rounds, no matter
    // how large the network is.
    let opt = solve_maxmin(&inst).expect("bounded instance");
    println!("\nexact LP optimum      ω* = {:.6}", opt.omega);

    for big_r in [2, 3, 5, 8] {
        let solver = LocalSolver::new(big_r);
        let out = solver.solve(&inst);
        let utility = out.solution.utility(&inst);
        println!(
            "local solver R = {big_r}: ω = {:.6}  (ratio {:.4}, guaranteed ≤ {:.4})",
            utility,
            opt.omega / utility,
            solver.guarantee(stats.delta_i, stats.delta_k),
        );
        assert!(out.solution.is_feasible(&inst, 1e-9));
    }

    // The prior-art baseline: the safe algorithm (factor ΔI).
    let safe = safe_solution(&inst);
    println!(
        "safe baseline:       ω = {:.6}  (ratio {:.4}, guaranteed ≤ {:.4})",
        safe.utility(&inst),
        opt.omega / safe.utility(&inst),
        stats.delta_i as f64
    );

    // Theorem 1's threshold: no local algorithm can do better than this
    // ratio, and R can be chosen to get arbitrarily close to it.
    println!(
        "\nlocal approximability threshold ΔI(1 − 1/ΔK) = {:.4}",
        ratio::threshold(stats.delta_i, stats.delta_k)
    );
    let eps = 0.05;
    println!(
        "to get within ε = {eps} of it, Theorem 1 picks R = {}",
        ratio::r_for_epsilon(stats.delta_i, stats.delta_k, eps)
    );
}
