//! §1.3's dynamic-algorithm corollary in action: a local algorithm *is*
//! a dynamic algorithm with constant-time updates. We maintain the
//! solution of a large fair-allocation ring while link capacities
//! change, repairing only the horizon ball around each edit.
//!
//! Run with `cargo run --release --example dynamic_updates`.

use maxmin_lp::core::dynamic::DynamicSolver;
use maxmin_lp::core::smoothing::solve_special;
use maxmin_lp::core::SpecialForm;
use maxmin_lp::gen::special::{random_special_form, SpecialFormConfig};
use maxmin_lp::instance::ConstraintId;
use std::time::Instant;

fn main() {
    let big_r = 3;
    let inst = random_special_form(
        &SpecialFormConfig {
            n_objectives: 600,
            delta_k: 3,
            extra_constraints: 300,
            coef_range: (0.5, 2.0),
        },
        42,
    );
    let sf = SpecialForm::new(inst).unwrap();
    let n = sf.n_agents();
    println!(
        "maintaining a solution over {n} agents / {} constraints (R = {big_r})\n",
        sf.instance().n_constraints()
    );

    let t0 = Instant::now();
    let mut dynamic = DynamicSolver::new(sf.clone(), big_r, 1);
    let full_solve = t0.elapsed();
    println!("initial full solve: {full_solve:?}");
    println!(
        "initial utility: {:.5}\n",
        dynamic.run().x.utility(dynamic.special_form().instance())
    );

    // A burst of capacity changes.
    println!(
        "{:>6} {:>14} {:>12} {:>12} {:>12}",
        "edit", "constraint", "t recomputed", "x recomputed", "repair time"
    );
    let mut total_repair = std::time::Duration::ZERO;
    for step in 0..8u32 {
        let i = ConstraintId::new(step * 37 % sf.instance().n_constraints() as u32);
        let row = dynamic.special_form().instance().constraint_row(i);
        let new = [row[0].coef * 1.5, row[1].coef * 0.8];
        let t1 = Instant::now();
        let rep = dynamic.update_constraint_coefs(i, new);
        let dt = t1.elapsed();
        total_repair += dt;
        println!(
            "{:>6} {:>14} {:>12} {:>12} {:>12?}",
            step,
            format!("{i}"),
            rep.recomputed_t,
            rep.recomputed_x,
            dt
        );
    }

    // Certify the final state against a from-scratch solve.
    let reference = solve_special(dynamic.special_form(), big_r, 1);
    let max_dev = dynamic
        .run()
        .x
        .as_slice()
        .iter()
        .zip(reference.x.as_slice())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("\nafter 8 edits: max |x_dynamic − x_fresh| = {max_dev:.1e} (bit-identical)");
    println!(
        "total repair time {total_repair:?} vs one full solve {full_solve:?} — \
         the update ball is constant-size while the network is not."
    );
    assert_eq!(max_dev, 0.0);
}
