//! Offline stand-in for the slice of the `crossbeam` 0.8 API this
//! workspace uses: [`thread::scope`] with spawn-closures that receive
//! the scope (so nested spawns type-check), backed by
//! [`std::thread::scope`].
//!
//! Semantic difference from upstream: a panic in a spawned thread whose
//! handle is never joined propagates as a panic out of [`thread::scope`]
//! (std behaviour) instead of surfacing as an `Err` — callers here
//! `.expect()` the result either way.

pub mod thread {
    //! Scoped threads.

    use std::any::Any;

    /// Result of joining a scoped thread, as in `crossbeam::thread`.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope handle passed to every spawn closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread and returns its result (`Err` if it
        /// panicked).
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives this scope.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be
    /// spawned; all spawned threads are joined before this returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_threads() {
        let counter = AtomicUsize::new(0);
        let counter = &counter;
        let shards: Vec<usize> = (0..8).collect();
        thread::scope(|scope| {
            for &s in &shards {
                scope.spawn(move |_| counter.fetch_add(s, Ordering::SeqCst));
            }
        })
        .expect("scope");
        assert_eq!(counter.load(Ordering::SeqCst), 28);
    }

    #[test]
    fn handles_return_values() {
        let out = thread::scope(|scope| {
            let handles: Vec<_> = (0..4).map(|i| scope.spawn(move |_| i * i)).collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("join"))
                .collect::<Vec<_>>()
        })
        .expect("scope");
        assert_eq!(out, vec![0, 1, 4, 9]);
    }

    #[test]
    fn nested_spawn_through_scope_argument() {
        let v = thread::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 21).join().map(|x| x * 2).expect("inner"))
                .join()
                .expect("outer")
        })
        .expect("scope");
        assert_eq!(v, 42);
    }

    #[test]
    fn mutable_chunks_across_threads() {
        let mut data = vec![0u64; 100];
        thread::scope(|scope| {
            for (shard, chunk) in data.chunks_mut(30).enumerate() {
                scope.spawn(move |_| {
                    for (i, slot) in chunk.iter_mut().enumerate() {
                        *slot = (shard * 30 + i) as u64;
                    }
                });
            }
        })
        .expect("scope");
        assert!(data.iter().enumerate().all(|(i, &x)| x == i as u64));
    }
}
