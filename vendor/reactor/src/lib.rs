//! Minimal mio-style readiness reactor over Linux `epoll`.
//!
//! The crates.io registry is unreachable from the build environment, so this
//! crate vendors the tiny subset of a readiness API the serve front-end needs:
//!
//! - [`Poll`] — an `epoll` instance; register file descriptors with a
//!   [`Token`] and an [`Interest`] set, then block in [`Poll::poll`] until
//!   one of them becomes ready (or a timeout expires).
//! - [`Events`] — a reusable buffer of readiness [`Event`]s.
//! - [`Waker`] — an `eventfd`-backed handle that wakes a sleeping [`Poll`]
//!   from any thread; used for cross-thread work injection.
//!
//! Registrations are level-triggered: an fd with unread input (or writable
//! space while write interest is registered) keeps reporting ready, so event
//! loops may do bounded work per event without losing edges. No `libc` crate
//! is available either — the handful of syscalls are declared directly; the
//! Rust standard library already links the C runtime that provides them.

use std::io;
use std::os::unix::io::{AsRawFd, RawFd};
use std::time::Duration;

const EPOLLIN: u32 = 0x1;
const EPOLLOUT: u32 = 0x4;
const EPOLLERR: u32 = 0x8;
const EPOLLHUP: u32 = 0x10;
const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0x80000;

const EFD_CLOEXEC: i32 = 0x80000;
const EFD_NONBLOCK: i32 = 0x800;

const EINTR: i32 = 4;

/// Mirrors the kernel's `struct epoll_event`. On x86-64 the kernel ABI packs
/// the struct (no padding between `events` and `data`); other architectures
/// use natural alignment.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
}

fn last_errno() -> i32 {
    io::Error::last_os_error().raw_os_error().unwrap_or(0)
}

/// Opaque per-registration identifier echoed back on every [`Event`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Token(pub usize);

/// Readiness interest set for a registration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest(u32);

impl Interest {
    /// Interest in the fd becoming readable (or the peer closing).
    pub const READABLE: Interest = Interest(EPOLLIN | EPOLLRDHUP);
    /// Interest in the fd becoming writable.
    pub const WRITABLE: Interest = Interest(EPOLLOUT);
    /// No readiness interest. The registration stays; `epoll` still
    /// delivers hangup/error conditions, which it always reports.
    pub const NONE: Interest = Interest(0);

    /// Combine two interest sets (also available as `|`).
    #[must_use]
    pub fn with(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    /// True if this set includes read interest.
    pub fn is_readable(self) -> bool {
        self.0 & EPOLLIN != 0
    }

    /// True if this set includes write interest.
    pub fn is_writable(self) -> bool {
        self.0 & EPOLLOUT != 0
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        self.with(rhs)
    }
}

/// A single readiness notification.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    token: usize,
    flags: u32,
}

impl Event {
    /// The token supplied when the fd was registered.
    pub fn token(&self) -> Token {
        Token(self.token)
    }

    /// The fd has input available (or the peer shut down its write side).
    pub fn is_readable(&self) -> bool {
        self.flags & (EPOLLIN | EPOLLHUP | EPOLLRDHUP | EPOLLERR) != 0
    }

    /// The fd can accept more output.
    pub fn is_writable(&self) -> bool {
        self.flags & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0
    }

    /// The peer closed its end (hangup or read-side shutdown).
    pub fn is_closed(&self) -> bool {
        self.flags & (EPOLLHUP | EPOLLRDHUP) != 0
    }

    /// The fd is in an error state.
    pub fn is_error(&self) -> bool {
        self.flags & EPOLLERR != 0
    }
}

/// Reusable buffer that [`Poll::poll`] fills with readiness [`Event`]s.
pub struct Events {
    buf: Vec<EpollEvent>,
    len: usize,
}

impl Events {
    /// Allocate a buffer that can hold up to `cap` events per poll call.
    pub fn with_capacity(cap: usize) -> Events {
        Events {
            buf: vec![EpollEvent { events: 0, data: 0 }; cap.max(1)],
            len: 0,
        }
    }

    /// Number of events delivered by the last poll.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the last poll delivered no events (timeout or wake race).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterate over the events delivered by the last poll.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.buf[..self.len].iter().map(|raw| {
            let copied = *raw;
            Event {
                token: copied.data as usize,
                flags: copied.events,
            }
        })
    }
}

/// An `epoll` instance plus the registration API.
pub struct Poll {
    epfd: RawFd,
}

impl Poll {
    /// Create a new epoll instance (close-on-exec).
    pub fn new() -> io::Result<Poll> {
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poll { epfd })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest.0,
            data: token.0 as u64,
        };
        let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Register `source` for level-triggered readiness under `token`.
    pub fn register(
        &self,
        source: &impl AsRawFd,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, source.as_raw_fd(), token, interest)
    }

    /// Replace the interest set of an existing registration.
    pub fn reregister(
        &self,
        source: &impl AsRawFd,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, source.as_raw_fd(), token, interest)
    }

    /// Remove a registration. The fd stops producing events immediately.
    pub fn deregister(&self, source: &impl AsRawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, source.as_raw_fd(), Token(0), Interest(0))
    }

    /// Block until at least one registered fd is ready or `timeout` expires.
    ///
    /// `None` sleeps until readiness; `Some(d)` sleeps at most `d` (rounded up
    /// to a millisecond so a short positive timeout never busy-spins). Fills
    /// `events` and returns the number delivered; `Ok(0)` means timeout.
    /// `EINTR` is retried internally.
    pub fn poll(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(d) => {
                let ms = d.as_millis();
                if ms == 0 && d.as_nanos() > 0 {
                    1
                } else {
                    i32::try_from(ms).unwrap_or(i32::MAX)
                }
            }
        };
        loop {
            let rc = unsafe {
                epoll_wait(
                    self.epfd,
                    events.buf.as_mut_ptr(),
                    events.buf.len() as i32,
                    timeout_ms,
                )
            };
            if rc < 0 {
                if last_errno() == EINTR {
                    continue;
                }
                return Err(io::Error::last_os_error());
            }
            events.len = rc as usize;
            return Ok(rc as usize);
        }
    }
}

impl Drop for Poll {
    fn drop(&mut self) {
        unsafe {
            close(self.epfd);
        }
    }
}

/// Wakes a sleeping [`Poll`] from any thread via an `eventfd`.
///
/// The waker registers itself level-triggered under the supplied token; the
/// owning event loop must call [`Waker::drain`] when it sees that token, or
/// the poll keeps reporting the waker ready.
pub struct Waker {
    efd: RawFd,
}

impl Waker {
    /// Create an eventfd and register it with `poll` under `token`.
    pub fn new(poll: &Poll, token: Token) -> io::Result<Waker> {
        let efd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if efd < 0 {
            return Err(io::Error::last_os_error());
        }
        let waker = Waker { efd };
        poll.register(&waker, token, Interest::READABLE)?;
        Ok(waker)
    }

    /// Make the associated poll return. Callable from any thread; coalesces —
    /// many wakes before a drain deliver one readiness event.
    pub fn wake(&self) -> io::Result<()> {
        let one: u64 = 1;
        let rc = unsafe { write(self.efd, (&one as *const u64).cast(), 8) };
        // EAGAIN means the counter is saturated — the poll is already awake.
        if rc < 0 && io::Error::last_os_error().kind() != io::ErrorKind::WouldBlock {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Clear pending wakeups so the poll can sleep again.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        unsafe {
            // Nonblocking read; ignore the result — an empty counter is fine.
            let _ = read(self.efd, buf.as_mut_ptr(), 8);
        }
    }
}

impl AsRawFd for Waker {
    fn as_raw_fd(&self) -> RawFd {
        self.efd
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        unsafe {
            close(self.efd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn poll_times_out_when_idle() {
        let poll = Poll::new().unwrap();
        let mut events = Events::with_capacity(8);
        let start = Instant::now();
        let n = poll
            .poll(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0);
        assert!(events.is_empty());
        assert!(start.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn readable_event_fires_for_pending_data() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poll = Poll::new().unwrap();
        poll.register(&server, Token(7), Interest::READABLE)
            .unwrap();

        let mut events = Events::with_capacity(8);
        // Nothing to read yet.
        assert_eq!(
            poll.poll(&mut events, Some(Duration::from_millis(10)))
                .unwrap(),
            0
        );

        client.write_all(b"hello").unwrap();
        let n = poll
            .poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        let ev = events.iter().next().unwrap();
        assert_eq!(ev.token(), Token(7));
        assert!(ev.is_readable());

        // Level-triggered: unread data keeps the fd ready.
        let n = poll
            .poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);

        let mut buf = [0u8; 16];
        let got = (&server).read(&mut buf).unwrap();
        assert_eq!(&buf[..got], b"hello");
        assert_eq!(
            poll.poll(&mut events, Some(Duration::from_millis(10)))
                .unwrap(),
            0
        );
    }

    #[test]
    fn write_interest_toggles_via_reregister() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poll = Poll::new().unwrap();
        poll.register(&server, Token(1), Interest::READABLE)
            .unwrap();
        let mut events = Events::with_capacity(8);
        assert_eq!(
            poll.poll(&mut events, Some(Duration::from_millis(10)))
                .unwrap(),
            0
        );

        // An idle socket is immediately writable once we ask for it.
        poll.reregister(&server, Token(1), Interest::READABLE | Interest::WRITABLE)
            .unwrap();
        let n = poll
            .poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert!(events.iter().next().unwrap().is_writable());

        poll.reregister(&server, Token(1), Interest::READABLE)
            .unwrap();
        assert_eq!(
            poll.poll(&mut events, Some(Duration::from_millis(10)))
                .unwrap(),
            0
        );
    }

    #[test]
    fn peer_close_reports_readable_and_closed() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poll = Poll::new().unwrap();
        poll.register(&server, Token(3), Interest::READABLE)
            .unwrap();
        drop(client);

        let mut events = Events::with_capacity(8);
        let n = poll
            .poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        let ev = events.iter().next().unwrap();
        assert!(ev.is_readable());
        assert!(ev.is_closed());
    }

    #[test]
    fn waker_wakes_poll_from_another_thread() {
        let poll = Poll::new().unwrap();
        let waker = Arc::new(Waker::new(&poll, Token(0)).unwrap());
        let remote = Arc::clone(&waker);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            remote.wake().unwrap();
        });

        let mut events = Events::with_capacity(8);
        let n = poll
            .poll(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events.iter().next().unwrap().token(), Token(0));

        // Drain clears readiness; coalesced wakes deliver a single event.
        waker.wake().unwrap();
        waker.wake().unwrap();
        let n = poll
            .poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        waker.drain();
        assert_eq!(
            poll.poll(&mut events, Some(Duration::from_millis(10)))
                .unwrap(),
            0
        );
        handle.join().unwrap();
    }
}
