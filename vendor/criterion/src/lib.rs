//! Offline stand-in for the subset of the `criterion` 0.5 API this
//! workspace's benches use. The build environment has no access to
//! crates.io, so this crate provides the same surface —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Throughput`],
//! [`criterion_group!`] / [`criterion_main!`] — backed by a simple
//! calibrated timing loop instead of criterion's full statistics
//! pipeline.
//!
//! Reported numbers are median / min / max per-iteration wall time over
//! `sample_size` samples; with a [`Throughput`] set, elements per second
//! are derived from the median.
//!
//! **Machine-readable output.** When the `MMLP_BENCH_JSON` environment
//! variable names a file, every measurement is additionally collected
//! and [`criterion_main!`] writes them there as one JSON document of
//! named per-iteration nanosecond medians (`BENCH_*.json` in this
//! repository's perf trajectory). The real criterion writes its own
//! estimate files under `target/criterion`; this shim's JSON is the
//! offline equivalent, stable across shim internals.

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurements collected for the JSON report: `(id, median_ns,
/// min_ns, max_ns)` per benchmark, in execution order.
static COLLECTED: Mutex<Vec<(String, f64, f64, f64)>> = Mutex::new(Vec::new());

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Writes the collected measurements to the file named by
/// `MMLP_BENCH_JSON`, if set. Called by [`criterion_main!`] after all
/// groups ran; harmless no-op otherwise.
///
/// **Merging.** When the file already exists (it was written by this
/// function), entries from earlier bench binaries are preserved and
/// re-run benchmark names are replaced — so one trajectory file (e.g.
/// `BENCH_core.json`) can be assembled from several `cargo bench`
/// invocations. Delete the file first for a from-scratch report (CI
/// does).
pub fn write_json_report() {
    let Ok(path) = std::env::var("MMLP_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let collected = COLLECTED.lock().expect("bench collector");
    // (escaped name, rendered entry), earlier binaries' entries first.
    let mut entries: Vec<(String, String)> = Vec::new();
    if let Ok(prev) = std::fs::read_to_string(&path) {
        for line in prev.lines() {
            let t = line.trim();
            if let Some(rest) = t.strip_prefix("{\"name\": \"") {
                if let Some(end) = rest.find("\", ") {
                    entries.push((rest[..end].to_string(), t.trim_end_matches(',').to_string()));
                }
            }
        }
    }
    for (name, median, min, max) in collected.iter() {
        let esc = json_escape(name);
        let body = format!(
            "{{\"name\": \"{esc}\", \"median_ns\": {median}, \"min_ns\": {min}, \"max_ns\": {max}}}"
        );
        match entries.iter_mut().find(|(n, _)| *n == esc) {
            Some(entry) => entry.1 = body,
            None => entries.push((esc, body)),
        }
    }
    let mut out = String::from("{\n  \"schema\": \"mmlp-bench-json-v1\",\n  \"benchmarks\": [\n");
    for (i, (_, body)) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        out.push_str(&format!("    {body}{comma}\n"));
    }
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("MMLP_BENCH_JSON: cannot write {path}: {e}");
    }
}

/// Target wall time per measurement sample.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(10);

/// Top-level benchmark driver.
pub struct Criterion {
    /// Substring filter from the command line (`cargo bench -- <filter>`).
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes bench binaries with `--bench`; anything else that
        // is not a flag is a name filter, as with the real criterion.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
            throughput: None,
        }
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }
}

/// Benchmark identifier: a function name and/or a parameter rendering.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only id, for groups benching one function at many sizes.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Work-per-iteration hint used to derive rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iteration processes this many logical elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measurement samples (minimum 2).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the throughput hint for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id, &mut |b| f(b));
        self
    }

    /// Benchmarks a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(&id, &mut |b| f(b, input));
        self
    }

    fn run(&mut self, id: &BenchmarkId, f: &mut dyn FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id.id);
        if !self.criterion.matches(&full) {
            return;
        }
        let mut bencher = Bencher {
            samples: self.sample_size,
            measurements: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&full, self.throughput);
    }

    /// Ends the group (kept for API compatibility; reporting is eager).
    pub fn finish(self) {}
}

/// Runs and times the benchmark body.
pub struct Bencher {
    samples: usize,
    measurements: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, calibrating the batch size so one sample takes roughly
    /// 10 ms of wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET_SAMPLE_TIME || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        self.measurements.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.measurements.push(start.elapsed() / batch as u32);
        }
    }

    fn report(&self, id: &str, throughput: Option<Throughput>) {
        if self.measurements.is_empty() {
            return;
        }
        let mut sorted = self.measurements.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let (min, max) = (sorted[0], sorted[sorted.len() - 1]);
        let rate = match throughput {
            Some(Throughput::Elements(n)) if !median.is_zero() => {
                format!("  {:.3e} elem/s", n as f64 / median.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if !median.is_zero() => {
                format!("  {:.3e} B/s", n as f64 / median.as_secs_f64())
            }
            _ => String::new(),
        };
        println!("{id:<48} time: [{min:>10.2?} {median:>10.2?} {max:>10.2?}]{rate}");
        COLLECTED.lock().expect("bench collector").push((
            id.to_string(),
            median.as_nanos() as f64,
            min.as_nanos() as f64,
            max.as_nanos() as f64,
        ));
    }
}

/// Declares a group of benchmark functions, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` running the given groups, as in
/// criterion, then emits the JSON report when `MMLP_BENCH_JSON` asks
/// for one.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_json_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion { filter: None };
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut ran = false;
        group.bench_function("touch", |b| {
            ran = true;
            b.iter(|| black_box(1 + 1));
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("only-this".into()),
        };
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group.bench_function("other", |_| ran = true);
        group.finish();
        assert!(!ran);
    }

    #[test]
    fn benchmark_id_renderings() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter(640).id, "640");
        assert_eq!(BenchmarkId::from("s").id, "s");
    }

    #[test]
    fn json_report_collects_measurements() {
        let mut c = Criterion { filter: None };
        let mut group = c.benchmark_group("jsontest");
        group.sample_size(2);
        group.bench_function("noop", |b| b.iter(|| black_box(2 + 2)));
        group.finish();
        let collected = COLLECTED.lock().unwrap();
        let entry = collected
            .iter()
            .find(|(name, ..)| name == "jsontest/noop")
            .expect("measurement collected");
        assert!(entry.1 >= 0.0);

        // The escaper keeps names JSON-safe.
        assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\u000a");
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion { filter: None };
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let data = vec![1u64, 2, 3];
        let mut seen = 0;
        group.bench_with_input(BenchmarkId::from_parameter(3), &data, |b, d| {
            seen = d.len();
            b.iter(|| d.iter().sum::<u64>());
        });
        group.finish();
        assert_eq!(seen, 3);
    }
}
