//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses. The build environment has no access to crates.io, so the
//! workspace vendors a minimal, deterministic implementation with the
//! same method names and semantics (uniform ranges, Fisher–Yates
//! shuffle, seedable generators).
//!
//! [`rngs::StdRng`] here is **not** the upstream ChaCha12 generator: it
//! is SplitMix64, which is plenty for seeded test workloads. Streams are
//! stable across platforms and releases of this workspace, which is the
//! property the generator tests rely on.

use std::ops::{Range, RangeInclusive};

/// Low-level source of uniformly random 64-bit words.
pub trait RngCore {
    /// Next uniformly distributed `u64`.
    fn next_u64(&mut self) -> u64;

    /// Next uniformly distributed `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from the unit distribution by
/// [`Rng::gen`] (the shim's analogue of sampling from `Standard`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_signed_range!(i64, i32, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples from the unit distribution of `T` (e.g. `f64` in `[0,1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform draw from a (half-open or inclusive) range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0,1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a small seed, mirroring
/// `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut rng = StdRng { state: seed };
            // Discard the first output so seed 0 does not start at 0.
            let _ = rng.next_u64();
            rng
        }
    }
}

pub mod seq {
    //! Sequence helpers, mirroring `rand::seq`.

    use super::{Rng, RngCore};

    /// Shuffling and random choice on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_hit_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0..=4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not stay in order");
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = StdRng::seed_from_u64(3);
        let items = [10, 20, 30];
        assert!(Vec::<i32>::new().as_slice().choose(&mut rng).is_none());
        let mut seen = [false; 3];
        for _ in 0..100 {
            let &x = items.as_slice().choose(&mut rng).unwrap();
            seen[(x / 10 - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
