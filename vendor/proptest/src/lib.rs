//! Offline stand-in for the subset of the `proptest` 1.x API this
//! workspace uses. The build environment has no access to crates.io, so
//! this crate provides the same surface — the [`proptest!`] macro with
//! `#![proptest_config(..)]`, range and tuple [`strategy::Strategy`]s,
//! `prop_map`, `prop_assert!` / `prop_assert_eq!` and
//! [`test_runner::ProptestConfig`] — backed by a deterministic seeded
//! sampler.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! case number and seed instead of a minimised input), and sampling is
//! derandomised — the sequence of cases for a given test body is fixed
//! across runs, which keeps CI reproducible.

pub mod strategy {
    //! Value-generation strategies.

    use std::ops::{Range, RangeInclusive};

    /// Deterministic sampler handed to strategies (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a sampler from a case seed.
        pub fn from_seed(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x5851_f42d_4c95_7f2d,
            }
        }

        /// Next uniformly distributed `u64`.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// A generator of values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`, as in proptest.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.next_u64() % (span + 1)) as $t
                }
            }
        )*};
    }

    int_range_strategy!(usize, u64, u32, u16, u8);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    /// Pattern strategies: upstream proptest treats `&str` as a regex.
    /// The shim understands the one shape this workspace uses —
    /// `.{lo,hi}` (any characters, length in `[lo, hi]`) — and panics
    /// on anything else, so an unsupported pattern fails loudly at
    /// first use instead of silently sampling the wrong input space.
    impl Strategy for &str {
        type Value = String;

        fn sample(&self, rng: &mut TestRng) -> String {
            // Characters chosen to stress line-oriented parsers: words,
            // numbers, separators, newlines, some unicode.
            const ALPHABET: &[char] = &[
                'a', 'b', 'z', 'A', 'Z', '0', '1', '9', ' ', ' ', '\n', '\n', '\t', ':', '.', '-',
                '+', 'e', '#', '_', '/', 'µ', '∞',
            ];
            let (lo, hi): (usize, usize) = self
                .strip_prefix(".{")
                .and_then(|rest| rest.strip_suffix('}'))
                .and_then(|body| body.split_once(','))
                .and_then(|(lo, hi)| Some((lo.parse().ok()?, hi.parse().ok()?)))
                .unwrap_or_else(|| {
                    panic!(
                        "proptest shim: unsupported string pattern {self:?}; \
                         only `.{{lo,hi}}` is implemented"
                    )
                });
            let len = if hi > lo {
                lo + (rng.next_u64() % (hi - lo + 1) as u64) as usize
            } else {
                lo
            };
            (0..len)
                .map(|_| ALPHABET[(rng.next_u64() % ALPHABET.len() as u64) as usize])
                .collect()
        }
    }

    macro_rules! tuple_strategy {
        ($($s:ident / $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(S0 / 0);
    tuple_strategy!(S0 / 0, S1 / 1);
    tuple_strategy!(S0 / 0, S1 / 1, S2 / 2);
    tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3);
    tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4);
    tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5);
    tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5, S6 / 6);
    tuple_strategy!(
        S0 / 0,
        S1 / 1,
        S2 / 2,
        S3 / 3,
        S4 / 4,
        S5 / 5,
        S6 / 6,
        S7 / 7
    );
}

pub mod collection {
    //! Collection strategies, mirroring `proptest::collection`.

    use crate::strategy::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s of values from `element`, with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty size range");
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Runner configuration.

    /// Mirror of `proptest::test_runner::Config` for the fields used here.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases each property is checked with.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

/// Asserts a property inside [`proptest!`].
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside [`proptest!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside [`proptest!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Defines property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running `body` for every sampled case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases as u64 {
                // Stable per-test stream: test name × case index.
                let mut seed = 0xcbf2_9ce4_8422_2325u64;
                for b in stringify!($name).bytes() {
                    seed = (seed ^ b as u64).wrapping_mul(0x100_0000_01b3);
                }
                let mut rng =
                    $crate::strategy::TestRng::from_seed(seed.wrapping_add(case));
                $(
                    let $pat = $crate::strategy::Strategy::sample(&($strat), &mut rng);
                )+
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| $body),
                );
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest case {case}/{} of {} failed (seed {seed:#x})",
                        config.cases,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::TestRng;

    #[test]
    fn ranges_sample_within_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..500 {
            let x = (3usize..10).sample(&mut rng);
            assert!((3..10).contains(&x));
            let y = (2u64..=5).sample(&mut rng);
            assert!((2..=5).contains(&y));
        }
    }

    #[test]
    fn prop_map_composes() {
        let strat = (0usize..4, 10u64..20).prop_map(|(a, b)| a as u64 + b);
        let mut rng = TestRng::from_seed(2);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!((10..24).contains(&v));
        }
    }

    #[test]
    fn string_pattern_samples_in_length_bounds() {
        let mut rng = TestRng::from_seed(11);
        for _ in 0..50 {
            let s = ".{2,9}".sample(&mut rng);
            assert!((2..=9).contains(&s.chars().count()), "{s:?}");
        }
    }

    #[test]
    #[should_panic(expected = "unsupported string pattern")]
    fn unsupported_string_pattern_panics() {
        let mut rng = TestRng::from_seed(12);
        let _ = "[a-z]{1,8}".sample(&mut rng);
    }

    #[test]
    fn sampling_is_deterministic() {
        let a: Vec<usize> = {
            let mut rng = TestRng::from_seed(7);
            (0..10).map(|_| (0usize..1000).sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = TestRng::from_seed(7);
            (0..10).map(|_| (0usize..1000).sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: bindings, tuple patterns and assertions.
        #[test]
        fn macro_binds_patterns((a, b) in (0usize..5, 5usize..9), c in 1u64..4) {
            prop_assert!(a < 5 && (5..9).contains(&b));
            prop_assert!((1..4).contains(&c));
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(b, a);
        }
    }
}
