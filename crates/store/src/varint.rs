//! LEB128 variable-length integers, the packing primitive of the
//! binary codec and the segment format.
//!
//! Small values dominate both uses — agent ids in sparse rows and
//! section/row lengths — so a byte-per-seven-bits encoding cuts the
//! fixed-width cost by 4–8× on realistic instances while staying
//! trivially portable (no endianness, no alignment).

/// Appends `v` to `out` in unsigned LEB128.
pub fn write_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads one LEB128 integer from `buf` starting at `*pos`, advancing
/// `*pos` past it. `None` on truncation or on an encoding longer than
/// 10 bytes (which cannot be a canonical `u64`).
pub fn read_u64(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        // The 10th byte may only carry the top bit of a u64.
        if shift == 63 && byte > 1 {
            return None;
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_across_the_range() {
        let cases = [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            (1 << 53) + 1,
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut buf = Vec::new();
        for &v in &cases {
            write_u64(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &cases {
            assert_eq!(read_u64(&buf, &mut pos), Some(v));
        }
        assert_eq!(pos, buf.len(), "no trailing bytes");
    }

    #[test]
    fn single_byte_for_small_values() {
        for v in 0u64..128 {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            assert_eq!(buf, vec![v as u8]);
        }
    }

    #[test]
    fn rejects_truncation_and_overlong() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert_eq!(read_u64(&buf[..cut], &mut pos), None, "cut at {cut}");
        }
        // 11 continuation bytes can never encode a u64.
        let overlong = vec![0x80u8; 10];
        let mut pos = 0;
        assert_eq!(read_u64(&overlong, &mut pos), None);
        // A 10th byte with more than the top bit set overflows.
        let mut overflow = vec![0xffu8; 9];
        overflow.push(0x02);
        let mut pos = 0;
        assert_eq!(read_u64(&overflow, &mut pos), None);
    }
}
