//! Segment-file framing: the append-only on-disk record format of one
//! shard, and the scanner that rebuilds an index from it.
//!
//! ```text
//! segment  magic "MMLPSEG1" · version u16 · shard u16 · reserved u32      (16 bytes)
//! record   kind u8 · payload_len u32 · fnv1a64_words(payload) u64 · payload   (13-byte header)
//! ```
//!
//! Two record kinds exist: an **instance** record (content hash + the
//! binary-codec blob) and a **result** record (a [`ResultKey`] + an
//! opaque UTF-8 reply body). Records are only ever appended; a key
//! written twice is superseded by its later record (**last wins**),
//! and `gc` reclaims the space.
//!
//! The scanner distinguishes two kinds of damage:
//!
//! * **Framing damage** — a header that cannot be read (truncated tail,
//!   impossible kind byte, declared length running past EOF). Everything
//!   from the damaged offset on is unusable, so recovery *truncates*
//!   there. This is exactly what a crash mid-append leaves behind.
//! * **Payload damage** — intact framing but a checksum mismatch (bit
//!   rot, torn sector inside a record). The record is *skipped* and
//!   scanning continues; `gc` drops it physically.

use mmlp_instance::hash::fnv1a64_words;

/// Magic bytes opening every segment file.
pub const SEG_MAGIC: [u8; 8] = *b"MMLPSEG1";
/// Segment format version.
pub const SEG_VERSION: u16 = 1;
/// Size of the fixed segment header.
pub const SEG_HEADER_LEN: usize = 16;
/// Size of the fixed per-record header.
pub const REC_HEADER_LEN: usize = 13;

/// Record kind byte: an instance blob.
pub const KIND_INSTANCE: u8 = 1;
/// Record kind byte: a solved-result body.
pub const KIND_RESULT: u8 = 2;

/// The identity of one persisted result: everything that determines a
/// deterministic reply body. `op` is an opaque namespace byte — the
/// solver service uses 1–4 (`SOLVE`/`OPTIMUM`/`SAFE`/`INFO`), the lab
/// spiller 16–19 (one per `SolverKind`) — so producers never collide.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResultKey {
    /// Canonical content hash of the instance.
    pub instance: u64,
    /// Operation namespace byte.
    pub op: u8,
    /// Locality parameter (0 where irrelevant).
    pub big_r: u32,
    /// Solver thread count (0/1 where irrelevant).
    pub threads: u32,
}

/// One decoded record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Record {
    /// An instance blob keyed by its canonical content hash.
    Instance {
        /// `mmlp_instance::hash::instance_hash` of the blob's content.
        hash: u64,
        /// Binary-codec bytes ([`crate::codec`]).
        blob: Vec<u8>,
    },
    /// A solved-result body.
    Result {
        /// The result's identity.
        key: ResultKey,
        /// Opaque UTF-8 reply body.
        body: Vec<u8>,
    },
}

impl Record {
    /// The record's kind byte.
    pub fn kind(&self) -> u8 {
        match self {
            Record::Instance { .. } => KIND_INSTANCE,
            Record::Result { .. } => KIND_RESULT,
        }
    }

    /// Serialises the payload (everything after the record header).
    pub fn encode_payload(&self) -> Vec<u8> {
        match self {
            Record::Instance { hash, blob } => {
                let mut p = Vec::with_capacity(8 + blob.len());
                p.extend_from_slice(&hash.to_le_bytes());
                p.extend_from_slice(blob);
                p
            }
            Record::Result { key, body } => {
                let mut p = Vec::with_capacity(17 + body.len());
                p.extend_from_slice(&key.instance.to_le_bytes());
                p.push(key.op);
                p.extend_from_slice(&key.big_r.to_le_bytes());
                p.extend_from_slice(&key.threads.to_le_bytes());
                p.extend_from_slice(body);
                p
            }
        }
    }

    /// Frames the record for appending: header + payload. Errors on a
    /// payload too large for the u32 length field (writing it would
    /// corrupt the segment: the declared length would wrap and the
    /// next scan would truncate everything after it).
    pub fn encode(&self) -> std::io::Result<Vec<u8>> {
        let payload = self.encode_payload();
        if payload.len() > (u32::MAX as usize) - REC_HEADER_LEN {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "record payload of {} bytes exceeds the segment format's u32 length field",
                    payload.len()
                ),
            ));
        }
        let mut out = Vec::with_capacity(REC_HEADER_LEN + payload.len());
        out.push(self.kind());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&fnv1a64_words(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        Ok(out)
    }

    /// Parses a checksum-verified payload back into a record.
    pub fn decode_payload(kind: u8, payload: &[u8]) -> Option<Record> {
        match kind {
            KIND_INSTANCE => {
                if payload.len() < 8 {
                    return None;
                }
                Some(Record::Instance {
                    hash: u64::from_le_bytes(payload[..8].try_into().ok()?),
                    blob: payload[8..].to_vec(),
                })
            }
            KIND_RESULT => {
                if payload.len() < 17 {
                    return None;
                }
                Some(Record::Result {
                    key: ResultKey {
                        instance: u64::from_le_bytes(payload[..8].try_into().ok()?),
                        op: payload[8],
                        big_r: u32::from_le_bytes(payload[9..13].try_into().ok()?),
                        threads: u32::from_le_bytes(payload[13..17].try_into().ok()?),
                    },
                    body: payload[17..].to_vec(),
                })
            }
            _ => None,
        }
    }
}

/// The 16-byte header opening a shard's segment file.
pub fn segment_header(shard: u16) -> [u8; SEG_HEADER_LEN] {
    let mut h = [0u8; SEG_HEADER_LEN];
    h[..8].copy_from_slice(&SEG_MAGIC);
    h[8..10].copy_from_slice(&SEG_VERSION.to_le_bytes());
    h[10..12].copy_from_slice(&shard.to_le_bytes());
    h
}

/// One scanned record with its position in the segment.
#[derive(Clone, Debug)]
pub struct ScannedRecord {
    /// Byte offset of the record header within the segment file.
    pub offset: u64,
    /// Total framed length (header + payload).
    pub len: u32,
    /// The decoded record.
    pub record: Record,
}

/// Outcome of scanning one segment buffer.
#[derive(Clone, Debug, Default)]
pub struct ScanReport {
    /// Offset at which framing damage was found; everything from here
    /// on must be truncated. `None` when the segment scanned clean.
    pub torn_at: Option<u64>,
    /// Offsets of records dropped for payload damage (bad checksum or
    /// an unparseable checksummed payload).
    pub corrupt_at: Vec<u64>,
}

/// Scans a full segment buffer (header included). Returns the live
/// records plus the damage report. A missing or damaged *segment
/// header* reads as torn at offset 0 (the whole file is rewritten on
/// the next append).
pub fn scan_segment(buf: &[u8]) -> (Vec<ScannedRecord>, ScanReport) {
    let mut records = Vec::new();
    let mut report = ScanReport::default();
    if buf.len() < SEG_HEADER_LEN
        || buf[..8] != SEG_MAGIC
        || u16::from_le_bytes([buf[8], buf[9]]) != SEG_VERSION
    {
        report.torn_at = Some(0);
        return (records, report);
    }
    let mut pos = SEG_HEADER_LEN;
    while pos < buf.len() {
        let rest = &buf[pos..];
        if rest.len() < REC_HEADER_LEN {
            report.torn_at = Some(pos as u64);
            break;
        }
        let kind = rest[0];
        if kind != KIND_INSTANCE && kind != KIND_RESULT {
            report.torn_at = Some(pos as u64);
            break;
        }
        let len = u32::from_le_bytes(rest[1..5].try_into().expect("4 bytes")) as usize;
        if len > (u32::MAX as usize) - REC_HEADER_LEN {
            // A length the writer could never have framed: damage.
            report.torn_at = Some(pos as u64);
            break;
        }
        let Some(payload) = rest.get(REC_HEADER_LEN..REC_HEADER_LEN + len) else {
            report.torn_at = Some(pos as u64);
            break;
        };
        let want = u64::from_le_bytes(rest[5..13].try_into().expect("8 bytes"));
        let framed_len = (REC_HEADER_LEN + len) as u32;
        if fnv1a64_words(payload) != want {
            report.corrupt_at.push(pos as u64);
        } else {
            match Record::decode_payload(kind, payload) {
                Some(record) => records.push(ScannedRecord {
                    offset: pos as u64,
                    len: framed_len,
                    record,
                }),
                None => report.corrupt_at.push(pos as u64),
            }
        }
        pos += framed_len as usize;
    }
    (records, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<Record> {
        vec![
            Record::Instance {
                hash: 0xdead_beef_0011_2233,
                blob: vec![1, 2, 3, 4],
            },
            Record::Result {
                key: ResultKey {
                    instance: 0xdead_beef_0011_2233,
                    op: 1,
                    big_r: 3,
                    threads: 2,
                },
                body: b"utility 0.5\n".to_vec(),
            },
        ]
    }

    fn segment_with(records: &[Record]) -> Vec<u8> {
        let mut buf = segment_header(7).to_vec();
        for r in records {
            buf.extend_from_slice(&r.encode().unwrap());
        }
        buf
    }

    #[test]
    fn encode_scan_round_trips() {
        let recs = sample_records();
        let buf = segment_with(&recs);
        let (scanned, report) = scan_segment(&buf);
        assert!(report.torn_at.is_none());
        assert!(report.corrupt_at.is_empty());
        assert_eq!(
            scanned.iter().map(|s| s.record.clone()).collect::<Vec<_>>(),
            recs
        );
        // Offsets tile the file exactly.
        assert_eq!(scanned[0].offset as usize, SEG_HEADER_LEN);
        assert_eq!(
            scanned[1].offset,
            scanned[0].offset + u64::from(scanned[0].len)
        );
        assert_eq!(
            scanned[1].offset + u64::from(scanned[1].len),
            buf.len() as u64
        );
    }

    #[test]
    fn torn_tail_is_reported_at_the_record_boundary() {
        let recs = sample_records();
        let buf = segment_with(&recs);
        let second_start = {
            let (scanned, _) = scan_segment(&buf);
            scanned[1].offset as usize
        };
        // Cut anywhere inside the second record: the first survives and
        // the tear is reported exactly at the second record's start.
        for cut in second_start + 1..buf.len() {
            let (scanned, report) = scan_segment(&buf[..cut]);
            assert_eq!(scanned.len(), 1, "cut at {cut}");
            assert_eq!(report.torn_at, Some(second_start as u64), "cut at {cut}");
        }
    }

    #[test]
    fn checksum_damage_skips_only_that_record() {
        let recs = sample_records();
        let mut buf = segment_with(&recs);
        // Flip a byte inside the first record's payload.
        let victim = SEG_HEADER_LEN + REC_HEADER_LEN + 2;
        buf[victim] ^= 0xff;
        let (scanned, report) = scan_segment(&buf);
        assert_eq!(scanned.len(), 1);
        assert_eq!(scanned[0].record, recs[1], "second record survives");
        assert_eq!(report.corrupt_at, vec![SEG_HEADER_LEN as u64]);
        assert!(report.torn_at.is_none());
    }

    #[test]
    fn bad_segment_header_is_torn_at_zero() {
        let (scanned, report) = scan_segment(b"garbage");
        assert!(scanned.is_empty());
        assert_eq!(report.torn_at, Some(0));
        let mut buf = segment_with(&sample_records());
        buf[0] ^= 1;
        let (scanned, report) = scan_segment(&buf);
        assert!(scanned.is_empty());
        assert_eq!(report.torn_at, Some(0));
    }

    #[test]
    fn impossible_kind_byte_truncates_from_there() {
        let recs = sample_records();
        let mut buf = segment_with(&recs);
        let second_start = SEG_HEADER_LEN + REC_HEADER_LEN + recs[0].encode_payload().len();
        buf[second_start] = 0x77; // not a valid kind
        let (scanned, report) = scan_segment(&buf);
        assert_eq!(scanned.len(), 1);
        assert_eq!(report.torn_at, Some(second_start as u64));
    }

    #[test]
    fn empty_segment_scans_clean() {
        let buf = segment_header(0).to_vec();
        let (scanned, report) = scan_segment(&buf);
        assert!(scanned.is_empty());
        assert!(report.torn_at.is_none());
    }
}
