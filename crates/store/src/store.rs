//! The sharded, content-addressed, append-only on-disk store.
//!
//! A store directory holds [`N_SHARDS`] segment files
//! (`shard-00.seg` … `shard-15.seg`); a record lands in the shard
//! named by the low bits of its **instance hash**, so an instance and
//! all of its solved results share a shard. The full index is
//! rebuilt by scanning the segments at [`Store::open`] — there is no
//! separate index file to keep consistent, which is what makes the
//! crash story simple:
//!
//! * appends are a single `write_all` followed by (configurable)
//!   `fsync`; a crash mid-append leaves a **torn tail** that the next
//!   open truncates away ([`crate::segment::scan_segment`]);
//! * payload corruption (checksum mismatch) drops only the damaged
//!   record from the index;
//! * a key appearing twice resolves **last wins**;
//! * [`Store::gc`] rewrites each shard with only its live records via
//!   temp-file + `fsync` + atomic `rename`, reclaiming superseded and
//!   corrupt space;
//! * [`Store::verify`] re-scans every segment from disk and reports.

use crate::codec;
use crate::segment::{
    scan_segment, segment_header, Record, ResultKey, ScannedRecord, SEG_HEADER_LEN,
};
use mmlp_instance::hash::{hash_hex, instance_hash};
use mmlp_instance::Instance;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Number of shard segment files per store directory.
pub const N_SHARDS: usize = 16;

/// Store configuration.
#[derive(Clone, Copy, Debug)]
pub struct StoreConfig {
    /// `fsync` after every append (durability) — disable only for
    /// bulk loads whose source of truth is elsewhere.
    pub fsync: bool,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig { fsync: true }
    }
}

/// What one [`Store::open`] found and repaired.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpenReport {
    /// Live instance records indexed.
    pub instances: usize,
    /// Live result records indexed.
    pub results: usize,
    /// Records superseded by a later record for the same key.
    pub superseded: usize,
    /// Records dropped for payload corruption (checksum mismatch).
    pub corrupt: usize,
    /// Torn-tail bytes truncated away across all shards.
    pub torn_bytes: u64,
}

impl OpenReport {
    /// One-line `key=value` summary — the body the serve layer writes
    /// into the observability event journal at mount time.
    pub fn summary_line(&self) -> String {
        format!(
            "store open: instances={} results={} superseded={} corrupt={} torn_bytes={}",
            self.instances, self.results, self.superseded, self.corrupt, self.torn_bytes
        )
    }
}

/// What one [`Store::gc`] reclaimed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Live records rewritten into the compacted segments.
    pub records_kept: usize,
    /// Bytes reclaimed across all shards.
    pub bytes_reclaimed: u64,
}

/// Result of a full checksum sweep ([`Store::verify`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Segment files swept.
    pub segments: usize,
    /// Records whose checksums verified.
    pub records: usize,
    /// Records that are current for their key.
    pub live: usize,
    /// Records shadowed by a later record for the same key.
    pub superseded: usize,
    /// Records failing their checksum.
    pub corrupt: usize,
    /// Shards with framing damage (torn tail / bad header).
    pub torn_segments: usize,
    /// Total segment bytes on disk.
    pub bytes: u64,
}

impl VerifyReport {
    /// Whether the sweep found no damage at all.
    pub fn clean(&self) -> bool {
        self.corrupt == 0 && self.torn_segments == 0
    }

    /// Renders the report as `key value` lines (the shape CI uploads).
    pub fn render(&self) -> String {
        format!(
            "segments {}\nrecords {}\nlive {}\nsuperseded {}\ncorrupt {}\ntorn_segments {}\nbytes {}\nclean {}\n",
            self.segments,
            self.records,
            self.live,
            self.superseded,
            self.corrupt,
            self.torn_segments,
            self.bytes,
            self.clean()
        )
    }

    /// One-line `key=value` summary for the observability event
    /// journal (`maxmin-lp store verify --journal`).
    pub fn summary_line(&self) -> String {
        format!(
            "store verify: segments={} records={} live={} corrupt={} torn_segments={} clean={}",
            self.segments,
            self.records,
            self.live,
            self.corrupt,
            self.torn_segments,
            self.clean()
        )
    }
}

/// Index key: either an instance or a result record.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Key {
    Instance(u64),
    Result(ResultKey),
}

impl Key {
    fn of(record: &Record) -> (Key, u64) {
        match record {
            Record::Instance { hash, .. } => (Key::Instance(*hash), *hash),
            Record::Result { key, .. } => (Key::Result(*key), key.instance),
        }
    }
}

/// Where a live record lives on disk.
#[derive(Clone, Copy, Debug)]
struct Loc {
    shard: u8,
    offset: u64,
    len: u32,
}

struct Shard {
    file: File,
    len: u64,
}

struct Inner {
    shards: Vec<Shard>,
    index: HashMap<Key, Loc>,
}

/// A persistent content-addressed store, safe to share across threads.
pub struct Store {
    dir: PathBuf,
    fsync: bool,
    inner: Mutex<Inner>,
}

/// The shard a given instance hash belongs to.
pub fn shard_of(instance_hash: u64) -> u8 {
    (instance_hash & (N_SHARDS as u64 - 1)) as u8
}

fn shard_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard:02}.seg"))
}

fn io_err(kind: std::io::ErrorKind, msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(kind, msg.into())
}

impl Store {
    /// Opens (or creates) a store with default configuration.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<(Store, OpenReport)> {
        Store::open_with(dir, StoreConfig::default())
    }

    /// Opens (or creates) the store at `dir`: scans every shard,
    /// truncates torn tails, drops corrupt records, and rebuilds the
    /// in-memory index (last record per key wins).
    pub fn open_with(
        dir: impl Into<PathBuf>,
        cfg: StoreConfig,
    ) -> std::io::Result<(Store, OpenReport)> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut shards = Vec::with_capacity(N_SHARDS);
        let mut index: HashMap<Key, Loc> = HashMap::new();
        let mut report = OpenReport::default();

        for s in 0..N_SHARDS {
            let path = shard_path(&dir, s);
            let mut file = OpenOptions::new()
                .create(true)
                .append(true)
                .read(true)
                .open(&path)?;
            let mut buf = Vec::new();
            file.seek(SeekFrom::Start(0))?;
            file.read_to_end(&mut buf)?;

            let mut len = buf.len() as u64;
            if buf.is_empty() {
                // Fresh shard: write the header now so every later
                // append is a pure record write.
                file.write_all(&segment_header(s as u16))?;
                if cfg.fsync {
                    file.sync_data()?;
                }
                len = SEG_HEADER_LEN as u64;
            } else {
                let (records, scan) = scan_segment(&buf);
                if let Some(torn_at) = scan.torn_at {
                    // Repair: drop the unusable tail. A damaged segment
                    // header (torn_at == 0) loses the whole shard; the
                    // header is rewritten so the shard stays usable.
                    report.torn_bytes += len - torn_at;
                    file.set_len(torn_at)?;
                    len = torn_at;
                    if len < SEG_HEADER_LEN as u64 {
                        file.set_len(0)?;
                        file.write_all(&segment_header(s as u16))?;
                        len = SEG_HEADER_LEN as u64;
                    }
                    if cfg.fsync {
                        file.sync_data()?;
                    }
                }
                report.corrupt += scan.corrupt_at.len();
                for ScannedRecord {
                    offset,
                    len: rec_len,
                    record,
                } in records
                {
                    let (key, _) = Key::of(&record);
                    let loc = Loc {
                        shard: s as u8,
                        offset,
                        len: rec_len,
                    };
                    if index.insert(key, loc).is_some() {
                        report.superseded += 1;
                    }
                }
            }
            shards.push(Shard { file, len });
        }

        for key in index.keys() {
            match key {
                Key::Instance(_) => report.instances += 1,
                Key::Result(_) => report.results += 1,
            }
        }
        Ok((
            Store {
                dir,
                fsync: cfg.fsync,
                inner: Mutex::new(Inner { shards, index }),
            },
            report,
        ))
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// `(instances, results)` currently live in the index.
    pub fn counts(&self) -> (usize, usize) {
        let inner = self.inner.lock().expect("store lock");
        let mut n = (0, 0);
        for key in inner.index.keys() {
            match key {
                Key::Instance(_) => n.0 += 1,
                Key::Result(_) => n.1 += 1,
            }
        }
        n
    }

    /// Content hashes of all live instance records, ascending.
    pub fn instance_hashes(&self) -> Vec<u64> {
        self.instance_records()
            .into_iter()
            .map(|(h, _)| h)
            .collect()
    }

    /// `(content hash, framed on-disk record length)` of all live
    /// instance records, ascending by hash. The length comes straight
    /// from the index — callers sizing caches by bytes (the server's
    /// warm start) get it without decoding anything.
    pub fn instance_records(&self) -> Vec<(u64, u32)> {
        let inner = self.inner.lock().expect("store lock");
        let mut v: Vec<(u64, u32)> = inner
            .index
            .iter()
            .filter_map(|(k, loc)| match k {
                Key::Instance(h) => Some((*h, loc.len)),
                Key::Result(_) => None,
            })
            .collect();
        v.sort_unstable();
        v
    }

    /// Keys of all live result records, in stable order.
    pub fn result_keys(&self) -> Vec<ResultKey> {
        self.result_records().into_iter().map(|(k, _)| k).collect()
    }

    /// `(key, framed on-disk record length)` of all live result
    /// records, in stable key order — read straight off the index, no
    /// record I/O.
    pub fn result_records(&self) -> Vec<(ResultKey, u32)> {
        let inner = self.inner.lock().expect("store lock");
        let mut v: Vec<(ResultKey, u32)> = inner
            .index
            .iter()
            .filter_map(|(k, loc)| match k {
                Key::Result(r) => Some((*r, loc.len)),
                Key::Instance(_) => None,
            })
            .collect();
        v.sort_unstable();
        v
    }

    fn append(&self, inner: &mut Inner, record: &Record) -> std::io::Result<()> {
        let (key, instance_hash) = Key::of(record);
        let shard_id = shard_of(instance_hash);
        let framed = record.encode()?;
        let shard = &mut inner.shards[shard_id as usize];
        let offset = shard.len;
        shard.file.write_all(&framed)?;
        if self.fsync {
            shard.file.sync_data()?;
        }
        shard.len += framed.len() as u64;
        inner.index.insert(
            key,
            Loc {
                shard: shard_id,
                offset,
                len: framed.len() as u32,
            },
        );
        Ok(())
    }

    fn read_record(&self, inner: &mut Inner, loc: Loc) -> std::io::Result<Record> {
        let shard = &mut inner.shards[loc.shard as usize];
        let mut buf = vec![0u8; loc.len as usize];
        shard.file.seek(SeekFrom::Start(loc.offset))?;
        shard.file.read_exact(&mut buf)?;
        // Re-scan the single framed record (header + checksum verify).
        let mut seg = segment_header(u16::from(loc.shard)).to_vec();
        seg.extend_from_slice(&buf);
        let (mut records, report) = scan_segment(&seg);
        if records.len() != 1 || report.torn_at.is_some() || !report.corrupt_at.is_empty() {
            return Err(io_err(
                std::io::ErrorKind::InvalidData,
                format!(
                    "record at shard {} offset {} failed verification on read",
                    loc.shard, loc.offset
                ),
            ));
        }
        Ok(records.pop().expect("one record").record)
    }

    /// Persists an instance under its canonical content hash; returns
    /// the hash. A hash already present is not rewritten (contents are
    /// immutable under content addressing).
    pub fn put_instance(&self, inst: &Instance) -> std::io::Result<u64> {
        let hash = instance_hash(inst);
        let mut inner = self.inner.lock().expect("store lock");
        if inner.index.contains_key(&Key::Instance(hash)) {
            return Ok(hash);
        }
        let record = Record::Instance {
            hash,
            blob: codec::encode_instance(inst),
        };
        self.append(&mut inner, &record)?;
        Ok(hash)
    }

    /// Fetches and decodes an instance by content hash.
    pub fn get_instance(&self, hash: u64) -> std::io::Result<Option<Instance>> {
        let mut inner = self.inner.lock().expect("store lock");
        let Some(&loc) = inner.index.get(&Key::Instance(hash)) else {
            return Ok(None);
        };
        match self.read_record(&mut inner, loc)? {
            Record::Instance { blob, .. } => {
                let inst = codec::decode_instance(&blob).map_err(|e| {
                    io_err(
                        std::io::ErrorKind::InvalidData,
                        format!("instance {}: {e}", hash_hex(hash)),
                    )
                })?;
                Ok(Some(inst))
            }
            Record::Result { .. } => Err(io_err(
                std::io::ErrorKind::InvalidData,
                "index pointed an instance key at a result record",
            )),
        }
    }

    /// Persists a solved-result body under its key. A key already
    /// present is not rewritten (results are deterministic per key).
    pub fn put_result(&self, key: ResultKey, body: &str) -> std::io::Result<()> {
        let mut inner = self.inner.lock().expect("store lock");
        if inner.index.contains_key(&Key::Result(key)) {
            return Ok(());
        }
        let record = Record::Result {
            key,
            body: body.as_bytes().to_vec(),
        };
        self.append(&mut inner, &record)
    }

    /// Fetches a solved-result body by key.
    pub fn get_result(&self, key: &ResultKey) -> std::io::Result<Option<String>> {
        let mut inner = self.inner.lock().expect("store lock");
        let Some(&loc) = inner.index.get(&Key::Result(*key)) else {
            return Ok(None);
        };
        match self.read_record(&mut inner, loc)? {
            Record::Result { body, .. } => String::from_utf8(body)
                .map(Some)
                .map_err(|_| io_err(std::io::ErrorKind::InvalidData, "non-UTF-8 result body")),
            Record::Instance { .. } => Err(io_err(
                std::io::ErrorKind::InvalidData,
                "index pointed a result key at an instance record",
            )),
        }
    }

    /// Rewrites every shard with only its live records (temp file,
    /// `fsync`, atomic rename), dropping superseded and corrupt space.
    pub fn gc(&self) -> std::io::Result<GcReport> {
        let mut inner = self.inner.lock().expect("store lock");
        let mut report = GcReport::default();
        for s in 0..N_SHARDS {
            // Live records of this shard, in current file order.
            let mut live: Vec<(Key, Loc)> = inner
                .index
                .iter()
                .filter(|(_, loc)| loc.shard as usize == s)
                .map(|(k, l)| (*k, *l))
                .collect();
            live.sort_by_key(|(_, l)| l.offset);

            let old_len = inner.shards[s].len;
            let tmp_path =
                shard_path(&self.dir, s).with_extension(format!("tmp.{}", std::process::id()));
            let mut tmp = File::create(&tmp_path)?;
            tmp.write_all(&segment_header(s as u16))?;
            let mut new_len = SEG_HEADER_LEN as u64;
            let mut moved: Vec<(Key, Loc)> = Vec::with_capacity(live.len());
            for (key, loc) in live {
                let record = self.read_record(&mut inner, loc)?;
                let framed = record.encode()?;
                tmp.write_all(&framed)?;
                moved.push((
                    key,
                    Loc {
                        shard: s as u8,
                        offset: new_len,
                        len: framed.len() as u32,
                    },
                ));
                new_len += framed.len() as u64;
            }
            tmp.sync_data()?;
            drop(tmp);
            std::fs::rename(&tmp_path, shard_path(&self.dir, s))?;
            let file = OpenOptions::new()
                .append(true)
                .read(true)
                .open(shard_path(&self.dir, s))?;
            inner.shards[s] = Shard { file, len: new_len };
            report.records_kept += moved.len();
            for (key, loc) in moved {
                inner.index.insert(key, loc);
            }
            report.bytes_reclaimed += old_len.saturating_sub(new_len);
        }
        Ok(report)
    }

    /// Full checksum sweep: re-reads every segment from disk and
    /// verifies every record, without touching the live index or the
    /// files.
    pub fn verify(&self) -> std::io::Result<VerifyReport> {
        // Serialise with writers so offsets and files are stable.
        let _inner = self.inner.lock().expect("store lock");
        let mut report = VerifyReport::default();
        let mut seen_keys: std::collections::HashSet<Key> = std::collections::HashSet::new();
        for s in 0..N_SHARDS {
            let buf = std::fs::read(shard_path(&self.dir, s))?;
            report.segments += 1;
            report.bytes += buf.len() as u64;
            let (records, scan) = scan_segment(&buf);
            if scan.torn_at.is_some() {
                report.torn_segments += 1;
            }
            report.corrupt += scan.corrupt_at.len();
            for r in &records {
                report.records += 1;
                let (key, _) = Key::of(&r.record);
                if !seen_keys.insert(key) {
                    report.superseded += 1;
                }
            }
        }
        report.live = seen_keys.len();
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::{KIND_RESULT, REC_HEADER_LEN};
    use mmlp_instance::textfmt;
    use mmlp_instance::InstanceBuilder;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mmlp-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample(coef: f64) -> Instance {
        let mut b = InstanceBuilder::new();
        let v0 = b.add_agent();
        let v1 = b.add_agent();
        b.add_constraint(&[(v0, coef), (v1, 1.0)]).unwrap();
        b.add_objective(&[(v0, 1.0)]).unwrap();
        b.add_objective(&[(v1, 1.0)]).unwrap();
        b.build().unwrap()
    }

    fn rkey(instance: u64, op: u8) -> ResultKey {
        ResultKey {
            instance,
            op,
            big_r: 3,
            threads: 1,
        }
    }

    #[test]
    fn put_get_survives_reopen() {
        let dir = temp_dir("reopen");
        let inst = sample(0.5);
        let canonical = textfmt::write_instance(&inst);
        let hash;
        {
            let (store, report) = Store::open(&dir).unwrap();
            assert_eq!(report, OpenReport::default());
            hash = store.put_instance(&inst).unwrap();
            store.put_result(rkey(hash, 1), "utility 0.25\n").unwrap();
            assert_eq!(store.counts(), (1, 1));
            // Idempotent: re-putting does not grow the store.
            assert_eq!(store.put_instance(&inst).unwrap(), hash);
            store.put_result(rkey(hash, 1), "utility 0.25\n").unwrap();
            assert_eq!(store.counts(), (1, 1));
        }
        let (store, report) = Store::open(&dir).unwrap();
        assert_eq!(report.instances, 1);
        assert_eq!(report.results, 1);
        assert_eq!(report.superseded, 0);
        let back = store.get_instance(hash).unwrap().expect("instance");
        assert_eq!(textfmt::write_instance(&back), canonical);
        assert_eq!(
            store.get_result(&rkey(hash, 1)).unwrap().as_deref(),
            Some("utility 0.25\n")
        );
        assert_eq!(store.get_result(&rkey(hash, 2)).unwrap(), None);
        assert!(store.get_instance(hash ^ 1).unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shards_spread_by_hash_low_bits() {
        let dir = temp_dir("shards");
        let (store, _) = Store::open(&dir).unwrap();
        let mut shards_used = std::collections::HashSet::new();
        for i in 0..24 {
            let h = store.put_instance(&sample(0.25 + i as f64)).unwrap();
            shards_used.insert(shard_of(h));
        }
        assert!(shards_used.len() > 1, "hashes spread across shards");
        // Results land in their instance's shard.
        let hashes = store.instance_hashes();
        assert_eq!(hashes.len(), 24);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = temp_dir("torn");
        let inst = sample(0.5);
        let hash;
        {
            let (store, _) = Store::open(&dir).unwrap();
            hash = store.put_instance(&inst).unwrap();
            store.put_result(rkey(hash, 1), "body\n").unwrap();
        }
        // Simulate a crash mid-append: half a record at the tail.
        let path = shard_path(&dir, shard_of(hash) as usize);
        let clean_len = std::fs::metadata(&path).unwrap().len();
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[KIND_RESULT, 200, 0, 0, 0, 1, 2, 3]).unwrap();
        drop(f);

        let (store, report) = Store::open(&dir).unwrap();
        assert_eq!(report.torn_bytes, 8);
        assert_eq!(report.instances, 1);
        assert_eq!(report.results, 1);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_len);
        // The store is fully usable after the repair.
        assert!(store.get_instance(hash).unwrap().is_some());
        assert!(store.verify().unwrap().clean());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bit_flipped_checksum_drops_only_that_record() {
        let dir = temp_dir("flip");
        let a = sample(0.5);
        let b = sample(0.25);
        let (ha, hb);
        {
            let (store, _) = Store::open(&dir).unwrap();
            ha = store.put_instance(&a).unwrap();
            hb = store.put_instance(&b).unwrap();
        }
        // Flip one payload byte of the first record in a's shard.
        let path = shard_path(&dir, shard_of(ha) as usize);
        let mut bytes = std::fs::read(&path).unwrap();
        let victim = SEG_HEADER_LEN + REC_HEADER_LEN + 12;
        bytes[victim] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let (store, report) = Store::open(&dir).unwrap();
        assert_eq!(report.corrupt, 1);
        // Whichever record was damaged is gone; anything in other
        // shards (or later in the same shard) survives.
        let survivors = store.instance_hashes().len();
        assert_eq!(survivors, 1, "{:?}", store.instance_hashes());
        let v = store.verify().unwrap();
        assert_eq!(v.corrupt, 1);
        assert!(!v.clean());
        // gc rewrites only live records: the sweep comes back clean.
        store.gc().unwrap();
        let v = store.verify().unwrap();
        assert!(v.clean(), "{}", v.render());
        assert_eq!(store.instance_hashes().len(), survivors);
        let _ = (ha, hb);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_records_resolve_last_wins() {
        let dir = temp_dir("dup");
        let inst = sample(0.5);
        let hash;
        {
            let (store, _) = Store::open(&dir).unwrap();
            hash = store.put_instance(&inst).unwrap();
        }
        // Hand-append a second record for the same result key: the
        // store API skips duplicates, but a crash between two writers
        // (or a partially-gc'd segment) can leave them on disk.
        let path = shard_path(&dir, shard_of(hash) as usize);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        let old = Record::Result {
            key: rkey(hash, 1),
            body: b"old body\n".to_vec(),
        };
        let new = Record::Result {
            key: rkey(hash, 1),
            body: b"new body\n".to_vec(),
        };
        f.write_all(&old.encode().unwrap()).unwrap();
        f.write_all(&new.encode().unwrap()).unwrap();
        drop(f);

        let (store, report) = Store::open(&dir).unwrap();
        assert_eq!(report.superseded, 1);
        assert_eq!(report.results, 1);
        assert_eq!(
            store.get_result(&rkey(hash, 1)).unwrap().as_deref(),
            Some("new body\n"),
            "the later record wins"
        );
        // gc drops the shadowed record; last-wins answer is unchanged.
        let gc = store.gc().unwrap();
        assert!(gc.bytes_reclaimed > 0);
        assert_eq!(
            store.get_result(&rkey(hash, 1)).unwrap().as_deref(),
            Some("new body\n")
        );
        assert_eq!(store.verify().unwrap().superseded, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gc_preserves_every_live_record() {
        let dir = temp_dir("gc");
        let (store, _) = Store::open(&dir).unwrap();
        let mut hashes = Vec::new();
        for i in 0..12 {
            let h = store.put_instance(&sample(1.0 + i as f64)).unwrap();
            store
                .put_result(rkey(h, 1), &format!("body {i}\n"))
                .unwrap();
            hashes.push(h);
        }
        let before: Vec<String> = hashes
            .iter()
            .map(|&h| textfmt::write_instance(&store.get_instance(h).unwrap().unwrap()))
            .collect();
        let gc = store.gc().unwrap();
        assert_eq!(gc.records_kept, 24);
        for (i, &h) in hashes.iter().enumerate() {
            let inst = store
                .get_instance(h)
                .unwrap()
                .expect("instance survives gc");
            assert_eq!(textfmt::write_instance(&inst), before[i]);
            assert_eq!(
                store.get_result(&rkey(h, 1)).unwrap().as_deref(),
                Some(format!("body {i}\n").as_str())
            );
        }
        // And the compacted store reopens identically.
        drop(store);
        let (store, report) = Store::open(&dir).unwrap();
        assert_eq!(report.instances, 12);
        assert_eq!(report.results, 12);
        assert_eq!(report.superseded + report.corrupt, 0);
        assert!(store.verify().unwrap().clean());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_puts_and_gets_are_safe() {
        let dir = temp_dir("concurrent");
        let (store, _) = Store::open_with(&dir, StoreConfig { fsync: false }).unwrap();
        let store = std::sync::Arc::new(store);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let store = std::sync::Arc::clone(&store);
                scope.spawn(move || {
                    for i in 0..16 {
                        let inst = sample(1.0 + (t * 16 + i) as f64);
                        let h = store.put_instance(&inst).unwrap();
                        store.put_result(rkey(h, 1), "b\n").unwrap();
                        assert!(store.get_instance(h).unwrap().is_some());
                    }
                });
            }
        });
        assert_eq!(store.counts(), (64, 64));
        assert!(store.verify().unwrap().clean());
        std::fs::remove_dir_all(&dir).ok();
    }
}
