//! # `mmlp-store` — the persistence layer
//!
//! Everything upstream of this crate is deterministic: the paper's
//! local algorithm, the simplex, the safe baseline all produce
//! bit-identical output for a fixed `(instance, R, threads)`. That is
//! what makes solved work worth *keeping* — a result computed once is
//! correct forever. This crate gives the workspace a place to keep it:
//!
//! * [`codec`] — a versioned, checksummed **binary format** for
//!   [`Instance`](mmlp_instance::Instance) and
//!   [`Solution`](mmlp_instance::Solution): magic + format version,
//!   FNV-checksummed sections, varint-packed sparse rows, raw IEEE-754
//!   coefficient bits. Round trips are bit-identical with the text
//!   format and decode an order of magnitude faster (no float
//!   parsing) — see the `store_codec` bench.
//! * [`segment`] — the append-only record framing inside a shard's
//!   segment file, and the scanner that classifies damage (framing
//!   damage ⇒ truncate, payload damage ⇒ skip).
//! * [`store`] — the [`Store`]: 16 shard files keyed by the low bits
//!   of the instance content hash, an in-memory index rebuilt by
//!   scanning at open, torn-tail repair, last-wins duplicates, `gc`
//!   (compaction via temp + `fsync` + atomic rename) and `verify`
//!   (full checksum sweep).
//!
//! `mmlp-serve` mounts a store behind `--store-dir` to persist `PUT`
//! instances and solved results across restarts (warm-starting its
//! LRUs at boot); `mmlp-lab` spills campaign results into one; the
//! CLI exposes `store import|export|convert|ls|gc|verify`. The byte
//! layouts are specified normatively in `specs/STORAGE.md`.
//!
//! ## Quickstart
//!
//! ```
//! use mmlp_store::prelude::*;
//! use mmlp_instance::InstanceBuilder;
//!
//! let dir = std::env::temp_dir().join(format!("mmlp-store-doc-{}", std::process::id()));
//! let mut b = InstanceBuilder::new();
//! let v = b.add_agent();
//! b.add_constraint(&[(v, 1.0)]).unwrap();
//! b.add_objective(&[(v, 1.0)]).unwrap();
//! let inst = b.build().unwrap();
//!
//! let (store, _report) = Store::open(&dir).unwrap();
//! let hash = store.put_instance(&inst).unwrap();
//! let key = ResultKey { instance: hash, op: 1, big_r: 3, threads: 1 };
//! store.put_result(key, "utility 1\n").unwrap();
//! drop(store);
//!
//! // A fresh open rebuilds the index from the segment files.
//! let (store, report) = Store::open(&dir).unwrap();
//! assert_eq!((report.instances, report.results), (1, 1));
//! assert_eq!(store.get_result(&key).unwrap().unwrap(), "utility 1\n");
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

pub mod codec;
pub mod segment;
pub mod store;
pub mod varint;

pub use segment::{Record, ResultKey};
pub use store::{GcReport, OpenReport, Store, StoreConfig, VerifyReport, N_SHARDS};

/// One-stop imports for the CLI, the server and tests.
pub mod prelude {
    pub use crate::codec::{decode_instance, decode_solution, encode_instance, encode_solution};
    pub use crate::segment::{Record, ResultKey};
    pub use crate::store::{GcReport, OpenReport, Store, StoreConfig, VerifyReport};
}
