//! The versioned, checksummed binary codec for [`Instance`] and
//! [`Solution`] — the disk/wire twin of `mmlp_instance::textfmt`.
//!
//! Layout (all integers little-endian, varints are LEB128):
//!
//! ```text
//! header   magic "MLPB" · version u16 · kind u8 (1=instance, 2=solution) · 0u8
//! section  tag u8 · payload_len varint · payload · fnv1a64(payload) u64
//! ```
//!
//! An **instance** is three sections in fixed order: `DIMS` (agent,
//! constraint and objective counts plus both edge counts), then `CONS`
//! and `OBJS`, each a struct-of-arrays row block: every row's length
//! as a varint, then every entry's agent id as a varint (rows
//! concatenated in order), then every entry's coefficient as raw
//! little-endian `f64` bits. Splitting ids from coefficients keeps the
//! coefficient read a branch-free bulk pass, which is most of the
//! decode speed. A **solution** is `DIMS` (value count) then `VALS`
//! (dense `f64` bits). Coefficients travel as IEEE-754 bit patterns, so a
//! round trip is **bit-identical** — decode(encode(i)) has the same
//! canonical text serialisation, hence the same
//! [`mmlp_instance::hash::instance_hash`], as `i`. Decoding goes
//! through [`Instance::from_csr`], which enforces every shape and
//! coefficient invariant the incremental builder would, so untrusted
//! bytes cannot produce an instance the builder would have rejected.
//!
//! Decoding does no float *parsing* (the dominant cost of the text
//! format) and checksums with the word-folded FNV variant
//! ([`fnv1a64_words`]), which is where the multiple-× speedup measured
//! by the `store_codec` bench comes from.

use crate::varint::{read_u64, write_u64};
use mmlp_instance::hash::fnv1a64_words;
use mmlp_instance::{AgentId, Entry, Instance, Solution};

/// 4-byte magic opening every codec blob.
pub const MAGIC: [u8; 4] = *b"MLPB";
/// Current format version.
pub const VERSION: u16 = 1;

const KIND_INSTANCE: u8 = 1;
const KIND_SOLUTION: u8 = 2;

const SEC_DIMS: u8 = 1;
const SEC_CONS: u8 = 2;
const SEC_OBJS: u8 = 3;
const SEC_VALS: u8 = 4;

/// A decode failure: the byte offset where it was detected and what
/// was expected there.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CodecError {
    /// Byte offset into the blob where decoding failed.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for CodecError {}

impl CodecError {
    /// Prefixes the message with where in the blob it happened.
    fn in_context(mut self, what: &str) -> CodecError {
        self.message = format!("{what}: {}", self.message);
        self
    }
}

fn err<T>(offset: usize, message: impl Into<String>) -> Result<T, CodecError> {
    Err(CodecError {
        offset,
        message: message.into(),
    })
}

fn push_header(out: &mut Vec<u8>, kind: u8) {
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.push(kind);
    out.push(0);
}

fn push_section(out: &mut Vec<u8>, tag: u8, payload: &[u8]) {
    out.push(tag);
    write_u64(out, payload.len() as u64);
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv1a64_words(payload).to_le_bytes());
}

/// Serialises one row block (`CONS`/`OBJS`) as struct-of-arrays.
fn push_row_section<'r>(
    out: &mut Vec<u8>,
    tag: u8,
    rows: impl Iterator<Item = &'r [Entry]> + Clone,
    n_edges: usize,
) {
    let mut payload = Vec::with_capacity(10 * n_edges);
    for row in rows.clone() {
        write_u64(&mut payload, row.len() as u64);
    }
    for row in rows.clone() {
        for e in row {
            write_u64(&mut payload, u64::from(e.agent.raw()));
        }
    }
    for row in rows {
        for e in row {
            payload.extend_from_slice(&e.coef.to_bits().to_le_bytes());
        }
    }
    push_section(out, tag, &payload);
}

/// Encodes an instance into the binary format.
pub fn encode_instance(inst: &Instance) -> Vec<u8> {
    let n_edges = inst.n_constraint_edges() + inst.n_objective_edges();
    let mut out = Vec::with_capacity(64 + 10 * n_edges + 2 * inst.n_constraints());
    push_header(&mut out, KIND_INSTANCE);

    let mut dims = Vec::with_capacity(25);
    write_u64(&mut dims, inst.n_agents() as u64);
    write_u64(&mut dims, inst.n_constraints() as u64);
    write_u64(&mut dims, inst.n_objectives() as u64);
    write_u64(&mut dims, inst.n_constraint_edges() as u64);
    write_u64(&mut dims, inst.n_objective_edges() as u64);
    push_section(&mut out, SEC_DIMS, &dims);

    push_row_section(
        &mut out,
        SEC_CONS,
        inst.constraints().map(|i| inst.constraint_row(i)),
        inst.n_constraint_edges(),
    );
    push_row_section(
        &mut out,
        SEC_OBJS,
        inst.objectives().map(|k| inst.objective_row(k)),
        inst.n_objective_edges(),
    );
    out
}

/// Encodes a solution (a dense `f64` vector) into the binary format.
pub fn encode_solution(x: &Solution) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + 8 * x.len());
    push_header(&mut out, KIND_SOLUTION);
    let mut dims = Vec::with_capacity(5);
    write_u64(&mut dims, x.len() as u64);
    push_section(&mut out, SEC_DIMS, &dims);
    let mut vals = Vec::with_capacity(8 * x.len());
    for v in x.as_slice() {
        vals.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    push_section(&mut out, SEC_VALS, &vals);
    out
}

/// Checks header fields, returning the kind byte and the offset past
/// the header.
fn read_header(buf: &[u8]) -> Result<(u8, usize), CodecError> {
    if buf.len() < 8 {
        return err(buf.len(), "truncated header");
    }
    if buf[..4] != MAGIC {
        return err(
            0,
            format!("bad magic {:02x?} (want {:02x?})", &buf[..4], MAGIC),
        );
    }
    let version = u16::from_le_bytes([buf[4], buf[5]]);
    if version != VERSION {
        return err(4, format!("unsupported format version {version}"));
    }
    Ok((buf[6], 8))
}

/// Reads one section, verifying its tag and checksum; returns the
/// payload slice and the offset past the section.
fn read_section(buf: &[u8], pos: usize, want_tag: u8) -> Result<(&[u8], usize), CodecError> {
    let Some(&tag) = buf.get(pos) else {
        return err(pos, format!("missing section {want_tag}"));
    };
    if tag != want_tag {
        return err(pos, format!("expected section tag {want_tag}, got {tag}"));
    }
    let mut p = pos + 1;
    let Some(len) = read_u64(buf, &mut p) else {
        return err(p, "bad section length varint");
    };
    let len = usize::try_from(len).map_err(|_| CodecError {
        offset: p,
        message: "section length overflows usize".into(),
    })?;
    let payload_end = p
        .checked_add(len)
        .filter(|&e| e.checked_add(8).is_some_and(|end| end <= buf.len()))
        .ok_or_else(|| CodecError {
            offset: p,
            message: format!("section {want_tag} truncated ({len} payload bytes declared)"),
        })?;
    let payload = &buf[p..payload_end];
    let want = u64::from_le_bytes(
        buf[payload_end..payload_end + 8]
            .try_into()
            .expect("8 bytes"),
    );
    let got = fnv1a64_words(payload);
    if got != want {
        return err(
            payload_end,
            format!(
                "section {want_tag} checksum mismatch (stored {want:016x}, computed {got:016x})"
            ),
        );
    }
    Ok((payload, payload_end + 8))
}

/// Reads one struct-of-arrays row section (`CONS`/`OBJS`) straight
/// into CSR arrays. Range/positivity/duplicate validation happens
/// afterwards in bulk ([`Instance::from_csr`]); this loop only has to
/// keep framing honest. `n_edges` is the entry count declared in
/// `DIMS`, cross-checked against the row lengths.
fn read_rows(
    payload: &[u8],
    n_rows: u64,
    n_edges: u64,
) -> Result<(Vec<u32>, Vec<Entry>), CodecError> {
    // Allocation guards against absurd declared counts: every row costs
    // at least one length byte, every edge at least one id byte plus
    // eight coefficient bytes.
    if n_rows > payload.len() as u64 || n_edges.saturating_mul(9) > payload.len() as u64 {
        return err(
            0,
            format!(
                "declared {n_rows} rows / {n_edges} edges cannot fit a {}-byte section",
                payload.len()
            ),
        );
    }
    let mut off = Vec::with_capacity(n_rows as usize + 1);
    off.push(0u32);
    let mut pos = 0usize;
    let mut total: u64 = 0;
    for _ in 0..n_rows {
        let Some(len) = read_u64(payload, &mut pos) else {
            return err(pos, "bad row length varint");
        };
        total = total
            .checked_add(len)
            .filter(|&t| t <= n_edges)
            .ok_or_else(|| CodecError {
                offset: pos,
                message: format!("row lengths exceed the declared {n_edges} edges"),
            })?;
        off.push(total as u32);
    }
    if total != n_edges {
        return err(
            pos,
            format!("row lengths sum to {total}, DIMS declared {n_edges}"),
        );
    }
    let mut entries = Vec::with_capacity(n_edges as usize);
    for _ in 0..n_edges {
        let Some(agent) = read_u64(payload, &mut pos) else {
            return err(pos, "bad agent-id varint");
        };
        if agent > u64::from(u32::MAX) {
            return err(pos, format!("agent id {agent} exceeds u32"));
        }
        entries.push(Entry {
            agent: AgentId::new(agent as u32),
            coef: 0.0,
        });
    }
    let coefs = payload.len() - pos;
    if coefs as u64 != n_edges.saturating_mul(8) {
        return err(
            pos,
            format!("coefficient block is {coefs} bytes, want 8×{n_edges}"),
        );
    }
    for (e, chunk) in entries.iter_mut().zip(payload[pos..].chunks_exact(8)) {
        e.coef = f64::from_bits(u64::from_le_bytes(chunk.try_into().expect("8 bytes")));
    }
    Ok((off, entries))
}

/// Decodes an instance from the binary format, verifying magic,
/// version, section checksums and every builder-level shape invariant.
pub fn decode_instance(buf: &[u8]) -> Result<Instance, CodecError> {
    let (kind, pos) = read_header(buf)?;
    if kind != KIND_INSTANCE {
        return err(6, format!("kind {kind} is not an instance"));
    }
    let (dims, pos) = read_section(buf, pos, SEC_DIMS)?;
    let mut dp = 0;
    let (Some(n_agents), Some(n_cons), Some(n_objs), Some(a_edges), Some(c_edges)) = (
        read_u64(dims, &mut dp),
        read_u64(dims, &mut dp),
        read_u64(dims, &mut dp),
        read_u64(dims, &mut dp),
        read_u64(dims, &mut dp),
    ) else {
        return err(pos, "bad DIMS payload");
    };
    for (what, v) in [
        ("agent count", n_agents),
        ("constraint edge count", a_edges),
        ("objective edge count", c_edges),
    ] {
        if v > u64::from(u32::MAX) {
            return err(pos, format!("{what} {v} exceeds u32"));
        }
    }

    let (cons, pos) = read_section(buf, pos, SEC_CONS)?;
    let (a_off, a_entries) =
        read_rows(cons, n_cons, a_edges).map_err(|e| e.in_context("CONS section"))?;

    let (objs, pos) = read_section(buf, pos, SEC_OBJS)?;
    let (c_off, c_entries) =
        read_rows(objs, n_objs, c_edges).map_err(|e| e.in_context("OBJS section"))?;
    if pos != buf.len() {
        return err(pos, "trailing bytes after final section");
    }
    Instance::from_csr(n_agents as u32, a_off, a_entries, c_off, c_entries).map_err(|e| {
        CodecError {
            offset: pos,
            message: e.to_string(),
        }
    })
}

/// Decodes a solution from the binary format.
pub fn decode_solution(buf: &[u8]) -> Result<Solution, CodecError> {
    let (kind, pos) = read_header(buf)?;
    if kind != KIND_SOLUTION {
        return err(6, format!("kind {kind} is not a solution"));
    }
    let (dims, pos) = read_section(buf, pos, SEC_DIMS)?;
    let mut dp = 0;
    let Some(n) = read_u64(dims, &mut dp) else {
        return err(pos, "bad DIMS payload");
    };
    let (vals, pos) = read_section(buf, pos, SEC_VALS)?;
    if vals.len() as u64 != n.saturating_mul(8) {
        return err(pos, format!("VALS length {} != 8×{n}", vals.len()));
    }
    if pos != buf.len() {
        return err(pos, "trailing bytes after final section");
    }
    let values = vals
        .chunks_exact(8)
        .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8 bytes"))))
        .collect();
    Ok(Solution::from_vec(values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmlp_instance::hash::instance_hash;
    use mmlp_instance::{textfmt, InstanceBuilder};

    fn sample() -> Instance {
        let mut b = InstanceBuilder::new();
        let v0 = b.add_agent();
        let v1 = b.add_agent();
        let v2 = b.add_agent();
        b.add_constraint(&[(v1, 0.125), (v0, 3.5)]).unwrap();
        b.add_constraint(&[(v2, 1.0)]).unwrap();
        b.add_objective(&[(v0, 1.0), (v2, 1.0 / 3.0)]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn instance_round_trips_bit_identically() {
        let inst = sample();
        let blob = encode_instance(&inst);
        let back = decode_instance(&blob).unwrap();
        assert_eq!(
            textfmt::write_instance(&back),
            textfmt::write_instance(&inst)
        );
        assert_eq!(instance_hash(&back), instance_hash(&inst));
        // Port order must survive: row 0 lists v1 before v0.
        assert_eq!(
            back.constraint_row(mmlp_instance::ConstraintId::new(0))[0]
                .agent
                .raw(),
            1
        );
    }

    #[test]
    fn binary_is_smaller_than_text_on_real_instances() {
        let inst = mmlp_gen::catalog()[0].instance(256, 7);
        let text = textfmt::write_instance(&inst);
        let blob = encode_instance(&inst);
        assert!(
            blob.len() * 2 < text.len(),
            "binary {}B vs text {}B",
            blob.len(),
            text.len()
        );
    }

    #[test]
    fn solution_round_trips_bit_identically() {
        let x = Solution::from_vec(vec![0.0, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -0.0]);
        let back = decode_solution(&encode_solution(&x)).unwrap();
        assert_eq!(back.len(), x.len());
        for (a, b) in x.as_slice().iter().zip(back.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn empty_instance_round_trips() {
        let inst = InstanceBuilder::new().build().unwrap();
        let back = decode_instance(&encode_instance(&inst)).unwrap();
        assert_eq!(back.n_agents(), 0);
        assert_eq!(back.n_constraints(), 0);
    }

    #[test]
    fn rejects_wrong_magic_version_and_kind() {
        let blob = encode_instance(&sample());
        let mut bad = blob.clone();
        bad[0] = b'X';
        assert!(decode_instance(&bad).unwrap_err().message.contains("magic"));
        let mut bad = blob.clone();
        bad[4] = 9;
        assert!(decode_instance(&bad)
            .unwrap_err()
            .message
            .contains("version"));
        let sol = encode_solution(&Solution::zeros(2));
        assert!(decode_instance(&sol)
            .unwrap_err()
            .message
            .contains("not an instance"));
        assert!(decode_solution(&blob)
            .unwrap_err()
            .message
            .contains("not a solution"));
    }

    #[test]
    fn detects_bit_flips_anywhere_in_the_payloads() {
        let blob = encode_instance(&sample());
        // Flip one bit in every payload byte position; decode must never
        // silently succeed with different content.
        let canonical = textfmt::write_instance(&decode_instance(&blob).unwrap());
        for i in 8..blob.len() {
            let mut bad = blob.clone();
            bad[i] ^= 0x10;
            if let Ok(inst) = decode_instance(&bad) {
                assert_eq!(
                    textfmt::write_instance(&inst),
                    canonical,
                    "undetected corruption at byte {i}"
                );
            }
        }
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let blob = encode_instance(&sample());
        for cut in 0..blob.len() {
            assert!(decode_instance(&blob[..cut]).is_err(), "cut at {cut}");
        }
        assert!(decode_instance(&[]).is_err());
    }

    #[test]
    fn crafted_overflow_lengths_error_instead_of_panicking() {
        // A section-length varint near u64::MAX must fail the bounds
        // check, not wrap it.
        let mut blob = Vec::new();
        push_header(&mut blob, KIND_INSTANCE);
        blob.push(SEC_DIMS);
        write_u64(&mut blob, u64::MAX - 20);
        blob.extend_from_slice(&[0u8; 24]);
        let e = decode_instance(&blob).unwrap_err();
        assert!(e.message.contains("truncated"), "{e}");

        // Row lengths whose sum wraps u64 must be rejected by the
        // checked accumulator (a plain `+=` would panic in debug).
        let mut blob = Vec::new();
        push_header(&mut blob, KIND_INSTANCE);
        let mut dims = Vec::new();
        for v in [1u64, 2, 1, 1, 1] {
            write_u64(&mut dims, v); // 1 agent, 2 cons rows, 1 obj, 1+1 edges
        }
        push_section(&mut blob, SEC_DIMS, &dims);
        let mut cons = Vec::new();
        write_u64(&mut cons, 1);
        write_u64(&mut cons, u64::MAX);
        push_section(&mut blob, SEC_CONS, &cons);
        let e = decode_instance(&blob).unwrap_err();
        assert!(e.message.contains("row lengths"), "{e}");
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut blob = encode_instance(&sample());
        blob.push(0);
        let e = decode_instance(&blob).unwrap_err();
        assert!(e.message.contains("trailing"), "{e}");
    }

    #[test]
    fn rejects_out_of_range_agents_and_bad_coefficients() {
        // Hand-build a blob whose row references a missing agent: the
        // builder-level checks must fire through the codec path.
        let mut b = InstanceBuilder::with_agents(1);
        b.add_constraint(&[(AgentId::new(0), 1.0)]).unwrap();
        b.add_objective(&[(AgentId::new(0), 1.0)]).unwrap();
        let blob = encode_instance(&b.build().unwrap());
        // Corrupting structured fields trips either the checksum or a
        // structural check — decode can never panic.
        for i in 8..blob.len() {
            let mut bad = blob.clone();
            bad[i] = 0xff;
            let _ = decode_instance(&bad);
        }
    }
}
