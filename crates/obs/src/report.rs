//! Flamegraph-style text rendering of solve traces.
//!
//! One block per trace, slowest first: a header with the label, trace
//! id and total, then one bar per phase scaled to its share of the
//! span. This is what `maxmin-lp obs` prints.

use crate::trace::SolveTrace;

/// Bar width of a phase taking 100% of the span.
const BAR: u64 = 32;

pub(crate) fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Renders traces as a phase-timeline report (pass them slowest-first,
/// e.g. straight from `TraceRing::slowest`). Returns a "(no traces)"
/// placeholder when empty.
pub fn render_timeline(traces: &[SolveTrace]) -> String {
    if traces.is_empty() {
        return "(no traces recorded)\n".to_string();
    }
    let mut out = String::new();
    let name_w = traces
        .iter()
        .flat_map(|t| t.phases.iter())
        .map(|(n, _)| n.len())
        .max()
        .unwrap_or(5)
        .max(5);
    for (rank, t) in traces.iter().enumerate() {
        out.push_str(&format!(
            "#{:<3} {}  trace={}  total {}\n",
            rank + 1,
            t.label,
            t.trace_id,
            fmt_ns(t.total_ns)
        ));
        let total = t.total_ns.max(1);
        for (name, ns) in &t.phases {
            let bar_len = ((ns * BAR) as f64 / total as f64).round() as usize;
            let share = 100.0 * *ns as f64 / total as f64;
            out.push_str(&format!(
                "     {:<name_w$} {:<bar_w$} {:>5.1}%  {}\n",
                name,
                "#".repeat(bar_len),
                share,
                fmt_ns(*ns),
                name_w = name_w,
                bar_w = BAR as usize,
            ));
        }
        let other = t.total_ns.saturating_sub(t.phase_sum_ns());
        if other > 0 {
            out.push_str(&format!(
                "     {:<name_w$} {:<bar_w$} {:>5.1}%  {}\n",
                "(other)",
                "",
                100.0 * other as f64 / total as f64,
                fmt_ns(other),
                name_w = name_w,
                bar_w = BAR as usize,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_shows_every_phase_and_the_residual() {
        let t = SolveTrace {
            trace_id: 42,
            label: "solve R=4 n=208".into(),
            total_ns: 10_000_000,
            phases: vec![
                ("gather".into(), 6_000_000),
                ("t_eval".into(), 3_000_000),
                ("flood".into(), 500_000),
            ],
        };
        let r = render_timeline(&[t]);
        assert!(r.contains("trace=42"), "{r}");
        assert!(r.contains("solve R=4 n=208"), "{r}");
        assert!(r.contains("gather"), "{r}");
        assert!(r.contains("60.0%"), "{r}");
        assert!(r.contains("(other)"), "{r}");
        assert!(r.contains("10.00 ms"), "{r}");
    }

    #[test]
    fn empty_report_is_well_formed() {
        assert!(render_timeline(&[]).contains("no traces"));
    }

    #[test]
    fn units_scale() {
        assert_eq!(fmt_ns(17), "17 ns");
        assert_eq!(fmt_ns(1_700), "1.7 µs");
        assert_eq!(fmt_ns(1_700_000), "1.70 ms");
        assert_eq!(fmt_ns(1_700_000_000), "1.70 s");
    }
}
