//! Unified observability for the max-min LP workspace.
//!
//! Three disconnected ad-hoc telemetry modules (serve counters, net run
//! stats, free-form `STATS` text) grew alongside the solver; this crate
//! replaces their shared machinery with one dependency-free layer:
//!
//! - [`registry`] — a lock-free metrics registry: named counters behind
//!   sharded cache-padded atomics, gauges, and log-bucketed histograms,
//!   handed out as typed handles so a hot path pays exactly one relaxed
//!   atomic add per event. Registration happens once at startup; the
//!   whole registry renders as Prometheus text exposition for the
//!   `METRICS` wire op.
//! - [`hist`] — the HDR-style log-linear [`Histogram`] (formerly in
//!   `mmlp-serve`), with well-defined empty/`q = 1.0` percentile edges,
//!   plus its lock-free [`AtomicHistogram`] twin.
//! - [`trace`] — lightweight solve spans: monotonic-clock phase
//!   breakdowns with process-unique trace ids, kept in a bounded
//!   [`TraceRing`] that can always dump the N slowest recent solves.
//! - [`report`] — renders ring contents as a flamegraph-style text
//!   phase timeline (the `maxmin-lp obs` report).
//!
//! The overhead contract (enforced by `trajectory_gate` over
//! `BENCH_core.json` and by the catalog-wide bit-identity tests): a
//! traced solve stays within 3% of the untraced one and produces
//! bit-identical outputs. See `specs/OBSERVABILITY.md`.

#![deny(missing_docs)]

pub mod hist;
pub mod registry;
pub mod report;
pub mod trace;

pub use hist::{AtomicHistogram, Histogram};
pub use registry::{Counter, Gauge, HistogramHandle, Registry};
pub use report::render_timeline;
pub use trace::{next_trace_id, SolveTrace, TraceRing};
