//! Unified observability for the max-min LP workspace.
//!
//! Three disconnected ad-hoc telemetry modules (serve counters, net run
//! stats, free-form `STATS` text) grew alongside the solver; this crate
//! replaces their shared machinery with one dependency-free layer:
//!
//! - [`registry`] — a lock-free metrics registry: named counters behind
//!   sharded cache-padded atomics, gauges, and log-bucketed histograms,
//!   handed out as typed handles so a hot path pays exactly one relaxed
//!   atomic add per event. Registration happens once at startup; the
//!   whole registry renders as Prometheus text exposition for the
//!   `METRICS` wire op.
//! - [`hist`] — the HDR-style log-linear [`Histogram`] (formerly in
//!   `mmlp-serve`), with well-defined empty/`q = 1.0` percentile edges,
//!   plus its lock-free [`AtomicHistogram`] twin.
//! - [`trace`] — lightweight solve spans: monotonic-clock phase
//!   breakdowns with process-unique trace ids, kept in a bounded
//!   [`TraceRing`] that can always dump the N slowest recent solves.
//! - [`report`] — renders ring contents as a flamegraph-style text
//!   phase timeline (the `maxmin-lp obs` report).
//! - [`span`] — request-scoped span trees: a `trace_id` minted by the
//!   client (or sampled server-side) is threaded queue → cache →
//!   execute → store, recorded through a [`SpanRecorder`] and kept in
//!   a bounded [`SpanRing`] plus the journal.
//! - [`journal`] — a crash-safe append-only event journal:
//!   length-framed, FNV-checksummed records written by a dedicated
//!   drainer thread (the hot path pays one bounded-queue push), with
//!   torn-tail truncation on recovery, rotation, and a byte budget.
//! - [`lint`] — Prometheus text-exposition parsing and linting
//!   (missing `HELP`/`TYPE`, unregistered-name drift, counters going
//!   backwards across scrapes); also the scrape reader for SLOs.
//! - [`slo`] — declarative service-level objectives (`p99(...)`,
//!   `ratio(...)`) evaluated against a scrape with burn-rate output.
//!
//! The overhead contract (enforced by `trajectory_gate` over
//! `BENCH_core.json` and by the catalog-wide bit-identity tests): a
//! traced — and now journaled — solve stays within 3% of the untraced
//! one and produces bit-identical outputs. See
//! `specs/OBSERVABILITY.md`.

#![deny(missing_docs)]

pub mod hist;
pub mod journal;
pub mod lint;
pub mod registry;
pub mod report;
pub mod slo;
pub mod span;
pub mod trace;

pub use hist::{AtomicHistogram, Histogram};
pub use journal::{Journal, JournalConfig, JournalRecord};
pub use lint::{lint_pair, parse_exposition, Exposition};
pub use registry::{Counter, Gauge, HistogramHandle, Registry};
pub use report::render_timeline;
pub use slo::{evaluate_slos, parse_slo_specs, render_slo_report, SloSpec};
pub use span::{
    format_trace_id, parse_trace_id, render_span_tree, SpanRecorder, SpanRing, SpanTree,
};
pub use trace::{next_trace_id, SolveTrace, TraceRing};
