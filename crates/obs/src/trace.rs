//! Lightweight solve spans: per-solve trace ids, monotonic-clock phase
//! breakdowns, and a bounded ring of recent traces.
//!
//! A [`SolveTrace`] is the closed form of a span — the solver measures
//! its phases with `std::time::Instant` (monotonic by contract) and
//! hands the finished breakdown here; nothing in this module sits on
//! the hot path. The [`TraceRing`] keeps the last `cap` traces and can
//! always answer "show me the N slowest recent solves" for the
//! `maxmin-lp obs` report and the e2e tests.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Hands out process-unique trace ids, starting at 1 (0 reads as
/// "untraced").
pub fn next_trace_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// One completed solve span: a label, a total, and the per-phase
/// breakdown in execution order.
#[derive(Clone, Debug)]
pub struct SolveTrace {
    /// Process-unique id from [`next_trace_id`].
    pub trace_id: u64,
    /// Human label — op, instance, R ("solve R=4 n=208").
    pub label: String,
    /// Total wall time of the span, nanoseconds.
    pub total_ns: u64,
    /// `(phase name, nanoseconds)` in execution order. Phases measure
    /// disjoint intervals, so their sum is ≤ `total_ns` (the remainder
    /// is un-phased glue).
    pub phases: Vec<(String, u64)>,
}

impl SolveTrace {
    /// Sum of the phase durations (≤ `total_ns` by construction).
    pub fn phase_sum_ns(&self) -> u64 {
        self.phases.iter().map(|&(_, ns)| ns).sum()
    }
}

struct RingInner {
    buf: VecDeque<SolveTrace>,
    recorded: u64,
}

/// A bounded ring of recent [`SolveTrace`]s. Pushing past capacity
/// evicts the oldest; the ring never blocks a solve for longer than one
/// short mutex hold at span end.
pub struct TraceRing {
    cap: usize,
    inner: Mutex<RingInner>,
}

impl TraceRing {
    /// A ring holding up to `cap` traces (`cap` is clamped to ≥ 1).
    pub fn new(cap: usize) -> Self {
        TraceRing {
            cap: cap.max(1),
            inner: Mutex::new(RingInner {
                buf: VecDeque::new(),
                recorded: 0,
            }),
        }
    }

    /// Records a finished trace, evicting the oldest when full.
    pub fn push(&self, trace: SolveTrace) {
        let mut inner = self.inner.lock().unwrap();
        if inner.buf.len() == self.cap {
            inner.buf.pop_front();
        }
        inner.buf.push_back(trace);
        inner.recorded += 1;
    }

    /// Total traces ever recorded (monotone; exceeds `len` once the
    /// ring has wrapped).
    pub fn recorded(&self) -> u64 {
        self.inner.lock().unwrap().recorded
    }

    /// Traces currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().buf.len()
    }

    /// `true` when no trace has been recorded yet (or all were evicted,
    /// which cannot happen — eviction only makes room for a push).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `n` slowest traces currently in the ring, slowest first.
    pub fn slowest(&self, n: usize) -> Vec<SolveTrace> {
        let inner = self.inner.lock().unwrap();
        let mut all: Vec<SolveTrace> = inner.buf.iter().cloned().collect();
        all.sort_by(|a, b| {
            b.total_ns
                .cmp(&a.total_ns)
                .then(a.trace_id.cmp(&b.trace_id))
        });
        all.truncate(n);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(id: u64, total_ns: u64) -> SolveTrace {
        SolveTrace {
            trace_id: id,
            label: format!("solve #{id}"),
            total_ns,
            phases: vec![
                ("gather".into(), total_ns / 2),
                ("t_eval".into(), total_ns / 4),
            ],
        }
    }

    #[test]
    fn trace_ids_are_unique_and_nonzero() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert!(a > 0 && b > a);
    }

    #[test]
    fn ring_evicts_oldest_and_ranks_slowest() {
        let ring = TraceRing::new(3);
        assert!(ring.is_empty());
        for (id, total) in [(1, 50), (2, 900), (3, 10), (4, 200)] {
            ring.push(t(id, total));
        }
        assert_eq!(ring.len(), 3, "capacity 3, oldest evicted");
        assert_eq!(ring.recorded(), 4, "recorded counts evictions too");
        let slow = ring.slowest(2);
        assert_eq!(slow.len(), 2);
        assert_eq!(slow[0].trace_id, 2);
        assert_eq!(slow[1].trace_id, 4);
        // Asking for more than held returns everything, still sorted.
        let all = ring.slowest(10);
        assert_eq!(all.len(), 3);
        assert!(all[0].total_ns >= all[1].total_ns && all[1].total_ns >= all[2].total_ns);
    }

    #[test]
    fn phase_sum_is_bounded_by_total() {
        let tr = t(1, 1000);
        assert!(tr.phase_sum_ns() <= tr.total_ns);
        assert_eq!(tr.phase_sum_ns(), 750);
    }
}
