//! Lightweight solve spans: per-solve trace ids, monotonic-clock phase
//! breakdowns, and a bounded ring of recent traces.
//!
//! A [`SolveTrace`] is the closed form of a span — the solver measures
//! its phases with `std::time::Instant` (monotonic by contract) and
//! hands the finished breakdown here; nothing in this module sits on
//! the hot path. The [`TraceRing`] keeps the last `cap` traces and can
//! always answer "show me the N slowest recent solves" for the
//! `maxmin-lp obs` report and the e2e tests.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Hands out process-unique trace ids, starting at 1 (0 reads as
/// "untraced").
pub fn next_trace_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// One completed solve span: a label, a total, and the per-phase
/// breakdown in execution order.
#[derive(Clone, Debug)]
pub struct SolveTrace {
    /// Process-unique id from [`next_trace_id`].
    pub trace_id: u64,
    /// Human label — op, instance, R ("solve R=4 n=208").
    pub label: String,
    /// Total wall time of the span, nanoseconds.
    pub total_ns: u64,
    /// `(phase name, nanoseconds)` in execution order. Phases measure
    /// disjoint intervals, so their sum is ≤ `total_ns` (the remainder
    /// is un-phased glue).
    pub phases: Vec<(String, u64)>,
}

impl SolveTrace {
    /// Sum of the phase durations (≤ `total_ns` by construction).
    pub fn phase_sum_ns(&self) -> u64 {
        self.phases.iter().map(|&(_, ns)| ns).sum()
    }
}

struct RingInner {
    buf: VecDeque<SolveTrace>,
    recorded: u64,
}

/// A bounded ring of recent [`SolveTrace`]s. Pushing past capacity
/// evicts the oldest; the ring never blocks a solve for longer than one
/// short mutex hold at span end.
pub struct TraceRing {
    cap: usize,
    inner: Mutex<RingInner>,
}

impl TraceRing {
    /// A ring holding up to `cap` traces (`cap` is clamped to ≥ 1).
    pub fn new(cap: usize) -> Self {
        TraceRing {
            cap: cap.max(1),
            inner: Mutex::new(RingInner {
                buf: VecDeque::new(),
                recorded: 0,
            }),
        }
    }

    /// Records a finished trace, evicting the oldest when full.
    pub fn push(&self, trace: SolveTrace) {
        let mut inner = self.inner.lock().unwrap();
        if inner.buf.len() == self.cap {
            inner.buf.pop_front();
        }
        inner.buf.push_back(trace);
        inner.recorded += 1;
    }

    /// Total traces ever recorded (monotone; exceeds `len` once the
    /// ring has wrapped).
    pub fn recorded(&self) -> u64 {
        self.inner.lock().unwrap().recorded
    }

    /// Traces currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().buf.len()
    }

    /// `true` when no trace has been recorded yet (or all were evicted,
    /// which cannot happen — eviction only makes room for a push).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `n` slowest traces currently in the ring, slowest first.
    pub fn slowest(&self, n: usize) -> Vec<SolveTrace> {
        let inner = self.inner.lock().unwrap();
        let mut all: Vec<SolveTrace> = inner.buf.iter().cloned().collect();
        all.sort_by(|a, b| {
            b.total_ns
                .cmp(&a.total_ns)
                .then(a.trace_id.cmp(&b.trace_id))
        });
        all.truncate(n);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(id: u64, total_ns: u64) -> SolveTrace {
        SolveTrace {
            trace_id: id,
            label: format!("solve #{id}"),
            total_ns,
            phases: vec![
                ("gather".into(), total_ns / 2),
                ("t_eval".into(), total_ns / 4),
            ],
        }
    }

    #[test]
    fn trace_ids_are_unique_and_nonzero() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert!(a > 0 && b > a);
    }

    #[test]
    fn ring_evicts_oldest_and_ranks_slowest() {
        let ring = TraceRing::new(3);
        assert!(ring.is_empty());
        for (id, total) in [(1, 50), (2, 900), (3, 10), (4, 200)] {
            ring.push(t(id, total));
        }
        assert_eq!(ring.len(), 3, "capacity 3, oldest evicted");
        assert_eq!(ring.recorded(), 4, "recorded counts evictions too");
        let slow = ring.slowest(2);
        assert_eq!(slow.len(), 2);
        assert_eq!(slow[0].trace_id, 2);
        assert_eq!(slow[1].trace_id, 4);
        // Asking for more than held returns everything, still sorted.
        let all = ring.slowest(10);
        assert_eq!(all.len(), 3);
        assert!(all[0].total_ns >= all[1].total_ns && all[1].total_ns >= all[2].total_ns);
    }

    #[test]
    fn phase_sum_is_bounded_by_total() {
        let tr = t(1, 1000);
        assert!(tr.phase_sum_ns() <= tr.total_ns);
        assert_eq!(tr.phase_sum_ns(), 750);
    }

    /// Hammer the ring from many writer threads while readers pull
    /// `slowest(n)` snapshots: every observed trace must be internally
    /// consistent (no torn reads — label, total and phases are all
    /// derived from the trace id, so any mix-up is detectable),
    /// `slowest` must stay sorted, and after the dust settles the
    /// wraparound accounting must be exact.
    #[test]
    fn concurrent_writers_never_tear_traces() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        const WRITERS: u64 = 8;
        const PER_WRITER: u64 = 500;
        const CAP: usize = 64;

        // A trace whose every field is a function of its id.
        fn derived(id: u64) -> SolveTrace {
            SolveTrace {
                trace_id: id,
                label: format!("derived #{id}"),
                total_ns: id * 10,
                phases: vec![("gather".into(), id * 10 / 2), ("g".into(), id * 10 / 4)],
            }
        }
        fn check(tr: &SolveTrace) {
            let id = tr.trace_id;
            assert_eq!(tr.label, format!("derived #{id}"), "torn label");
            assert_eq!(tr.total_ns, id * 10, "torn total");
            assert_eq!(tr.phases.len(), 2, "torn phases");
            assert_eq!(tr.phases[0].1, id * 10 / 2, "torn phase ns");
        }

        let ring = Arc::new(TraceRing::new(CAP));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let ring = Arc::clone(&ring);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut seen = 0u64;
                    while !stop.load(Ordering::Acquire) {
                        let slow = ring.slowest(16);
                        for w in slow.windows(2) {
                            assert!(w[0].total_ns >= w[1].total_ns, "slowest(n) out of order");
                        }
                        for tr in &slow {
                            check(tr);
                            seen += 1;
                        }
                    }
                    seen
                })
            })
            .collect();
        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..PER_WRITER {
                        ring.push(derived(w * PER_WRITER + i + 1));
                    }
                })
            })
            .collect();
        for t in writers {
            t.join().unwrap();
        }
        stop.store(true, Ordering::Release);
        for r in readers {
            r.join().unwrap();
        }

        // Wraparound accounting: every push counted, only CAP retained.
        assert_eq!(ring.recorded(), WRITERS * PER_WRITER);
        assert_eq!(ring.len(), CAP);
        let survivors = ring.slowest(CAP);
        assert_eq!(survivors.len(), CAP);
        for tr in &survivors {
            check(tr);
        }
        // Ties on total_ns break towards the smaller trace id.
        let tied = TraceRing::new(4);
        for id in [3u64, 1, 2] {
            tied.push(SolveTrace {
                trace_id: id,
                label: "tie".into(),
                total_ns: 100,
                phases: vec![],
            });
        }
        let order: Vec<u64> = tied.slowest(4).iter().map(|t| t.trace_id).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }
}
