//! Log-linear (HDR-style) histograms over microsecond values.
//!
//! The bucket layout buckets values with 8 linear sub-buckets per power
//! of two, so any recorded value is off by at most 12.5% while the
//! whole structure is a few hundred `u64`s — safe to keep hot forever
//! in a long-running server. [`Histogram`] is the single-threaded
//! value type (loadgen aggregates one per client thread);
//! [`AtomicHistogram`] is its lock-free twin for registry-resident
//! metrics, recorded from many threads and snapshotted on scrape.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-buckets per power of two (8 → ≤ 12.5% relative error).
const SUBS: usize = 8;
/// Values 0..8 land in exact unit buckets; beyond that, log-linear.
/// 34 octaves × 8 sub-buckets covers > 4 hours in microseconds.
const OCTAVES: usize = 34;
pub(crate) const BUCKETS: usize = SUBS + OCTAVES * SUBS;

pub(crate) fn bucket_index(us: u64) -> usize {
    if us < SUBS as u64 {
        return us as usize;
    }
    let e = 63 - us.leading_zeros() as usize; // floor(log2), ≥ 3
    let sub = ((us >> (e - 3)) & 7) as usize;
    ((e - 2) * SUBS + sub).min(BUCKETS - 1)
}

pub(crate) fn bucket_floor(idx: usize) -> u64 {
    if idx < SUBS {
        return idx as u64;
    }
    let g = idx / SUBS;
    let sub = (idx % SUBS) as u64;
    let e = g + 2;
    (SUBS as u64 + sub) << (e - 3)
}

/// A log-linear latency histogram over microseconds.
#[derive(Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum_us: u64,
    max_us: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; BUCKETS],
            total: 0,
            sum_us: 0,
            max_us: 0,
        }
    }

    /// Records one latency sample, in microseconds.
    pub fn record(&mut self, us: u64) {
        self.counts[bucket_index(us)] += 1;
        self.total += 1;
        self.sum_us += us;
        self.max_us = self.max_us.max(us);
    }

    /// Number of recorded samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Largest recorded sample (exact, not bucketed).
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// Sum of all recorded samples, in microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.sum_us.checked_div(self.total).unwrap_or(0)
    }

    /// The latency at quantile `q`, as the lower bound of the bucket
    /// containing that rank.
    ///
    /// Edge behaviour is fully defined (registry-wide contract):
    ///
    /// - an **empty** histogram returns 0 for every `q`;
    /// - `q >= 1.0` returns the **exact** maximum recorded sample
    ///   (`max_us`), not a bucket floor — the only quantile with zero
    ///   bucketing error;
    /// - `q <= 0.0` (and NaN) clamp to the rank-1 sample's bucket.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max_us;
        }
        let q = if q.is_nan() { 0.0 } else { q.max(0.0) };
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_floor(idx);
            }
        }
        self.max_us
    }

    /// Folds another histogram into this one (loadgen aggregates one
    /// per client thread).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_us += other.sum_us;
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Occupied buckets as `(bucket_floor, count)` pairs, in ascending
    /// value order (the Prometheus renderer and the bar chart both walk
    /// this).
    pub fn occupied(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(idx, &c)| (bucket_floor(idx), c))
    }

    /// Cumulative `(exclusive_upper_edge, cumulative_count)` pairs for
    /// the occupied buckets — the shape Prometheus `_bucket{le=...}`
    /// samples want (every recorded value in the bucket is strictly
    /// below the edge).
    pub fn cumulative_edges(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cum += c;
            out.push((bucket_floor(idx + 1), cum));
        }
        out
    }

    /// Renders the occupied buckets as an aligned text bar chart — the
    /// loadgen's "latency histogram".
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("latency_us        count  share\n");
        if self.total == 0 {
            out.push_str("(no samples)\n");
            return out;
        }
        let peak = self.counts.iter().copied().max().unwrap_or(1).max(1);
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let bar = "#".repeat(((c * 40).div_ceil(peak)) as usize);
            let share = 100.0 * c as f64 / self.total as f64;
            out.push_str(&format!(
                "{:>12} {:>10} {:>5.1}% {}\n",
                bucket_floor(idx),
                c,
                share,
                bar
            ));
        }
        out
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// The lock-free twin of [`Histogram`]: recorded from any number of
/// threads with relaxed atomics, snapshotted into a plain [`Histogram`]
/// on scrape. Lives behind registry [`HistogramHandle`]s.
///
/// [`HistogramHandle`]: crate::registry::HistogramHandle
pub struct AtomicHistogram {
    counts: Box<[AtomicU64]>,
    total: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
    // Exemplar: the largest traced observation since the last scrape,
    // as a (value, trace id) pair. Best-effort under races — an
    // exemplar is a debugging hint, not an accounting cell.
    ex_us: AtomicU64,
    ex_trace: AtomicU64,
}

impl AtomicHistogram {
    /// An empty atomic histogram.
    pub fn new() -> Self {
        AtomicHistogram {
            counts: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            total: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
            ex_us: AtomicU64::new(0),
            ex_trace: AtomicU64::new(0),
        }
    }

    /// Records one sample, in microseconds. Three relaxed adds plus a
    /// relaxed `fetch_max`; no locks, no allocation.
    pub fn record(&self, us: u64) {
        self.counts[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// [`Self::record`] plus exemplar capture: when `trace_id` is
    /// nonzero and this is the largest traced sample since the last
    /// [`Self::take_exemplar`], the pair is kept so the scrape can
    /// point at the request behind the max bucket. Untraced callers
    /// keep using `record` — this variant costs one extra relaxed
    /// load on the traced path only.
    pub fn record_traced(&self, us: u64, trace_id: u64) {
        self.record(us);
        if trace_id != 0 && us >= self.ex_us.load(Ordering::Relaxed) {
            self.ex_us.store(us, Ordering::Relaxed);
            self.ex_trace.store(trace_id, Ordering::Relaxed);
        }
    }

    /// Takes the current exemplar as `(us, trace_id)` and resets it —
    /// "since last scrape" semantics. `None` when nothing traced was
    /// recorded since the previous take.
    pub fn take_exemplar(&self) -> Option<(u64, u64)> {
        let trace = self.ex_trace.swap(0, Ordering::Relaxed);
        let us = self.ex_us.swap(0, Ordering::Relaxed);
        (trace != 0).then_some((us, trace))
    }

    /// Number of recorded samples.
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// A point-in-time copy as a plain [`Histogram`]. Concurrent
    /// recording may tear `total` against the buckets by a sample or
    /// two — fine for statistics, which is all this is for.
    pub fn snapshot(&self) -> Histogram {
        Histogram {
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            total: self.total.load(Ordering::Relaxed),
            sum_us: self.sum_us.load(Ordering::Relaxed),
            max_us: self.max_us.load(Ordering::Relaxed),
        }
    }
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_contiguous_and_monotone() {
        let mut prev = 0;
        for idx in 1..BUCKETS {
            let f = bucket_floor(idx);
            assert!(f > prev, "floor({idx}) = {f} ≤ floor({}) = {prev}", idx - 1);
            prev = f;
        }
        // Every value maps into the bucket whose floor is ≤ it.
        for v in [0u64, 1, 7, 8, 9, 100, 1023, 1024, 1_000_000, u64::MAX / 2] {
            let idx = bucket_index(v);
            assert!(bucket_floor(idx) <= v);
            if idx + 1 < BUCKETS {
                assert!(v < bucket_floor(idx + 1), "v={v} idx={idx}");
            }
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..8 {
            h.record(v);
        }
        for q in [0.01, 0.5, 1.0] {
            let p = h.percentile(q);
            assert!(p < 8);
        }
        assert_eq!(h.percentile(1.0), 7);
        assert_eq!(h.percentile(0.125), 0);
    }

    #[test]
    fn percentile_edges_are_well_defined() {
        // Empty: every quantile is 0, including the weird ones.
        let empty = Histogram::new();
        for q in [-1.0, 0.0, 0.5, 1.0, 2.0, f64::NAN] {
            assert_eq!(empty.percentile(q), 0, "empty at q={q}");
        }
        // q = 1.0 (and beyond) is the exact maximum, even when the max
        // lands mid-bucket where the old floor answer under-reported.
        let mut h = Histogram::new();
        h.record(3);
        h.record(1000); // bucket floor 960 ≠ exact max
        assert_eq!(h.percentile(1.0), 1000);
        assert_eq!(h.percentile(2.0), 1000);
        assert_eq!(h.max_us(), 1000);
        // q ≤ 0 and NaN clamp to rank 1.
        assert_eq!(h.percentile(0.0), 3);
        assert_eq!(h.percentile(-0.5), 3);
        assert_eq!(h.percentile(f64::NAN), 3);
    }

    #[test]
    fn percentiles_are_order_statistics_within_bucket_error() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.percentile(0.50);
        let p95 = h.percentile(0.95);
        let p99 = h.percentile(0.99);
        assert!(p50 <= 500 && p50 as f64 >= 500.0 * 0.875, "p50 = {p50}");
        assert!(p95 <= 950 && p95 as f64 >= 950.0 * 0.875, "p95 = {p95}");
        assert!(p99 <= 990 && p99 as f64 >= 990.0 * 0.875, "p99 = {p99}");
        assert!(p50 <= p95 && p95 <= p99);
        assert_eq!(h.total(), 1000);
        assert_eq!(h.max_us(), 1000);
        assert_eq!(h.mean_us(), 500);
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in 0..500 {
            a.record(v * 3);
            all.record(v * 3);
        }
        for v in 0..300 {
            b.record(v * 7 + 1);
            all.record(v * 7 + 1);
        }
        a.merge(&b);
        assert_eq!(a.total(), all.total());
        for q in [0.5, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(a.percentile(q), all.percentile(q));
        }
        assert_eq!(a.max_us(), all.max_us());
    }

    #[test]
    fn render_lists_occupied_buckets() {
        let mut h = Histogram::new();
        h.record(5);
        h.record(5);
        h.record(100);
        let r = h.render();
        assert!(r.contains("latency_us"), "{r}");
        assert!(r.lines().count() >= 3, "{r}");
        assert!(Histogram::new().render().contains("no samples"));
    }

    #[test]
    fn atomic_snapshot_matches_plain_recording() {
        let a = AtomicHistogram::new();
        let mut p = Histogram::new();
        for v in [0u64, 1, 7, 9, 100, 1000, 123_456] {
            a.record(v);
            p.record(v);
        }
        let s = a.snapshot();
        assert_eq!(s.total(), p.total());
        assert_eq!(s.max_us(), p.max_us());
        assert_eq!(s.mean_us(), p.mean_us());
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(s.percentile(q), p.percentile(q));
        }
        assert_eq!(s.cumulative_edges(), p.cumulative_edges());
    }

    #[test]
    fn cumulative_edges_are_monotone_and_cover_everything() {
        let mut h = Histogram::new();
        for v in [1u64, 1, 9, 9, 9, 5000] {
            h.record(v);
        }
        let edges = h.cumulative_edges();
        assert_eq!(edges.last().unwrap().1, h.total());
        let mut prev_edge = 0;
        let mut prev_cum = 0;
        for &(edge, cum) in &edges {
            assert!(edge > prev_edge && cum >= prev_cum, "{edges:?}");
            prev_edge = edge;
            prev_cum = cum;
        }
        // Every recorded value is strictly below its bucket's edge.
        assert!(edges.iter().any(|&(e, _)| e > 5000));
    }

    #[test]
    fn exemplar_tracks_the_max_traced_sample_since_last_take() {
        let h = AtomicHistogram::new();
        assert_eq!(h.take_exemplar(), None);
        h.record(9999); // untraced: never an exemplar
        h.record_traced(10, 0xa);
        h.record_traced(500, 0xb);
        h.record_traced(200, 0xc);
        assert_eq!(h.take_exemplar(), Some((500, 0xb)));
        assert_eq!(h.take_exemplar(), None, "take resets");
        h.record_traced(7, 0xd);
        assert_eq!(h.take_exemplar(), Some((7, 0xd)));
        // trace_id 0 means untraced even via record_traced.
        h.record_traced(1000, 0);
        assert_eq!(h.take_exemplar(), None);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn atomic_recording_is_thread_safe() {
        use std::sync::Arc;
        let h = Arc::new(AtomicHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.total(), 4000);
        assert_eq!(s.max_us(), 3999);
    }
}
