//! Declarative SLO specs with burn-rate evaluation.
//!
//! A spec file is line-oriented (`#` comments, blank lines ignored):
//!
//! ```text
//! slo <name> <expr> <= <threshold>
//! expr := p<digits>(<histogram>)          # quantile, e.g. p99(...)
//!       | ratio(<numerator>, <denominator>)
//! ```
//!
//! `p99(mmlp_serve_request_latency_us)` reads a quantile off the
//! scrape's cumulative buckets; `ratio(a, b)` divides two counter
//! sums (a `0/0` ratio evaluates to 0 — a target with no traffic is
//! vacuously met). Evaluation reports a **burn rate** per objective:
//! `value / threshold`, i.e. the fraction of the budget currently
//! consumed — above 1.0 the objective is violated. The delta-serving
//! objective `ratio(mmlp_serve_delta_recomputed_x_total,
//! mmlp_serve_delta_agents_total)` turns the paper's locality theorem
//! (a `SOLVE_DELTA` touches a radius-O(r) dirty ball, not the whole
//! instance) into a continuously monitored target.
//!
//! `maxmin-lp obs slo <spec> (--scrape <file> | --addr <host:port>)`
//! evaluates a spec against a scrape and exits nonzero on violation —
//! CI runs it over the loadgen smoke scrapes.

use crate::lint::Exposition;

/// The measurable expression of one SLO line.
#[derive(Clone, Debug, PartialEq)]
pub enum SloExpr {
    /// `p<digits>(<histogram>)` — a quantile of a histogram family.
    Quantile {
        /// Base name of the histogram family.
        hist: String,
        /// Quantile in (0, 1), e.g. 0.99 for `p99`.
        q: f64,
    },
    /// `ratio(<num>, <den>)` — quotient of two counter sums.
    Ratio {
        /// Numerator counter name.
        num: String,
        /// Denominator counter name.
        den: String,
    },
}

/// One parsed `slo` line.
#[derive(Clone, Debug, PartialEq)]
pub struct SloSpec {
    /// Objective name (reported in the evaluation table).
    pub name: String,
    /// What to measure.
    pub expr: SloExpr,
    /// Upper bound the measurement must not exceed.
    pub threshold: f64,
}

/// One evaluated objective.
#[derive(Clone, Debug, PartialEq)]
pub struct SloResult {
    /// Objective name.
    pub name: String,
    /// Measured value, `None` when the metric was absent.
    pub value: Option<f64>,
    /// The spec's threshold.
    pub threshold: f64,
    /// `value / threshold` — above 1.0 means violated.
    pub burn: f64,
    /// Whether the objective is met.
    pub ok: bool,
}

fn parse_expr(s: &str) -> Result<SloExpr, String> {
    let open = s
        .find('(')
        .ok_or_else(|| format!("expr missing '(': {s}"))?;
    let inner = s[open + 1..]
        .strip_suffix(')')
        .ok_or_else(|| format!("expr missing ')': {s}"))?;
    let func = &s[..open];
    if let Some(digits) = func.strip_prefix('p') {
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return Err(format!("bad quantile function {func:?}"));
        }
        // p50 → 0.50, p99 → 0.99, p999 → 0.999.
        let q = digits.parse::<f64>().expect("digits") / 10f64.powi(digits.len() as i32);
        if !(0.0..1.0).contains(&q) || q == 0.0 {
            return Err(format!("quantile out of range: {func}"));
        }
        return Ok(SloExpr::Quantile {
            hist: inner.trim().to_string(),
            q,
        });
    }
    if func == "ratio" {
        let (num, den) = inner
            .split_once(',')
            .ok_or_else(|| format!("ratio needs two arguments: {s}"))?;
        return Ok(SloExpr::Ratio {
            num: num.trim().to_string(),
            den: den.trim().to_string(),
        });
    }
    Err(format!("unknown expr function {func:?}"))
}

/// Parses a spec file. Returns the first malformed line's description.
pub fn parse_slo_specs(text: &str) -> Result<Vec<SloSpec>, String> {
    let mut specs = Vec::new();
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let rest = line.strip_prefix("slo ").ok_or_else(|| {
            format!(
                "line {}: expected `slo <name> <expr> <= <threshold>`",
                ln + 1
            )
        })?;
        let err = |what: &str| format!("line {}: missing {what}: {line}", ln + 1);
        let (lhs, rhs) = rest.split_once("<=").ok_or_else(|| err("`<=`"))?;
        if rhs.contains(">=") || lhs.contains('>') {
            return Err(format!(
                "line {}: only `<=` thresholds are supported",
                ln + 1
            ));
        }
        let (name, expr_text) = lhs.trim().split_once(' ').ok_or_else(|| err("expr"))?;
        // The expr may contain spaces (`ratio(a, b)`) but nothing else
        // may trail it before the `<=`.
        let expr = parse_expr(expr_text.trim()).map_err(|e| format!("line {}: {e}", ln + 1))?;
        let mut rhs_it = rhs.split_whitespace();
        let threshold: f64 = rhs_it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| err("threshold"))?;
        if threshold <= 0.0 {
            return Err(format!("line {}: threshold must be positive", ln + 1));
        }
        if let Some(extra) = rhs_it.next() {
            return Err(format!("line {}: trailing token {extra:?}", ln + 1));
        }
        let name = name.to_string();
        specs.push(SloSpec {
            name,
            expr,
            threshold,
        });
    }
    Ok(specs)
}

/// Evaluates every spec against a parsed scrape. A missing metric
/// yields `value: None` and fails the objective (absence of evidence
/// is a violation — the gate should notice a renamed series).
pub fn evaluate_slos(specs: &[SloSpec], exp: &Exposition) -> Vec<SloResult> {
    specs
        .iter()
        .map(|spec| {
            let value = match &spec.expr {
                SloExpr::Quantile { hist, q } => exp.quantile(hist, *q),
                SloExpr::Ratio { num, den } => {
                    let n = exp.sample_sum(num);
                    let d = exp.sample_sum(den);
                    match (n, d) {
                        (Some(n), Some(d)) if d > 0.0 => Some(n / d),
                        // No denominator traffic: vacuously met.
                        (Some(_), Some(_)) => Some(0.0),
                        _ => None,
                    }
                }
            };
            let burn = value.map(|v| v / spec.threshold).unwrap_or(f64::INFINITY);
            SloResult {
                name: spec.name.clone(),
                value,
                threshold: spec.threshold,
                burn,
                ok: value.is_some_and(|v| v <= spec.threshold),
            }
        })
        .collect()
}

/// Renders results as an aligned table, one objective per line:
/// `<status> <name> value=<v> threshold=<t> burn=<b>`.
pub fn render_slo_report(results: &[SloResult]) -> String {
    let mut out = String::new();
    let name_w = results
        .iter()
        .map(|r| r.name.len())
        .max()
        .unwrap_or(4)
        .max(4);
    for r in results {
        let status = if r.ok { "ok  " } else { "FAIL" };
        let value = match r.value {
            Some(v) => format!("{v:.6}"),
            None => "absent".to_string(),
        };
        out.push_str(&format!(
            "{status} {:<name_w$} value={value} threshold={} burn={:.3}\n",
            r.name, r.threshold, r.burn,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::parse_exposition;

    const SPEC: &str = "\
# serve SLOs
slo request_p99 p99(mmlp_latency_us) <= 150
slo error_rate ratio(mmlp_errors_total, mmlp_requests_total) <= 0.01
slo idle ratio(mmlp_errors_total, mmlp_nothing_total) <= 0.5
";

    const SCRAPE: &str = "\
# HELP mmlp_requests_total r
# TYPE mmlp_requests_total counter
mmlp_requests_total 100
# HELP mmlp_errors_total e
# TYPE mmlp_errors_total counter
mmlp_errors_total 2
# HELP mmlp_nothing_total n
# TYPE mmlp_nothing_total counter
mmlp_nothing_total 0
# HELP mmlp_latency_us l
# TYPE mmlp_latency_us histogram
mmlp_latency_us_bucket{le=\"10\"} 50
mmlp_latency_us_bucket{le=\"100\"} 99
mmlp_latency_us_bucket{le=\"1000\"} 100
mmlp_latency_us_bucket{le=\"+Inf\"} 100
mmlp_latency_us_sum 3000
mmlp_latency_us_count 100
";

    #[test]
    fn spec_grammar_parses() {
        let specs = parse_slo_specs(SPEC).unwrap();
        assert_eq!(specs.len(), 3);
        assert_eq!(
            specs[0].expr,
            SloExpr::Quantile {
                hist: "mmlp_latency_us".into(),
                q: 0.99
            }
        );
        assert_eq!(specs[1].threshold, 0.01);
    }

    #[test]
    fn spec_grammar_rejects_damage() {
        assert!(parse_slo_specs("slo x p0(h) <= 1").is_err());
        assert!(parse_slo_specs("slo x pxx(h) <= 1").is_err());
        assert!(parse_slo_specs("slo x mean(h) <= 1").is_err());
        assert!(parse_slo_specs("slo x p99(h) >= 1").is_err());
        assert!(parse_slo_specs("slo x p99(h) <= -1").is_err());
        assert!(parse_slo_specs("slo x p99(h) <= 1 extra").is_err());
        assert!(parse_slo_specs("objective x p99(h) <= 1").is_err());
        assert!(parse_slo_specs("slo x ratio(a) <= 1").is_err());
    }

    #[test]
    fn evaluation_reports_burn_rates() {
        let specs = parse_slo_specs(SPEC).unwrap();
        let exp = parse_exposition(SCRAPE).unwrap();
        let results = evaluate_slos(&specs, &exp);
        // p99 rank 99 lands in the le=100 bucket: 100 ≤ 150.
        assert!(results[0].ok);
        assert_eq!(results[0].value, Some(100.0));
        assert!((results[0].burn - 100.0 / 150.0).abs() < 1e-9);
        // 2/100 = 0.02 > 0.01: violated, burn 2.0.
        assert!(!results[1].ok);
        assert!((results[1].burn - 2.0).abs() < 1e-9);
        // 2/0 → vacuous 0.
        assert!(results[2].ok);
        assert_eq!(results[2].value, Some(0.0));
        let report = render_slo_report(&results);
        assert!(report.contains("FAIL error_rate"), "{report}");
        assert!(report.contains("ok   request_p99"), "{report}");
    }

    #[test]
    fn absent_metric_fails_the_objective() {
        let specs = parse_slo_specs("slo gone p99(no_such_hist) <= 5\n").unwrap();
        let exp = parse_exposition(SCRAPE).unwrap();
        let r = &evaluate_slos(&specs, &exp)[0];
        assert!(!r.ok);
        assert_eq!(r.value, None);
        assert!(r.burn.is_infinite());
        assert!(render_slo_report(std::slice::from_ref(r)).contains("absent"));
    }
}
