//! Prometheus text-exposition parsing and linting.
//!
//! The `METRICS` wire op promises a well-formed scrape: every sample
//! preceded by its `# HELP`/`# TYPE` header, names matching the
//! registry's charset, counters that never go backwards. This module
//! checks those promises — CI scrapes a server twice after load and
//! fails on drift ([`lint_pair`]), and `maxmin-lp obs --addr`
//! validates a body before printing it ([`parse_exposition`]).
//!
//! The parser also powers the [`crate::slo`] evaluator: it keeps
//! per-sample values and reconstructs histogram quantiles from
//! `_bucket` series, so SLO specs can be evaluated offline from a
//! captured scrape file.

use std::collections::BTreeMap;

/// One metric family: its declared type, help text, and samples.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricFamily {
    /// Declared `# TYPE`: `counter`, `gauge`, or `histogram`.
    pub kind: String,
    /// Declared `# HELP` text.
    pub help: String,
    /// Samples as `(full sample key incl. labels, value)`, in order.
    pub samples: Vec<(String, f64)>,
}

/// A parsed scrape: base metric name → family.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Exposition {
    /// Families keyed by base name (histogram suffixes folded in).
    pub families: BTreeMap<String, MetricFamily>,
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Resolves a sample name to its family base name: exact match first,
/// then the histogram suffixes.
fn base_name<'a>(sample: &'a str, families: &BTreeMap<String, MetricFamily>) -> Option<&'a str> {
    if families.contains_key(sample) {
        return Some(sample);
    }
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = sample.strip_suffix(suffix) {
            if families.get(base).is_some_and(|f| f.kind == "histogram") {
                return Some(base);
            }
        }
    }
    None
}

/// Parses a text exposition, enforcing the lint rules as it goes:
///
/// * every sample's name must be valid and covered by a preceding
///   `# TYPE` (histogram `_bucket`/`_sum`/`_count` fold into their
///   base family) — an uncovered sample is *unregistered-name drift*;
/// * every `# TYPE`d family must also carry a `# HELP`;
/// * sample values must parse as numbers.
///
/// `# EXEMPLAR` lines and other comments are ignored. Returns the
/// parsed exposition or every violation found.
pub fn parse_exposition(text: &str) -> Result<Exposition, Vec<String>> {
    let mut exp = Exposition::default();
    let mut errors = Vec::new();
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            if let Some((name, help)) = rest.split_once(' ') {
                let fam = exp.families.entry(name.to_string()).or_default();
                fam.help = help.to_string();
            } else {
                exp.families.entry(rest.to_string()).or_default();
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            match (it.next(), it.next()) {
                (Some(name), Some(kind)) => {
                    let fam = exp.families.entry(name.to_string()).or_default();
                    fam.kind = kind.to_string();
                }
                _ => errors.push(format!("line {}: malformed TYPE: {line}", ln + 1)),
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // other comments, incl. # EXEMPLAR
        }
        // A sample: name[{labels}] value
        let (key, value_str) = match line.rsplit_once(' ') {
            Some(kv) => kv,
            None => {
                errors.push(format!("line {}: malformed sample: {line}", ln + 1));
                continue;
            }
        };
        let name = key.split('{').next().unwrap_or(key);
        if !valid_name(name) {
            errors.push(format!("line {}: invalid metric name {name:?}", ln + 1));
            continue;
        }
        let value: f64 = match value_str.parse() {
            Ok(v) => v,
            Err(_) => {
                errors.push(format!(
                    "line {}: unparseable value {value_str:?} for {name}",
                    ln + 1
                ));
                continue;
            }
        };
        match base_name(name, &exp.families) {
            Some(base) => {
                let base = base.to_string();
                let fam = exp.families.get_mut(&base).expect("resolved base");
                fam.samples.push((key.to_string(), value));
            }
            None => errors.push(format!(
                "line {}: sample {name} has no preceding # TYPE (unregistered-name drift)",
                ln + 1
            )),
        }
    }
    for (name, fam) in &exp.families {
        if fam.kind.is_empty() {
            errors.push(format!("family {name} has HELP but no TYPE"));
        }
        if fam.help.is_empty() {
            errors.push(format!("family {name} has no HELP"));
        }
    }
    if errors.is_empty() {
        Ok(exp)
    } else {
        Err(errors)
    }
}

impl Exposition {
    /// Sum of all samples of the *exact* name (across label sets),
    /// `None` when the family is absent. For histograms, pass the
    /// `_count`/`_sum` suffix explicitly.
    pub fn sample_sum(&self, name: &str) -> Option<f64> {
        let fam = self
            .families
            .get(name)
            .or_else(|| base_name(name, &self.families).and_then(|b| self.families.get(b)))?;
        let vals: Vec<f64> = fam
            .samples
            .iter()
            .filter(|(k, _)| k.split('{').next() == Some(name))
            .map(|(_, v)| *v)
            .collect();
        (!vals.is_empty()).then(|| vals.iter().sum())
    }

    /// Reconstructs a quantile (0 < q ≤ 1) from a histogram family's
    /// cumulative `_bucket` samples, merging label sets by summing
    /// per-`le` counts. Returns the upper edge of the bucket holding
    /// the rank, `None` when the family is missing, empty, or not a
    /// histogram.
    pub fn quantile(&self, name: &str, q: f64) -> Option<f64> {
        let fam = self.families.get(name)?;
        if fam.kind != "histogram" {
            return None;
        }
        let bucket_prefix = format!("{name}_bucket");
        let mut by_le: BTreeMap<String, f64> = BTreeMap::new();
        for (key, v) in &fam.samples {
            if key.split('{').next() != Some(bucket_prefix.as_str()) {
                continue;
            }
            let le = key
                .split("le=\"")
                .nth(1)
                .and_then(|r| r.split('"').next())?
                .to_string();
            *by_le.entry(le).or_insert(0.0) += v;
        }
        let mut edges: Vec<(f64, f64)> = Vec::new();
        let mut inf_count = 0.0;
        for (le, count) in by_le {
            if le == "+Inf" {
                inf_count = count;
            } else {
                edges.push((le.parse().ok()?, count));
            }
        }
        edges.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite edges"));
        let total = edges
            .last()
            .map(|&(_, c)| c.max(inf_count))
            .unwrap_or(inf_count);
        if total <= 0.0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * total).ceil().max(1.0);
        for (edge, cum) in &edges {
            if *cum >= rank {
                return Some(*edge);
            }
        }
        // Rank falls in the +Inf bucket: report the largest finite edge.
        edges.last().map(|&(e, _)| e)
    }
}

/// Lints a pair of scrapes taken from the same server, first scrape
/// then second: every family present in the first must survive into
/// the second (name drift), and counter/histogram-count samples must
/// be non-decreasing. Returns all violations.
pub fn lint_pair(prev: &Exposition, next: &Exposition) -> Vec<String> {
    let mut errors = Vec::new();
    for (name, fam) in &prev.families {
        let Some(nfam) = next.families.get(name) else {
            errors.push(format!("family {name} disappeared between scrapes"));
            continue;
        };
        if fam.kind != nfam.kind {
            errors.push(format!(
                "family {name} changed type: {} -> {}",
                fam.kind, nfam.kind
            ));
            continue;
        }
        let monotone = fam.kind == "counter" || fam.kind == "histogram";
        if !monotone {
            continue;
        }
        let next_vals: BTreeMap<&str, f64> =
            nfam.samples.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        for (key, v) in &fam.samples {
            match next_vals.get(key.as_str()) {
                None => errors.push(format!("sample {key} disappeared between scrapes")),
                Some(nv) if *nv < *v => errors.push(format!(
                    "sample {key} went backwards: {v} -> {nv} (counters are monotonic)"
                )),
                Some(_) => {}
            }
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "\
# HELP mmlp_requests_total Requests accepted.
# TYPE mmlp_requests_total counter
mmlp_requests_total 42
# HELP mmlp_latency_us Request latency.
# TYPE mmlp_latency_us histogram
mmlp_latency_us_bucket{le=\"10\"} 1
mmlp_latency_us_bucket{le=\"100\"} 9
mmlp_latency_us_bucket{le=\"+Inf\"} 10
# EXEMPLAR mmlp_latency_us trace_id=\"00000000000000ab\" value=250
mmlp_latency_us_sum 500
mmlp_latency_us_count 10
";

    #[test]
    fn well_formed_scrape_parses() {
        let exp = parse_exposition(GOOD).unwrap();
        assert_eq!(exp.families.len(), 2);
        assert_eq!(exp.sample_sum("mmlp_requests_total"), Some(42.0));
        assert_eq!(exp.sample_sum("mmlp_latency_us_count"), Some(10.0));
        assert_eq!(exp.sample_sum("missing"), None);
    }

    #[test]
    fn quantiles_come_from_cumulative_buckets() {
        let exp = parse_exposition(GOOD).unwrap();
        assert_eq!(exp.quantile("mmlp_latency_us", 0.05), Some(10.0));
        assert_eq!(exp.quantile("mmlp_latency_us", 0.9), Some(100.0));
        // Rank 10 sits in +Inf: largest finite edge is reported.
        assert_eq!(exp.quantile("mmlp_latency_us", 1.0), Some(100.0));
        assert_eq!(exp.quantile("mmlp_requests_total", 0.5), None);
    }

    #[test]
    fn unregistered_sample_is_flagged() {
        let errs = parse_exposition("stray_metric 1\n").unwrap_err();
        assert!(errs[0].contains("unregistered-name drift"), "{errs:?}");
    }

    #[test]
    fn missing_help_or_type_is_flagged() {
        let errs = parse_exposition("# TYPE only_type counter\nonly_type 1\n").unwrap_err();
        assert!(errs.iter().any(|e| e.contains("no HELP")), "{errs:?}");
        let errs2 = parse_exposition("# HELP only_help h\n").unwrap_err();
        assert!(errs2.iter().any(|e| e.contains("no TYPE")), "{errs2:?}");
    }

    #[test]
    fn bad_names_and_values_are_flagged() {
        let text = "# HELP 9bad h\n# TYPE 9bad counter\n9bad 1\n";
        let errs = parse_exposition(text).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("invalid metric name")));
        let text2 = "# HELP ok h\n# TYPE ok counter\nok pizza\n";
        let errs2 = parse_exposition(text2).unwrap_err();
        assert!(errs2.iter().any(|e| e.contains("unparseable value")));
    }

    #[test]
    fn pair_lint_catches_regressions_and_drift() {
        let a = parse_exposition(GOOD).unwrap();
        let shrunk = GOOD.replace("mmlp_requests_total 42", "mmlp_requests_total 41");
        let b = parse_exposition(&shrunk).unwrap();
        let errs = lint_pair(&a, &b);
        assert!(
            errs.iter().any(|e| e.contains("went backwards")),
            "{errs:?}"
        );

        let gone = parse_exposition(
            "# HELP mmlp_requests_total Requests accepted.\n\
             # TYPE mmlp_requests_total counter\nmmlp_requests_total 50\n",
        )
        .unwrap();
        let errs2 = lint_pair(&a, &gone);
        assert!(errs2.iter().any(|e| e.contains("disappeared")), "{errs2:?}");

        assert!(lint_pair(&a, &a).is_empty());
    }
}
