//! The lock-free metrics registry.
//!
//! Instruments are registered **once at startup** (registration takes a
//! mutex and allocates); hot paths then hold typed handles — [`Counter`],
//! [`Gauge`], [`HistogramHandle`] — whose update methods are a single
//! relaxed atomic operation. Counters are sharded across cache-padded
//! cells so concurrent bumpers on different cores do not ping-pong one
//! line; reads sum the shards.
//!
//! Naming follows the Prometheus data model (`mmlp_<subsystem>_<what>`
//! with `_total` on counters — see `specs/OBSERVABILITY.md`), and
//! [`Registry::render_prometheus`] emits the whole registry in
//! Prometheus text exposition format for the `METRICS` wire op.

use crate::hist::{AtomicHistogram, Histogram};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Counter shards. Eight padded cells absorb the realistic worker
/// counts; beyond that, threads share shards without correctness loss.
const SHARDS: usize = 8;

/// One cache line per shard, so adjacent shards never false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedCell(AtomicU64);

/// Round-robin shard assignment: each thread picks a home shard on its
/// first bump and keeps it for life (`ThreadId::as_u64` is unstable, so
/// a global ticket counter hands out the indices).
fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static HOME: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }
    HOME.with(|h| *h)
}

#[derive(Default)]
struct CounterCell {
    shards: [PaddedCell; SHARDS],
}

impl CounterCell {
    fn add(&self, n: u64) {
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A monotone counter handle. Cloning shares the underlying cell.
#[derive(Clone)]
pub struct Counter(Arc<CounterCell>);

impl Counter {
    /// A counter detached from any registry (useful as a placeholder in
    /// tests; it still counts, it just never renders).
    pub fn detached() -> Self {
        Counter(Arc::new(CounterCell::default()))
    }

    /// Adds `n`. One relaxed `fetch_add` on the calling thread's shard.
    pub fn add(&self, n: u64) {
        self.0.add(n);
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.0.add(1);
    }

    /// Current value (sums the shards; relaxed).
    pub fn get(&self) -> u64 {
        self.0.get()
    }
}

/// A last-value-wins gauge handle. Cloning shares the underlying cell.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A gauge detached from any registry.
    pub fn detached() -> Self {
        Gauge(Arc::new(AtomicU64::new(0)))
    }

    /// Sets the gauge.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger (high-water marks).
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A histogram handle. Cloning shares the underlying atomic histogram.
#[derive(Clone)]
pub struct HistogramHandle(Arc<AtomicHistogram>);

impl HistogramHandle {
    /// A histogram detached from any registry.
    pub fn detached() -> Self {
        HistogramHandle(Arc::new(AtomicHistogram::new()))
    }

    /// Records one sample (microseconds). Lock-free.
    pub fn record(&self, us: u64) {
        self.0.record(us);
    }

    /// Records one sample and, when `trace_id` is nonzero, offers it
    /// as the exemplar candidate (the scrape exposes the trace id of
    /// the largest traced sample since the last scrape).
    pub fn record_traced(&self, us: u64, trace_id: u64) {
        self.0.record_traced(us, trace_id);
    }

    /// Number of recorded samples.
    pub fn total(&self) -> u64 {
        self.0.total()
    }

    /// Point-in-time copy as a plain [`Histogram`].
    pub fn snapshot(&self) -> Histogram {
        self.0.snapshot()
    }
}

enum Instrument {
    Counter(Arc<CounterCell>),
    Gauge(Arc<AtomicU64>),
    Hist(Arc<AtomicHistogram>),
}

impl Instrument {
    fn type_name(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Hist(_) => "histogram",
        }
    }
}

struct Entry {
    name: String,
    labels: Vec<(String, String)>,
    help: String,
    inst: Instrument,
}

/// A named collection of instruments, rendered wholesale as Prometheus
/// text. One registry per server (or per CLI invocation); instruments
/// registered twice under the same name + label set share their cell,
/// so registration is idempotent.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

/// `true` for names the Prometheus data model accepts
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn register<T>(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        reuse: impl Fn(&Instrument) -> Option<T>,
        fresh: impl FnOnce() -> (Instrument, T),
    ) -> T {
        assert!(valid_name(name), "invalid metric name {name:?}");
        let mut entries = self.entries.lock().unwrap();
        if let Some(e) = entries
            .iter()
            .find(|e| e.name == name && label_eq(&e.labels, labels))
        {
            return reuse(&e.inst)
                .unwrap_or_else(|| panic!("metric {name:?} re-registered with a different type"));
        }
        let (inst, handle) = fresh();
        entries.push(Entry {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|&(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            help: help.to_string(),
            inst,
        });
        handle
    }

    /// Registers (or re-fetches) an unlabelled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, &[], help)
    }

    /// Registers (or re-fetches) a counter with label pairs.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Counter {
        self.register(
            name,
            labels,
            help,
            |inst| match inst {
                Instrument::Counter(c) => Some(Counter(Arc::clone(c))),
                _ => None,
            },
            || {
                let cell = Arc::new(CounterCell::default());
                (Instrument::Counter(Arc::clone(&cell)), Counter(cell))
            },
        )
    }

    /// Registers (or re-fetches) an unlabelled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, &[], help)
    }

    /// Registers (or re-fetches) a gauge with label pairs.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Gauge {
        self.register(
            name,
            labels,
            help,
            |inst| match inst {
                Instrument::Gauge(g) => Some(Gauge(Arc::clone(g))),
                _ => None,
            },
            || {
                let cell = Arc::new(AtomicU64::new(0));
                (Instrument::Gauge(Arc::clone(&cell)), Gauge(cell))
            },
        )
    }

    /// Registers (or re-fetches) an unlabelled histogram.
    pub fn histogram(&self, name: &str, help: &str) -> HistogramHandle {
        self.histogram_with(name, &[], help)
    }

    /// Registers (or re-fetches) a histogram with label pairs.
    pub fn histogram_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
    ) -> HistogramHandle {
        self.register(
            name,
            labels,
            help,
            |inst| match inst {
                Instrument::Hist(h) => Some(HistogramHandle(Arc::clone(h))),
                _ => None,
            },
            || {
                let cell = Arc::new(AtomicHistogram::new());
                (Instrument::Hist(Arc::clone(&cell)), HistogramHandle(cell))
            },
        )
    }

    /// Renders every instrument in Prometheus text exposition format:
    /// one `# HELP` / `# TYPE` pair per metric name (first registration
    /// wins), then one sample line per label set — histograms expand to
    /// cumulative `_bucket{le=...}` samples plus `_sum` and `_count`.
    pub fn render_prometheus(&self) -> String {
        let entries = self.entries.lock().unwrap();
        let mut out = String::new();
        let mut seen: Vec<&str> = Vec::new();
        for e in entries.iter() {
            if seen.contains(&e.name.as_str()) {
                continue;
            }
            seen.push(&e.name);
            out.push_str(&format!("# HELP {} {}\n", e.name, e.help));
            out.push_str(&format!("# TYPE {} {}\n", e.name, e.inst.type_name()));
            for s in entries.iter().filter(|s| s.name == e.name) {
                render_sample(&mut out, s);
            }
        }
        out
    }
}

fn label_eq(stored: &[(String, String)], query: &[(&str, &str)]) -> bool {
    stored.len() == query.len()
        && stored
            .iter()
            .zip(query)
            .all(|((sk, sv), &(qk, qv))| sk == qk && sv == qv)
}

/// `{k="v",...}` (empty string for no labels), with an optional extra
/// pair appended (histogram `le`).
fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{v}\""));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

fn render_sample(out: &mut String, e: &Entry) {
    match &e.inst {
        Instrument::Counter(c) => {
            out.push_str(&format!(
                "{}{} {}\n",
                e.name,
                label_block(&e.labels, None),
                c.get()
            ));
        }
        Instrument::Gauge(g) => {
            out.push_str(&format!(
                "{}{} {}\n",
                e.name,
                label_block(&e.labels, None),
                g.load(Ordering::Relaxed)
            ));
        }
        Instrument::Hist(h) => {
            let snap = h.snapshot();
            for (edge, cum) in snap.cumulative_edges() {
                out.push_str(&format!(
                    "{}_bucket{} {}\n",
                    e.name,
                    label_block(&e.labels, Some(("le", &edge.to_string()))),
                    cum
                ));
            }
            out.push_str(&format!(
                "{}_bucket{} {}\n",
                e.name,
                label_block(&e.labels, Some(("le", "+Inf"))),
                snap.total()
            ));
            out.push_str(&format!(
                "{}_sum{} {}\n",
                e.name,
                label_block(&e.labels, None),
                snap.sum_us()
            ));
            out.push_str(&format!(
                "{}_count{} {}\n",
                e.name,
                label_block(&e.labels, None),
                snap.total()
            ));
            // Exemplar: a comment line (classic text exposition has no
            // exemplar syntax; OpenMetrics-style consumers and our own
            // lint treat comments as inert). Taking it resets the
            // "since last scrape" window.
            if let Some((us, trace)) = h.take_exemplar() {
                out.push_str(&format!(
                    "# EXEMPLAR {}{} trace_id=\"{trace:016x}\" value={us}\n",
                    e.name,
                    label_block(&e.labels, None),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_count_across_threads() {
        let reg = Registry::new();
        let c = reg.counter("mmlp_test_total", "test counter");
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn registration_is_idempotent_per_name_and_labels() {
        let reg = Registry::new();
        let a = reg.counter_with("mmlp_ops_total", &[("op", "solve")], "ops");
        let b = reg.counter_with("mmlp_ops_total", &[("op", "solve")], "ops");
        let other = reg.counter_with("mmlp_ops_total", &[("op", "info")], "ops");
        a.add(2);
        b.add(3);
        other.add(7);
        assert_eq!(a.get(), 5, "same name+labels share the cell");
        assert_eq!(other.get(), 7);
        let text = reg.render_prometheus();
        assert_eq!(
            text.matches("# TYPE mmlp_ops_total counter").count(),
            1,
            "one TYPE line per metric name:\n{text}"
        );
        assert!(text.contains("mmlp_ops_total{op=\"solve\"} 5"), "{text}");
        assert!(text.contains("mmlp_ops_total{op=\"info\"} 7"), "{text}");
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_conflicts_panic_at_registration() {
        let reg = Registry::new();
        let _c = reg.counter("mmlp_conflict", "as counter");
        let _g = reg.gauge("mmlp_conflict", "as gauge");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_names_are_rejected() {
        let reg = Registry::new();
        let _ = reg.counter("mmlp.bad-name", "dots and dashes");
    }

    #[test]
    fn gauges_hold_last_value_and_high_water() {
        let reg = Registry::new();
        let g = reg.gauge("mmlp_depth", "queue depth");
        g.set(5);
        g.set(2);
        assert_eq!(g.get(), 2);
        g.set_max(10);
        g.set_max(4);
        assert_eq!(g.get(), 10);
    }

    #[test]
    fn prometheus_rendering_has_help_type_and_histogram_series() {
        let reg = Registry::new();
        reg.counter("mmlp_requests_total", "requests").add(3);
        reg.gauge("mmlp_uptime_ms", "uptime").set(1234);
        let h = reg.histogram("mmlp_latency_us", "latency");
        h.record(5);
        h.record(900);
        let text = reg.render_prometheus();
        assert!(
            text.contains("# HELP mmlp_requests_total requests"),
            "{text}"
        );
        assert!(
            text.contains("# TYPE mmlp_requests_total counter"),
            "{text}"
        );
        assert!(text.contains("mmlp_requests_total 3"), "{text}");
        assert!(text.contains("# TYPE mmlp_uptime_ms gauge"), "{text}");
        assert!(text.contains("mmlp_uptime_ms 1234"), "{text}");
        assert!(text.contains("# TYPE mmlp_latency_us histogram"), "{text}");
        assert!(
            text.contains("mmlp_latency_us_bucket{le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(text.contains("mmlp_latency_us_sum 905"), "{text}");
        assert!(text.contains("mmlp_latency_us_count 2"), "{text}");
        // Cumulative bucket counts are monotone.
        let mut prev = 0;
        for line in text
            .lines()
            .filter(|l| l.starts_with("mmlp_latency_us_bucket"))
        {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= prev, "{text}");
            prev = v;
        }
    }

    #[test]
    fn exemplars_render_once_per_scrape_window() {
        let reg = Registry::new();
        let h = reg.histogram("mmlp_latency_us", "latency");
        h.record(5);
        h.record_traced(900, 0xbeef);
        let text = reg.render_prometheus();
        assert!(
            text.contains("# EXEMPLAR mmlp_latency_us trace_id=\"000000000000beef\" value=900"),
            "{text}"
        );
        // The take reset the window: a second scrape has no exemplar…
        assert!(!reg.render_prometheus().contains("# EXEMPLAR"));
        // …until the next traced observation arrives.
        h.record_traced(7, 0xcafe);
        assert!(reg
            .render_prometheus()
            .contains("trace_id=\"000000000000cafe\""));
    }
}
