//! Crash-safe, append-only event journal.
//!
//! A journal directory holds numbered files (`journal.000000.mmlpj`,
//! `journal.000001.mmlpj`, …), each a 16-byte header followed by
//! length-framed, FNV-1a-checksummed binary records:
//!
//! ```text
//! file   := magic "MMLPJRN1" · version u16 LE · reserved u16 · reserved u32
//! record := kind u8 · payload_len u32 LE · fnv1a64(payload) u64 LE · payload
//! payload:= trace_id u64 LE · UTF-8 text
//! ```
//!
//! Recovery reuses `mmlp-store`'s torn-tail truncation discipline
//! (re-implemented here — this crate is dependency-free by design):
//! **framing damage** (short header, unknown kind, impossible length,
//! payload running past EOF) marks everything from that offset as a
//! torn tail, which [`Journal::open`] physically truncates so appends
//! continue on a clean boundary; a **checksum or UTF-8 mismatch** with
//! intact framing skips just that record and keeps scanning. A kill
//! -9 mid-append therefore loses at most the record being written.
//!
//! Writes go through a dedicated drainer thread fed by a bounded
//! queue: the hot path pays one `try_send` (a failed send is counted,
//! never blocked on), the drainer batches, appends, flushes, rotates
//! files past the byte budget, and prunes the oldest files beyond
//! `max_files`.

use std::collections::VecDeque;
use std::fs;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;

/// Journal file magic (first 8 bytes).
pub const JOURNAL_MAGIC: [u8; 8] = *b"MMLPJRN1";
/// Format version stamped in every file header.
pub const JOURNAL_VERSION: u16 = 1;
/// File header length in bytes.
pub const HEADER_LEN: usize = 16;
/// Record header length in bytes (kind + length + checksum).
pub const REC_HEADER_LEN: usize = 13;
/// Payloads above this are framing damage, not records.
pub const MAX_PAYLOAD: u32 = 16 << 20;

/// Record kind: a finished request span tree ([`crate::span::SpanTree::to_text`]).
pub const EV_SPAN: u8 = 1;
/// Record kind: a cache/LRU eviction notice.
pub const EV_CACHE: u8 = 2;
/// Record kind: a BUSY (queue full) rejection.
pub const EV_BUSY: u8 = 3;
/// Record kind: a delta lineage resolution (mode, dirty-ball size).
pub const EV_DELTA: u8 = 4;
/// Record kind: a store open/gc/verify outcome.
pub const EV_STORE: u8 = 5;
/// Record kind: a lab job lifecycle event.
pub const EV_LAB: u8 = 6;

const KIND_MAX: u8 = EV_LAB;

/// Human-readable name of a record kind (for `obs journal` output).
pub fn kind_name(kind: u8) -> &'static str {
    match kind {
        EV_SPAN => "span",
        EV_CACHE => "cache",
        EV_BUSY => "busy",
        EV_DELTA => "delta",
        EV_STORE => "store",
        EV_LAB => "lab",
        _ => "unknown",
    }
}

/// One journal event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalRecord {
    /// One of the `EV_*` kinds.
    pub kind: u8,
    /// Associated trace id, or 0 when the event is not request-scoped.
    pub trace_id: u64,
    /// Kind-specific UTF-8 body (span trees use the span text format).
    pub text: String,
}

/// FNV-1a 64-bit over raw bytes (the journal's checksum).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn encode_record(rec: &JournalRecord) -> Vec<u8> {
    let mut payload = Vec::with_capacity(8 + rec.text.len());
    payload.extend_from_slice(&rec.trace_id.to_le_bytes());
    payload.extend_from_slice(rec.text.as_bytes());
    let mut out = Vec::with_capacity(REC_HEADER_LEN + payload.len());
    out.push(rec.kind);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

fn file_header() -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[..8].copy_from_slice(&JOURNAL_MAGIC);
    h[8..10].copy_from_slice(&JOURNAL_VERSION.to_le_bytes());
    h
}

/// What a scan of one journal file found.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScanReport {
    /// Offset of framing damage (torn tail), if any: everything from
    /// here on is unreadable and safe to truncate.
    pub torn_at: Option<u64>,
    /// Offsets of records skipped for checksum/decoding damage.
    pub corrupt_at: Vec<u64>,
}

/// Scans one journal file image: records plus damage report.
///
/// Bad file header ⇒ the whole file is a torn tail at offset 0.
pub fn scan_file(bytes: &[u8]) -> (Vec<JournalRecord>, ScanReport) {
    let mut records = Vec::new();
    let mut report = ScanReport::default();
    if bytes.len() < HEADER_LEN
        || bytes[..8] != JOURNAL_MAGIC
        || u16::from_le_bytes([bytes[8], bytes[9]]) != JOURNAL_VERSION
    {
        report.torn_at = Some(0);
        return (records, report);
    }
    let mut off = HEADER_LEN;
    while off < bytes.len() {
        if bytes.len() - off < REC_HEADER_LEN {
            report.torn_at = Some(off as u64);
            return (records, report);
        }
        let kind = bytes[off];
        let len = u32::from_le_bytes(bytes[off + 1..off + 5].try_into().unwrap());
        let sum = u64::from_le_bytes(bytes[off + 5..off + 13].try_into().unwrap());
        if kind == 0 || kind > KIND_MAX || len > MAX_PAYLOAD || (len as usize) < 8 {
            report.torn_at = Some(off as u64);
            return (records, report);
        }
        let start = off + REC_HEADER_LEN;
        let end = start + len as usize;
        if end > bytes.len() {
            report.torn_at = Some(off as u64);
            return (records, report);
        }
        let payload = &bytes[start..end];
        if fnv1a64(payload) != sum {
            report.corrupt_at.push(off as u64);
            off = end;
            continue;
        }
        let trace_id = u64::from_le_bytes(payload[..8].try_into().unwrap());
        match std::str::from_utf8(&payload[8..]) {
            Ok(text) => records.push(JournalRecord {
                kind,
                trace_id,
                text: text.to_string(),
            }),
            Err(_) => report.corrupt_at.push(off as u64),
        }
        off = end;
    }
    (records, report)
}

/// Writer-side configuration.
#[derive(Clone, Debug)]
pub struct JournalConfig {
    /// Directory holding the journal files (created if missing).
    pub dir: PathBuf,
    /// Rotate the active file once it exceeds this many bytes.
    pub file_budget: u64,
    /// Keep at most this many files; older ones are deleted.
    pub max_files: usize,
    /// Bounded queue depth between `emit` and the drainer.
    pub queue_cap: usize,
}

impl JournalConfig {
    /// Defaults: 4 MiB per file, 4 files, 1024-deep queue.
    pub fn new(dir: impl Into<PathBuf>) -> JournalConfig {
        JournalConfig {
            dir: dir.into(),
            file_budget: 4 << 20,
            max_files: 4,
            queue_cap: 1024,
        }
    }
}

/// What [`Journal::open`] found and repaired.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JournalOpenReport {
    /// Intact records found across existing files.
    pub recovered: usize,
    /// Torn-tail bytes truncated off the active file.
    pub torn_truncated: u64,
    /// Records skipped for checksum damage during recovery.
    pub corrupt: usize,
    /// Journal files present after recovery.
    pub files: usize,
}

enum Msg {
    Rec(JournalRecord),
    Flush(SyncSender<()>),
}

/// The writer handle: cheap to clone via `Arc`, safe to `emit` from
/// any thread. Dropping the last handle joins the drainer (flushing
/// everything queued).
#[derive(Debug)]
pub struct Journal {
    tx: SyncSender<Msg>,
    handle: Option<std::thread::JoinHandle<()>>,
    appended: Arc<AtomicU64>,
    dropped: AtomicU64,
}

fn file_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("journal.{seq:06}.mmlpj"))
}

/// Lists a directory's journal files as (seq, path), ascending.
fn list_files(dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(mid) = name
            .strip_prefix("journal.")
            .and_then(|r| r.strip_suffix(".mmlpj"))
        {
            if let Ok(seq) = mid.parse::<u64>() {
                out.push((seq, entry.path()));
            }
        }
    }
    out.sort();
    Ok(out)
}

impl Journal {
    /// Opens (or creates) the journal in `cfg.dir`, recovering the
    /// active file: a torn tail is truncated in place so appends
    /// resume on a record boundary.
    pub fn open(cfg: JournalConfig) -> std::io::Result<(Journal, JournalOpenReport)> {
        fs::create_dir_all(&cfg.dir)?;
        let files = list_files(&cfg.dir)?;
        let mut report = JournalOpenReport {
            files: files.len().max(1),
            ..JournalOpenReport::default()
        };
        let seq = files.last().map(|(s, _)| *s).unwrap_or(0);
        // Recover every existing file for the report; physically
        // truncate only the active (last) one — older files are
        // immutable history and their damage is reported, not edited.
        for (i, (_, path)) in files.iter().enumerate() {
            let bytes = fs::read(path)?;
            let (recs, scan) = scan_file(&bytes);
            report.recovered += recs.len();
            report.corrupt += scan.corrupt_at.len();
            if i == files.len() - 1 {
                if let Some(torn) = scan.torn_at {
                    report.torn_truncated = bytes.len() as u64 - torn;
                    let f = fs::OpenOptions::new().write(true).open(path)?;
                    f.set_len(torn)?;
                    if torn < HEADER_LEN as u64 {
                        // Header itself was torn: restamp it.
                        let mut f = fs::OpenOptions::new().write(true).open(path)?;
                        f.seek(SeekFrom::Start(0))?;
                        f.write_all(&file_header())?;
                    }
                }
            }
        }
        let active = file_path(&cfg.dir, seq);
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&active)?;
        if file.metadata()?.len() < HEADER_LEN as u64 {
            file.set_len(0)?;
            file.write_all(&file_header())?;
            file.flush()?;
        }

        let (tx, rx) = sync_channel::<Msg>(cfg.queue_cap.max(1));
        let appended = Arc::new(AtomicU64::new(0));
        let appended_w = Arc::clone(&appended);
        let handle = std::thread::Builder::new()
            .name("mmlp-journal".into())
            .spawn(move || drainer(cfg, file, seq, rx, appended_w))
            .expect("spawn journal drainer");
        Ok((
            Journal {
                tx,
                handle: Some(handle),
                appended,
                dropped: AtomicU64::new(0),
            },
            report,
        ))
    }

    /// Queues a record for appending. Never blocks: when the queue is
    /// full the record is dropped and counted in [`Self::dropped`].
    pub fn emit(&self, rec: JournalRecord) {
        match self.tx.try_send(Msg::Rec(rec)) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Blocks until everything queued before this call is on disk.
    pub fn flush(&self) {
        let (ack_tx, ack_rx) = sync_channel(1);
        if self.tx.send(Msg::Flush(ack_tx)).is_ok() {
            let _ = ack_rx.recv();
        }
    }

    /// Records appended to disk so far.
    pub fn appended(&self) -> u64 {
        self.appended.load(Ordering::Relaxed)
    }

    /// Records dropped on a full queue so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl Drop for Journal {
    fn drop(&mut self) {
        // Closing the channel makes the drainer finish its backlog
        // and exit; join so the final flush is visible to the caller.
        let (tx, _) = sync_channel(1);
        let old = std::mem::replace(&mut self.tx, tx);
        drop(old);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn drainer(
    cfg: JournalConfig,
    mut file: fs::File,
    mut seq: u64,
    rx: Receiver<Msg>,
    appended: Arc<AtomicU64>,
) {
    let mut size = file.metadata().map(|m| m.len()).unwrap_or(0);
    let mut batch: VecDeque<Msg> = VecDeque::new();
    loop {
        // Block for the first message, then drain whatever else is
        // queued so one write/flush covers the batch.
        match rx.recv() {
            Ok(m) => batch.push_back(m),
            Err(_) => return, // all writer handles dropped; backlog is empty
        }
        while let Ok(m) = rx.try_recv() {
            batch.push_back(m);
        }
        let mut wrote = 0u64;
        let mut buf = Vec::new();
        let mut flushes: Vec<SyncSender<()>> = Vec::new();
        while let Some(m) = batch.pop_front() {
            match m {
                Msg::Rec(rec) => {
                    buf.extend_from_slice(&encode_record(&rec));
                    wrote += 1;
                }
                Msg::Flush(ack) => flushes.push(ack),
            }
        }
        if !buf.is_empty() && file.write_all(&buf).and_then(|()| file.flush()).is_ok() {
            size += buf.len() as u64;
            appended.fetch_add(wrote, Ordering::Relaxed);
        }
        if size >= cfg.file_budget {
            seq += 1;
            if let Ok(next) = fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(file_path(&cfg.dir, seq))
            {
                file = next;
                let _ = file.write_all(&file_header());
                let _ = file.flush();
                size = HEADER_LEN as u64;
                if let Ok(files) = list_files(&cfg.dir) {
                    let keep = cfg.max_files.max(1);
                    if files.len() > keep {
                        for (_, path) in &files[..files.len() - keep] {
                            let _ = fs::remove_file(path);
                        }
                    }
                }
            }
        }
        for ack in flushes {
            let _ = ack.try_send(());
        }
    }
}

/// What reading a whole journal directory found.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReadReport {
    /// Files scanned, ascending sequence order.
    pub files: usize,
    /// Files ending in a torn tail.
    pub torn_files: usize,
    /// Records skipped for checksum damage.
    pub corrupt: usize,
}

/// Reads every record from a journal directory, oldest file first,
/// applying the same per-file damage discipline as recovery (torn
/// tail stops that file; checksum damage skips the record).
pub fn read_journal_dir(dir: &Path) -> std::io::Result<(Vec<JournalRecord>, ReadReport)> {
    let mut records = Vec::new();
    let mut report = ReadReport::default();
    for (_, path) in list_files(dir)? {
        let mut bytes = Vec::new();
        fs::File::open(&path)?.read_to_end(&mut bytes)?;
        let (recs, scan) = scan_file(&bytes);
        records.extend(recs);
        report.files += 1;
        report.torn_files += scan.torn_at.is_some() as usize;
        report.corrupt += scan.corrupt_at.len();
    }
    Ok((records, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mmlp-journal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn rec(kind: u8, trace_id: u64, text: &str) -> JournalRecord {
        JournalRecord {
            kind,
            trace_id,
            text: text.into(),
        }
    }

    #[test]
    fn encode_scan_round_trips() {
        let mut bytes = file_header().to_vec();
        let recs = vec![
            rec(EV_SPAN, 7, "mmlpspan 1\ntrace 0007 10 x\n"),
            rec(EV_BUSY, 0, "queue full (64 deep)"),
            rec(EV_DELTA, 9, "mode=warm dirty_x=3"),
        ];
        for r in &recs {
            bytes.extend_from_slice(&encode_record(r));
        }
        let (got, report) = scan_file(&bytes);
        assert_eq!(got, recs);
        assert_eq!(report, ScanReport::default());
    }

    #[test]
    fn framing_damage_is_a_torn_tail() {
        let mut bytes = file_header().to_vec();
        bytes.extend_from_slice(&encode_record(&rec(EV_SPAN, 1, "a")));
        let good_len = bytes.len();
        // A half-written header.
        bytes.extend_from_slice(&[EV_BUSY, 3, 0]);
        let (got, report) = scan_file(&bytes);
        assert_eq!(got.len(), 1);
        assert_eq!(report.torn_at, Some(good_len as u64));

        // An impossible kind truncates from its offset too.
        let mut bytes2 = bytes[..good_len].to_vec();
        bytes2.push(99);
        bytes2.extend_from_slice(&[0u8; 12]);
        let (_, report2) = scan_file(&bytes2);
        assert_eq!(report2.torn_at, Some(good_len as u64));
    }

    #[test]
    fn checksum_damage_skips_only_that_record() {
        let mut bytes = file_header().to_vec();
        bytes.extend_from_slice(&encode_record(&rec(EV_SPAN, 1, "first")));
        let corrupt_at = bytes.len();
        bytes.extend_from_slice(&encode_record(&rec(EV_CACHE, 2, "second")));
        bytes.extend_from_slice(&encode_record(&rec(EV_STORE, 3, "third")));
        // Flip a payload byte of the middle record.
        bytes[corrupt_at + REC_HEADER_LEN + 8] ^= 0xff;
        let (got, report) = scan_file(&bytes);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].text, "first");
        assert_eq!(got[1].text, "third");
        assert_eq!(report.corrupt_at, vec![corrupt_at as u64]);
        assert_eq!(report.torn_at, None);
    }

    #[test]
    fn bad_file_header_is_torn_at_zero() {
        let (got, report) = scan_file(b"not a journal");
        assert!(got.is_empty());
        assert_eq!(report.torn_at, Some(0));
    }

    #[test]
    fn open_emit_flush_read_round_trips() {
        let dir = temp_dir("rt");
        let (j, open) = Journal::open(JournalConfig::new(&dir)).unwrap();
        assert_eq!(open.recovered, 0);
        for i in 0..50u64 {
            j.emit(rec(EV_SPAN, i + 1, &format!("event {i}")));
        }
        j.flush();
        assert_eq!(j.appended(), 50);
        assert_eq!(j.dropped(), 0);
        drop(j);
        let (recs, report) = read_journal_dir(&dir).unwrap();
        assert_eq!(recs.len(), 50);
        assert_eq!(recs[49].text, "event 49");
        assert_eq!(report.torn_files, 0);
        assert_eq!(report.corrupt, 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_truncates_the_torn_tail_and_appends_cleanly() {
        let dir = temp_dir("torn");
        let (j, _) = Journal::open(JournalConfig::new(&dir)).unwrap();
        for i in 0..10u64 {
            j.emit(rec(EV_SPAN, i + 1, "survivor"));
        }
        j.flush();
        drop(j);
        // Simulate a kill -9 mid-append: a partial record at the tail.
        let path = file_path(&dir, 0);
        let mut f = fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[EV_SPAN, 200, 1, 0]).unwrap();
        drop(f);

        let (j2, open) = Journal::open(JournalConfig::new(&dir)).unwrap();
        assert_eq!(open.recovered, 10);
        assert_eq!(open.torn_truncated, 4);
        j2.emit(rec(EV_BUSY, 0, "after recovery"));
        j2.flush();
        drop(j2);

        let (recs, report) = read_journal_dir(&dir).unwrap();
        assert_eq!(recs.len(), 11, "10 survivors + 1 post-recovery append");
        assert_eq!(recs[10].text, "after recovery");
        assert_eq!(report.torn_files, 0, "the tail was repaired in place");
        assert_eq!(report.corrupt, 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_respects_budget_and_prunes_old_files() {
        let dir = temp_dir("rot");
        let cfg = JournalConfig {
            file_budget: 256,
            max_files: 2,
            ..JournalConfig::new(&dir)
        };
        let (j, _) = Journal::open(cfg).unwrap();
        let big = "x".repeat(100);
        for i in 0..40u64 {
            j.emit(rec(EV_LAB, i, &big));
            // Flush per record so each lands before the rotation check.
            j.flush();
        }
        drop(j);
        let files = list_files(&dir).unwrap();
        assert!(files.len() <= 2, "pruned to max_files: {files:?}");
        assert!(files[0].0 > 0, "oldest files were deleted");
        let (recs, _) = read_journal_dir(&dir).unwrap();
        assert!(!recs.is_empty() && recs.len() < 40);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn emit_never_blocks_on_a_full_queue() {
        let dir = temp_dir("full");
        let cfg = JournalConfig {
            queue_cap: 4,
            ..JournalConfig::new(&dir)
        };
        let (j, _) = Journal::open(cfg).unwrap();
        for i in 0..10_000u64 {
            j.emit(rec(EV_SPAN, i + 1, "burst"));
        }
        j.flush();
        let written = j.appended();
        let dropped = j.dropped();
        assert_eq!(
            written + dropped,
            10_000,
            "every emit either lands or is counted as dropped"
        );
        drop(j);
        fs::remove_dir_all(&dir).ok();
    }
}
