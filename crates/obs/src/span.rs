//! Request-scoped span trees.
//!
//! One request = one [`SpanTree`]: a process-unique `trace_id`, a
//! human-readable label (the command line that produced it), a total
//! wall time, and a flat vector of [`Span`]s linked by parent ids.
//! The serve layer records spans through a [`SpanRecorder`] as the
//! request moves queue → cache → execute (solver phases) → store, then
//! `finish()`es the tree into a bounded [`SpanRing`] and the event
//! journal. Trace ids travel over the wire in the optional `TRACE
//! <hex>` protocol line (`specs/PROTOCOL.md`), so a loadgen-minted id
//! can be found again with `maxmin-lp obs trace <id>`.
//!
//! The text serialisation ([`SpanTree::to_text`] /
//! [`SpanTree::parse_text`]) is what the journal stores: versioned,
//! line-oriented, and parseable without this process's state.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Sentinel parent id meaning "child of the request root".
pub const ROOT_SPAN: u32 = 0;

/// First line of the span-tree text serialisation (format version 1).
pub const SPAN_TEXT_MAGIC: &str = "mmlpspan 1";

/// One timed interval inside a request, positioned relative to the
/// request's start.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// Id unique within the tree (1-based; [`ROOT_SPAN`] is the root).
    pub id: u32,
    /// Parent span id, or [`ROOT_SPAN`] for top-level spans.
    pub parent: u32,
    /// Interval name (`queue`, `execute`, `gather`, `store`, …).
    pub name: String,
    /// Nanoseconds from request start to interval start.
    pub start_ns: u64,
    /// Interval length in nanoseconds.
    pub dur_ns: u64,
}

/// A finished request trace: the root interval plus its spans.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanTree {
    /// Trace id (nonzero; `0` means "untraced" everywhere else).
    pub trace_id: u64,
    /// Request label, e.g. the wire command line.
    pub label: String,
    /// Whole-request wall time in nanoseconds.
    pub total_ns: u64,
    /// All recorded spans, in recording order.
    pub spans: Vec<Span>,
}

/// Formats a trace id the way the wire protocol and CLI expect it:
/// 16 lowercase hex digits, zero-padded.
pub fn format_trace_id(id: u64) -> String {
    format!("{id:016x}")
}

/// Parses a trace id as produced by [`format_trace_id`] (1–16 hex
/// digits, any case). Returns `None` for empty, overlong, non-hex, or
/// zero input — zero is the "untraced" sentinel and never a valid id.
pub fn parse_trace_id(s: &str) -> Option<u64> {
    if s.is_empty() || s.len() > 16 {
        return None;
    }
    let id = u64::from_str_radix(s, 16).ok()?;
    (id != 0).then_some(id)
}

impl SpanTree {
    /// Serialises the tree to the versioned line format stored in the
    /// event journal:
    ///
    /// ```text
    /// mmlpspan 1
    /// trace <16-hex> <total_ns> <label…>
    /// s <id> <parent> <start_ns> <dur_ns> <name…>
    /// ```
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(64 + self.spans.len() * 48);
        out.push_str(SPAN_TEXT_MAGIC);
        out.push('\n');
        out.push_str(&format!(
            "trace {} {} {}\n",
            format_trace_id(self.trace_id),
            self.total_ns,
            self.label
        ));
        for s in &self.spans {
            out.push_str(&format!(
                "s {} {} {} {} {}\n",
                s.id, s.parent, s.start_ns, s.dur_ns, s.name
            ));
        }
        out
    }

    /// Parses the [`Self::to_text`] format. Returns a description of
    /// the first malformed line on failure.
    pub fn parse_text(text: &str) -> Result<SpanTree, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some(l) if l == SPAN_TEXT_MAGIC => {}
            other => return Err(format!("bad span magic: {other:?}")),
        }
        let header = lines.next().ok_or("missing trace header")?;
        let rest = header
            .strip_prefix("trace ")
            .ok_or_else(|| format!("bad trace header: {header}"))?;
        let mut it = rest.splitn(3, ' ');
        let trace_id = it
            .next()
            .and_then(parse_trace_id)
            .ok_or_else(|| format!("bad trace id in: {header}"))?;
        let total_ns: u64 = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| format!("bad total_ns in: {header}"))?;
        let label = it.next().unwrap_or("").to_string();
        let mut spans = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let body = line
                .strip_prefix("s ")
                .ok_or_else(|| format!("bad span line: {line}"))?;
            let mut f = body.splitn(5, ' ');
            let mut num = |what: &str| -> Result<u64, String> {
                f.next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| format!("bad {what} in span line: {line}"))
            };
            let id = num("id")? as u32;
            let parent = num("parent")? as u32;
            let start_ns = num("start_ns")?;
            let dur_ns = num("dur_ns")?;
            let name = f.next().unwrap_or("").to_string();
            spans.push(Span {
                id,
                parent,
                name,
                start_ns,
                dur_ns,
            });
        }
        Ok(SpanTree {
            trace_id,
            label,
            total_ns,
            spans,
        })
    }
}

/// Renders a span tree as an indented timeline, children under their
/// parents, each line showing share-of-total and wall time.
pub fn render_span_tree(tree: &SpanTree) -> String {
    let mut out = format!(
        "trace {}  {}  total {}\n",
        format_trace_id(tree.trace_id),
        tree.label,
        crate::report::fmt_ns(tree.total_ns)
    );
    let total = tree.total_ns.max(1);
    fn walk(out: &mut String, tree: &SpanTree, parent: u32, depth: usize, total: u64) {
        for s in tree.spans.iter().filter(|s| s.parent == parent) {
            let share = 100.0 * s.dur_ns as f64 / total as f64;
            out.push_str(&format!(
                "{:indent$}{:<24} {:>5.1}%  {}\n",
                "",
                s.name,
                share,
                crate::report::fmt_ns(s.dur_ns),
                indent = 2 + depth * 2,
            ));
            if s.id != ROOT_SPAN {
                walk(out, tree, s.id, depth + 1, total);
            }
        }
    }
    walk(&mut out, tree, ROOT_SPAN, 0, total);
    out
}

/// Collects spans for one in-flight request.
///
/// Thread-safe: the serve layer hands an `Arc<SpanRecorder>` to the
/// worker pool, so queue/execute spans are recorded off-thread while
/// the connection thread records cache/store spans. All offsets are
/// relative to the recorder's construction instant.
#[derive(Debug)]
pub struct SpanRecorder {
    trace_id: u64,
    label: String,
    t0: Instant,
    spans: Mutex<Vec<Span>>,
    next_id: AtomicU32,
    /// A parent id "anchor" for callees that cannot see the span ids
    /// their caller allocated: the pool sets it to the `execute` span
    /// so the solver closure can nest its phase spans underneath.
    anchor: AtomicU32,
}

impl SpanRecorder {
    /// Starts recording; the construction instant is time zero.
    pub fn new(trace_id: u64, label: impl Into<String>) -> SpanRecorder {
        SpanRecorder {
            trace_id,
            label: label.into(),
            t0: Instant::now(),
            spans: Mutex::new(Vec::new()),
            next_id: AtomicU32::new(1),
            anchor: AtomicU32::new(ROOT_SPAN),
        }
    }

    /// The trace id this recorder was minted with.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// Records a span from explicit offsets. Returns its id.
    pub fn add_ns(&self, parent: u32, name: &str, start_ns: u64, dur_ns: u64) -> u32 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.spans.lock().expect("span recorder").push(Span {
            id,
            parent,
            name: name.to_string(),
            start_ns,
            dur_ns,
        });
        id
    }

    /// Records a span from an [`Instant`] + [`Duration`] pair; the
    /// start is clamped to the recorder's time zero.
    pub fn add(&self, parent: u32, name: &str, start: Instant, dur: Duration) -> u32 {
        let start_ns = start.saturating_duration_since(self.t0).as_nanos() as u64;
        self.add_ns(parent, name, start_ns, dur.as_nanos() as u64)
    }

    /// Opens a span starting now with zero length; pair with
    /// [`Self::close`].
    pub fn open(&self, parent: u32, name: &str) -> u32 {
        let start_ns = self.t0.elapsed().as_nanos() as u64;
        self.add_ns(parent, name, start_ns, 0)
    }

    /// Closes an [`Self::open`]ed span: its length becomes
    /// now − start. Unknown ids are ignored.
    pub fn close(&self, id: u32) {
        let now_ns = self.t0.elapsed().as_nanos() as u64;
        let mut spans = self.spans.lock().expect("span recorder");
        if let Some(s) = spans.iter_mut().find(|s| s.id == id) {
            s.dur_ns = now_ns.saturating_sub(s.start_ns);
        }
    }

    /// Publishes a parent id for callees that record under it (see the
    /// field docs); [`ROOT_SPAN`] clears it.
    pub fn set_anchor(&self, id: u32) {
        self.anchor.store(id, Ordering::Release);
    }

    /// The currently published anchor, or [`ROOT_SPAN`].
    pub fn anchor(&self) -> u32 {
        self.anchor.load(Ordering::Acquire)
    }

    /// Finishes the tree: total = time since construction.
    pub fn finish(&self) -> SpanTree {
        SpanTree {
            trace_id: self.trace_id,
            label: self.label.clone(),
            total_ns: self.t0.elapsed().as_nanos() as u64,
            spans: self.spans.lock().expect("span recorder").clone(),
        }
    }
}

/// A bounded ring of finished span trees (newest evicts oldest), the
/// in-memory half of "ring or journal" that `obs trace` reads.
#[derive(Debug)]
pub struct SpanRing {
    cap: usize,
    inner: Mutex<SpanRingInner>,
}

#[derive(Debug, Default)]
struct SpanRingInner {
    buf: std::collections::VecDeque<SpanTree>,
    recorded: u64,
}

impl SpanRing {
    /// An empty ring holding at most `cap` trees (`cap = 0` keeps 1).
    pub fn new(cap: usize) -> SpanRing {
        SpanRing {
            cap: cap.max(1),
            inner: Mutex::new(SpanRingInner::default()),
        }
    }

    /// Appends a tree, evicting the oldest when full.
    pub fn push(&self, tree: SpanTree) {
        let mut inner = self.inner.lock().expect("span ring");
        if inner.buf.len() == self.cap {
            inner.buf.pop_front();
        }
        inner.buf.push_back(tree);
        inner.recorded += 1;
    }

    /// Total trees ever pushed (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.inner.lock().expect("span ring").recorded
    }

    /// The most recent tree with this trace id, if still in the ring.
    pub fn find(&self, trace_id: u64) -> Option<SpanTree> {
        let inner = self.inner.lock().expect("span ring");
        inner
            .buf
            .iter()
            .rev()
            .find(|t| t.trace_id == trace_id)
            .cloned()
    }

    /// Trees currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("span ring").buf.len()
    }

    /// True when nothing has been pushed (or everything was evicted…
    /// which cannot happen: eviction implies a newer entry).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_id_formatting_round_trips() {
        for id in [1u64, 0xdead_beef, u64::MAX] {
            assert_eq!(parse_trace_id(&format_trace_id(id)), Some(id));
        }
        assert_eq!(parse_trace_id(""), None);
        assert_eq!(parse_trace_id("0"), None, "zero is the untraced sentinel");
        assert_eq!(parse_trace_id("00000000000000000"), None, "17 digits");
        assert_eq!(parse_trace_id("xyz"), None);
        assert_eq!(parse_trace_id("ABC"), Some(0xabc), "case-insensitive");
    }

    fn sample_tree() -> SpanTree {
        SpanTree {
            trace_id: 0xabc,
            label: "SOLVE hash:12 R=3".into(),
            total_ns: 10_000,
            spans: vec![
                Span {
                    id: 1,
                    parent: ROOT_SPAN,
                    name: "queue".into(),
                    start_ns: 0,
                    dur_ns: 1_000,
                },
                Span {
                    id: 2,
                    parent: ROOT_SPAN,
                    name: "execute".into(),
                    start_ns: 1_000,
                    dur_ns: 8_000,
                },
                Span {
                    id: 3,
                    parent: 2,
                    name: "gather views".into(),
                    start_ns: 1_100,
                    dur_ns: 4_000,
                },
            ],
        }
    }

    #[test]
    fn text_serialisation_round_trips() {
        let tree = sample_tree();
        let text = tree.to_text();
        assert!(text.starts_with(SPAN_TEXT_MAGIC));
        assert_eq!(SpanTree::parse_text(&text).unwrap(), tree);
    }

    #[test]
    fn parse_rejects_damage() {
        assert!(SpanTree::parse_text("").is_err());
        assert!(SpanTree::parse_text("mmlpspan 2\ntrace 1 0 x\n").is_err());
        assert!(SpanTree::parse_text("mmlpspan 1\n").is_err());
        assert!(SpanTree::parse_text("mmlpspan 1\ntrace zz 0 x\n").is_err());
        assert!(SpanTree::parse_text("mmlpspan 1\ntrace 1 5 l\nbogus\n").is_err());
    }

    #[test]
    fn render_nests_children_and_keeps_names_with_spaces() {
        let r = render_span_tree(&sample_tree());
        assert!(r.contains("trace 0000000000000abc"), "{r}");
        assert!(r.contains("queue"), "{r}");
        assert!(r.contains("gather views"), "{r}");
        // The child is indented two levels (2 + 2 spaces).
        assert!(r.contains("\n    gather views"), "{r}");
        assert!(r.contains("80.0%"), "{r}");
    }

    #[test]
    fn recorder_tracks_offsets_and_anchor() {
        let rec = SpanRecorder::new(7, "req");
        let a = rec.add_ns(ROOT_SPAN, "cache", 10, 20);
        rec.set_anchor(a);
        assert_eq!(rec.anchor(), a);
        let b = rec.add_ns(rec.anchor(), "gather", 12, 5);
        let opened = rec.open(ROOT_SPAN, "store");
        rec.close(opened);
        let tree = rec.finish();
        assert_eq!(tree.trace_id, 7);
        assert_eq!(tree.spans.len(), 3);
        assert_eq!(tree.spans[1].id, b);
        assert_eq!(tree.spans[1].parent, a);
        assert!(tree.total_ns > 0);
        let store = &tree.spans[2];
        assert!(store.start_ns <= tree.total_ns);
    }

    #[test]
    fn ring_evicts_oldest_and_finds_by_id() {
        let ring = SpanRing::new(2);
        assert!(ring.is_empty());
        for id in 1..=3u64 {
            let mut t = sample_tree();
            t.trace_id = id;
            ring.push(t);
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.recorded(), 3);
        assert!(ring.find(1).is_none(), "evicted");
        assert_eq!(ring.find(3).unwrap().trace_id, 3);
    }
}
