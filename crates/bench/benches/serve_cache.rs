//! The serve request path, cold vs. warm: how much does the
//! content-addressed result cache actually buy per request?
//!
//! "Cold" is the pure compute the server runs on a pool worker
//! (`engine::execute`); "warm" is the full cached path the connection
//! thread takes on a hit (key build, LRU probe under the mutex, Arc
//! clone). The gap between the two is the amortisation the service
//! exists for; a regression in "warm" (e.g. an accidental O(n) scan in
//! the LRU) shows up here long before it shows up in p99.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mmlp_gen::catalog;
use mmlp_instance::hash::instance_hash;
use mmlp_serve::engine::{execute, CacheKey, Engine};
use mmlp_serve::protocol::Op;
use std::sync::Arc;

fn bench_serve_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_cache");
    group.sample_size(10);

    let fams = catalog();
    let fam = fams.iter().find(|f| f.name == "bandwidth").unwrap();

    for &size in &[16usize, 64] {
        let inst = fam.instance(size, 1);
        let hash = instance_hash(&inst);

        group.bench_with_input(BenchmarkId::new("cold_solve", size), &size, |b, _| {
            b.iter(|| std::hint::black_box(execute(Op::Solve, &inst, 3, 1).unwrap()));
        });

        group.bench_with_input(BenchmarkId::new("warm_hit", size), &size, |b, _| {
            let engine = Engine::new(64 << 20, 64 << 20);
            let key = CacheKey::new(hash, Op::Solve, 3, 1);
            engine.insert(key, Arc::new(execute(Op::Solve, &inst, 3, 1).unwrap()));
            b.iter(|| {
                let body = engine.cached(&key).expect("warm");
                std::hint::black_box(body.len())
            });
        });
    }

    group.finish();
}

criterion_group!(benches, bench_serve_cache);
criterion_main!(benches);
