//! Campaign-scheduler overhead: throughput of the `mmlp-lab` worker
//! pool on empty jobs, so a scheduling regression (lock contention,
//! per-job thread cost) is visible in the criterion suite even though
//! real jobs dwarf it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mmlp_lab::pool::{run_pool, Outcome, PoolConfig};
use std::time::Duration;

fn bench_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign_scheduler");
    group.sample_size(10);

    // Inline mode: the pool's own cost (cursor, channel, sink).
    for &jobs in &[256usize, 2048] {
        group.throughput(Throughput::Elements(jobs as u64));
        group.bench_with_input(
            BenchmarkId::new("empty_jobs_inline", jobs),
            &jobs,
            |b, &jobs| {
                let cfg = PoolConfig {
                    workers: 4,
                    timeout: None,
                };
                b.iter(|| {
                    let mut done = 0usize;
                    run_pool(
                        vec![0u64; jobs],
                        &cfg,
                        |x| x,
                        |_, o| {
                            if matches!(o, Outcome::Done(_)) {
                                done += 1;
                            }
                        },
                    );
                    std::hint::black_box(done)
                });
            },
        );
    }

    // Isolated mode: adds one thread spawn + channel per job — the
    // price of per-job timeouts and panic isolation.
    group.throughput(Throughput::Elements(256));
    group.bench_function("empty_jobs_isolated/256", |b| {
        let cfg = PoolConfig {
            workers: 4,
            timeout: Some(Duration::from_secs(10)),
        };
        b.iter(|| {
            let mut done = 0usize;
            run_pool(
                vec![0u64; 256],
                &cfg,
                |x| x,
                |_, o| {
                    if matches!(o, Outcome::Done(_)) {
                        done += 1;
                    }
                },
            );
            std::hint::black_box(done)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
