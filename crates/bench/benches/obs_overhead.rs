//! Observability overhead: the traced flat solve against the untraced
//! one, on the same workload as the `distributed-solve` suite.
//!
//! The traced path takes four monotonic timestamps per solve and
//! aggregates the per-worker memo/chunk counters; the overhead contract
//! (`specs/OBSERVABILITY.md`) says that costs ≤ 3% end to end, and the
//! `trajectory_gate` enforces both `obs-overhead/traced/R` and
//! `obs-overhead/journaled/R` ≤ 1.03 × `obs-overhead/plain/R` over
//! `BENCH_core.json`. The journaled variant does everything the server
//! does per traced request on top of the solve itself: build the span
//! tree from the phase timings, serialise it, and hand it to the
//! journal drainer. Outputs are bit-identical either way (asserted
//! catalog-wide in `tests/obs_e2e.rs`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mmlp_core::distributed::{solve_special_flat, solve_special_flat_traced};
use mmlp_core::SpecialForm;
use mmlp_gen::special::{random_special_form, SpecialFormConfig};
use mmlp_obs::journal::EV_SPAN;
use mmlp_obs::span::ROOT_SPAN;
use mmlp_obs::{Journal, JournalConfig, JournalRecord, SpanRecorder};

fn workload(n_objectives: usize) -> SpecialForm {
    SpecialForm::new(random_special_form(
        &SpecialFormConfig {
            n_objectives,
            extra_constraints: n_objectives / 2,
            ..SpecialFormConfig::default()
        },
        2,
    ))
    .unwrap()
}

fn bench_overhead(c: &mut Criterion) {
    let sf = workload(120);
    let mut group = c.benchmark_group("obs-overhead");
    // The contract gated over these entries is tight (≤ 3%), so this
    // suite samples harder than the other groups to keep the noise
    // band well under the margin it certifies.
    group.sample_size(40);
    for big_r in [3usize, 4] {
        group.bench_with_input(BenchmarkId::new("plain", big_r), &big_r, |b, &r| {
            b.iter(|| std::hint::black_box(solve_special_flat(&sf, r, 1)))
        });
        group.bench_with_input(BenchmarkId::new("traced", big_r), &big_r, |b, &r| {
            b.iter(|| std::hint::black_box(solve_special_flat_traced(&sf, r, 1)))
        });
    }

    let dir = std::env::temp_dir().join(format!("mmlp-bench-journal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (journal, _) = Journal::open(JournalConfig::new(&dir)).expect("open bench journal");
    let mut trace_id: u64 = 0x0b5e_0b5e_0000_0000;
    for big_r in [3usize, 4] {
        group.bench_with_input(BenchmarkId::new("journaled", big_r), &big_r, |b, &r| {
            b.iter(|| {
                let out = solve_special_flat_traced(&sf, r, 1);
                trace_id += 1;
                let rec = SpanRecorder::new(trace_id, "bench SOLVE");
                let exec = rec.open(ROOT_SPAN, "execute");
                for (name, ns) in out.2.phase_spans() {
                    rec.add_ns(exec, name, 0, ns);
                }
                rec.close(exec);
                journal.emit(JournalRecord {
                    kind: EV_SPAN,
                    trace_id,
                    text: rec.finish().to_text(),
                });
                std::hint::black_box(out)
            })
        });
    }
    group.finish();
    journal.flush();
    drop(journal);
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
