//! End-to-end local solver cost vs instance size (linear — the defining
//! property of a local algorithm is per-node constant work; the
//! centralized simulation is therefore O(n)).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mmlp_core::solver::LocalSolver;
use mmlp_gen::special::{random_special_form, SpecialFormConfig};

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("local-solver-R3");
    group.sample_size(10);
    for n_obj in [50usize, 200, 800] {
        let inst = random_special_form(
            &SpecialFormConfig {
                n_objectives: n_obj,
                extra_constraints: n_obj / 2,
                ..SpecialFormConfig::default()
            },
            1,
        );
        group.throughput(Throughput::Elements(inst.n_agents() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n_obj), &inst, |b, inst| {
            let solver = LocalSolver::new(3);
            b.iter(|| std::hint::black_box(solver.solve(inst)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solver, dynamic_bench::bench_dynamic);
criterion_main!(benches);

// Appended: dynamic-update repair cost vs full re-solve (§1.3).
mod dynamic_bench {
    use criterion::{BenchmarkId, Criterion};
    use mmlp_core::dynamic::DynamicSolver;
    use mmlp_core::SpecialForm;
    use mmlp_gen::special::cycle_special;
    use mmlp_instance::ConstraintId;

    pub fn bench_dynamic(c: &mut Criterion) {
        let mut group = c.benchmark_group("dynamic-update-R3");
        group.sample_size(10);
        for n_obj in [64usize, 256] {
            let sf = SpecialForm::new(cycle_special(n_obj, 1.0)).unwrap();
            group.bench_with_input(BenchmarkId::new("repair", n_obj), &sf, |b, sf| {
                let mut solver = DynamicSolver::new(sf.clone(), 3, 1);
                let mut flip = false;
                b.iter(|| {
                    flip = !flip;
                    let coef = if flip { 2.0 } else { 1.0 };
                    std::hint::black_box(
                        solver.update_constraint_coefs(ConstraintId::new(0), [coef, coef]),
                    )
                });
            });
            group.bench_with_input(BenchmarkId::new("full-solve", n_obj), &sf, |b, sf| {
                b.iter(|| std::hint::black_box(mmlp_core::smoothing::solve_special(sf, 3, 1)))
            });
        }
        group.finish();
    }
}
