//! The §1.3 dynamic corollary as a measurement: a single-coefficient
//! edit must cost the dirty ball, not the instance.
//!
//! For each `(R, size)` the bench pairs an incremental repair
//! (`edit-rR/size` — [`DynamicSolver::update_constraint_coefs`]
//! toggling one constraint coefficient, arena and memo warm) with a
//! from-scratch solve of the same special form (`scratch-rR/size`).
//! Two claims, both gated by `trajectory_gate` on the committed
//! `BENCH_delta.json`:
//!
//! - the repair beats starting over at every grid point;
//! - repair cost grows with the edit ball (R) and stays near-flat in
//!   the instance size, while the from-scratch cost grows with it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mmlp_core::dynamic::DynamicSolver;
use mmlp_core::smoothing::solve_special;
use mmlp_core::SpecialForm;
use mmlp_gen::catalog;
use mmlp_instance::ConstraintId;

fn bench_delta_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("delta-solve");
    group.sample_size(10);

    let fams = catalog();
    let fam = fams.iter().find(|f| f.name == "special-form").unwrap();

    for &big_r in &[2usize, 3] {
        for &size in &[64usize, 256] {
            let sf = SpecialForm::new(fam.instance(size, 1)).expect("special form");

            group.bench_with_input(
                BenchmarkId::new(format!("scratch-r{big_r}"), size),
                &size,
                |b, _| {
                    b.iter(|| std::hint::black_box(solve_special(&sf, big_r, 1).x.as_slice()[0]));
                },
            );

            group.bench_with_input(
                BenchmarkId::new(format!("edit-r{big_r}"), size),
                &size,
                |b, _| {
                    let mut dynamic = DynamicSolver::new(sf.clone(), big_r, 1);
                    let i = ConstraintId::new(0);
                    let row = dynamic.special_form().instance().constraint_row(i);
                    let coefs = [row[0].coef, row[1].coef];
                    let mut flip = false;
                    b.iter(|| {
                        // Alternate the coefficient so every iteration
                        // is a real change with a non-empty dirty ball.
                        flip = !flip;
                        let scale = if flip { 1.5 } else { 1.0 };
                        let rep = dynamic.update_constraint_coefs(i, [coefs[0] * scale, coefs[1]]);
                        std::hint::black_box(rep.recomputed_x)
                    });
                },
            );
        }
    }

    group.finish();
}

criterion_group!(benches, bench_delta_solve);
criterion_main!(benches);
