//! Workload generator throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use mmlp_gen::apps::{sensor_grid, SensorGridConfig};
use mmlp_gen::lower_bound::regular_gadget;
use mmlp_gen::random::{random_general, RandomConfig};
use mmlp_gen::special::{random_special_form, SpecialFormConfig};

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(20);
    group.bench_function("random_general-200", |b| {
        let cfg = RandomConfig {
            n_agents: 200,
            n_constraints: 150,
            n_objectives: 125,
            ..RandomConfig::default()
        };
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            std::hint::black_box(random_general(&cfg, seed))
        });
    });
    group.bench_function("special_form-100", |b| {
        let cfg = SpecialFormConfig {
            n_objectives: 100,
            ..SpecialFormConfig::default()
        };
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            std::hint::black_box(random_special_form(&cfg, seed))
        });
    });
    group.bench_function("sensor_grid-10x10", |b| {
        let cfg = SensorGridConfig {
            width: 10,
            height: 10,
            cost_range: (1.0, 2.0),
        };
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            std::hint::black_box(sensor_grid(&cfg, seed))
        });
    });
    group.bench_function("regular_gadget-d3-g6", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            std::hint::black_box(regular_gadget(30, 3, 2, 6, seed))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
