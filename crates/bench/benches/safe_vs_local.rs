//! The baseline comparison: cost of the 1-round safe algorithm vs the
//! Θ(R)-round local algorithm on the same instance.

use criterion::{criterion_group, criterion_main, Criterion};
use mmlp_core::safe::safe_solution;
use mmlp_core::solver::LocalSolver;
use mmlp_gen::apps::{bandwidth_ladder, BandwidthConfig};

fn bench_safe_vs_local(c: &mut Criterion) {
    let inst = bandwidth_ladder(
        &BandwidthConfig {
            n_customers: 100,
            window: 3,
            coef_range: (0.8, 1.25),
        },
        5,
    );
    let mut group = c.benchmark_group("safe-vs-local");
    group.sample_size(20);
    group.bench_function("safe", |b| {
        b.iter(|| std::hint::black_box(safe_solution(&inst)))
    });
    for big_r in [2usize, 3, 4] {
        group.bench_function(format!("local-R{big_r}"), |b| {
            let solver = LocalSolver::new(big_r);
            b.iter(|| std::hint::black_box(solver.solve(&inst)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_safe_vs_local);
criterion_main!(benches);
