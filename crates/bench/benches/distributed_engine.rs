//! Synchronous round engine throughput: the full distributed protocol
//! and the sequential-vs-parallel executor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mmlp_core::distributed::{solve_distributed, solve_distributed_flat};
use mmlp_core::SpecialForm;
use mmlp_gen::special::{random_special_form, SpecialFormConfig};

fn bench_distributed(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributed-protocol");
    group.sample_size(10);
    for n_obj in [40usize, 160] {
        let sf = SpecialForm::new(random_special_form(
            &SpecialFormConfig {
                n_objectives: n_obj,
                extra_constraints: n_obj / 2,
                ..SpecialFormConfig::default()
            },
            2,
        ))
        .unwrap();
        for big_r in [2usize, 3] {
            group.bench_with_input(
                BenchmarkId::new(format!("n{n_obj}"), big_r),
                &big_r,
                |b, &big_r| b.iter(|| std::hint::black_box(solve_distributed(&sf, big_r))),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("flat-n{n_obj}"), big_r),
                &big_r,
                |b, &big_r| b.iter(|| std::hint::black_box(solve_distributed_flat(&sf, big_r, 1))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_distributed);
criterion_main!(benches);
