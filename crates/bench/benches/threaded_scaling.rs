//! Threaded `t`-batch scaling over the flat view arena.
//!
//! Benches [`mmlp_core::distributed::t_batch_flat`] — the size-weighted
//! chunked partitioner — at worker counts 1, 2, 4 and 8 over three
//! workload shapes:
//!
//! * **random** — a large random special-form instance (uniform balls),
//! * **regular-gadget** — the §4-transformed lower-bound regular gadget
//!   of the tight-bounds companion paper (high-girth, worst-case-shaped
//!   views),
//! * **tree-gadget** — its tree unfolding (skewed ball sizes: interior
//!   agents carry far more subtree work than the leaves, which is
//!   exactly what per-root and equal-count partitioning get wrong).
//!
//! Worker counts above the host's parallelism measure the overhead
//! floor of the partitioner itself (the production entry point,
//! `solve_special_flat`, caps workers at `available_parallelism` and
//! only engages threading above `FLAT_T_PARALLEL_MIN_WORK` — this
//! bench calls the uncapped helper on purpose). The printed `work=`
//! line is the batch's `Σ arena.size(root)`, the unit the threshold is
//! expressed in; see `specs/PERF.md`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mmlp_core::distributed::t_batch_flat;
use mmlp_core::transform::to_special_form;
use mmlp_core::SpecialForm;
use mmlp_gen::lower_bound::{regular_gadget, tree_gadget};
use mmlp_gen::special::{random_special_form, SpecialFormConfig};
use mmlp_net::{gather_views_flat, FlatViews, Network};

/// Special-forms a general instance the way the solver pipeline does.
fn special(inst: &mmlp_instance::Instance) -> SpecialForm {
    SpecialForm::new(to_special_form(inst).instance).expect("§4 pipeline produces special form")
}

fn workloads() -> Vec<(&'static str, SpecialForm, usize)> {
    let random = SpecialForm::new(random_special_form(
        &SpecialFormConfig {
            n_objectives: 240,
            extra_constraints: 120,
            ..SpecialFormConfig::default()
        },
        2,
    ))
    .unwrap();
    let (regular, _girth) = regular_gadget(48, 3, 2, 6, 7);
    let (tree, _witness) = tree_gadget(3, 2, 6);
    vec![
        ("random", random, 4),
        ("regular-gadget", special(&regular), 4),
        ("tree-gadget", special(&tree), 4),
    ]
}

fn bench_threaded_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("threaded-scaling");
    group.sample_size(10);
    for (name, sf, big_r) in workloads() {
        let net = Network::new(sf.instance());
        let depth = 4 * (big_r - 2) + 2;
        let FlatViews { arena, roots, .. } = gather_views_flat(&net, depth);
        let n = sf.n_agents();
        let work: u64 = roots[..n].iter().map(|&r| arena.size(r)).sum();
        println!("threaded-scaling/{name}: agents={n} work={work}");
        for workers in [1usize, 2, 4, 8] {
            group.bench_with_input(BenchmarkId::new(name, workers), &workers, |b, &w| {
                b.iter(|| std::hint::black_box(t_batch_flat(&arena, &roots[..n], big_r, w)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_threaded_scaling);
criterion_main!(benches);
