//! Lane-width sweep for the split-accumulator `min` folds of
//! `mmlp_net::lanes`.
//!
//! Measures `min_lanes_w::<W>` for W ∈ {2, 4, 8} against the scalar
//! left fold, over slice lengths spanning the hot callers: node-degree
//! slices (the capacity folds run over an agent's ports, typically
//! < 16) and long slices (the safe baseline over dense rows). The
//! chosen production width (`LANES = 4`) is recorded with the rationale
//! in the module docs and `specs/PERF.md`; this bench is the evidence.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mmlp_net::lanes::{min_lanes_w, LANES};

fn values(len: usize) -> Vec<f64> {
    // Deterministic strictly positive values (an LCG), like the folds see.
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            1.0 + (state >> 11) as f64 / (1u64 << 53) as f64
        })
        .collect()
}

fn scalar_min(v: &[f64]) -> f64 {
    v.iter().copied().fold(f64::INFINITY, f64::min)
}

fn bench_lane_width(c: &mut Criterion) {
    assert_eq!(LANES, 4, "update the sweep if the production width moves");
    let mut group = c.benchmark_group("lane-width");
    for len in [8usize, 64, 4096] {
        let v = values(len);
        group.bench_with_input(BenchmarkId::new("scalar", len), &len, |b, _| {
            b.iter(|| std::hint::black_box(scalar_min(std::hint::black_box(&v))))
        });
        group.bench_with_input(BenchmarkId::new("w2", len), &len, |b, _| {
            b.iter(|| std::hint::black_box(min_lanes_w::<2>(std::hint::black_box(&v))))
        });
        group.bench_with_input(BenchmarkId::new("w4", len), &len, |b, _| {
            b.iter(|| std::hint::black_box(min_lanes_w::<4>(std::hint::black_box(&v))))
        });
        group.bench_with_input(BenchmarkId::new("w8", len), &len, |b, _| {
            b.iter(|| std::hint::black_box(min_lanes_w::<8>(std::hint::black_box(&v))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lane_width);
criterion_main!(benches);
