//! The from-scratch simplex on max-min LPs of growing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mmlp_gen::random::{random_general, RandomConfig};
use mmlp_lp::solve_maxmin;

fn bench_simplex(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex-maxmin");
    group.sample_size(10);
    for n in [40usize, 120, 360] {
        let inst = random_general(
            &RandomConfig {
                n_agents: n,
                n_constraints: n * 3 / 4,
                n_objectives: n * 5 / 8,
                ..RandomConfig::default()
            },
            3,
        );
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| std::hint::black_box(solve_maxmin(inst).unwrap().omega));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simplex, exact_bench::bench_exact);
criterion_main!(benches);

// Appended: the exact rational simplex on micro gadgets (validation path).
mod exact_bench {
    use criterion::Criterion;
    use mmlp_gen::lower_bound::regular_gadget;
    use mmlp_lp::exact_maxmin;

    pub fn bench_exact(c: &mut Criterion) {
        let mut group = c.benchmark_group("exact-rational-simplex");
        group.sample_size(10);
        for n in [6usize, 10] {
            let (inst, _) = regular_gadget(n, 3, 2, 4, 1);
            group.bench_function(format!("gadget-{n}"), |b| {
                b.iter(|| std::hint::black_box(exact_maxmin(&inst, 1)))
            });
        }
        group.finish();
    }
}
