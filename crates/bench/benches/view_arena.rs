//! The flat view arena vs the legacy recursive trees:
//!
//! * **gather** — interned-id gathering (`gather_views_flat`) against
//!   clone-based tree gathering (`gather_views`) at increasing horizons,
//! * **eval** — per-agent `t_u` evaluated memoised over the arena
//!   (`t_from_arena`) against the recursive walk over the gathered tree
//!   (`t_from_view`),
//! * **distributed-solve** — the end-to-end flat `solve_distributed_flat`
//!   against the legacy message protocol.
//!
//! These medians land in `BENCH_core.json`; the repo's perf trajectory
//! tracks the interning-vs-clone and memoised-vs-recursive ratios.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mmlp_core::distributed::{
    solve_distributed, solve_distributed_flat, t_from_arena, t_from_view, FlatScratch,
};
use mmlp_core::SpecialForm;
use mmlp_gen::special::{random_special_form, SpecialFormConfig};
use mmlp_net::{gather_views, gather_views_flat, Network};

fn workload(n_objectives: usize) -> SpecialForm {
    SpecialForm::new(random_special_form(
        &SpecialFormConfig {
            n_objectives,
            extra_constraints: n_objectives / 2,
            ..SpecialFormConfig::default()
        },
        2,
    ))
    .unwrap()
}

fn bench_gather(c: &mut Criterion) {
    let sf = workload(120);
    let net = Network::new(sf.instance());
    let mut group = c.benchmark_group("view-gather");
    group.sample_size(10);
    for depth in [2usize, 6, 10] {
        group.bench_with_input(BenchmarkId::new("tree", depth), &depth, |b, &d| {
            b.iter(|| std::hint::black_box(gather_views(&net, d)))
        });
        group.bench_with_input(BenchmarkId::new("flat", depth), &depth, |b, &d| {
            b.iter(|| std::hint::black_box(gather_views_flat(&net, d)))
        });
    }
    group.finish();
}

fn bench_eval(c: &mut Criterion) {
    let sf = workload(120);
    let net = Network::new(sf.instance());
    let mut group = c.benchmark_group("view-eval-t");
    group.sample_size(10);
    for big_r in [3usize, 4] {
        let depth = 4 * (big_r - 2) + 2;
        let (trees, _) = gather_views(&net, depth);
        let flat = gather_views_flat(&net, depth);
        let n = sf.n_agents();
        group.bench_with_input(BenchmarkId::new("recursive", big_r), &big_r, |b, &r| {
            b.iter(|| {
                for tree in &trees[..n] {
                    std::hint::black_box(t_from_view(tree, r));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("memoized", big_r), &big_r, |b, &r| {
            let mut sc = FlatScratch::default();
            b.iter(|| {
                for v in 0..n {
                    std::hint::black_box(t_from_arena(&flat.arena, flat.roots[v], r, &mut sc));
                }
            })
        });
    }
    group.finish();
}

fn bench_solve(c: &mut Criterion) {
    let sf = workload(120);
    let mut group = c.benchmark_group("distributed-solve");
    group.sample_size(10);
    for big_r in [3usize, 4] {
        group.bench_with_input(BenchmarkId::new("legacy", big_r), &big_r, |b, &r| {
            b.iter(|| std::hint::black_box(solve_distributed(&sf, r)))
        });
        group.bench_with_input(BenchmarkId::new("flat", big_r), &big_r, |b, &r| {
            b.iter(|| std::hint::black_box(solve_distributed_flat(&sf, r, 1)))
        });
        group.bench_with_input(BenchmarkId::new("flat-threaded", big_r), &big_r, |b, &r| {
            b.iter(|| std::hint::black_box(solve_distributed_flat(&sf, r, 4)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gather, bench_eval, bench_solve);
criterion_main!(benches);
