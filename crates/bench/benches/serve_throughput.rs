//! Closed-loop serve throughput over real sockets: 64 concurrent
//! clients hammering warm hits against a live server.
//!
//! One iteration drives a fixed burst — [`CLIENTS`] connections each
//! issuing [`REQS_PER_CLIENT`] `SOLVE` requests that hit the result
//! cache — so the committed `median_ns` is the wall time to serve
//! `CLIENTS × REQS_PER_CLIENT` requests end-to-end (parse, probe,
//! frame, write), and `rps = CLIENTS × REQS_PER_CLIENT / (median_ns /
//! 1e9)`. The trajectory gate compares the reactor front-end against
//! the committed `thread_per_conn` baseline measured on the old
//! thread-per-connection server: lower is strictly better.
//!
//! Clients persist across iterations (the fleet parks on a channel
//! between bursts), so the number measures steady-state serving, not
//! connection setup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mmlp_gen::catalog;
use mmlp_serve::client::Client;
use mmlp_serve::protocol::Op;
use mmlp_serve::server::{ServeConfig, Server};
use std::sync::mpsc;

/// Concurrent closed-loop connections per burst.
const CLIENTS: usize = 64;
/// Warm-hit requests each client issues per burst.
const REQS_PER_CLIENT: usize = 8;
/// Which front-end this build measures (the committed baseline entry
/// `thread_per_conn` was produced by the pre-reactor server).
const VARIANT: &str = "reactor";

struct Fleet {
    starts: Vec<mpsc::Sender<usize>>,
    done_rx: mpsc::Receiver<()>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Fleet {
    fn spawn(addr: &str, hash: &str) -> Fleet {
        let (done_tx, done_rx) = mpsc::channel();
        let mut starts = Vec::with_capacity(CLIENTS);
        let mut handles = Vec::with_capacity(CLIENTS);
        for _ in 0..CLIENTS {
            let (tx, rx) = mpsc::channel::<usize>();
            starts.push(tx);
            let done = done_tx.clone();
            let hash = hash.to_string();
            let addr = addr.to_string();
            handles.push(std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                while let Ok(n) = rx.recv() {
                    for _ in 0..n {
                        let body = client
                            .run_hash(Op::Solve, &hash, 3, 1)
                            .expect("io")
                            .into_ok()
                            .expect("warm solve");
                        std::hint::black_box(body.len());
                    }
                    done.send(()).expect("report");
                }
            }));
        }
        Fleet {
            starts,
            done_rx,
            handles,
        }
    }

    fn burst(&self) {
        for tx in &self.starts {
            tx.send(REQS_PER_CLIENT).expect("fleet alive");
        }
        for _ in 0..CLIENTS {
            self.done_rx.recv().expect("fleet alive");
        }
    }

    fn join(mut self) {
        self.starts.clear(); // closing the channels lands every client
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn bench_serve_throughput(c: &mut Criterion) {
    let fams = catalog();
    let fam = fams.iter().find(|f| f.name == "bandwidth").unwrap();
    let inst_text = mmlp_instance::textfmt::write_instance(&fam.instance(48, 7));

    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 4,
        ..Default::default()
    })
    .expect("bind");
    let addr = server.local_addr().to_string();
    let server_thread = std::thread::spawn(move || server.run());

    // Prime: upload once, solve once, so every burst request is a warm hit.
    let mut primer = Client::connect(&addr).expect("connect");
    let hash = primer.put(&inst_text).expect("io").expect("put");
    primer
        .run_hash(Op::Solve, &hash, 3, 1)
        .expect("io")
        .into_ok()
        .expect("prime solve");

    let fleet = Fleet::spawn(&addr, &hash);

    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new(VARIANT, CLIENTS), |b| {
        b.iter(|| fleet.burst());
    });
    group.finish();

    fleet.join();
    primer.shutdown().expect("shutdown");
    let summary = server_thread.join().expect("server thread").expect("run");
    assert_eq!(summary.errors, 0, "benchmark traffic must be error-free");
}

criterion_group!(benches, bench_serve_throughput);
criterion_main!(benches);
