//! `store_codec`: the persistence layer's two hot paths.
//!
//! * **Codec** — binary instance decode vs. `textfmt::parse_instance`
//!   on small/medium/large catalog instances (plus encode, for the
//!   write path). The acceptance bar for the binary format is decode
//!   ≥ 5× faster than text parse on the large instance; both paths
//!   share the `InstanceBuilder` finalisation cost, so the delta is
//!   pure deserialisation.
//! * **Store open** — index rebuild time vs. record count, the cost a
//!   server restart pays before its warm start.
//!
//! Run with `MMLP_BENCH_JSON=BENCH_store.json cargo bench --bench
//! store_codec` to refresh the perf-trajectory file.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mmlp_gen::catalog;
use mmlp_instance::textfmt;
use mmlp_store::codec;
use mmlp_store::{Store, StoreConfig};

fn family(name: &str) -> mmlp_gen::Family {
    catalog()
        .into_iter()
        .find(|f| f.name == name)
        .unwrap_or_else(|| panic!("family {name}"))
}

/// (label, generator size): "large" is ~4k agents / ~19k nonzeros of
/// random-3x3 — the sensor-network scale the paper motivates.
const SIZES: [(&str, usize); 3] = [("small", 64), ("medium", 512), ("large", 4096)];

fn bench_codec(c: &mut Criterion) {
    let fam = family("random-3x3");
    let mut group = c.benchmark_group("store_codec");
    for (label, size) in SIZES {
        let inst = fam.instance(size, 7);
        let text = textfmt::write_instance(&inst);
        let blob = codec::encode_instance(&inst);
        group.throughput(Throughput::Bytes(text.len() as u64));
        group.bench_function(BenchmarkId::new("parse_text", label), |b| {
            b.iter(|| textfmt::parse_instance(black_box(&text)).expect("parses"))
        });
        group.throughput(Throughput::Bytes(blob.len() as u64));
        group.bench_function(BenchmarkId::new("decode_binary", label), |b| {
            b.iter(|| codec::decode_instance(black_box(&blob)).expect("decodes"))
        });
        group.bench_function(BenchmarkId::new("encode_binary", label), |b| {
            b.iter(|| codec::encode_instance(black_box(&inst)))
        });
    }
    group.finish();
}

fn bench_store_open(c: &mut Criterion) {
    let fam = family("random-3x3");
    let mut group = c.benchmark_group("store_open");
    group.sample_size(10);
    for records in [64usize, 256, 1024] {
        let dir = std::env::temp_dir().join(format!(
            "mmlp-bench-store-open-{records}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let (store, _) =
                Store::open_with(&dir, StoreConfig { fsync: false }).expect("build store");
            for seed in 0..records as u64 {
                store
                    .put_instance(&fam.instance(16, seed))
                    .expect("put instance");
            }
        }
        group.throughput(Throughput::Elements(records as u64));
        group.bench_function(BenchmarkId::new("open", records), |b| {
            b.iter(|| {
                let (store, report) =
                    Store::open_with(black_box(&dir), StoreConfig { fsync: false })
                        .expect("open store");
                assert_eq!(report.instances, records);
                store
            })
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

criterion_group!(benches, bench_codec, bench_store_open);
criterion_main!(benches);
