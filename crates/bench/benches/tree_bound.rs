//! Per-agent tree bound `t_u`: cost vs the locality parameter R
//! (the tree `A_u` — and so the per-node work — grows with R).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mmlp_core::tree_bound::{Scratch, TreeBound};
use mmlp_core::SpecialForm;
use mmlp_gen::special::{random_special_form, SpecialFormConfig};
use mmlp_instance::AgentId;

fn bench_tree_bound(c: &mut Criterion) {
    let sf = SpecialForm::new(random_special_form(
        &SpecialFormConfig {
            n_objectives: 200,
            extra_constraints: 120,
            ..SpecialFormConfig::default()
        },
        7,
    ))
    .unwrap();
    let mut group = c.benchmark_group("t_u-single-agent");
    group.sample_size(20);
    for big_r in [2, 3, 4, 5] {
        let tb = TreeBound::new(&sf, big_r);
        group.bench_with_input(BenchmarkId::from_parameter(big_r), &big_r, |b, _| {
            let mut sc = Scratch::default();
            b.iter(|| std::hint::black_box(tb.t(AgentId::new(17), &mut sc)));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("t_u-all-agents");
    group.sample_size(10);
    for threads in [1usize, 4] {
        let tb = TreeBound::new(&sf, 3);
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| b.iter(|| std::hint::black_box(tb.all_parallel(threads))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_tree_bound);
criterion_main!(benches);
