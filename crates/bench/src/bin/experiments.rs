//! The experiment harness: regenerates every table and figure recorded
//! in EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p mmlp-bench --bin experiments           # all
//! cargo run --release -p mmlp-bench --bin experiments -- t1 t5  # some
//! ```
//!
//! The paper (SPAA'09) is a theory paper: its "evaluation" is Theorem 1
//! and Lemmas 1–12, and Figures 1–3 are structural. Each experiment
//! below measures one of those claims; the mapping is recorded in
//! DESIGN.md §5 and the narrative in EXPERIMENTS.md.

use mmlp_bench::Table;
use mmlp_core::distributed::{rounds_needed, solve_distributed};
use mmlp_core::layers::assign_layers_mod;
use mmlp_core::smoothing::solve_special;
use mmlp_core::solver::LocalSolver;
use mmlp_core::transform::{self, to_special_form};
use mmlp_core::tree_bound::TreeBound;
use mmlp_core::{ratio, unfold, SpecialForm};
use mmlp_gen::lower_bound::{regular_gadget, regular_gadget_optimum, tree_gadget};
use mmlp_gen::special::{layered_special, random_special_form, SpecialFormConfig};
use mmlp_gen::{catalog, random::RandomConfig};
use mmlp_instance::{AgentId, CommGraph, DegreeStats, Node, NodeKind, ObjectiveId};
use mmlp_lab::prelude::{report, run_in_memory, CampaignSpec, SolverKind};
use mmlp_lp::solve_maxmin;

/// The campaign workers used by the grid experiments (T1–T3, T7).
const WORKERS: usize = 4;

/// A campaign spec over the full family catalogue with the given grid
/// axes — the declarative replacement for the old hand-rolled
/// family × seed × R loops.
fn grid(name: &str, families: Vec<String>, sizes: Vec<usize>, rs: Vec<usize>) -> CampaignSpec {
    CampaignSpec {
        name: name.into(),
        families,
        sizes,
        seeds: (0..5).collect(),
        rs,
        solvers: vec![SolverKind::Local],
        timeout_ms: 0,
        workers: WORKERS,
    }
}

fn all_families() -> Vec<String> {
    catalog().iter().map(|f| f.name.to_string()).collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.is_empty();
    let want = |id: &str| all || args.iter().any(|a| a.eq_ignore_ascii_case(id));

    println!("== max-min LP local approximation: experiment suite ==");
    println!("   (Floréen–Kaasinen–Kaski–Suomela, SPAA 2009 reproduction)\n");

    if want("t1") {
        t1_theorem1_upper_bound();
    }
    if want("t2") {
        t2_ratio_vs_r();
    }
    if want("t3") {
        t3_algorithm_comparison();
    }
    if want("t4") {
        t4_locality();
    }
    if want("t5") {
        t5_lower_bound();
    }
    if want("t6") {
        t6_transformations();
    }
    if want("t7") {
        t7_applications();
    }
    if want("t8") {
        t8_distributed();
    }
    if want("t9") {
        t9_ablations();
    }
    if want("t10") {
        t10_dynamic_updates();
    }
    if want("t11") {
        t11_exact_validation();
    }
    if want("f1") {
        f1_figure1();
    }
    if want("f2") {
        f2_figure2();
    }
    if want("f3") {
        f3_figure3();
    }
}

/// T1 — Theorem 1 (upper bound): measured approximation ratio vs the
/// proved guarantee `ΔI(1−1/ΔK)(1+1/(R−1))` across all workload
/// families, as an `mmlp-lab` campaign (families × R × seeds).
fn t1_theorem1_upper_bound() {
    println!("--- T1: Theorem 1 upper bound across families ---");
    let spec = grid("t1", all_families(), vec![60], vec![2, 3, 4]);
    let records = run_in_memory(&spec, WORKERS);
    let violations = report::violations(&records);
    assert!(violations.is_empty(), "guarantee violated: {violations:?}");
    println!("{}", report::ratio_vs_guarantee(&records).render());
    println!("every measured ratio is below its guarantee (checked). ✓\n");
}

/// T2 — ε → 0: the measured ratio and the guarantee as R grows on a
/// fixed family (the ε-R trade-off of Theorem 1), as a campaign over
/// the R axis.
fn t2_ratio_vs_r() {
    println!("--- T2: ratio vs locality parameter R ---");
    let spec = grid("t2", vec!["bandwidth".into()], vec![60], (2..=8).collect());
    let records = run_in_memory(&spec, WORKERS);
    assert!(report::violations(&records).is_empty());
    println!("{}", report::ratio_vs_guarantee(&records).render());
    println!("guarantee column decreases as ΔI(1−1/ΔK)(1+1/(R−1)) → threshold. ✓\n");
}

/// T3 — comparison with the safe baseline (the best prior local
/// algorithm, factor ΔI) and the exact optimum, as a multi-solver
/// campaign at R = 3.
fn t3_algorithm_comparison() {
    println!("--- T3: local algorithm vs safe baseline vs LP optimum (R = 3) ---");
    let mut spec = grid("t3", all_families(), vec![60], vec![3]);
    spec.solvers = vec![SolverKind::Local, SolverKind::Safe];
    let records = run_in_memory(&spec, WORKERS);
    println!("{}", report::solver_comparison(&records).render());
    println!("(the safe algorithm is already optimal on ΔI = 2 families such as cycles;");
    println!(" the local algorithm's edge grows with ΔI — see gadget-d3 and sensor-grid.)\n");
}

/// T4 — locality: rounds independent of n; output unchanged under
/// far-away perturbations.
fn t4_locality() {
    println!("--- T4: locality (constant rounds, bounded dependence radius) ---");
    let mut table = Table::new(&["n objectives", "nodes", "R", "rounds", "msgs/node"]);
    for big_r in [2, 3] {
        for n_obj in [20, 80, 320] {
            let inst = random_special_form(
                &SpecialFormConfig {
                    n_objectives: n_obj,
                    extra_constraints: n_obj / 2,
                    ..SpecialFormConfig::default()
                },
                5,
            );
            let sf = SpecialForm::new(inst).unwrap();
            let run = solve_distributed(&sf, big_r);
            let nodes = sf.instance().n_agents()
                + sf.instance().n_constraints()
                + sf.instance().n_objectives();
            table.row(vec![
                n_obj.to_string(),
                nodes.to_string(),
                big_r.to_string(),
                run.stats.rounds.to_string(),
                format!("{:.1}", run.stats.messages as f64 / nodes as f64),
            ]);
        }
    }
    println!("{}", table.render());

    // Perturbation: change a coefficient on one side of a long cycle and
    // measure how far the change propagates.
    let n_obj = 64;
    let big_r = 3;
    let base = mmlp_gen::special::cycle_special(n_obj, 1.0);
    let mut b = mmlp_instance::InstanceBuilder::with_agents(2 * n_obj);
    for k in base.objectives() {
        let row: Vec<(AgentId, f64)> = base
            .objective_row(k)
            .iter()
            .map(|e| (e.agent, e.coef))
            .collect();
        b.add_objective(&row).unwrap();
    }
    for (idx, i) in base.constraints().enumerate() {
        let row: Vec<(AgentId, f64)> = base
            .constraint_row(i)
            .iter()
            .map(|e| (e.agent, if idx == 0 { e.coef * 3.0 } else { e.coef }))
            .collect();
        b.add_constraint(&row).unwrap();
    }
    let perturbed = b.build().unwrap();
    let solver = LocalSolver::new(big_r);
    let x0 = solver.solve(&base).solution;
    let x1 = solver.solve(&perturbed).solution;
    let g = CommGraph::new(&base);
    let src = g.constraint_index(mmlp_instance::ConstraintId::new(0));
    let dist = g.bfs(src, u32::MAX);
    let mut worst_far = 0.0f64;
    let mut radius = 0u32;
    for v in base.agents() {
        let delta = (x0.value(v) - x1.value(v)).abs();
        if delta > 1e-12 {
            radius = radius.max(dist[v.idx()]);
        } else if dist[v.idx()] > 30 {
            worst_far = worst_far.max(delta);
        }
    }
    println!(
        "perturbing one constraint of a {n_obj}-objective cycle (R = {big_r}):\n\
         outputs changed only within graph distance {radius} of the edit \
         (theory: O(R); horizon here ≤ {}), far outputs moved by {worst_far:.1e}. ✓\n",
        rounds_needed(big_r)
    );
}

/// T5 — the matching lower bound: optimum gap between locally
/// indistinguishable instances, and output agreement of the (symmetric)
/// algorithm on view-isomorphic agents.
fn t5_lower_bound() {
    println!("--- T5: the Theorem 1 lower bound family ---");
    let mut table = Table::new(&[
        "d=ΔK",
        "ΔI",
        "threshold",
        "opt regular",
        "opt tree",
        "opt gap",
        "alg worst ratio (R=3)",
    ]);
    for (d, delta_i, n_obj, depth) in [(3, 2, 40, 4), (4, 2, 30, 3), (5, 2, 24, 3), (3, 3, 27, 3)] {
        let (regular, _girth) = regular_gadget(n_obj, d, delta_i, 6, 3);
        let opt_reg = solve_maxmin(&regular).unwrap().omega;
        let (tree, _) = tree_gadget(d, delta_i, depth);
        let opt_tree = solve_maxmin(&tree).unwrap().omega;
        let solver = LocalSolver::new(3);
        let r_reg = opt_reg / solver.solve(&regular).solution.utility(&regular);
        let r_tree = opt_tree / solver.solve(&tree).solution.utility(&tree);
        table.row(vec![
            d.to_string(),
            delta_i.to_string(),
            format!("{:.4}", ratio::threshold(delta_i, d)),
            format!("{opt_reg:.4}"),
            format!("{opt_tree:.4}"),
            format!("{:.4}", opt_tree / opt_reg),
            format!("{:.4}", r_reg.max(r_tree)),
        ]);
        assert!(
            (opt_reg - regular_gadget_optimum(d, delta_i)).abs() < 1e-6,
            "averaging argument: optimum d/ΔI"
        );
    }
    println!("{}", table.render());
    println!("opt gap → ΔI(1−1/ΔK) as d and depth grow: any algorithm that cannot");
    println!("distinguish the instances is stuck at the threshold.\n");

    // Output agreement on view-isomorphic agents (the mechanism).
    let d = 3;
    let (regular, girth) = regular_gadget(60, d, 2, 8, 7);
    let (tree, _) = tree_gadget(d, 2, 5);
    let big_r = 2;
    let depth = 6; // dependence radius at R = 2
    println!("mechanism check (d = {d}, ΔI = 2, structure girth {girth}, R = {big_r}):");
    let x_reg = LocalSolver::new(big_r).solve(&regular).solution;
    let x_tree = LocalSolver::new(big_r).solve(&tree).solution;
    let mut matched = 0usize;
    let mut max_dev = 0.0f64;
    // Canonical interned ids of all regular agents (they are all
    // interior); matching is then an integer compare per pair instead
    // of a string compare over serialized balls.
    let mut arena = mmlp_net::ViewArena::new();
    let mut it_reg = unfold::ViewInterner::new(&regular);
    let mut it_tree = unfold::ViewInterner::new(&tree);
    let id_reg: Vec<_> = regular
        .agents()
        .map(|v| it_reg.intern_canonical(&mut arena, Node::Agent(v), depth))
        .collect();
    for w in tree.agents() {
        let iw = it_tree.intern_canonical(&mut arena, Node::Agent(w), depth);
        if let Some(v) = regular.agents().find(|v| id_reg[v.idx()] == iw) {
            matched += 1;
            max_dev = max_dev.max((x_reg.value(v) - x_tree.value(w)).abs());
        }
    }
    println!(
        "  {} of {} tree agents have view-isomorphic twins in the regular gadget;",
        matched,
        tree.n_agents()
    );
    println!(
        "  the algorithm's outputs on matched pairs differ by ≤ {max_dev:.2e} — \
         a local algorithm cannot treat the two instances differently. ✓\n"
    );
    assert!(matched > 0, "girth must exceed the dependence radius");
    assert!(max_dev < 1e-9);
}

/// T6 — the §4 transformation pipeline: per-stage sizes, optimum
/// preservation and the ΔI/2 accounting of §4.3.
fn t6_transformations() {
    println!("--- T6: the §4 transformation pipeline ---");
    let cfg = RandomConfig {
        n_agents: 14,
        n_constraints: 10,
        n_objectives: 8,
        delta_i: 3,
        delta_k: 3,
        coef_range: (0.5, 2.0),
    };
    let inst = mmlp_gen::random::random_general(&cfg, 2);
    let t = to_special_form(&inst);
    let mut table = Table::new(&["stage", "agents", "constraints", "objectives"]);
    for stage in &t.trace {
        table.row(vec![
            stage.name.into(),
            stage.n_agents.to_string(),
            stage.n_constraints.to_string(),
            stage.n_objectives.to_string(),
        ]);
    }
    println!("{}", table.render());

    let opt_in = solve_maxmin(&inst).unwrap().omega;
    let opt_special = solve_maxmin(&t.instance).unwrap();
    let mapped = t.map_back(&opt_special.solution);
    let delta_i = DegreeStats::of(&inst).delta_i as f64;
    println!("optimum of the original:      {opt_in:.5}");
    println!("optimum of the special form:  {:.5}", opt_special.omega);
    println!(
        "back-mapped special optimum:  {:.5}  (≥ 2/ΔI · {:.5} = {:.5} ✓, feasible: {})",
        mapped.utility(&inst),
        opt_special.omega,
        2.0 * opt_special.omega / delta_i,
        mapped.is_feasible(&inst, 1e-6)
    );
    // Per-step optimum bookkeeping.
    let (s2, _) = transform::augment_singleton_constraints(&inst);
    let (s3, _) = transform::reduce_constraint_degree(&s2);
    let (s4, _) = transform::split_multi_objective_agents(&s3);
    let (s5, _) = transform::augment_singleton_objectives(&s4);
    let (s6, _) = transform::normalize_objective_coefficients(&s5);
    let mut t2 = Table::new(&["step", "optimum", "note"]);
    for (name, i, note) in [
        ("input", &inst, ""),
        ("4.2", &s2, "preserved"),
        ("4.3", &s3, "may grow (ratio costs ΔI/2)"),
        ("4.4", &s4, "preserved"),
        ("4.5", &s5, "preserved"),
        ("4.6", &s6, "preserved"),
    ] {
        t2.row(vec![
            name.into(),
            format!("{:.5}", solve_maxmin(i).unwrap().omega),
            note.into(),
        ]);
    }
    println!("{}", t2.render());
    println!();
}

/// T7 — the intro's applications at realistic sizes: a scaling
/// campaign per application family (catalogue sizes chosen to hit the
/// old 4/6/8-side grids and 16/32/64-customer ladders).
fn t7_applications() {
    println!("--- T7: application workloads (R = 3) ---");
    let mut records = Vec::new();
    for (family, sizes) in [
        ("sensor-grid", vec![80, 180, 320]),
        ("bandwidth", vec![32, 64, 128]),
    ] {
        let mut spec = grid("t7", vec![family.into()], sizes, vec![3]);
        spec.seeds = vec![7];
        records.extend(run_in_memory(&spec, WORKERS));
    }
    assert!(report::violations(&records).is_empty());
    println!("{}", report::ratio_vs_guarantee(&records).render());
    println!("{}", report::scaling(&records).render());
    println!();
}

/// T8 — distributed vs centralized, and the communication cost of
/// full-information gathering as R grows.
fn t8_distributed() {
    println!("--- T8: the distributed protocol ---");
    let inst = random_special_form(
        &SpecialFormConfig {
            n_objectives: 40,
            extra_constraints: 20,
            ..SpecialFormConfig::default()
        },
        3,
    );
    let sf = SpecialForm::new(inst).unwrap();
    let mut table = Table::new(&[
        "R",
        "rounds",
        "messages",
        "total MB",
        "peak B/round",
        "max |x_dist − x_central|",
    ]);
    for big_r in [2, 3, 4] {
        let dist = solve_distributed(&sf, big_r);
        let central = solve_special(&sf, big_r, 1);
        let max_dev = dist
            .solution
            .as_slice()
            .iter()
            .zip(central.x.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        table.row(vec![
            big_r.to_string(),
            dist.stats.rounds.to_string(),
            dist.stats.messages.to_string(),
            format!("{:.3}", dist.stats.bytes as f64 / 1e6),
            dist.stats.peak_round_bytes().to_string(),
            format!("{max_dev:.1e}"),
        ]);
        assert_eq!(max_dev, 0.0, "bit-identical by construction");
    }
    println!("{}", table.render());
    println!("bytes grow exponentially in R (full-information views), rounds linearly. ✓\n");
}

/// T9 — ablations: disable one ingredient of §5.3 at a time and measure
/// the damage (max constraint violation, utility) — every ingredient is
/// load-bearing.
fn t9_ablations() {
    use mmlp_core::smoothing::{solve_special_ablated, Ablation};
    println!("--- T9: ablations of the §5.3 construction (R = 3) ---");
    let mut table = Table::new(&[
        "variant",
        "worst violation",
        "mean utility",
        "feasible runs",
    ]);
    let variants = [
        ("full algorithm", Ablation::None),
        ("no smoothing (s := t)", Ablation::NoSmoothing),
        ("up-role only", Ablation::UpOnly),
        ("down-role only", Ablation::DownOnly),
        ("no shifting (level r only)", Ablation::NoShifting),
    ];
    let seeds = 8u64;
    for (name, ab) in variants {
        let mut worst_violation = 0.0f64;
        let mut mean_utility = 0.0f64;
        let mut feasible = 0usize;
        for seed in 0..seeds {
            let inst = random_special_form(
                &SpecialFormConfig {
                    n_objectives: 24,
                    delta_k: 3,
                    extra_constraints: 14,
                    coef_range: (0.25, 4.0),
                },
                seed,
            );
            let sf = SpecialForm::new(inst).unwrap();
            let run = solve_special_ablated(&sf, 3, ab);
            let rep = run.x.feasibility(sf.instance());
            worst_violation = worst_violation.max(rep.max_constraint_violation);
            mean_utility += run.x.utility(sf.instance()) / seeds as f64;
            if rep.is_feasible(1e-9) {
                feasible += 1;
            }
        }
        table.row(vec![
            name.into(),
            format!("{worst_violation:.3e}"),
            format!("{mean_utility:.4}"),
            format!("{feasible}/{seeds}"),
        ]);
    }
    println!("{}", table.render());
    println!("only the full construction is always feasible; smoothing and the");
    println!("up/down averaging are exactly what Lemmas 9–11 need. ✓\n");
}

/// T10 — §1.3's dynamic-updates claim: constant repair work per edit,
/// bit-identical to a full re-solve.
fn t10_dynamic_updates() {
    use mmlp_core::dynamic::DynamicSolver;
    use mmlp_instance::ConstraintId;
    println!("--- T10: dynamic updates (edit one constraint, repair locally) ---");
    let mut table = Table::new(&[
        "n objectives",
        "agents",
        "R",
        "t recomputed",
        "x recomputed",
        "fraction",
    ]);
    for big_r in [2usize, 3] {
        for n_obj in [32usize, 128, 512] {
            let inst = mmlp_gen::special::cycle_special(n_obj, 1.0);
            let sf = SpecialForm::new(inst).unwrap();
            let n = sf.n_agents();
            let mut dynamic = DynamicSolver::new(sf, big_r, 1);
            let rep = dynamic.update_constraint_coefs(ConstraintId::new(0), [2.0, 0.75]);
            table.row(vec![
                n_obj.to_string(),
                n.to_string(),
                big_r.to_string(),
                rep.recomputed_t.to_string(),
                rep.recomputed_x.to_string(),
                format!("{:.1}%", 100.0 * rep.recomputed_x as f64 / n as f64),
            ]);
        }
    }
    println!("{}", table.render());
    println!("repair work is constant in n (and bit-identical to a full solve —");
    println!("asserted in the test-suite). ✓\n");
}

/// T11 — exact rational validation: the f64 stack agrees with a
/// tolerance-free exact simplex on exactly-representable instances.
fn t11_exact_validation() {
    use mmlp_lp::{exact_maxmin, ExactOutcome};
    println!("--- T11: exact rational validation of the f64 substrate ---");
    let mut table = Table::new(&["instance", "exact optimum", "f64 optimum", "|diff|"]);
    let (reg3, _) = regular_gadget(8, 3, 2, 4, 0);
    let (reg4, _) = regular_gadget(8, 4, 2, 4, 1);
    let (tree, _) = tree_gadget(3, 2, 2);
    for (name, inst) in [
        ("gadget d=3", &reg3),
        ("gadget d=4", &reg4),
        ("tree d=3 depth 2", &tree),
    ] {
        let exact = match exact_maxmin(inst, 1) {
            ExactOutcome::Optimal { objective, .. } => objective,
            other => panic!("{other:?}"),
        };
        let f64_opt = solve_maxmin(inst).unwrap().omega;
        table.row(vec![
            name.into(),
            format!("{exact}"),
            format!("{f64_opt:.10}"),
            format!("{:.1e}", (exact.to_f64() - f64_opt).abs()),
        ]);
    }
    println!("{}", table.render());
    println!("the perturbed f64 simplex sits within ~1e-9 of the exact optima. ✓\n");
}

/// F1 — Figure 1: the layered structure of G and the alternating tree
/// A_u, rendered from a layered fixture at R = 3.
fn f1_figure1() {
    println!("--- F1: Figure 1 (layers and the alternating tree A_u) ---");
    let big_r = 3;
    let (inst, is_up) = layered_special(2 * big_r, 2, 3, (1.0, 1.0), 0);
    let sf = SpecialForm::new(inst).unwrap();
    let layers = assign_layers_mod(&sf, &is_up, 4 * big_r, ObjectiveId::new(0)).unwrap();
    let g = CommGraph::new(sf.instance());

    // Count node types per layer residue.
    let mut per_layer: Vec<[usize; 4]> = vec![[0; 4]; 4 * big_r]; // up/obj/down/cons
    for x in 0..g.n_nodes() as u32 {
        let l = layers.layer[x as usize] as usize;
        match g.node(x) {
            Node::Agent(v) => {
                if is_up[v.idx()] {
                    per_layer[l][0] += 1;
                } else {
                    per_layer[l][2] += 1;
                }
            }
            Node::Objective(_) => per_layer[l][1] += 1,
            Node::Constraint(_) => per_layer[l][3] += 1,
        }
    }
    println!("layer (mod {}) | node type            | count", 4 * big_r);
    println!("--------------+----------------------+------");
    for (l, counts) in per_layer.iter().enumerate() {
        let (label, count) = match l % 4 {
            0 => ("objectives", counts[1]),
            1 => ("down-agents", counts[2]),
            2 => ("constraints", counts[3]),
            _ => ("up-agents", counts[0]),
        };
        println!("{l:>13} | {label:<20} | {count}");
        // Lemma 8: nothing else lives on this layer.
        let total: usize = counts.iter().sum();
        assert_eq!(total, count, "Lemma 8 residues");
    }

    // The tree A_u of an up-agent on layer −1 ≡ 4R−1: its levels must
    // coincide with the layers (the caption of Figure 1).
    let u = sf
        .instance()
        .agents()
        .find(|v| is_up[v.idx()] && layers.agent_layer(*v) == (4 * big_r - 1) as u32)
        .expect("an up-agent on layer -1 (mod 4R)");
    let tb = TreeBound::new(&sf, big_r);
    let (tree, origin) = tb.materialize(u);
    println!(
        "\nA_u for up-agent {u} (layer −1): {} nodes, {} agents, {} constraints, {} objectives",
        tb.tree_size(u),
        tree.n_agents(),
        tree.n_constraints(),
        tree.n_objectives()
    );
    // Every tree agent's level parity matches its original layer class.
    let mut coincide = true;
    for (copy, orig) in origin.iter().enumerate() {
        let l = layers.agent_layer(*orig) % 4;
        coincide &= l == 1 || l == 3;
        let _ = copy;
    }
    println!(
        "levels in A_u coincide with layers for all {} agent copies: {} ✓\n",
        origin.len(),
        coincide
    );
}

/// F2 — Figure 2: the four graph rewrites of §4.2–§4.5 on the paper's
/// example shapes.
fn f2_figure2() {
    println!("--- F2: Figure 2 (the §4 rewrites on the paper's shapes) ---");
    let mut table = Table::new(&["rewrite", "before (V,I,K)", "after (V,I,K)", "what changed"]);

    // §4.2 panel: a singleton constraint gains the 6-node gadget.
    let mut b = mmlp_instance::InstanceBuilder::new();
    let v = b.add_agent();
    b.add_constraint(&[(v, 1.0)]).unwrap();
    b.add_objective(&[(v, 1.0)]).unwrap();
    let inst = b.build().unwrap();
    let (out, _) = transform::augment_singleton_constraints(&inst);
    table.row(vec![
        "4.2".into(),
        format!(
            "({},{},{})",
            inst.n_agents(),
            inst.n_constraints(),
            inst.n_objectives()
        ),
        format!(
            "({},{},{})",
            out.n_agents(),
            out.n_constraints(),
            out.n_objectives()
        ),
        "+3 agents {s,t,u}, +1 constraint j, +2 objectives {h,ℓ}".into(),
    ]);

    // §4.3 panel: a degree-3 constraint splits into 3 pairs.
    let mut b = mmlp_instance::InstanceBuilder::new();
    let agents: Vec<_> = (0..3).map(|_| b.add_agent()).collect();
    b.add_constraint(&[(agents[0], 1.0), (agents[1], 1.0), (agents[2], 1.0)])
        .unwrap();
    for &a in &agents {
        b.add_objective(&[(a, 1.0)]).unwrap();
    }
    let inst = b.build().unwrap();
    let (out, _) = transform::reduce_constraint_degree(&inst);
    table.row(vec![
        "4.3".into(),
        format!(
            "({},{},{})",
            inst.n_agents(),
            inst.n_constraints(),
            inst.n_objectives()
        ),
        format!(
            "({},{},{})",
            out.n_agents(),
            out.n_constraints(),
            out.n_objectives()
        ),
        "1 constraint of degree 3 → C(3,2) = 3 pairs".into(),
    ]);

    // §4.4 panel: an agent with two objectives splits into two copies.
    let mut b = mmlp_instance::InstanceBuilder::new();
    let v = b.add_agent();
    let w = b.add_agent();
    b.add_constraint(&[(v, 1.0), (w, 1.0)]).unwrap();
    b.add_objective(&[(v, 1.0), (w, 1.0)]).unwrap();
    b.add_objective(&[(v, 1.0), (w, 1.0)]).unwrap();
    let inst = b.build().unwrap();
    let (out, _) = transform::split_multi_objective_agents(&inst);
    table.row(vec![
        "4.4".into(),
        format!(
            "({},{},{})",
            inst.n_agents(),
            inst.n_constraints(),
            inst.n_objectives()
        ),
        format!(
            "({},{},{})",
            out.n_agents(),
            out.n_constraints(),
            out.n_objectives()
        ),
        "both agents copied per objective; constraints replicated".into(),
    ]);

    // §4.5 panel: a singleton objective's agent splits into two halves.
    let mut b = mmlp_instance::InstanceBuilder::new();
    let v = b.add_agent();
    let w = b.add_agent();
    b.add_constraint(&[(v, 1.0), (w, 1.0)]).unwrap();
    b.add_objective(&[(v, 2.0)]).unwrap();
    b.add_objective(&[(w, 1.0), (v, 1.0)]).unwrap();
    let inst = b.build().unwrap();
    let (i4, _) = transform::split_multi_objective_agents(&inst);
    let (out, _) = transform::augment_singleton_objectives(&i4);
    table.row(vec![
        "4.5".into(),
        format!(
            "({},{},{})",
            i4.n_agents(),
            i4.n_constraints(),
            i4.n_objectives()
        ),
        format!(
            "({},{},{})",
            out.n_agents(),
            out.n_constraints(),
            out.n_objectives()
        ),
        "singleton objective's agent → two half-weight copies".into(),
    ]);
    println!("{}", table.render());
    println!();
}

/// F3 — Figure 3: the layer weights; every edge class moves the layer by
/// exactly ±1 with the residues of Lemma 8.
fn f3_figure3() {
    println!("--- F3: Figure 3 (layer weights) ---");
    let big_r = 3;
    let (inst, is_up) = layered_special(2 * big_r, 3, 3, (0.5, 2.0), 1);
    let sf = SpecialForm::new(inst).unwrap();
    let layers = assign_layers_mod(&sf, &is_up, 4 * big_r, ObjectiveId::new(0)).unwrap();
    let g = CommGraph::new(sf.instance());
    let m = 4 * big_r as i64;
    // Tally the layer delta per (from-kind, to-kind, role) edge class.
    let mut tally: std::collections::BTreeMap<String, (i64, usize)> = Default::default();
    for x in 0..g.n_nodes() as u32 {
        for adj in g.neighbors(x) {
            let lx = layers.layer[x as usize] as i64;
            let ly = layers.layer[adj.to as usize] as i64;
            let mut delta = (ly - lx).rem_euclid(m);
            if delta > m / 2 {
                delta -= m;
            }
            let name = |n: u32| match g.node(n) {
                Node::Agent(v) => {
                    if is_up[v.idx()] {
                        "up-agent"
                    } else {
                        "down-agent"
                    }
                }
                Node::Constraint(_) => "constraint",
                Node::Objective(_) => "objective",
            };
            if g.node(x).kind() == NodeKind::Agent {
                continue; // count each edge once, from the row side
            }
            let key = format!("{} → {}", name(x), name(adj.to));
            let e = tally.entry(key).or_insert((delta, 0));
            assert_eq!(e.0, delta, "every edge of a class has the same weight");
            e.1 += 1;
        }
    }
    let mut table = Table::new(&["edge class", "layer weight", "edges"]);
    for (k, (delta, count)) in tally {
        table.row(vec![k, format!("{delta:+}"), count.to_string()]);
    }
    println!("{}", table.render());
    println!("matches Figure 3: downward edges +1, upward edges −1. ✓\n");
}
