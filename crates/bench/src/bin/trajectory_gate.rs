//! Bench-trajectory sanity gate for `BENCH_core.json`.
//!
//! Reads one mmlp-bench-json-v1 file (path as the sole argument,
//! default `BENCH_core.json`) and fails — non-zero exit, one line per
//! violated invariant — unless the committed medians keep the orderings
//! this repo's perf story rests on:
//!
//! 1. `distributed-solve/flat-threaded/4` < `distributed-solve/flat/4`
//!    — threading the `t` batch must not cost (the PR-5 regression, now
//!    gated);
//! 2. `view-eval-t/memoized/R` ≤ `view-eval-t/recursive/R` at every
//!    benchmarked `R` — the memo table must pay for itself;
//! 3. `distributed-solve/flat/R` < `distributed-solve/legacy/R` at
//!    every benchmarked `R` — the arena path must stay ahead of the
//!    legacy tree protocol;
//! 4. `obs-overhead/traced/R` ≤ 1.03 × `obs-overhead/plain/R` at
//!    R ∈ {3, 4} — instrumenting the flat hot path must cost at most
//!    3% end to end (the `specs/OBSERVABILITY.md` overhead contract).
//!
//! CI runs this against the **committed** file (not a fresh run), so
//! the gate is deterministic: it catches a PR committing numbers that
//! lose an ordering, not machine noise. The procedure for regenerating
//! the file honestly is the "how to claim a speedup" checklist in
//! `specs/PERF.md`.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Extracts `"name" → median_ns` from an mmlp-bench-json-v1 document
/// (the shim's line-per-entry layout; no JSON dependency needed).
fn parse_medians(doc: &str) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    for line in doc.lines() {
        let t = line.trim();
        let Some(rest) = t.strip_prefix("{\"name\": \"") else {
            continue;
        };
        let Some(name_end) = rest.find('"') else {
            continue;
        };
        let name = &rest[..name_end];
        let Some(median_at) = rest.find("\"median_ns\": ") else {
            continue;
        };
        let digits: String = rest[median_at + "\"median_ns\": ".len()..]
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect();
        if let Ok(median) = digits.parse() {
            out.insert(name.to_string(), median);
        }
    }
    out
}

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_core.json".into());
    let doc = match std::fs::read_to_string(&path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("trajectory-gate: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let medians = parse_medians(&doc);
    if medians.is_empty() {
        eprintln!("trajectory-gate: no benchmark entries in {path}");
        return ExitCode::FAILURE;
    }

    let mut failures = Vec::new();
    // `fast` must be strictly faster than (or, with `strict` off, no
    // slower than) `slow`; both entries must exist when `required`.
    let mut check = |fast: &str, slow: &str, strict: bool, required: bool| match (
        medians.get(fast),
        medians.get(slow),
    ) {
        (Some(&f), Some(&s)) => {
            let ok = if strict { f < s } else { f <= s };
            if !ok {
                failures.push(format!(
                    "{fast} ({f} ns) must be {} {slow} ({s} ns)",
                    if strict { "<" } else { "≤" }
                ));
            }
        }
        _ if required => {
            failures.push(format!("missing entries: need both {fast} and {slow}"));
        }
        _ => {}
    };

    check(
        "distributed-solve/flat-threaded/4",
        "distributed-solve/flat/4",
        true,
        true,
    );
    for big_r in 2..=8 {
        check(
            &format!("view-eval-t/memoized/{big_r}"),
            &format!("view-eval-t/recursive/{big_r}"),
            false,
            big_r == 3 || big_r == 4,
        );
        check(
            &format!("distributed-solve/flat/{big_r}"),
            &format!("distributed-solve/legacy/{big_r}"),
            true,
            big_r == 3 || big_r == 4,
        );
    }

    // The 3% observability-overhead contract, in exact integer
    // arithmetic: traced·100 ≤ plain·103.
    for big_r in [3u32, 4] {
        let traced = format!("obs-overhead/traced/{big_r}");
        let plain = format!("obs-overhead/plain/{big_r}");
        match (medians.get(&traced), medians.get(&plain)) {
            (Some(&t), Some(&p)) => {
                if t * 100 > p * 103 {
                    failures.push(format!(
                        "{traced} ({t} ns) must be ≤ 1.03 × {plain} ({p} ns)"
                    ));
                }
            }
            _ => failures.push(format!("missing entries: need both {traced} and {plain}")),
        }
    }

    if failures.is_empty() {
        println!("trajectory-gate: {path} OK ({} entries)", medians.len());
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("trajectory-gate: FAIL: {f}");
        }
        ExitCode::FAILURE
    }
}
