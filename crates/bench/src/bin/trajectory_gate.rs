//! Bench-trajectory sanity gate for the committed `BENCH_*.json` files.
//!
//! Reads one or more mmlp-bench-json-v1 files (paths as arguments,
//! default `BENCH_core.json`) and fails — non-zero exit, one line per
//! violated invariant — unless the committed medians keep the orderings
//! this repo's perf story rests on. The rule set is picked per file
//! from its name:
//!
//! `BENCH_core.json`:
//!
//! 1. `distributed-solve/flat-threaded/4` < `distributed-solve/flat/4`
//!    — threading the `t` batch must not cost (the PR-5 regression, now
//!    gated);
//! 2. `view-eval-t/memoized/R` ≤ `view-eval-t/recursive/R` at every
//!    benchmarked `R` — the memo table must pay for itself;
//! 3. `distributed-solve/flat/R` < `distributed-solve/legacy/R` at
//!    every benchmarked `R` — the arena path must stay ahead of the
//!    legacy tree protocol;
//! 4. `obs-overhead/traced/R` ≤ 1.03 × `obs-overhead/plain/R` and
//!    `obs-overhead/journaled/R` ≤ 1.03 × `obs-overhead/plain/R` at
//!    R ∈ {3, 4} — instrumenting the flat hot path, and additionally
//!    building + journaling the per-request span tree, must cost at
//!    most 3% end to end (the `specs/OBSERVABILITY.md` overhead
//!    contract). These two are compared on **min** per-iteration time
//!    rather than median: scheduler noise is one-sided (it only ever
//!    inflates a sample), and a 3% margin is far below the median
//!    jitter of a shared machine, so the minimum — the least-disturbed
//!    iteration of each variant — is the honest basis for a tight
//!    same-workload ratio.
//!
//! `BENCH_serve.json`:
//!
//! 5. `serve_cache/warm_hit/n` < `serve_cache/cold_solve/n` at every
//!    benchmarked size — the result cache must pay for itself;
//! 6. `serve_cache/warm_hit/64` ≤ 4 × `serve_cache/warm_hit/16` — the
//!    hit path is a key probe, O(1) in instance size;
//!
//! 6b. `serve_throughput/reactor/64` must exist, and whenever the
//! retired thread-per-connection baseline entry
//! (`serve_throughput/thread_per_conn/64`) is also present — as it is
//! in the committed file — the reactor must beat it strictly: the
//! event-driven rewrite has to be a throughput win, not a wash.
//!
//! `BENCH_delta.json` (the §1.3 dynamic corollary, measured):
//!
//! 7. `delta-solve/edit-rR/n` < `delta-solve/scratch-rR/n` at every
//!    grid point — an incremental repair must beat starting over;
//! 8. `delta-solve/edit-r2/n` ≤ `delta-solve/edit-r3/n` — repair cost
//!    grows with the edit ball;
//! 9. edit cost grows strictly slower than scratch cost across the
//!    size axis (`edit·256 / edit·64 < scratch·256 / scratch·64`,
//!    cross-multiplied) — delta cost tracks the ball, not the instance.
//!
//! CI runs this against the **committed** files (not a fresh run), so
//! the gate is deterministic: it catches a PR committing numbers that
//! lose an ordering, not machine noise. The procedure for regenerating
//! a file honestly is the "how to claim a speedup" checklist in
//! `specs/PERF.md`.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Extracts `"name" → (median_ns, min_ns)` from an mmlp-bench-json-v1
/// document (the shim's line-per-entry layout; no JSON dependency
/// needed).
fn parse_entries(doc: &str) -> BTreeMap<String, (u64, u64)> {
    let field = |rest: &str, key: &str| -> Option<u64> {
        let at = rest.find(key)?;
        let digits: String = rest[at + key.len()..]
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect();
        digits.parse().ok()
    };
    let mut out = BTreeMap::new();
    for line in doc.lines() {
        let t = line.trim();
        let Some(rest) = t.strip_prefix("{\"name\": \"") else {
            continue;
        };
        let Some(name_end) = rest.find('"') else {
            continue;
        };
        let name = &rest[..name_end];
        let Some(median) = field(rest, "\"median_ns\": ") else {
            continue;
        };
        let min = field(rest, "\"min_ns\": ").unwrap_or(median);
        out.insert(name.to_string(), (median, min));
    }
    out
}

/// Rule helpers over one file's medians (and minima, for the tight
/// ratio contracts), accumulating failures.
struct Gate<'a> {
    medians: &'a BTreeMap<String, u64>,
    mins: &'a BTreeMap<String, u64>,
    failures: &'a mut Vec<String>,
}

impl Gate<'_> {
    /// `fast` must be strictly faster than (or, with `strict` off, no
    /// slower than) `slow`; both entries must exist when `required`.
    fn check(&mut self, fast: &str, slow: &str, strict: bool, required: bool) {
        match (self.medians.get(fast), self.medians.get(slow)) {
            (Some(&f), Some(&s)) => {
                let ok = if strict { f < s } else { f <= s };
                if !ok {
                    self.failures.push(format!(
                        "{fast} ({f} ns) must be {} {slow} ({s} ns)",
                        if strict { "<" } else { "≤" }
                    ));
                }
            }
            _ if required => {
                self.failures
                    .push(format!("missing entries: need both {fast} and {slow}"));
            }
            _ => {}
        }
    }

    /// `name` ≤ (num/den) × `base`, in exact integer arithmetic; both
    /// entries required.
    fn check_ratio(&mut self, name: &str, base: &str, num: u64, den: u64) {
        match (self.medians.get(name), self.medians.get(base)) {
            (Some(&n), Some(&b)) => {
                if n * den > b * num {
                    self.failures.push(format!(
                        "{name} ({n} ns) must be ≤ {num}/{den} × {base} ({b} ns)"
                    ));
                }
            }
            _ => self
                .failures
                .push(format!("missing entries: need both {name} and {base}")),
        }
    }

    /// Like [`Gate::check_ratio`], but over **min** per-iteration time
    /// — the basis for margins tighter than median machine jitter.
    fn check_ratio_min(&mut self, name: &str, base: &str, num: u64, den: u64) {
        match (self.mins.get(name), self.mins.get(base)) {
            (Some(&n), Some(&b)) => {
                if n * den > b * num {
                    self.failures.push(format!(
                        "{name} (min {n} ns) must be ≤ {num}/{den} × {base} (min {b} ns)"
                    ));
                }
            }
            _ => self
                .failures
                .push(format!("missing entries: need both {name} and {base}")),
        }
    }
}

fn gate_core(g: &mut Gate) {
    g.check(
        "distributed-solve/flat-threaded/4",
        "distributed-solve/flat/4",
        true,
        true,
    );
    for big_r in 2..=8 {
        g.check(
            &format!("view-eval-t/memoized/{big_r}"),
            &format!("view-eval-t/recursive/{big_r}"),
            false,
            big_r == 3 || big_r == 4,
        );
        g.check(
            &format!("distributed-solve/flat/{big_r}"),
            &format!("distributed-solve/legacy/{big_r}"),
            true,
            big_r == 3 || big_r == 4,
        );
    }
    // The 3% observability-overhead contract: traced·100 ≤ plain·103,
    // and the full per-request span-tree + journal-emit path stays
    // inside the same envelope.
    for big_r in [3u32, 4] {
        for variant in ["traced", "journaled"] {
            g.check_ratio_min(
                &format!("obs-overhead/{variant}/{big_r}"),
                &format!("obs-overhead/plain/{big_r}"),
                103,
                100,
            );
        }
    }
}

fn gate_serve(g: &mut Gate) {
    for size in [16u32, 64] {
        g.check(
            &format!("serve_cache/warm_hit/{size}"),
            &format!("serve_cache/cold_solve/{size}"),
            true,
            true,
        );
    }
    // The hit path is a key build + LRU probe: O(1) in instance size.
    g.check_ratio("serve_cache/warm_hit/64", "serve_cache/warm_hit/16", 4, 1);
    // The event-driven front-end must serve the 64-client closed-loop
    // burst strictly faster than the retired thread-per-connection
    // server. The committed file carries both entries; a freshly
    // regenerated file has only the reactor one (the old server no
    // longer exists to measure), so the ordering applies exactly when
    // the baseline is present — but the reactor entry itself is
    // mandatory.
    if !g.medians.contains_key("serve_throughput/reactor/64") {
        g.failures
            .push("missing entry: serve_throughput/reactor/64".into());
    }
    g.check(
        "serve_throughput/reactor/64",
        "serve_throughput/thread_per_conn/64",
        true,
        false,
    );
}

fn gate_delta(g: &mut Gate) {
    for big_r in [2u32, 3] {
        for size in [64u32, 256] {
            g.check(
                &format!("delta-solve/edit-r{big_r}/{size}"),
                &format!("delta-solve/scratch-r{big_r}/{size}"),
                true,
                true,
            );
        }
        // Flat in instance size: 4× the agents may cost the repair at
        // most 3.5× (BFS bookkeeping), while scratch grows ~linearly.
        g.check_ratio(
            &format!("delta-solve/edit-r{big_r}/256"),
            &format!("delta-solve/edit-r{big_r}/64"),
            7,
            2,
        );
        // And strictly slower growth than from-scratch, cross-multiplied:
        // edit256 · scratch64 < scratch256 · edit64.
        let name = |kind: &str, size: u32| format!("delta-solve/{kind}-r{big_r}/{size}");
        match (
            g.medians.get(&name("edit", 256)),
            g.medians.get(&name("scratch", 64)),
            g.medians.get(&name("scratch", 256)),
            g.medians.get(&name("edit", 64)),
        ) {
            (Some(&e256), Some(&s64), Some(&s256), Some(&e64)) => {
                if e256 * s64 >= s256 * e64 {
                    g.failures.push(format!(
                        "delta repair must scale slower than scratch at R={big_r}: \
                         edit 64→256 grew {e64}→{e256} ns vs scratch {s64}→{s256} ns"
                    ));
                }
            }
            _ => g
                .failures
                .push(format!("missing delta-solve entries at R={big_r}")),
        }
    }
    for size in [64u32, 256] {
        g.check(
            &format!("delta-solve/edit-r2/{size}"),
            &format!("delta-solve/edit-r3/{size}"),
            false,
            true,
        );
    }
}

fn main() -> ExitCode {
    let mut paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        paths.push("BENCH_core.json".into());
    }

    let mut failures = Vec::new();
    let mut entries = 0usize;
    for path in &paths {
        let doc = match std::fs::read_to_string(path) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("trajectory-gate: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let parsed = parse_entries(&doc);
        if parsed.is_empty() {
            eprintln!("trajectory-gate: no benchmark entries in {path}");
            return ExitCode::FAILURE;
        }
        entries += parsed.len();
        let medians: BTreeMap<String, u64> = parsed.iter().map(|(k, v)| (k.clone(), v.0)).collect();
        let mins: BTreeMap<String, u64> = parsed.iter().map(|(k, v)| (k.clone(), v.1)).collect();
        let mut g = Gate {
            medians: &medians,
            mins: &mins,
            failures: &mut failures,
        };
        let stem = path.rsplit('/').next().unwrap_or(path);
        match stem {
            s if s.contains("core") => gate_core(&mut g),
            s if s.contains("serve") => gate_serve(&mut g),
            s if s.contains("delta") => gate_delta(&mut g),
            _ => {} // e.g. BENCH_store.json: parse-only for now
        }
    }

    if failures.is_empty() {
        println!(
            "trajectory-gate: {} OK ({entries} entries)",
            paths.join(" ")
        );
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("trajectory-gate: FAIL: {f}");
        }
        ExitCode::FAILURE
    }
}
