//! Shared plumbing for the experiment harness and the criterion benches:
//! aligned-table rendering and the standard measurement routines used by
//! every table in EXPERIMENTS.md.

use mmlp_core::safe::safe_solution;
use mmlp_core::solver::LocalSolver;
use mmlp_instance::{DegreeStats, Instance};
use mmlp_lp::solve_maxmin;

/// A plain text table with aligned columns.
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Renders with right-aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  "),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as a GitHub-flavoured markdown table.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

/// One measurement of the local algorithm against the baseline and the
/// exact optimum on a single instance.
#[derive(Clone, Copy, Debug)]
pub struct Measurement {
    /// Exact LP optimum `ω*`.
    pub optimum: f64,
    /// Utility of the local algorithm's output.
    pub local: f64,
    /// Utility of the safe baseline.
    pub safe: f64,
    /// `ω*/ω(local)`.
    pub local_ratio: f64,
    /// `ω*/ω(safe)`.
    pub safe_ratio: f64,
    /// The proved guarantee `ΔI(1−1/ΔK)(1+1/(R−1))` for this instance.
    pub guarantee: f64,
    /// The unconditional threshold `ΔI(1−1/ΔK)`.
    pub threshold: f64,
}

/// Runs the local solver (at `big_r`), the safe baseline and the exact
/// simplex on one instance.
pub fn measure(inst: &Instance, big_r: usize) -> Measurement {
    let stats = DegreeStats::of(inst);
    let solver = LocalSolver::new(big_r).with_threads(4);
    let local = solver.solve(inst).solution.utility(inst);
    let safe = safe_solution(inst).utility(inst);
    let optimum = solve_maxmin(inst).expect("workloads are bounded").omega;
    Measurement {
        optimum,
        local,
        safe,
        local_ratio: optimum / local,
        safe_ratio: optimum / safe,
        guarantee: solver.guarantee(stats.delta_i.max(2), stats.delta_k.max(2)),
        threshold: mmlp_core::ratio::threshold(stats.delta_i.max(2), stats.delta_k.max(2)),
    }
}

/// Aggregates measurements over seeds: worst and mean local ratio.
pub fn aggregate(ms: &[Measurement]) -> (f64, f64) {
    let worst = ms.iter().map(|m| m.local_ratio).fold(0.0f64, f64::max);
    let mean = ms.iter().map(|m| m.local_ratio).sum::<f64>() / ms.len() as f64;
    (worst, mean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmlp_gen::random::{random_general, RandomConfig};

    #[test]
    fn table_renders_aligned_and_markdown() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1.0".into()]);
        t.row(vec!["long-name".into(), "2".into()]);
        let r = t.render();
        assert!(r.contains("long-name"));
        assert_eq!(r.lines().count(), 4);
        let md = t.render_markdown();
        assert!(md.starts_with("| name | value |"));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn table_checks_row_width() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn measure_respects_guarantee() {
        let inst = random_general(&RandomConfig::default(), 3);
        let m = measure(&inst, 3);
        assert!(m.local_ratio <= m.guarantee + 1e-9);
        assert!(m.local > 0.0 && m.safe > 0.0);
        assert!(m.threshold < m.guarantee);
        let (worst, mean) = aggregate(&[m]);
        assert_eq!(worst, mean);
    }
}
