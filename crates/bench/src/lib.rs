//! Shared plumbing for the experiment harness and the criterion
//! benches.
//!
//! The grid measurements that used to live here (family × seed × R
//! loops over a `measure` routine) are now `mmlp-lab` campaigns — see
//! `mmlp_lab::exec` for the per-job measurement and
//! `mmlp_lab::report` for the aggregation. This crate re-exports the
//! table renderer for the bespoke (non-grid) experiment tables.

pub use mmlp_lab::report::Table;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_reexport_renders_all_formats() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1.0".into()]);
        t.row(vec!["long-name".into(), "2".into()]);
        let r = t.render();
        assert!(r.contains("long-name"));
        assert_eq!(r.lines().count(), 4);
        let md = t.render_markdown();
        assert!(md.starts_with("| name | value |"));
        assert!(t.render_csv().starts_with("name,value"));
    }
}
