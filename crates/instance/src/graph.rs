//! Flat unified-index view of the communication graph `G = (V ∪ I ∪ K, E)`.
//!
//! Many parts of the system (the distributed runtime, the unfolding
//! machinery of §3, the smoothing radius of §5.3) need to treat agents,
//! constraints and objectives uniformly as graph nodes. [`CommGraph`]
//! assigns every node a dense index (`agents`, then `constraints`, then
//! `objectives`), every undirected edge a global id, and every incidence a
//! *port*: the position of the edge in the node's adjacency list, matching
//! the port numbering defined by the [`crate::Instance`] row order.

use crate::ids::{AgentId, ConstraintId, ObjectiveId};
use crate::instance::Instance;

/// Which of the three classes a node belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// Agent (variable) node.
    Agent,
    /// Constraint (packing row) node.
    Constraint,
    /// Objective (covering row) node.
    Objective,
}

/// A typed node of the communication graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Node {
    /// Agent node.
    Agent(AgentId),
    /// Constraint node.
    Constraint(ConstraintId),
    /// Objective node.
    Objective(ObjectiveId),
}

impl Node {
    /// The class of this node.
    pub fn kind(self) -> NodeKind {
        match self {
            Node::Agent(_) => NodeKind::Agent,
            Node::Constraint(_) => NodeKind::Constraint,
            Node::Objective(_) => NodeKind::Objective,
        }
    }
}

/// One adjacency record: the neighbour, the port this edge occupies at the
/// neighbour's end, and the global edge id.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Adj {
    /// Flat index of the neighbour node.
    pub to: u32,
    /// Port number of this edge *at the neighbour* (needed when a message
    /// arrives: the receiver knows on which of its own ports it came in).
    pub port_at_to: u32,
    /// Global undirected edge id (agent–constraint edges first, then
    /// agent–objective edges, in instance row order).
    pub edge: u32,
}

/// The communication graph in flat adjacency (CSR) form.
///
/// Node indexing: `0..n_agents` are agents, the next `n_constraints` are
/// constraints, the last `n_objectives` are objectives.
#[derive(Clone, Debug)]
pub struct CommGraph {
    n_agents: u32,
    n_constraints: u32,
    n_objectives: u32,
    n_edges: u32,
    off: Vec<u32>,
    adj: Vec<Adj>,
}

impl CommGraph {
    /// Builds the communication graph of an instance, with reciprocal port
    /// labels on every half-edge.
    pub fn new(inst: &Instance) -> Self {
        let n = inst.n_agents();
        let m = inst.n_constraints();
        let p = inst.n_objectives();
        let total = n + m + p;

        let mut deg = vec![0u32; total];
        for v in inst.agents() {
            deg[v.idx()] =
                (inst.agent_constraints(v).len() + inst.agent_objectives(v).len()) as u32;
        }
        for i in inst.constraints() {
            deg[n + i.idx()] = inst.constraint_row(i).len() as u32;
        }
        for k in inst.objectives() {
            deg[n + m + k.idx()] = inst.objective_row(k).len() as u32;
        }

        let mut off = vec![0u32; total + 1];
        for x in 0..total {
            off[x + 1] = off[x] + deg[x];
        }
        let mut adj = vec![
            Adj {
                to: 0,
                port_at_to: 0,
                edge: 0
            };
            off[total] as usize
        ];

        // Agent ports: constraints first (in agent_constraints order, i.e.
        // ascending constraint id), then objectives. We need, for each
        // (constraint row position) the port at the agent and vice versa.
        //
        // Pass 1: fill constraint- and objective-side adjacency, recording
        // for each row entry the agent port it corresponds to.
        //
        // Agent port of constraint i at agent v = position of i in
        // agent_constraints(v). Since that list is ascending in i and we
        // scan constraints in ascending order, a per-agent cursor works.
        let mut agent_cursor = vec![0u32; n];
        let mut edge_id = 0u32;
        for i in inst.constraints() {
            let inode = (n + i.idx()) as u32;
            for (port_at_cons, e) in inst.constraint_row(i).iter().enumerate() {
                let v = e.agent;
                let port_at_agent = agent_cursor[v.idx()];
                agent_cursor[v.idx()] += 1;
                // Constraint-side record.
                adj[(off[inode as usize] + port_at_cons as u32) as usize] = Adj {
                    to: v.raw(),
                    port_at_to: port_at_agent,
                    edge: edge_id,
                };
                // Agent-side record.
                adj[(off[v.idx()] + port_at_agent) as usize] = Adj {
                    to: inode,
                    port_at_to: port_at_cons as u32,
                    edge: edge_id,
                };
                edge_id += 1;
            }
        }
        // Objective ports continue after the constraint ports of each agent.
        for k in inst.objectives() {
            let knode = (n + m + k.idx()) as u32;
            for (port_at_obj, e) in inst.objective_row(k).iter().enumerate() {
                let v = e.agent;
                let port_at_agent = agent_cursor[v.idx()];
                agent_cursor[v.idx()] += 1;
                adj[(off[knode as usize] + port_at_obj as u32) as usize] = Adj {
                    to: v.raw(),
                    port_at_to: port_at_agent,
                    edge: edge_id,
                };
                adj[(off[v.idx()] + port_at_agent) as usize] = Adj {
                    to: knode,
                    port_at_to: port_at_obj as u32,
                    edge: edge_id,
                };
                edge_id += 1;
            }
        }

        CommGraph {
            n_agents: n as u32,
            n_constraints: m as u32,
            n_objectives: p as u32,
            n_edges: edge_id,
            off,
            adj,
        }
    }

    /// Total number of nodes `|V| + |I| + |K|`.
    #[inline]
    pub fn n_nodes(&self) -> usize {
        (self.n_agents + self.n_constraints + self.n_objectives) as usize
    }

    /// Number of undirected edges.
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.n_edges as usize
    }

    /// Number of agent nodes.
    #[inline]
    pub fn n_agents(&self) -> usize {
        self.n_agents as usize
    }

    /// Flat index of an agent node.
    #[inline]
    pub fn agent_index(&self, v: AgentId) -> u32 {
        v.raw()
    }

    /// Flat index of a constraint node.
    #[inline]
    pub fn constraint_index(&self, i: ConstraintId) -> u32 {
        self.n_agents + i.raw()
    }

    /// Flat index of an objective node.
    #[inline]
    pub fn objective_index(&self, k: ObjectiveId) -> u32 {
        self.n_agents + self.n_constraints + k.raw()
    }

    /// Typed node for a flat index.
    pub fn node(&self, flat: u32) -> Node {
        if flat < self.n_agents {
            Node::Agent(AgentId::new(flat))
        } else if flat < self.n_agents + self.n_constraints {
            Node::Constraint(ConstraintId::new(flat - self.n_agents))
        } else {
            debug_assert!(flat < self.n_nodes() as u32);
            Node::Objective(ObjectiveId::new(flat - self.n_agents - self.n_constraints))
        }
    }

    /// Flat index for a typed node.
    pub fn index(&self, node: Node) -> u32 {
        match node {
            Node::Agent(v) => self.agent_index(v),
            Node::Constraint(i) => self.constraint_index(i),
            Node::Objective(k) => self.objective_index(k),
        }
    }

    /// Adjacency list of a node, in port order.
    #[inline]
    pub fn neighbors(&self, flat: u32) -> &[Adj] {
        &self.adj[self.off[flat as usize] as usize..self.off[flat as usize + 1] as usize]
    }

    /// Degree of a node.
    #[inline]
    pub fn degree(&self, flat: u32) -> usize {
        (self.off[flat as usize + 1] - self.off[flat as usize]) as usize
    }

    /// BFS distances (in edges) from `source`, truncated to `max_dist`
    /// (`u32::MAX` entries mean "further than `max_dist`" / unreachable).
    ///
    /// Allocates its own buffers; for repeated calls use
    /// [`CommGraph::bfs_into`].
    pub fn bfs(&self, source: u32, max_dist: u32) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.n_nodes()];
        let mut queue = Vec::new();
        self.bfs_into(source, max_dist, &mut dist, &mut queue);
        dist
    }

    /// BFS distances using caller-provided buffers.
    ///
    /// `dist` must have length [`CommGraph::n_nodes`]; it is reset lazily:
    /// only entries touched by the previous call are cleared (via the
    /// returned visited list `queue`).
    pub fn bfs_into(&self, source: u32, max_dist: u32, dist: &mut [u32], queue: &mut Vec<u32>) {
        for &x in queue.iter() {
            dist[x as usize] = u32::MAX;
        }
        queue.clear();
        dist[source as usize] = 0;
        queue.push(source);
        let mut head = 0;
        while head < queue.len() {
            let x = queue[head];
            head += 1;
            let dx = dist[x as usize];
            if dx == max_dist {
                continue;
            }
            for a in self.neighbors(x) {
                if dist[a.to as usize] == u32::MAX {
                    dist[a.to as usize] = dx + 1;
                    queue.push(a.to);
                }
            }
        }
    }

    /// Connected components; returns `(component_id_per_node, count)`.
    pub fn components(&self) -> (Vec<u32>, usize) {
        let mut comp = vec![u32::MAX; self.n_nodes()];
        let mut count = 0u32;
        let mut stack = Vec::new();
        for s in 0..self.n_nodes() as u32 {
            if comp[s as usize] != u32::MAX {
                continue;
            }
            comp[s as usize] = count;
            stack.push(s);
            while let Some(x) = stack.pop() {
                for a in self.neighbors(x) {
                    if comp[a.to as usize] == u32::MAX {
                        comp[a.to as usize] = count;
                        stack.push(a.to);
                    }
                }
            }
            count += 1;
        }
        (comp, count as usize)
    }

    /// Girth of the graph (length of a shortest cycle), or `None` for a
    /// forest. Runs a BFS per node — O(V·E) — fine for test/bench sizes.
    pub fn girth(&self) -> Option<u32> {
        let mut best = u32::MAX;
        let mut dist = vec![u32::MAX; self.n_nodes()];
        let mut parent_edge = vec![u32::MAX; self.n_nodes()];
        let mut queue: Vec<u32> = Vec::new();
        for s in 0..self.n_nodes() as u32 {
            for &x in queue.iter() {
                dist[x as usize] = u32::MAX;
                parent_edge[x as usize] = u32::MAX;
            }
            queue.clear();
            dist[s as usize] = 0;
            queue.push(s);
            let mut head = 0;
            'bfs: while head < queue.len() {
                let x = queue[head];
                head += 1;
                let dx = dist[x as usize];
                if 2 * dx + 1 >= best {
                    break;
                }
                for a in self.neighbors(x) {
                    if a.edge == parent_edge[x as usize] {
                        continue;
                    }
                    let dy = dist[a.to as usize];
                    if dy == u32::MAX {
                        dist[a.to as usize] = dx + 1;
                        parent_edge[a.to as usize] = a.edge;
                        queue.push(a.to);
                    } else {
                        // Cycle through s of length dx + dy + 1 (may
                        // overcount for cycles not through s; the min over
                        // all sources is exact).
                        best = best.min(dx + dy + 1);
                        if best <= 3 {
                            break 'bfs;
                        }
                    }
                }
            }
        }
        (best != u32::MAX).then_some(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;

    /// Two agents, one shared constraint, one objective each.
    fn path_instance() -> Instance {
        let mut b = InstanceBuilder::new();
        let v0 = b.add_agent();
        let v1 = b.add_agent();
        b.add_constraint(&[(v0, 1.0), (v1, 1.0)]).unwrap();
        b.add_objective(&[(v0, 1.0)]).unwrap();
        b.add_objective(&[(v1, 1.0)]).unwrap();
        b.build().unwrap()
    }

    /// A 4-cycle of agents/constraints: v0-i0-v1-i1-v0 plus objectives.
    fn cycle_instance() -> Instance {
        let mut b = InstanceBuilder::new();
        let v0 = b.add_agent();
        let v1 = b.add_agent();
        b.add_constraint(&[(v0, 1.0), (v1, 1.0)]).unwrap();
        b.add_constraint(&[(v1, 1.0), (v0, 1.0)]).unwrap();
        b.add_objective(&[(v0, 1.0), (v1, 1.0)]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn flat_indexing_round_trips() {
        let inst = path_instance();
        let g = CommGraph::new(&inst);
        assert_eq!(g.n_nodes(), 2 + 1 + 2);
        for flat in 0..g.n_nodes() as u32 {
            assert_eq!(g.index(g.node(flat)), flat);
        }
        assert_eq!(g.node(0), Node::Agent(AgentId::new(0)));
        assert_eq!(g.node(2), Node::Constraint(ConstraintId::new(0)));
        assert_eq!(g.node(3), Node::Objective(ObjectiveId::new(0)));
    }

    #[test]
    fn reciprocal_ports_agree() {
        let inst = cycle_instance();
        let g = CommGraph::new(&inst);
        for x in 0..g.n_nodes() as u32 {
            for (port, a) in g.neighbors(x).iter().enumerate() {
                // Walk the edge to the other side and back.
                let back = g.neighbors(a.to)[a.port_at_to as usize];
                assert_eq!(back.to, x, "reciprocal neighbour mismatch");
                assert_eq!(back.port_at_to as usize, port, "reciprocal port mismatch");
                assert_eq!(back.edge, a.edge, "edge id mismatch");
            }
        }
    }

    #[test]
    fn agent_ports_list_constraints_before_objectives() {
        let inst = path_instance();
        let g = CommGraph::new(&inst);
        // Agent 0: one constraint then one objective.
        let nb = g.neighbors(0);
        assert_eq!(nb.len(), 2);
        assert!(matches!(g.node(nb[0].to), Node::Constraint(_)));
        assert!(matches!(g.node(nb[1].to), Node::Objective(_)));
    }

    #[test]
    fn bfs_distances() {
        let inst = path_instance();
        let g = CommGraph::new(&inst);
        // v0 (0) - i0 (2) - v1 (1); objectives k0 (3) at v0, k1 (4) at v1.
        let d = g.bfs(0, 10);
        assert_eq!(d[0], 0);
        assert_eq!(d[2], 1);
        assert_eq!(d[1], 2);
        assert_eq!(d[3], 1);
        assert_eq!(d[4], 3);
    }

    #[test]
    fn bfs_truncates_at_max_dist() {
        let inst = path_instance();
        let g = CommGraph::new(&inst);
        let d = g.bfs(0, 1);
        assert_eq!(d[0], 0);
        assert_eq!(d[2], 1);
        assert_eq!(d[1], u32::MAX);
    }

    #[test]
    fn components_and_girth() {
        let inst = path_instance();
        let g = CommGraph::new(&inst);
        let (_, n) = g.components();
        assert_eq!(n, 1);
        assert_eq!(g.girth(), None, "tree instance has no cycle");

        let inst = cycle_instance();
        let g = CommGraph::new(&inst);
        // v0-i0-v1-i1 cycle has length 4.
        assert_eq!(g.girth(), Some(4));
    }

    #[test]
    fn girth_ignores_parallel_walk_back() {
        // Single edge graph: v - i. No cycle despite the back-and-forth walk.
        let mut b = InstanceBuilder::new();
        let v = b.add_agent();
        b.add_constraint(&[(v, 1.0)]).unwrap();
        b.add_objective(&[(v, 1.0)]).unwrap();
        let g = CommGraph::new(&b.build().unwrap());
        assert_eq!(g.girth(), None);
    }

    #[test]
    fn bfs_into_reuses_buffers() {
        let inst = cycle_instance();
        let g = CommGraph::new(&inst);
        let mut dist = vec![u32::MAX; g.n_nodes()];
        let mut queue = Vec::new();
        g.bfs_into(0, 10, &mut dist, &mut queue);
        let first: Vec<u32> = dist.clone();
        g.bfs_into(1, 10, &mut dist, &mut queue);
        g.bfs_into(0, 10, &mut dist, &mut queue);
        assert_eq!(dist, first, "buffer reuse must not leak state");
    }
}
