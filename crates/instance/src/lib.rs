//! # `mmlp-instance`
//!
//! Representation substrate for **max-min linear programs** in the
//! distributed setting of Floréen–Kaasinen–Kaski–Suomela (SPAA 2009).
//!
//! A max-min LP asks to
//!
//! ```text
//! maximise   ω(x) = min_{k∈K}  Σ_{v∈Vk} c_kv · x_v
//! subject to                    Σ_{v∈Vi} a_iv · x_v ≤ 1     for all i ∈ I,
//!            x ≥ 0,
//! ```
//!
//! where `A = (a_iv)` and `C = (c_kv)` are nonnegative sparse matrices. The
//! program lives on a bipartite *communication graph* `G = (V ∪ I ∪ K, E)`:
//! one node per **agent** (variable) `v ∈ V`, per **constraint** `i ∈ I` and
//! per **objective** `k ∈ K`, with an edge `{v,i}` whenever `a_iv > 0` and
//! `{v,k}` whenever `c_kv > 0`.
//!
//! This crate provides:
//!
//! * [`Instance`] — immutable CSR storage of both matrices plus their
//!   transposes, with *port numbering* (the paper's §1.2 communication
//!   model assigns each node an ordering of its incident edges; here the
//!   ordering is the position in the adjacency lists, which is
//!   deterministic for a given build order).
//! * [`InstanceBuilder`] — the only way to construct an [`Instance`];
//!   validates coefficients and shapes as rows are added.
//! * [`Solution`] — a dense assignment `x: V → ℝ≥0` with feasibility and
//!   utility evaluation.
//! * [`graph::CommGraph`] — a flat unified-index view of the communication
//!   graph with reciprocal port labels and global edge identifiers, used by
//!   the distributed runtime, the unfolding machinery and smoothing.
//! * [`validate`] — structural validation and the degeneracy report
//!   corresponding to the standing assumptions of §4 of the paper.
//! * [`textfmt`] — a small line-oriented serialisation format.
//! * [`delta`] — the versioned edit model: content-addressed [`Delta`]
//!   batches of [`Edit`]s with canonical text/binary encodings and the
//!   revision [`Lineage`] `(base_hash, delta_hash) → new_hash` consumed
//!   by the serve layer's `PUT_DELTA`/`SOLVE_DELTA` ops.
//! * [`hash`] — stable FNV-1a content hashing and the canonical
//!   [`instance_hash`] identity shared by the campaign log and the
//!   solver service's content-addressed cache.
//!
//! Everything downstream (`mmlp-lp`, `mmlp-net`, `mmlp-core`, `mmlp-gen`)
//! consumes these types.

pub mod delta;
pub mod graph;
pub mod hash;
pub mod ids;
pub mod instance;
pub mod solution;
pub mod stats;
pub mod textfmt;
pub mod validate;

pub use delta::{Delta, DeltaError, Edit, Lineage, RowKind};
pub use graph::{Adj, CommGraph, Node, NodeKind};
pub use hash::{fnv1a64, fnv1a64_words, hash_hex, instance_hash, parse_hash_hex, Fnv1a};
pub use ids::{AgentId, ConstraintId, ObjectiveId};
pub use instance::{AgentConstraint, AgentObjective, Entry, Instance, InstanceBuilder};
pub use solution::{FeasibilityReport, Solution};
pub use stats::DegreeStats;
pub use validate::{Degeneracy, ValidationError};

/// Default absolute/relative tolerance used by feasibility checks.
///
/// A constraint `Σ a_iv x_v ≤ 1` is considered satisfied when
/// `Σ a_iv x_v ≤ 1 + FEASIBILITY_TOL * max(1, |Σ a_iv x_v|)`.
pub const FEASIBILITY_TOL: f64 = 1e-7;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_smoke_build_and_evaluate() {
        let mut b = InstanceBuilder::new();
        let v = b.add_agent();
        let w = b.add_agent();
        b.add_constraint(&[(v, 1.0), (w, 1.0)]).unwrap();
        b.add_objective(&[(v, 1.0)]).unwrap();
        b.add_objective(&[(w, 1.0)]).unwrap();
        let inst = b.build().unwrap();
        let x = Solution::from_vec(vec![0.5, 0.5]);
        assert!(x.feasibility(&inst).is_feasible(FEASIBILITY_TOL));
        assert!((x.utility(&inst) - 0.5).abs() < 1e-12);
    }
}
