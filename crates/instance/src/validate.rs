//! Semantic validation: the standing assumptions of §4 of the paper.
//!
//! The algorithm (and the transformations feeding it) assume a
//! *non-degenerate* instance:
//!
//! * every constraint is adjacent to at least one agent (true by
//!   construction here — rows are non-empty),
//! * every objective is adjacent to at least one agent (ditto),
//! * every agent is adjacent to at least one constraint — otherwise the
//!   agent is *unconstrained* and could be set to `+∞`,
//! * every agent is adjacent to at least one objective — otherwise the
//!   agent is *non-contributing* and can be fixed to `0`,
//! * the communication graph is connected — otherwise each component is an
//!   independent sub-instance.
//!
//! [`check`] reports which assumptions fail; [`normalize_degeneracies`]
//! removes non-contributing agents (the only removal that is always safe
//! and lossless) so generators can produce clean instances.

use crate::graph::CommGraph;
use crate::ids::AgentId;
use crate::instance::{Instance, InstanceBuilder};

/// A degeneracy found by [`check`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Degeneracy {
    /// Agent adjacent to no constraint: the LP is unbounded in this
    /// variable (it can be pushed to `+∞`).
    UnconstrainedAgent(AgentId),
    /// Agent adjacent to no objective: its value never helps the utility;
    /// it can be fixed to zero and removed.
    NonContributingAgent(AgentId),
    /// The communication graph has more than one connected component.
    Disconnected {
        /// Number of components found.
        components: usize,
    },
}

/// Validation failure wrapper (currently identical to a degeneracy list;
/// structural errors are impossible for built instances).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ValidationError {
    /// All degeneracies found, in deterministic order.
    pub degeneracies: Vec<Degeneracy>,
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "instance violates the standing assumptions: ")?;
        for (n, d) in self.degeneracies.iter().enumerate() {
            if n > 0 {
                write!(f, "; ")?;
            }
            match d {
                Degeneracy::UnconstrainedAgent(v) => write!(f, "agent {v} is unconstrained")?,
                Degeneracy::NonContributingAgent(v) => {
                    write!(f, "agent {v} contributes to no objective")?
                }
                Degeneracy::Disconnected { components } => {
                    write!(f, "graph has {components} connected components")?
                }
            }
        }
        Ok(())
    }
}

impl std::error::Error for ValidationError {}

/// Checks the standing assumptions of §4; `Ok(())` means the instance is
/// ready for the transformation pipeline.
pub fn check(inst: &Instance) -> Result<(), ValidationError> {
    let mut degeneracies = Vec::new();
    for v in inst.agents() {
        if inst.agent_constraints(v).is_empty() {
            degeneracies.push(Degeneracy::UnconstrainedAgent(v));
        }
        if inst.agent_objectives(v).is_empty() {
            degeneracies.push(Degeneracy::NonContributingAgent(v));
        }
    }
    if inst.n_agents() > 0 {
        let g = CommGraph::new(inst);
        let (_, components) = g.components();
        if components > 1 {
            degeneracies.push(Degeneracy::Disconnected { components });
        }
    }
    if degeneracies.is_empty() {
        Ok(())
    } else {
        Err(ValidationError { degeneracies })
    }
}

/// Removes non-contributing agents (those in no objective row), fixing
/// them to zero — the lossless normalisation mentioned in §4.
///
/// Constraints that become empty are dropped. Returns the cleaned
/// instance and the mapping `new agent id → old agent id`.
pub fn normalize_degeneracies(inst: &Instance) -> (Instance, Vec<AgentId>) {
    let keep: Vec<AgentId> = inst
        .agents()
        .filter(|&v| !inst.agent_objectives(v).is_empty())
        .collect();
    let mut old_to_new = vec![None; inst.n_agents()];
    let mut b = InstanceBuilder::new();
    for &v in &keep {
        old_to_new[v.idx()] = Some(b.add_agent());
    }
    let mut row = Vec::new();
    for i in inst.constraints() {
        row.clear();
        for e in inst.constraint_row(i) {
            if let Some(nv) = old_to_new[e.agent.idx()] {
                row.push((nv, e.coef));
            }
        }
        if !row.is_empty() {
            b.add_constraint(&row).expect("filtered row is valid");
        }
    }
    for k in inst.objectives() {
        row.clear();
        for e in inst.objective_row(k) {
            // Objective rows only mention contributing agents by definition.
            let nv = old_to_new[e.agent.idx()].expect("objective agent contributes");
            row.push((nv, e.coef));
        }
        b.add_objective(&row).expect("objective row is valid");
    }
    (b.build().expect("normalised instance builds"), keep)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_instance_passes() {
        let mut b = InstanceBuilder::new();
        let v0 = b.add_agent();
        let v1 = b.add_agent();
        b.add_constraint(&[(v0, 1.0), (v1, 1.0)]).unwrap();
        b.add_objective(&[(v0, 1.0), (v1, 1.0)]).unwrap();
        assert!(check(&b.build().unwrap()).is_ok());
    }

    #[test]
    fn detects_unconstrained_agent() {
        let mut b = InstanceBuilder::new();
        let v0 = b.add_agent();
        let v1 = b.add_agent();
        b.add_constraint(&[(v0, 1.0)]).unwrap();
        b.add_objective(&[(v0, 1.0), (v1, 1.0)]).unwrap();
        let err = check(&b.build().unwrap()).unwrap_err();
        assert!(err
            .degeneracies
            .contains(&Degeneracy::UnconstrainedAgent(v1)));
    }

    #[test]
    fn detects_non_contributing_agent_and_disconnection() {
        let mut b = InstanceBuilder::new();
        let v0 = b.add_agent();
        let v1 = b.add_agent();
        // v1 shares no row with v0 => disconnected; v1 also has no objective.
        b.add_constraint(&[(v0, 1.0)]).unwrap();
        b.add_constraint(&[(v1, 1.0)]).unwrap();
        b.add_objective(&[(v0, 1.0)]).unwrap();
        let err = check(&b.build().unwrap()).unwrap_err();
        assert!(err
            .degeneracies
            .contains(&Degeneracy::NonContributingAgent(v1)));
        assert!(err
            .degeneracies
            .iter()
            .any(|d| matches!(d, Degeneracy::Disconnected { components: 2 })));
        let msg = err.to_string();
        assert!(msg.contains("v1"), "message should name the agent: {msg}");
    }

    #[test]
    fn normalize_removes_non_contributing_agents() {
        let mut b = InstanceBuilder::new();
        let v0 = b.add_agent();
        let v1 = b.add_agent(); // non-contributing
        let v2 = b.add_agent();
        b.add_constraint(&[(v0, 1.0), (v1, 2.0)]).unwrap();
        b.add_constraint(&[(v1, 1.0)]).unwrap(); // becomes empty, dropped
        b.add_constraint(&[(v2, 1.0)]).unwrap();
        b.add_objective(&[(v0, 1.0), (v2, 1.0)]).unwrap();
        let (clean, mapping) = normalize_degeneracies(&b.build().unwrap());
        assert_eq!(clean.n_agents(), 2);
        assert_eq!(clean.n_constraints(), 2);
        assert_eq!(mapping, vec![v0, v2]);
        assert!(check(&clean).is_ok());
    }

    #[test]
    fn normalize_keeps_clean_instance_identical_in_shape() {
        let mut b = InstanceBuilder::new();
        let v0 = b.add_agent();
        let v1 = b.add_agent();
        b.add_constraint(&[(v0, 1.0), (v1, 1.0)]).unwrap();
        b.add_objective(&[(v0, 1.0), (v1, 1.0)]).unwrap();
        let inst = b.build().unwrap();
        let (clean, mapping) = normalize_degeneracies(&inst);
        assert_eq!(clean.n_agents(), inst.n_agents());
        assert_eq!(clean.n_constraints(), inst.n_constraints());
        assert_eq!(mapping.len(), 2);
    }
}
