//! A small line-oriented text format for instances.
//!
//! ```text
//! # optional comments
//! maxminlp 1
//! agents 3
//! c 0:1.0 1:2.0      # constraint row: agent:coef pairs
//! o 0:1.0 2:0.5      # objective row
//! ```
//!
//! The format preserves row order and within-row order, hence port
//! numbering, so a round trip is structurally exact. Floats are written
//! with full precision (Rust's shortest-round-trip formatting).

use crate::ids::AgentId;
use crate::instance::{Instance, InstanceBuilder};
use std::fmt::Write as _;

/// Parse error with the 1-based line number and, when one exists, the
/// exact offending token — a multi-thousand-line instance file is
/// undebuggable from a line number alone when the line holds dozens of
/// `agent:coef` pairs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending input (0 for whole-file errors,
    /// e.g. a missing `agents` declaration).
    pub line: usize,
    /// The token that triggered the error, verbatim, when the error is
    /// attributable to one.
    pub token: Option<String>,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)?;
        if let Some(tok) = &self.token {
            write!(f, " (at token '{tok}')")?;
        }
        Ok(())
    }
}

impl std::error::Error for ParseError {}

/// Serialises an instance to the text format.
pub fn write_instance(inst: &Instance) -> String {
    let mut out = String::new();
    out.push_str("maxminlp 1\n");
    let _ = writeln!(out, "agents {}", inst.n_agents());
    for i in inst.constraints() {
        out.push('c');
        for e in inst.constraint_row(i) {
            let _ = write!(out, " {}:{}", e.agent.raw(), e.coef);
        }
        out.push('\n');
    }
    for k in inst.objectives() {
        out.push('o');
        for e in inst.objective_row(k) {
            let _ = write!(out, " {}:{}", e.agent.raw(), e.coef);
        }
        out.push('\n');
    }
    out
}

/// Parses the text format back into an instance.
///
/// The parser is deliberately liberal about surface syntax so that
/// files which crossed a Windows toolchain or an editor survive: `\r\n`
/// and even lone-`\r` (classic Mac) line endings are accepted, and
/// leading/trailing whitespace on any line — including trailing tabs
/// after the last token — is ignored. None of this changes the
/// canonical form: [`write_instance`] always emits bare `\n`, so
/// content hashes (see `crate::hash`) are unaffected.
pub fn parse_instance(text: &str) -> Result<Instance, ParseError> {
    // `str::lines` already strips a trailing `\r` (CRLF files); a file
    // using *lone* `\r` as its separator would otherwise arrive as one
    // giant line, so normalise that rare shape up front.
    let normalized;
    let text = if text.contains('\r') && !text.contains('\n') {
        normalized = text.replace('\r', "\n");
        normalized.as_str()
    } else {
        text
    };

    let mut builder: Option<InstanceBuilder> = None;
    let mut saw_header = false;
    let mut row: Vec<(AgentId, f64)> = Vec::new();

    let err = |line: usize, message: String| ParseError {
        line,
        token: None,
        message,
    };
    let err_tok = |line: usize, token: &str, message: String| ParseError {
        line,
        token: Some(token.to_string()),
        message,
    };

    for (idx, raw_line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw_line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_ascii_whitespace();
        let head = tokens.next().expect("non-empty line has a token");
        match head {
            "maxminlp" => {
                let version = tokens
                    .next()
                    .ok_or_else(|| err(lineno, "missing format version".into()))?;
                if version != "1" {
                    return Err(err_tok(
                        lineno,
                        version,
                        format!("unsupported version {version}"),
                    ));
                }
                saw_header = true;
            }
            "agents" => {
                if !saw_header {
                    return Err(err_tok(lineno, head, "missing 'maxminlp 1' header".into()));
                }
                let count_tok = tokens
                    .next()
                    .ok_or_else(|| err(lineno, "missing agent count".into()))?;
                let n: usize = count_tok
                    .parse()
                    .map_err(|e| err_tok(lineno, count_tok, format!("bad agent count: {e}")))?;
                builder = Some(InstanceBuilder::with_agents(n));
            }
            "c" | "o" => {
                let b = builder.as_mut().ok_or_else(|| {
                    err_tok(lineno, head, "row before 'agents' declaration".into())
                })?;
                row.clear();
                for tok in tokens {
                    let (a, c) = tok.split_once(':').ok_or_else(|| {
                        err_tok(lineno, tok, format!("expected agent:coef, got '{tok}'"))
                    })?;
                    let agent: u32 = a
                        .parse()
                        .map_err(|e| err_tok(lineno, tok, format!("bad agent index '{a}': {e}")))?;
                    let coef: f64 = c
                        .parse()
                        .map_err(|e| err_tok(lineno, tok, format!("bad coefficient '{c}': {e}")))?;
                    row.push((AgentId::new(agent), coef));
                }
                let result = if head == "c" {
                    b.add_constraint(&row).map(|_| ())
                } else {
                    b.add_objective(&row).map(|_| ())
                };
                result.map_err(|e| err_tok(lineno, line, e.to_string()))?;
            }
            other => {
                return Err(err_tok(
                    lineno,
                    other,
                    format!("unknown directive '{other}'"),
                ));
            }
        }
    }

    builder
        .ok_or_else(|| err(0, "no 'agents' declaration found".into()))?
        .build()
        .map_err(|e| err(0, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ConstraintId, ObjectiveId};

    fn sample() -> Instance {
        let mut b = InstanceBuilder::new();
        let v0 = b.add_agent();
        let v1 = b.add_agent();
        let v2 = b.add_agent();
        b.add_constraint(&[(v1, 0.125), (v0, 3.5)]).unwrap();
        b.add_constraint(&[(v2, 1.0)]).unwrap();
        b.add_objective(&[(v0, 1.0), (v2, 0.3333333333333333)])
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn round_trip_preserves_structure_and_ports() {
        let inst = sample();
        let text = write_instance(&inst);
        let back = parse_instance(&text).unwrap();
        assert_eq!(back.n_agents(), inst.n_agents());
        assert_eq!(back.n_constraints(), inst.n_constraints());
        assert_eq!(back.n_objectives(), inst.n_objectives());
        for i in inst.constraints() {
            assert_eq!(back.constraint_row(i), inst.constraint_row(i));
        }
        for k in inst.objectives() {
            assert_eq!(back.objective_row(k), inst.objective_row(k));
        }
        // Port order must survive: the first row lists v1 before v0.
        assert_eq!(back.constraint_row(ConstraintId::new(0))[0].agent.raw(), 1);
    }

    #[test]
    fn round_trip_preserves_float_bits() {
        let inst = sample();
        let back = parse_instance(&write_instance(&inst)).unwrap();
        let orig = inst.objective_row(ObjectiveId::new(0))[1].coef;
        let rt = back.objective_row(ObjectiveId::new(0))[1].coef;
        assert_eq!(orig.to_bits(), rt.to_bits());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# header comment\nmaxminlp 1\n\nagents 1\nc 0:1.0 # trailing\no 0:2.0\n";
        let inst = parse_instance(text).unwrap();
        assert_eq!(inst.n_agents(), 1);
        assert_eq!(inst.n_constraints(), 1);
        assert_eq!(inst.n_objectives(), 1);
    }

    #[test]
    fn crlf_and_trailing_whitespace_are_tolerated() {
        let inst = sample();
        let canonical = write_instance(&inst);

        // CRLF line endings, as a Windows checkout would produce.
        let crlf = canonical.replace('\n', "\r\n");
        let back = parse_instance(&crlf).unwrap();
        assert_eq!(write_instance(&back), canonical);

        // Lone-CR (classic Mac) line endings.
        let cr = canonical.replace('\n', "\r");
        let back = parse_instance(&cr).unwrap();
        assert_eq!(write_instance(&back), canonical);

        // Trailing spaces and tabs on every line.
        let padded = canonical.replace('\n', " \t \n");
        let back = parse_instance(&padded).unwrap();
        assert_eq!(write_instance(&back), canonical);

        // All of it at once, plus trailing comments.
        let noisy = canonical.replace('\n', "\t # noise\r\n");
        let back = parse_instance(&noisy).unwrap();
        assert_eq!(write_instance(&back), canonical);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_instance("").is_err());
        assert!(parse_instance("maxminlp 2\nagents 0\n").is_err());
        assert!(
            parse_instance("maxminlp 1\nc 0:1\n").is_err(),
            "row before agents"
        );
        assert!(
            parse_instance("maxminlp 1\nagents 1\nc 5:1\n").is_err(),
            "unknown agent"
        );
        assert!(
            parse_instance("maxminlp 1\nagents 1\nc 0:0\n").is_err(),
            "zero coef"
        );
        assert!(
            parse_instance("maxminlp 1\nagents 1\nx 0:1\n").is_err(),
            "bad directive"
        );
        assert!(
            parse_instance("maxminlp 1\nagents 1\nc 0-1\n").is_err(),
            "bad pair"
        );
    }

    #[test]
    fn error_reports_line_numbers() {
        let e = parse_instance("maxminlp 1\nagents 1\nc 0:bad\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn error_carries_the_offending_token() {
        // A bad pair deep inside a long row: the token pins it down.
        let e = parse_instance("maxminlp 1\nagents 9\nc 0:1 1:1 2:1 3:oops 4:1\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert_eq!(e.token.as_deref(), Some("3:oops"));
        assert!(e.to_string().contains("(at token '3:oops')"), "{e}");

        let e = parse_instance("maxminlp 1\nagents 9\nc 0:1 17\n").unwrap_err();
        assert_eq!(e.token.as_deref(), Some("17"));

        let e = parse_instance("maxminlp 1\nagents 9\nc x:1\n").unwrap_err();
        assert_eq!(e.token.as_deref(), Some("x:1"));

        let e = parse_instance("maxminlp 2\n").unwrap_err();
        assert_eq!((e.line, e.token.as_deref()), (1, Some("2")));

        let e = parse_instance("maxminlp 1\nagents nine\n").unwrap_err();
        assert_eq!(e.token.as_deref(), Some("nine"));

        let e = parse_instance("maxminlp 1\nagents 1\nx 0:1\n").unwrap_err();
        assert_eq!(e.token.as_deref(), Some("x"));

        // Builder-level row errors point at the whole (comment-stripped)
        // row, since the failing check spans tokens.
        let e = parse_instance("maxminlp 1\nagents 2\nc 0:1 0:2  # dup\n").unwrap_err();
        assert_eq!(e.token.as_deref(), Some("c 0:1 0:2"));

        // Whole-file errors carry no token.
        let e = parse_instance("").unwrap_err();
        assert_eq!((e.line, e.token), (0, None));
    }
}
