//! Immutable CSR storage of a max-min LP and its builder.
//!
//! An [`Instance`] stores the packing matrix `A` (one sparse row per
//! constraint) and the covering matrix `C` (one sparse row per objective)
//! together with both transposes (agent → incident constraints/objectives).
//! Row order and within-row order are preserved from the builder and define
//! the *port numbering* of the communication graph: port `p` of a
//! constraint/objective is the `p`-th entry of its row; ports of an agent
//! enumerate first its constraints, then its objectives, in transpose order
//! (ascending row id — deterministic).

use crate::ids::{AgentId, ConstraintId, ObjectiveId};

/// One entry of a constraint or objective row: an incident agent and the
/// positive coefficient on the shared edge.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Entry {
    /// The agent this row entry touches.
    pub agent: AgentId,
    /// The (strictly positive, finite) coefficient `a_iv` or `c_kv`.
    pub coef: f64,
}

/// Transpose entry: a constraint incident to an agent.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AgentConstraint {
    /// The incident constraint `i ∈ I_v`.
    pub cons: ConstraintId,
    /// The coefficient `a_iv` of the shared edge.
    pub coef: f64,
}

/// Transpose entry: an objective incident to an agent.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AgentObjective {
    /// The incident objective `k ∈ K_v`.
    pub obj: ObjectiveId,
    /// The coefficient `c_kv` of the shared edge.
    pub coef: f64,
}

/// An immutable max-min LP instance.
///
/// Construct via [`InstanceBuilder`]. All accessors are O(1) or return
/// slices; the structure is append-only CSR so cloning is a bulk memcpy.
#[derive(Clone, Debug, Default)]
pub struct Instance {
    n_agents: u32,

    // A: constraint rows.
    a_off: Vec<u32>,
    a_entries: Vec<Entry>,

    // C: objective rows.
    c_off: Vec<u32>,
    c_entries: Vec<Entry>,

    // Transpose: agent -> incident constraints.
    va_off: Vec<u32>,
    va_entries: Vec<AgentConstraint>,

    // Transpose: agent -> incident objectives.
    vc_off: Vec<u32>,
    vc_entries: Vec<AgentObjective>,
}

impl Instance {
    /// Number of agents `|V|` (variables).
    #[inline]
    pub fn n_agents(&self) -> usize {
        self.n_agents as usize
    }

    /// Number of constraints `|I|` (rows of `A`).
    #[inline]
    pub fn n_constraints(&self) -> usize {
        self.a_off.len() - 1
    }

    /// Number of objectives `|K|` (rows of `C`).
    #[inline]
    pub fn n_objectives(&self) -> usize {
        self.c_off.len() - 1
    }

    /// Number of agent–constraint edges (nonzeros of `A`).
    #[inline]
    pub fn n_constraint_edges(&self) -> usize {
        self.a_entries.len()
    }

    /// Number of agent–objective edges (nonzeros of `C`).
    #[inline]
    pub fn n_objective_edges(&self) -> usize {
        self.c_entries.len()
    }

    /// The row `V_i` of constraint `i`: incident agents with coefficients,
    /// in port order.
    #[inline]
    pub fn constraint_row(&self, i: ConstraintId) -> &[Entry] {
        &self.a_entries[self.a_off[i.idx()] as usize..self.a_off[i.idx() + 1] as usize]
    }

    /// The row `V_k` of objective `k`: incident agents with coefficients,
    /// in port order.
    #[inline]
    pub fn objective_row(&self, k: ObjectiveId) -> &[Entry] {
        &self.c_entries[self.c_off[k.idx()] as usize..self.c_off[k.idx() + 1] as usize]
    }

    /// The set `I_v`: constraints incident to agent `v`, in port order.
    #[inline]
    pub fn agent_constraints(&self, v: AgentId) -> &[AgentConstraint] {
        &self.va_entries[self.va_off[v.idx()] as usize..self.va_off[v.idx() + 1] as usize]
    }

    /// The set `K_v`: objectives incident to agent `v`, in port order.
    #[inline]
    pub fn agent_objectives(&self, v: AgentId) -> &[AgentObjective] {
        &self.vc_entries[self.vc_off[v.idx()] as usize..self.vc_off[v.idx() + 1] as usize]
    }

    /// Iterator over all agent ids.
    pub fn agents(&self) -> impl ExactSizeIterator<Item = AgentId> + Clone {
        (0..self.n_agents).map(AgentId::new)
    }

    /// Iterator over all constraint ids.
    pub fn constraints(&self) -> impl ExactSizeIterator<Item = ConstraintId> + Clone {
        (0..self.n_constraints() as u32).map(ConstraintId::new)
    }

    /// Iterator over all objective ids.
    pub fn objectives(&self) -> impl ExactSizeIterator<Item = ObjectiveId> + Clone {
        (0..self.n_objectives() as u32).map(ObjectiveId::new)
    }

    /// The coefficient `a_iv`, or `None` when `{v,i}` is not an edge.
    ///
    /// Linear in the row length (rows are tiny: `|V_i| ≤ ΔI`).
    pub fn a_coef(&self, i: ConstraintId, v: AgentId) -> Option<f64> {
        self.constraint_row(i)
            .iter()
            .find(|e| e.agent == v)
            .map(|e| e.coef)
    }

    /// The coefficient `c_kv`, or `None` when `{v,k}` is not an edge.
    pub fn c_coef(&self, k: ObjectiveId, v: AgentId) -> Option<f64> {
        self.objective_row(k)
            .iter()
            .find(|e| e.agent == v)
            .map(|e| e.coef)
    }

    /// `min_{i∈Iv} 1/a_iv` — the largest value of `x_v` that no single
    /// constraint forbids on its own (eq. (5)/(12) of the paper). Returns
    /// `f64::INFINITY` for an unconstrained agent.
    pub fn agent_cap(&self, v: AgentId) -> f64 {
        self.agent_constraints(v)
            .iter()
            .fold(f64::INFINITY, |m, e| m.min(1.0 / e.coef))
    }

    /// Replaces the coefficients of constraint `i`'s row **in place** —
    /// row and agent-side transpose together, in O(|V_i| · Δ) with no
    /// reallocation. `new` is in port order and must match the row
    /// length.
    ///
    /// This is the delta fast path (`mmlp-core`'s dynamic solver repairs
    /// a solution after a capacity re-weighting without rebuilding the
    /// CSR); the instance stays exactly what [`InstanceBuilder`] would
    /// have produced for the edited rows, so content hashing and port
    /// numbering are unaffected beyond the new values.
    pub fn set_constraint_coefs(&mut self, i: ConstraintId, new: &[f64]) -> Result<(), BuildError> {
        let (lo, hi) = (
            self.a_off[i.idx()] as usize,
            self.a_off[i.idx() + 1] as usize,
        );
        assert_eq!(new.len(), hi - lo, "one coefficient per row entry");
        for &c in new {
            if !(c.is_finite() && c > 0.0) {
                return Err(BuildError::BadCoefficient { value: c });
            }
        }
        for (slot, &coef) in new.iter().enumerate() {
            let agent = self.a_entries[lo + slot].agent;
            self.a_entries[lo + slot].coef = coef;
            let (alo, ahi) = (
                self.va_off[agent.idx()] as usize,
                self.va_off[agent.idx() + 1] as usize,
            );
            let t = self.va_entries[alo..ahi]
                .iter_mut()
                .find(|e| e.cons == i)
                .expect("transpose mirrors the row");
            t.coef = coef;
        }
        Ok(())
    }

    /// Bulk constructor from raw CSR rows, the fast path of the binary
    /// codec (`mmlp-store`): validates everything the incremental
    /// builder would — offset shape, agent range, strictly-positive
    /// finite coefficients, no duplicate agent within a row — in one
    /// pass, then computes both transposes. Semantically identical to
    /// replaying the rows through [`InstanceBuilder`], without the
    /// per-row call and copy overhead.
    pub fn from_csr(
        n_agents: u32,
        a_off: Vec<u32>,
        a_entries: Vec<Entry>,
        c_off: Vec<u32>,
        c_entries: Vec<Entry>,
    ) -> Result<Instance, BuildError> {
        check_csr(n_agents, &a_off, &a_entries)?;
        check_csr(n_agents, &c_off, &c_entries)?;
        let n = n_agents as usize;
        let (va_off, va_entries) = transpose_a(n, &a_off, &a_entries);
        let (vc_off, vc_entries) = transpose_c(n, &c_off, &c_entries);
        Ok(Instance {
            n_agents,
            a_off,
            a_entries,
            c_off,
            c_entries,
            va_off,
            va_entries,
            vc_off,
            vc_entries,
        })
    }
}

/// Validates one CSR half: offsets and entries.
fn check_csr(n_agents: u32, off: &[u32], entries: &[Entry]) -> Result<(), BuildError> {
    let total = u32::try_from(entries.len()).map_err(|_| BuildError::BadOffsets {
        detail: "more than u32::MAX entries",
    })?;
    if off.first() != Some(&0) {
        return Err(BuildError::BadOffsets {
            detail: "offsets must start at 0",
        });
    }
    if *off.last().expect("non-empty offsets") != total {
        return Err(BuildError::BadOffsets {
            detail: "last offset must equal the entry count",
        });
    }
    // One row-wise pass does everything: shape (monotone offsets, no
    // empty rows), agent range, coefficient positivity, and duplicate
    // detection via a serial-stamped scratch array.
    let mut stamp = vec![0u32; n_agents as usize];
    for (serial, w) in off.windows(2).enumerate() {
        let (lo, hi) = (w[0], w[1]);
        if lo > hi || hi > total {
            return Err(BuildError::BadOffsets {
                detail: "offsets must be non-decreasing and within the entry count",
            });
        }
        if lo == hi {
            return Err(BuildError::EmptyRow);
        }
        let serial = serial as u32 + 1;
        for e in &entries[lo as usize..hi as usize] {
            if e.agent.raw() >= n_agents {
                return Err(BuildError::UnknownAgent {
                    agent: e.agent.raw(),
                    n_agents,
                });
            }
            if !(e.coef.is_finite() && e.coef > 0.0) {
                return Err(BuildError::BadCoefficient { value: e.coef });
            }
            if std::mem::replace(&mut stamp[e.agent.idx()], serial) == serial {
                return Err(BuildError::DuplicateAgentInRow { agent: e.agent });
            }
        }
    }
    Ok(())
}

/// Counting-sort transpose shared by both matrix halves: agent →
/// incident rows, sorted by row id (ascending, since rows are visited
/// in order). `make` builds the typed transpose entry from a row id
/// and the shared-edge coefficient.
fn transpose<T: Clone>(
    n: usize,
    off: &[u32],
    entries: &[Entry],
    zero: T,
    make: impl Fn(u32, f64) -> T,
) -> (Vec<u32>, Vec<T>) {
    let mut t_off = vec![0u32; n + 1];
    for e in entries {
        t_off[e.agent.idx() + 1] += 1;
    }
    for a in 0..n {
        t_off[a + 1] += t_off[a];
    }
    let mut t_entries = vec![zero; entries.len()];
    let mut cursor = t_off.clone();
    for row in 0..off.len() - 1 {
        let (lo, hi) = (off[row] as usize, off[row + 1] as usize);
        for e in &entries[lo..hi] {
            let slot = cursor[e.agent.idx()] as usize;
            t_entries[slot] = make(row as u32, e.coef);
            cursor[e.agent.idx()] += 1;
        }
    }
    (t_off, t_entries)
}

/// Agent → incident constraints.
fn transpose_a(n: usize, a_off: &[u32], a_entries: &[Entry]) -> (Vec<u32>, Vec<AgentConstraint>) {
    transpose(
        n,
        a_off,
        a_entries,
        AgentConstraint {
            cons: ConstraintId::new(0),
            coef: 0.0,
        },
        |i, coef| AgentConstraint {
            cons: ConstraintId::new(i),
            coef,
        },
    )
}

/// Agent → incident objectives.
fn transpose_c(n: usize, c_off: &[u32], c_entries: &[Entry]) -> (Vec<u32>, Vec<AgentObjective>) {
    transpose(
        n,
        c_off,
        c_entries,
        AgentObjective {
            obj: ObjectiveId::new(0),
            coef: 0.0,
        },
        |k, coef| AgentObjective {
            obj: ObjectiveId::new(k),
            coef,
        },
    )
}

/// Errors surfaced while *building* an instance (shape/coefficient errors
/// that make a row meaningless, as opposed to the semantic degeneracies
/// reported by [`crate::validate`]).
#[derive(Clone, Debug, PartialEq)]
pub enum BuildError {
    /// A row referenced an agent id that has not been created.
    UnknownAgent {
        /// The offending raw agent index.
        agent: u32,
        /// Number of agents that exist.
        n_agents: u32,
    },
    /// A coefficient was zero, negative, NaN or infinite.
    BadCoefficient {
        /// The offending value.
        value: f64,
    },
    /// The same agent appeared twice in one row (the communication graph
    /// is simple: one edge per (row, agent) pair).
    DuplicateAgentInRow {
        /// The duplicated agent.
        agent: AgentId,
    },
    /// An empty row was supplied.
    EmptyRow,
    /// A bulk CSR offset array was malformed ([`Instance::from_csr`]).
    BadOffsets {
        /// What was wrong with the offsets.
        detail: &'static str,
    },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::UnknownAgent { agent, n_agents } => {
                write!(
                    f,
                    "row references agent v{agent} but only {n_agents} agents exist"
                )
            }
            BuildError::BadCoefficient { value } => {
                write!(f, "coefficient {value} is not strictly positive and finite")
            }
            BuildError::DuplicateAgentInRow { agent } => {
                write!(f, "agent {agent} appears twice in one row")
            }
            BuildError::EmptyRow => write!(f, "rows must contain at least one agent"),
            BuildError::BadOffsets { detail } => {
                write!(f, "malformed CSR offsets: {detail}")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Incremental builder for [`Instance`].
///
/// ```
/// use mmlp_instance::InstanceBuilder;
/// let mut b = InstanceBuilder::new();
/// let v = b.add_agent();
/// let w = b.add_agent();
/// b.add_constraint(&[(v, 1.0), (w, 2.0)]).unwrap();
/// b.add_objective(&[(v, 1.0)]).unwrap();
/// b.add_objective(&[(w, 1.0)]).unwrap();
/// let inst = b.build().unwrap();
/// assert_eq!(inst.n_agents(), 2);
/// assert_eq!(inst.n_constraints(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct InstanceBuilder {
    n_agents: u32,
    a_off: Vec<u32>,
    a_entries: Vec<Entry>,
    c_off: Vec<u32>,
    c_entries: Vec<Entry>,
    // Scratch used for duplicate detection; stamped with the row serial.
    seen_stamp: Vec<u32>,
    row_serial: u32,
}

impl InstanceBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self {
            n_agents: 0,
            a_off: vec![0],
            a_entries: Vec::new(),
            c_off: vec![0],
            c_entries: Vec::new(),
            seen_stamp: Vec::new(),
            row_serial: 0,
        }
    }

    /// Creates a builder with `n` agents pre-registered.
    pub fn with_agents(n: usize) -> Self {
        let mut b = Self::new();
        b.n_agents = n as u32;
        b.seen_stamp = vec![0; n];
        b
    }

    /// Registers a fresh agent and returns its id.
    pub fn add_agent(&mut self) -> AgentId {
        let id = AgentId::new(self.n_agents);
        self.n_agents += 1;
        self.seen_stamp.push(0);
        id
    }

    /// Number of agents registered so far.
    pub fn n_agents(&self) -> usize {
        self.n_agents as usize
    }

    /// Number of constraints added so far.
    pub fn n_constraints(&self) -> usize {
        self.a_off.len() - 1
    }

    /// Number of objectives added so far.
    pub fn n_objectives(&self) -> usize {
        self.c_off.len() - 1
    }

    fn check_row(&mut self, row: &[(AgentId, f64)]) -> Result<(), BuildError> {
        if row.is_empty() {
            return Err(BuildError::EmptyRow);
        }
        self.row_serial += 1;
        for &(v, coef) in row {
            if v.raw() >= self.n_agents {
                return Err(BuildError::UnknownAgent {
                    agent: v.raw(),
                    n_agents: self.n_agents,
                });
            }
            if !(coef.is_finite() && coef > 0.0) {
                return Err(BuildError::BadCoefficient { value: coef });
            }
            if self.seen_stamp[v.idx()] == self.row_serial {
                return Err(BuildError::DuplicateAgentInRow { agent: v });
            }
            self.seen_stamp[v.idx()] = self.row_serial;
        }
        Ok(())
    }

    /// Adds the constraint `Σ a_iv x_v ≤ 1` with the given sparse row.
    ///
    /// Row order defines the constraint's port numbering.
    pub fn add_constraint(&mut self, row: &[(AgentId, f64)]) -> Result<ConstraintId, BuildError> {
        self.check_row(row)?;
        let id = ConstraintId::new((self.a_off.len() - 1) as u32);
        self.a_entries
            .extend(row.iter().map(|&(agent, coef)| Entry { agent, coef }));
        self.a_off.push(self.a_entries.len() as u32);
        Ok(id)
    }

    /// Adds the objective row `Σ c_kv x_v` (whose minimum over all
    /// objectives is maximised).
    pub fn add_objective(&mut self, row: &[(AgentId, f64)]) -> Result<ObjectiveId, BuildError> {
        self.check_row(row)?;
        let id = ObjectiveId::new((self.c_off.len() - 1) as u32);
        self.c_entries
            .extend(row.iter().map(|&(agent, coef)| Entry { agent, coef }));
        self.c_off.push(self.c_entries.len() as u32);
        Ok(id)
    }

    /// Finalises the instance, computing both transposes.
    ///
    /// Never fails for rows that passed the per-row checks; the `Result`
    /// is reserved for future cross-row invariants.
    pub fn build(self) -> Result<Instance, BuildError> {
        let n = self.n_agents as usize;
        let (va_off, va_entries) = transpose_a(n, &self.a_off, &self.a_entries);
        let (vc_off, vc_entries) = transpose_c(n, &self.c_off, &self.c_entries);
        Ok(Instance {
            n_agents: self.n_agents,
            a_off: self.a_off,
            a_entries: self.a_entries,
            c_off: self.c_off,
            c_entries: self.c_entries,
            va_off,
            va_entries,
            vc_off,
            vc_entries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Instance {
        let mut b = InstanceBuilder::new();
        let v0 = b.add_agent();
        let v1 = b.add_agent();
        let v2 = b.add_agent();
        b.add_constraint(&[(v0, 1.0), (v1, 2.0)]).unwrap();
        b.add_constraint(&[(v1, 0.5), (v2, 1.0)]).unwrap();
        b.add_objective(&[(v0, 1.0), (v2, 3.0)]).unwrap();
        b.add_objective(&[(v1, 1.0)]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn dimensions() {
        let inst = tiny();
        assert_eq!(inst.n_agents(), 3);
        assert_eq!(inst.n_constraints(), 2);
        assert_eq!(inst.n_objectives(), 2);
        assert_eq!(inst.n_constraint_edges(), 4);
        assert_eq!(inst.n_objective_edges(), 3);
    }

    #[test]
    fn rows_preserve_port_order() {
        let inst = tiny();
        let row = inst.constraint_row(ConstraintId::new(0));
        assert_eq!(row.len(), 2);
        assert_eq!(row[0].agent, AgentId::new(0));
        assert_eq!(row[1].agent, AgentId::new(1));
        assert_eq!(row[1].coef, 2.0);
    }

    #[test]
    fn transpose_is_consistent_with_rows() {
        let inst = tiny();
        for i in inst.constraints() {
            for e in inst.constraint_row(i) {
                assert!(inst
                    .agent_constraints(e.agent)
                    .iter()
                    .any(|t| t.cons == i && t.coef == e.coef));
            }
        }
        for k in inst.objectives() {
            for e in inst.objective_row(k) {
                assert!(inst
                    .agent_objectives(e.agent)
                    .iter()
                    .any(|t| t.obj == k && t.coef == e.coef));
            }
        }
        // And the reverse direction: every transpose entry is in a row.
        for v in inst.agents() {
            for t in inst.agent_constraints(v) {
                assert_eq!(inst.a_coef(t.cons, v), Some(t.coef));
            }
            for t in inst.agent_objectives(v) {
                assert_eq!(inst.c_coef(t.obj, v), Some(t.coef));
            }
        }
    }

    #[test]
    fn transpose_rows_sorted_by_row_id() {
        let inst = tiny();
        for v in inst.agents() {
            let cs = inst.agent_constraints(v);
            assert!(cs.windows(2).all(|w| w[0].cons < w[1].cons));
            let os = inst.agent_objectives(v);
            assert!(os.windows(2).all(|w| w[0].obj < w[1].obj));
        }
    }

    #[test]
    fn agent_cap_is_min_inverse_coef() {
        let inst = tiny();
        // v1 appears in constraint 0 with coef 2.0 and constraint 1 with 0.5.
        assert_eq!(inst.agent_cap(AgentId::new(1)), 0.5);
        assert_eq!(inst.agent_cap(AgentId::new(0)), 1.0);
    }

    #[test]
    fn coef_lookup_misses_return_none() {
        let inst = tiny();
        assert_eq!(inst.a_coef(ConstraintId::new(0), AgentId::new(2)), None);
        assert_eq!(inst.c_coef(ObjectiveId::new(1), AgentId::new(0)), None);
    }

    #[test]
    fn builder_rejects_bad_coefficients() {
        let mut b = InstanceBuilder::new();
        let v = b.add_agent();
        assert!(matches!(
            b.add_constraint(&[(v, 0.0)]),
            Err(BuildError::BadCoefficient { .. })
        ));
        assert!(matches!(
            b.add_constraint(&[(v, -1.0)]),
            Err(BuildError::BadCoefficient { .. })
        ));
        assert!(matches!(
            b.add_constraint(&[(v, f64::NAN)]),
            Err(BuildError::BadCoefficient { .. })
        ));
        assert!(matches!(
            b.add_constraint(&[(v, f64::INFINITY)]),
            Err(BuildError::BadCoefficient { .. })
        ));
    }

    #[test]
    fn builder_rejects_duplicates_and_unknown_agents() {
        let mut b = InstanceBuilder::new();
        let v = b.add_agent();
        assert!(matches!(
            b.add_constraint(&[(v, 1.0), (v, 2.0)]),
            Err(BuildError::DuplicateAgentInRow { .. })
        ));
        assert!(matches!(
            b.add_objective(&[(AgentId::new(9), 1.0)]),
            Err(BuildError::UnknownAgent { .. })
        ));
        assert!(matches!(b.add_constraint(&[]), Err(BuildError::EmptyRow)));
    }

    #[test]
    fn failed_row_does_not_corrupt_builder() {
        let mut b = InstanceBuilder::new();
        let v = b.add_agent();
        let w = b.add_agent();
        let _ = b.add_constraint(&[(v, 1.0), (v, 1.0)]); // fails
        b.add_constraint(&[(v, 1.0), (w, 1.0)]).unwrap();
        b.add_objective(&[(v, 1.0)]).unwrap();
        b.add_objective(&[(w, 1.0)]).unwrap();
        let inst = b.build().unwrap();
        assert_eq!(inst.n_constraints(), 1);
        assert_eq!(inst.constraint_row(ConstraintId::new(0)).len(), 2);
    }

    #[test]
    fn with_agents_preallocates() {
        let mut b = InstanceBuilder::with_agents(4);
        assert_eq!(b.n_agents(), 4);
        b.add_constraint(&[(AgentId::new(3), 1.0)]).unwrap();
        b.add_objective(&[(AgentId::new(0), 1.0)]).unwrap();
        let inst = b.build().unwrap();
        assert_eq!(inst.n_agents(), 4);
    }

    #[test]
    fn from_csr_matches_the_incremental_builder() {
        let inst = tiny();
        let a_entries: Vec<Entry> = inst
            .constraints()
            .flat_map(|i| inst.constraint_row(i).iter().copied())
            .collect();
        let c_entries: Vec<Entry> = inst
            .objectives()
            .flat_map(|k| inst.objective_row(k).iter().copied())
            .collect();
        let bulk = Instance::from_csr(
            inst.n_agents() as u32,
            vec![0, 2, 4],
            a_entries,
            vec![0, 2, 3],
            c_entries,
        )
        .unwrap();
        for i in inst.constraints() {
            assert_eq!(bulk.constraint_row(i), inst.constraint_row(i));
        }
        for k in inst.objectives() {
            assert_eq!(bulk.objective_row(k), inst.objective_row(k));
        }
        for v in inst.agents() {
            assert_eq!(bulk.agent_constraints(v), inst.agent_constraints(v));
            assert_eq!(bulk.agent_objectives(v), inst.agent_objectives(v));
        }
    }

    #[test]
    fn from_csr_rejects_malformed_input() {
        let e = |agent: u32, coef: f64| Entry {
            agent: AgentId::new(agent),
            coef,
        };
        let ok_c = vec![0u32, 1];
        let ok_o = vec![0u32, 1];
        // Baseline accepts.
        assert!(Instance::from_csr(
            2,
            ok_c.clone(),
            vec![e(0, 1.0)],
            ok_o.clone(),
            vec![e(1, 1.0)]
        )
        .is_ok());
        // Offsets not starting at 0 / not covering the entries.
        assert!(matches!(
            Instance::from_csr(
                2,
                vec![1, 1],
                vec![e(0, 1.0)],
                ok_o.clone(),
                vec![e(1, 1.0)]
            ),
            Err(BuildError::BadOffsets { .. })
        ));
        assert!(matches!(
            Instance::from_csr(
                2,
                vec![0, 2],
                vec![e(0, 1.0)],
                ok_o.clone(),
                vec![e(1, 1.0)]
            ),
            Err(BuildError::BadOffsets { .. })
        ));
        // Decreasing offsets.
        assert!(matches!(
            Instance::from_csr(
                2,
                vec![0, 1, 0, 1],
                vec![e(0, 1.0)],
                ok_o.clone(),
                vec![e(1, 1.0)]
            ),
            Err(BuildError::BadOffsets { .. })
        ));
        // Empty row.
        assert!(matches!(
            Instance::from_csr(
                2,
                vec![0, 1, 1],
                vec![e(0, 1.0)],
                ok_o.clone(),
                vec![e(1, 1.0)]
            ),
            Err(BuildError::EmptyRow)
        ));
        // Unknown agent, bad coefficient, duplicate in one row.
        assert!(matches!(
            Instance::from_csr(
                2,
                ok_c.clone(),
                vec![e(7, 1.0)],
                ok_o.clone(),
                vec![e(1, 1.0)]
            ),
            Err(BuildError::UnknownAgent { .. })
        ));
        assert!(matches!(
            Instance::from_csr(
                2,
                ok_c.clone(),
                vec![e(0, -1.0)],
                ok_o.clone(),
                vec![e(1, 1.0)]
            ),
            Err(BuildError::BadCoefficient { .. })
        ));
        assert!(matches!(
            Instance::from_csr(
                2,
                vec![0, 2],
                vec![e(0, 1.0), e(0, 2.0)],
                ok_o,
                vec![e(1, 1.0)]
            ),
            Err(BuildError::DuplicateAgentInRow { .. })
        ));
    }

    #[test]
    fn empty_instance_builds() {
        let inst = InstanceBuilder::new().build().unwrap();
        assert_eq!(inst.n_agents(), 0);
        assert_eq!(inst.n_constraints(), 0);
        assert_eq!(inst.n_objectives(), 0);
    }

    #[test]
    fn in_place_coef_set_matches_rebuild() {
        let mut b = InstanceBuilder::new();
        let v0 = b.add_agent();
        let v1 = b.add_agent();
        let v2 = b.add_agent();
        b.add_constraint(&[(v0, 1.0), (v1, 2.0)]).unwrap();
        b.add_constraint(&[(v1, 0.5), (v2, 1.5)]).unwrap();
        b.add_objective(&[(v0, 1.0), (v2, 1.0)]).unwrap();
        let mut inst = b.build().unwrap();

        inst.set_constraint_coefs(ConstraintId::new(1), &[3.25, 0.75])
            .unwrap();
        // Row and transpose agree and port order is untouched.
        let e = |agent: u32, coef: f64| Entry {
            agent: AgentId::new(agent),
            coef,
        };
        let row = inst.constraint_row(ConstraintId::new(1));
        assert_eq!(row[0], e(1, 3.25));
        assert_eq!(row[1], e(2, 0.75));
        assert_eq!(inst.a_coef(ConstraintId::new(1), v1), Some(3.25));
        let t: Vec<f64> = inst.agent_constraints(v1).iter().map(|c| c.coef).collect();
        assert_eq!(t, vec![2.0, 3.25]);
        assert_eq!(inst.agent_cap(v1), 1.0 / 3.25);

        // Identical to what the builder would have produced.
        let mut b = InstanceBuilder::new();
        let v0 = b.add_agent();
        let v1 = b.add_agent();
        let v2 = b.add_agent();
        b.add_constraint(&[(v0, 1.0), (v1, 2.0)]).unwrap();
        b.add_constraint(&[(v1, 3.25), (v2, 0.75)]).unwrap();
        b.add_objective(&[(v0, 1.0), (v2, 1.0)]).unwrap();
        let rebuilt = b.build().unwrap();
        assert_eq!(
            crate::textfmt::write_instance(&inst),
            crate::textfmt::write_instance(&rebuilt)
        );

        // Invalid coefficients are refused without touching the row.
        assert!(matches!(
            inst.set_constraint_coefs(ConstraintId::new(0), &[0.0, 1.0]),
            Err(BuildError::BadCoefficient { .. })
        ));
        assert_eq!(inst.a_coef(ConstraintId::new(0), v0), Some(1.0));
    }
}
