//! Solutions `x : V → ℝ≥0` and their evaluation.

use crate::ids::{AgentId, ConstraintId, ObjectiveId};
use crate::instance::Instance;

/// A dense assignment of values to agents.
#[derive(Clone, Debug, PartialEq)]
pub struct Solution {
    values: Vec<f64>,
}

/// Outcome of checking a solution against every constraint and the
/// nonnegativity bounds.
#[derive(Clone, Debug)]
pub struct FeasibilityReport {
    /// Largest violation of a packing constraint: `max_i (Σ a_iv x_v − 1)`,
    /// clamped below at 0. Zero means all constraints hold.
    pub max_constraint_violation: f64,
    /// The constraint attaining the maximum, if any violation is positive.
    pub worst_constraint: Option<ConstraintId>,
    /// Most negative agent value (0 when all are nonnegative).
    pub max_negativity: f64,
    /// The agent attaining the most negative value, if any.
    pub worst_agent: Option<AgentId>,
}

impl FeasibilityReport {
    /// Whether the solution is feasible within `tol` (violations and
    /// negativity both below `tol`).
    pub fn is_feasible(&self, tol: f64) -> bool {
        self.max_constraint_violation <= tol && self.max_negativity <= tol
    }
}

impl Solution {
    /// Wraps a dense value vector (index = agent id).
    pub fn from_vec(values: Vec<f64>) -> Self {
        Self { values }
    }

    /// The all-zeros solution for `n` agents (always feasible; utility 0
    /// whenever objectives exist).
    pub fn zeros(n: usize) -> Self {
        Self {
            values: vec![0.0; n],
        }
    }

    /// Number of agents covered.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the solution covers zero agents.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value of agent `v`.
    #[inline]
    pub fn value(&self, v: AgentId) -> f64 {
        self.values[v.idx()]
    }

    /// Mutable value of agent `v`.
    #[inline]
    pub fn value_mut(&mut self, v: AgentId) -> &mut f64 {
        &mut self.values[v.idx()]
    }

    /// Borrow of the raw dense vector.
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// Consumes into the raw dense vector.
    pub fn into_vec(self) -> Vec<f64> {
        self.values
    }

    /// The load `Σ_{v∈Vi} a_iv x_v` of constraint `i`.
    pub fn constraint_load(&self, inst: &Instance, i: ConstraintId) -> f64 {
        inst.constraint_row(i)
            .iter()
            .map(|e| e.coef * self.values[e.agent.idx()])
            .sum()
    }

    /// The value `ω_k(x) = Σ_{v∈Vk} c_kv x_v` of objective `k`.
    pub fn objective_value(&self, inst: &Instance, k: ObjectiveId) -> f64 {
        inst.objective_row(k)
            .iter()
            .map(|e| e.coef * self.values[e.agent.idx()])
            .sum()
    }

    /// The utility `ω(x) = min_k ω_k(x)`.
    ///
    /// Returns `f64::INFINITY` when the instance has no objectives (the
    /// minimum over an empty set), matching the LP convention.
    pub fn utility(&self, inst: &Instance) -> f64 {
        inst.objectives()
            .map(|k| self.objective_value(inst, k))
            .fold(f64::INFINITY, f64::min)
    }

    /// The objective attaining the minimum, if any.
    pub fn argmin_objective(&self, inst: &Instance) -> Option<ObjectiveId> {
        inst.objectives()
            .map(|k| (k, self.objective_value(inst, k)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(k, _)| k)
    }

    /// Full feasibility report (worst violation, worst negativity).
    pub fn feasibility(&self, inst: &Instance) -> FeasibilityReport {
        let mut max_v = 0.0f64;
        let mut worst_constraint = None;
        for i in inst.constraints() {
            let excess = self.constraint_load(inst, i) - 1.0;
            if excess > max_v {
                max_v = excess;
                worst_constraint = Some(i);
            }
        }
        let mut max_neg = 0.0f64;
        let mut worst_agent = None;
        for v in inst.agents() {
            let neg = -self.values[v.idx()];
            if neg > max_neg {
                max_neg = neg;
                worst_agent = Some(v);
            }
        }
        FeasibilityReport {
            max_constraint_violation: max_v,
            worst_constraint,
            max_negativity: max_neg,
            worst_agent,
        }
    }

    /// Shorthand: feasible within `tol`?
    pub fn is_feasible(&self, inst: &Instance, tol: f64) -> bool {
        self.feasibility(inst).is_feasible(tol)
    }

    /// Scales every value by `factor` (used by transformation back-maps).
    pub fn scale(&mut self, factor: f64) {
        for x in &mut self.values {
            *x *= factor;
        }
    }

    /// Pointwise convex combination `(1−t)·self + t·other`.
    ///
    /// Feasible solutions of an LP are convex, so the result is feasible
    /// whenever both inputs are; used by tests of the §6 averaging step.
    pub fn lerp(&self, other: &Solution, t: f64) -> Solution {
        assert_eq!(self.len(), other.len());
        Solution {
            values: self
                .values
                .iter()
                .zip(&other.values)
                .map(|(a, b)| (1.0 - t) * a + t * b)
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;

    fn inst() -> Instance {
        let mut b = InstanceBuilder::new();
        let v0 = b.add_agent();
        let v1 = b.add_agent();
        b.add_constraint(&[(v0, 2.0), (v1, 1.0)]).unwrap();
        b.add_objective(&[(v0, 1.0)]).unwrap();
        b.add_objective(&[(v0, 1.0), (v1, 4.0)]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn loads_and_values() {
        let inst = inst();
        let x = Solution::from_vec(vec![0.25, 0.5]);
        assert!((x.constraint_load(&inst, ConstraintId::new(0)) - 1.0).abs() < 1e-12);
        assert!((x.objective_value(&inst, ObjectiveId::new(0)) - 0.25).abs() < 1e-12);
        assert!((x.objective_value(&inst, ObjectiveId::new(1)) - 2.25).abs() < 1e-12);
        assert!((x.utility(&inst) - 0.25).abs() < 1e-12);
        assert_eq!(x.argmin_objective(&inst), Some(ObjectiveId::new(0)));
    }

    #[test]
    fn feasibility_detects_violation() {
        let inst = inst();
        let x = Solution::from_vec(vec![1.0, 0.0]);
        let rep = x.feasibility(&inst);
        assert!((rep.max_constraint_violation - 1.0).abs() < 1e-12);
        assert_eq!(rep.worst_constraint, Some(ConstraintId::new(0)));
        assert!(!rep.is_feasible(1e-9));
    }

    #[test]
    fn feasibility_detects_negativity() {
        let inst = inst();
        let x = Solution::from_vec(vec![-0.1, 0.0]);
        let rep = x.feasibility(&inst);
        assert!((rep.max_negativity - 0.1).abs() < 1e-12);
        assert_eq!(rep.worst_agent, Some(AgentId::new(0)));
        assert!(!rep.is_feasible(1e-9));
        assert!(rep.is_feasible(0.2));
    }

    #[test]
    fn zeros_is_feasible_with_zero_utility() {
        let inst = inst();
        let x = Solution::zeros(2);
        assert!(x.is_feasible(&inst, 0.0));
        assert_eq!(x.utility(&inst), 0.0);
    }

    #[test]
    fn utility_of_no_objectives_is_infinite() {
        let mut b = InstanceBuilder::new();
        let v = b.add_agent();
        b.add_constraint(&[(v, 1.0)]).unwrap();
        let inst = b.build().unwrap();
        let x = Solution::zeros(1);
        assert_eq!(x.utility(&inst), f64::INFINITY);
        assert_eq!(x.argmin_objective(&inst), None);
    }

    #[test]
    fn lerp_interpolates() {
        let a = Solution::from_vec(vec![0.0, 1.0]);
        let b = Solution::from_vec(vec![1.0, 0.0]);
        let m = a.lerp(&b, 0.5);
        assert_eq!(m.as_slice(), &[0.5, 0.5]);
    }

    #[test]
    fn scale_multiplies_all() {
        let mut x = Solution::from_vec(vec![1.0, 2.0]);
        x.scale(0.5);
        assert_eq!(x.as_slice(), &[0.5, 1.0]);
    }
}
