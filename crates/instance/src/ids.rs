//! Typed identifiers for the three node classes of the communication graph.
//!
//! Agents, constraints and objectives are each numbered densely from zero.
//! The newtypes prevent the classic off-by-one-kind bug (indexing the
//! constraint table with an objective id) at zero runtime cost.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $short:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u32);

        impl $name {
            /// Constructs an id from a raw dense index.
            #[inline]
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// The raw dense index.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }

            /// The raw dense index widened for slice indexing.
            #[inline]
            pub const fn idx(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($short, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($short, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(id: $name) -> usize {
                id.idx()
            }
        }
    };
}

id_type!(
    /// An agent `v ∈ V`: owns the variable `x_v` and, in the distributed
    /// model, is the only node class that produces output.
    AgentId,
    "v"
);
id_type!(
    /// A constraint `i ∈ I`: the packing row `Σ_{v∈Vi} a_iv x_v ≤ 1`.
    ConstraintId,
    "i"
);
id_type!(
    /// An objective `k ∈ K`: the covering row `Σ_{v∈Vk} c_kv x_v` whose
    /// minimum over `k` is being maximised.
    ObjectiveId,
    "k"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_with_paper_letters() {
        assert_eq!(format!("{}", AgentId::new(3)), "v3");
        assert_eq!(format!("{}", ConstraintId::new(0)), "i0");
        assert_eq!(format!("{:?}", ObjectiveId::new(7)), "k7");
    }

    #[test]
    fn ids_round_trip_raw() {
        let a = AgentId::new(42);
        assert_eq!(a.raw(), 42);
        assert_eq!(a.idx(), 42usize);
        assert_eq!(usize::from(a), 42usize);
    }

    #[test]
    fn ids_order_by_raw_value() {
        assert!(AgentId::new(1) < AgentId::new(2));
        assert_eq!(ConstraintId::new(5), ConstraintId::new(5));
    }
}
