//! Degree statistics: the parameters ΔI, ΔK and friends.
//!
//! The paper's approximation threshold `ΔI (1 − 1/ΔK)` is stated in terms
//! of the maximum constraint degree `ΔI = max_i |V_i|` and maximum
//! objective degree `ΔK = max_k |V_k|`. Agent-side degrees (`|I_v|`,
//! `|K_v|`) do not enter the ratio but do control the size of the local
//! views, so they are reported too.

use crate::instance::Instance;

/// Summary of the degree structure of an instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DegreeStats {
    /// `ΔI = max_i |V_i|` — maximum number of agents per constraint.
    pub delta_i: usize,
    /// `ΔK = max_k |V_k|` — maximum number of agents per objective.
    pub delta_k: usize,
    /// `min_i |V_i|` (0 when there are no constraints).
    pub min_vi: usize,
    /// `min_k |V_k|` (0 when there are no objectives).
    pub min_vk: usize,
    /// `max_v |I_v|` — maximum number of constraints per agent.
    pub max_iv: usize,
    /// `max_v |K_v|` — maximum number of objectives per agent.
    pub max_kv: usize,
    /// `min_v |I_v|` (0 when there are no agents).
    pub min_iv: usize,
    /// `min_v |K_v|` (0 when there are no agents).
    pub min_kv: usize,
}

impl DegreeStats {
    /// Computes the statistics in one pass over the instance.
    pub fn of(inst: &Instance) -> Self {
        let mut s = DegreeStats {
            delta_i: 0,
            delta_k: 0,
            min_vi: usize::MAX,
            min_vk: usize::MAX,
            max_iv: 0,
            max_kv: 0,
            min_iv: usize::MAX,
            min_kv: usize::MAX,
        };
        for i in inst.constraints() {
            let d = inst.constraint_row(i).len();
            s.delta_i = s.delta_i.max(d);
            s.min_vi = s.min_vi.min(d);
        }
        for k in inst.objectives() {
            let d = inst.objective_row(k).len();
            s.delta_k = s.delta_k.max(d);
            s.min_vk = s.min_vk.min(d);
        }
        for v in inst.agents() {
            let di = inst.agent_constraints(v).len();
            let dk = inst.agent_objectives(v).len();
            s.max_iv = s.max_iv.max(di);
            s.max_kv = s.max_kv.max(dk);
            s.min_iv = s.min_iv.min(di);
            s.min_kv = s.min_kv.min(dk);
        }
        if inst.n_constraints() == 0 {
            s.min_vi = 0;
        }
        if inst.n_objectives() == 0 {
            s.min_vk = 0;
        }
        if inst.n_agents() == 0 {
            s.min_iv = 0;
            s.min_kv = 0;
        }
        s
    }

    /// The paper's unconditional local approximability threshold
    /// `ΔI (1 − 1/ΔK)` for this instance's degree bounds.
    ///
    /// Only meaningful for non-trivial instances (`ΔI ≥ 2`, `ΔK ≥ 2`);
    /// returns `None` otherwise (those cases are solvable exactly by local
    /// algorithms, see §1 of the paper).
    pub fn approximability_threshold(&self) -> Option<f64> {
        if self.delta_i >= 2 && self.delta_k >= 2 {
            Some(self.delta_i as f64 * (1.0 - 1.0 / self.delta_k as f64))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;

    #[test]
    fn stats_of_mixed_instance() {
        let mut b = InstanceBuilder::new();
        let v0 = b.add_agent();
        let v1 = b.add_agent();
        let v2 = b.add_agent();
        b.add_constraint(&[(v0, 1.0), (v1, 1.0), (v2, 1.0)])
            .unwrap();
        b.add_constraint(&[(v0, 1.0)]).unwrap();
        b.add_objective(&[(v0, 1.0), (v1, 1.0)]).unwrap();
        b.add_objective(&[(v2, 1.0)]).unwrap();
        let s = DegreeStats::of(&b.build().unwrap());
        assert_eq!(s.delta_i, 3);
        assert_eq!(s.min_vi, 1);
        assert_eq!(s.delta_k, 2);
        assert_eq!(s.min_vk, 1);
        assert_eq!(s.max_iv, 2); // v0 in both constraints
        assert_eq!(s.min_iv, 1);
        assert_eq!(s.max_kv, 1);
        assert_eq!(s.min_kv, 1);
        assert_eq!(s.approximability_threshold(), Some(3.0 * 0.5));
    }

    #[test]
    fn threshold_requires_nontrivial_degrees() {
        let mut b = InstanceBuilder::new();
        let v = b.add_agent();
        b.add_constraint(&[(v, 1.0)]).unwrap();
        b.add_objective(&[(v, 1.0)]).unwrap();
        let s = DegreeStats::of(&b.build().unwrap());
        assert_eq!(s.approximability_threshold(), None);
    }

    #[test]
    fn empty_instance_stats_are_zero() {
        let s = DegreeStats::of(&InstanceBuilder::new().build().unwrap());
        assert_eq!(
            s,
            DegreeStats {
                delta_i: 0,
                delta_k: 0,
                min_vi: 0,
                min_vk: 0,
                max_iv: 0,
                max_kv: 0,
                min_iv: 0,
                min_kv: 0,
            }
        );
    }
}
