//! Stable content hashing for instances and derived artefacts.
//!
//! Everything that needs a *persistent* identity in this workspace —
//! campaign job logs (`mmlp-lab`), the solver service's result cache
//! and content-addressed instance store (`mmlp-serve`) — hashes with
//! the same primitive: **FNV-1a, 64-bit**. Unlike `DefaultHasher` it is
//! specified byte-for-byte, so hashes survive platform, process and
//! Rust-version changes, which is exactly what resumable record logs
//! and cross-process cache keys require.
//!
//! [`instance_hash`] is the single canonical instance identity: the
//! FNV-1a hash of the instance's canonical [`textfmt`]
//! serialisation. Two files that differ only in comments, blank lines
//! or line endings therefore hash identically once parsed, while any
//! structural difference — row order, port order, a single float bit —
//! changes the hash.

use crate::instance::Instance;
use crate::textfmt;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice, 64-bit.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(bytes);
    h.finish()
}

/// Incremental FNV-1a hasher, for hashing without materialising the
/// full input (e.g. streaming a serialisation).
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// Starts from the standard FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    /// Folds `bytes` into the running hash.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

/// Throughput-oriented FNV-1a variant folding **8-byte words** instead
/// of single bytes: each little-endian `u64` word (and one final
/// length-prefixed remainder word) goes through the standard
/// xor-multiply step. This is *not* byte-serial FNV-1a — it trades the
/// published test vectors for ~8× fewer serial multiplies, which
/// matters when checksumming megabytes of storage payloads. Used by
/// `mmlp-store` for section and record checksums (`specs/STORAGE.md`);
/// identities that must stay canonical ([`instance_hash`], job ids)
/// keep byte-serial [`fnv1a64`].
pub fn fnv1a64_words(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let w = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
        h ^= w;
        h = h.wrapping_mul(FNV_PRIME);
    }
    // Fold the 0–7 remainder bytes together with the total length, so
    // trailing zero bytes and pure length changes still perturb the
    // hash.
    let mut tail = [0u8; 8];
    let rem = chunks.remainder();
    tail[..rem.len()].copy_from_slice(rem);
    h ^= u64::from_le_bytes(tail);
    h = h.wrapping_mul(FNV_PRIME);
    h ^= bytes.len() as u64;
    h.wrapping_mul(FNV_PRIME)
}

/// The canonical content hash of an instance: FNV-1a over its
/// canonical text serialisation ([`textfmt::write_instance`]).
pub fn instance_hash(inst: &Instance) -> u64 {
    fnv1a64(textfmt::write_instance(inst).as_bytes())
}

/// Renders a content hash in the canonical 16-hex-digit form used in
/// record logs and on the service wire protocol.
pub fn hash_hex(h: u64) -> String {
    format!("{h:016x}")
}

/// Inverse of [`hash_hex`]; rejects anything but exactly 16 hex digits.
pub fn parse_hash_hex(s: &str) -> Option<u64> {
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;

    fn sample(coef: f64) -> Instance {
        let mut b = InstanceBuilder::new();
        let v0 = b.add_agent();
        let v1 = b.add_agent();
        b.add_constraint(&[(v0, coef), (v1, 1.0)]).unwrap();
        b.add_objective(&[(v0, 1.0)]).unwrap();
        b.add_objective(&[(v1, 1.0)]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn fnv_matches_the_published_test_vectors() {
        // Standard FNV-1a 64-bit vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_hashing_equals_one_shot() {
        let mut h = Fnv1a::new();
        h.update(b"foo");
        h.update(b"bar");
        assert_eq!(h.finish(), fnv1a64(b"foobar"));
    }

    #[test]
    fn word_fnv_is_stable_and_discriminating() {
        // Pinned vectors: a change would silently orphan every stored
        // segment checksum, so it must be deliberate.
        assert_eq!(fnv1a64_words(b""), 0x0832_8807_b4eb_6fed);
        assert_eq!(fnv1a64_words(b"foobar"), 0xa1a0_7343_0586_a9ed);
        // Distinguishes lengths, trailing zeros and single-bit flips.
        assert_ne!(fnv1a64_words(b"x"), fnv1a64_words(b"x\0"));
        assert_ne!(fnv1a64_words(&[0u8; 8]), fnv1a64_words(&[0u8; 16]));
        let a = vec![0xabu8; 4096];
        let mut b = a.clone();
        b[2049] ^= 0x01;
        assert_ne!(fnv1a64_words(&a), fnv1a64_words(&b));
    }

    #[test]
    fn instance_hash_is_content_based() {
        assert_eq!(instance_hash(&sample(0.5)), instance_hash(&sample(0.5)));
        assert_ne!(instance_hash(&sample(0.5)), instance_hash(&sample(0.25)));
    }

    #[test]
    fn instance_hash_ignores_surface_syntax() {
        // Re-parsing a noisy rendering (comments, CRLF) of the same
        // instance must land on the same canonical hash.
        let inst = sample(0.5);
        let noisy = textfmt::write_instance(&inst).replace('\n', "  # c\r\n");
        let back = textfmt::parse_instance(&noisy).unwrap();
        assert_eq!(instance_hash(&inst), instance_hash(&back));
    }

    #[test]
    fn hex_round_trips_and_rejects_junk() {
        let h = fnv1a64(b"x");
        assert_eq!(parse_hash_hex(&hash_hex(h)), Some(h));
        assert_eq!(parse_hash_hex("abc"), None);
        assert_eq!(parse_hash_hex("zzzzzzzzzzzzzzzz"), None);
        assert_eq!(parse_hash_hex("00112233445566778"), None);
    }
}
