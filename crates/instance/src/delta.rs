//! Versioned instance edits: the `mmlp-delta` edit model.
//!
//! A [`Delta`] is an ordered batch of [`Edit`]s pinned to the content
//! hash of the instance it applies to. Applying it produces a fresh
//! [`Instance`] plus a [`Lineage`] record
//! `(base_hash, delta_hash) → new_hash`, the revision identity used by
//! the serve layer's `PUT_DELTA`/`SOLVE_DELTA` ops and persisted through
//! `mmlp-store` so a restarted node can replay its revision graph.
//!
//! Two canonical encodings are provided, mirroring the instance
//! formats:
//!
//! * a line-oriented **text** form (the wire/body format — liberal
//!   parser, canonical writer, `#` comments tolerated):
//!
//!   ```text
//!   mmlpdelta 1
//!   base 00112233aabbccdd
//!   set c 3 7:1.5          # coefficient set: row kind, row id, agent:coef
//!   addedge o 2 4:0.25     # new edge, appended as the row's last port
//!   rmedge c 1 0           # remove the edge {row, agent}
//!   addagent               # append one isolated agent
//!   rmagent 5              # remove an isolated agent (ids above shift)
//!   addrow c 0:1.0 2:2.0   # append a whole row
//!   rmrow o 3              # remove a row (ids above shift)
//!   ```
//!
//! * a length-framed **binary** form (the storage format), with a magic,
//!   a version byte and little-endian fields.
//!
//! The **delta hash** is FNV-1a over the canonical text — the same
//! convention as [`crate::hash::instance_hash`] — so a delta's identity
//! survives comment/whitespace noise but changes with any semantic
//! difference, including edit order.

use crate::hash::{fnv1a64, hash_hex, instance_hash, parse_hash_hex};
use crate::ids::AgentId;
use crate::instance::{BuildError, Instance, InstanceBuilder};
use std::fmt::Write as _;

/// Which half of the instance a row edit touches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RowKind {
    /// A packing row of `A` (`Σ a_iv x_v ≤ 1`).
    Constraint,
    /// A covering row of `C` (`Σ c_kv x_v`, min-folded into ω).
    Objective,
}

impl RowKind {
    /// The canonical text tag (matches the instance format's row tags).
    pub fn tag(&self) -> &'static str {
        match self {
            RowKind::Constraint => "c",
            RowKind::Objective => "o",
        }
    }

    fn from_tag(s: &str) -> Option<RowKind> {
        match s {
            "c" => Some(RowKind::Constraint),
            "o" => Some(RowKind::Objective),
            _ => None,
        }
    }
}

/// One atomic instance edit.
///
/// Port-numbering discipline: `SetCoef` keeps the edge's port position;
/// `AddEdge` appends the new edge as the row's **last** port; removals
/// close the gap preserving the order of the surviving entries. Ids are
/// dense, so removing an agent or a row shifts every higher id down by
/// one — encoded deltas always refer to ids *as of the preceding edit*.
#[derive(Clone, Debug, PartialEq)]
pub enum Edit {
    /// Replace the coefficient of an existing edge.
    SetCoef {
        /// Constraint or objective side.
        row: RowKind,
        /// Row id within that side.
        row_id: u32,
        /// The edge's agent endpoint.
        agent: AgentId,
        /// The new strictly-positive finite coefficient.
        coef: f64,
    },
    /// Add an edge to an existing row (appended as its last port).
    AddEdge {
        /// Constraint or objective side.
        row: RowKind,
        /// Row id within that side.
        row_id: u32,
        /// The new edge's agent endpoint.
        agent: AgentId,
        /// The edge coefficient.
        coef: f64,
    },
    /// Remove an existing edge; the row must keep ≥ 1 entry.
    RemoveEdge {
        /// Constraint or objective side.
        row: RowKind,
        /// Row id within that side.
        row_id: u32,
        /// The edge's agent endpoint.
        agent: AgentId,
    },
    /// Append one fresh agent (no incident edges).
    AddAgent,
    /// Remove an agent that appears in no row; ids above shift down.
    RemoveAgent {
        /// The isolated agent to drop.
        agent: AgentId,
    },
    /// Append a whole new row.
    AddRow {
        /// Constraint or objective side.
        row: RowKind,
        /// The row entries, in port order.
        entries: Vec<(AgentId, f64)>,
    },
    /// Remove a whole row; ids above shift down.
    RemoveRow {
        /// Constraint or objective side.
        row: RowKind,
        /// Row id within that side.
        row_id: u32,
    },
}

/// A content-addressed batch of edits against one base revision.
#[derive(Clone, Debug, PartialEq)]
pub struct Delta {
    /// Content hash of the instance this delta applies to.
    pub base: u64,
    /// The edits, applied in order.
    pub edits: Vec<Edit>,
}

/// One revision-lineage record: applying the delta with hash `delta` to
/// the instance with hash `base` produced the instance with hash `new`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Lineage {
    /// Content hash of the base instance.
    pub base: u64,
    /// Content hash ([`Delta::delta_hash`]) of the applied delta.
    pub delta: u64,
    /// Content hash of the resulting instance.
    pub new: u64,
}

/// Everything that can go wrong parsing or applying a delta.
#[derive(Clone, Debug, PartialEq)]
pub enum DeltaError {
    /// The delta's `base` hash does not match the instance it was
    /// applied to.
    BaseMismatch {
        /// Hash the delta was pinned to.
        expected: u64,
        /// Hash of the instance actually supplied.
        actual: u64,
    },
    /// An edit referenced a row id that does not exist.
    UnknownRow {
        /// Which side was indexed.
        row: RowKind,
        /// The out-of-range id.
        row_id: u32,
    },
    /// An edit referenced an agent id that does not exist.
    UnknownAgent {
        /// The out-of-range raw agent id.
        agent: u32,
    },
    /// `set`/`rmedge` named a `{row, agent}` pair that is not an edge.
    NoSuchEdge {
        /// Which side was indexed.
        row: RowKind,
        /// The row id.
        row_id: u32,
        /// The agent that is not in the row.
        agent: u32,
    },
    /// `addedge` would duplicate an existing edge.
    DuplicateEdge {
        /// Which side was indexed.
        row: RowKind,
        /// The row id.
        row_id: u32,
        /// The agent already present in the row.
        agent: u32,
    },
    /// A coefficient was zero, negative, NaN or infinite. Zeroing an
    /// edge is spelled `rmedge` — coefficients stay strictly positive,
    /// matching [`BuildError::BadCoefficient`].
    BadCoefficient {
        /// The offending value.
        value: f64,
    },
    /// `rmedge` would leave the row empty (use `rmrow` instead).
    WouldEmptyRow {
        /// Which side was indexed.
        row: RowKind,
        /// The row id.
        row_id: u32,
    },
    /// `rmagent` named an agent that still has incident edges.
    AgentNotIsolated {
        /// The still-connected agent.
        agent: u32,
    },
    /// Text/binary decoding failed.
    Parse {
        /// 1-based line (text) or byte offset (binary); 0 when global.
        at: usize,
        /// Human-readable description.
        message: String,
    },
    /// Rebuilding the edited instance failed (defence in depth — the
    /// per-edit checks above should catch everything first).
    Build(BuildError),
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::BaseMismatch { expected, actual } => write!(
                f,
                "delta applies to base {} but got instance {}",
                hash_hex(*expected),
                hash_hex(*actual)
            ),
            DeltaError::UnknownRow { row, row_id } => {
                write!(f, "no {} row {row_id}", row.tag())
            }
            DeltaError::UnknownAgent { agent } => write!(f, "no agent {agent}"),
            DeltaError::NoSuchEdge { row, row_id, agent } => {
                write!(f, "no edge {{{} {row_id}, agent {agent}}}", row.tag())
            }
            DeltaError::DuplicateEdge { row, row_id, agent } => {
                write!(
                    f,
                    "edge {{{} {row_id}, agent {agent}}} already exists",
                    row.tag()
                )
            }
            DeltaError::BadCoefficient { value } => {
                write!(f, "coefficient {value} is not strictly positive and finite")
            }
            DeltaError::WouldEmptyRow { row, row_id } => {
                write!(
                    f,
                    "removing the edge would empty {} row {row_id}",
                    row.tag()
                )
            }
            DeltaError::AgentNotIsolated { agent } => {
                write!(f, "agent {agent} still has incident edges")
            }
            DeltaError::Parse { at, message } => write!(f, "at {at}: {message}"),
            DeltaError::Build(e) => write!(f, "rebuild failed: {e}"),
        }
    }
}

impl std::error::Error for DeltaError {}

impl From<BuildError> for DeltaError {
    fn from(e: BuildError) -> Self {
        DeltaError::Build(e)
    }
}

/// Magic + version prefix of the binary encoding.
const BIN_MAGIC: &[u8; 8] = b"MMLPDELT";
const BIN_VERSION: u8 = 1;

impl Delta {
    /// A delta holding one edit.
    pub fn single(base: u64, edit: Edit) -> Delta {
        Delta {
            base,
            edits: vec![edit],
        }
    }

    /// Serialises to the canonical text form (always bare `\n`,
    /// shortest-round-trip floats — the hashed form).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("mmlpdelta 1\n");
        let _ = writeln!(out, "base {}", hash_hex(self.base));
        for e in &self.edits {
            match e {
                Edit::SetCoef {
                    row,
                    row_id,
                    agent,
                    coef,
                } => {
                    let _ = writeln!(out, "set {} {row_id} {}:{coef}", row.tag(), agent.raw());
                }
                Edit::AddEdge {
                    row,
                    row_id,
                    agent,
                    coef,
                } => {
                    let _ = writeln!(out, "addedge {} {row_id} {}:{coef}", row.tag(), agent.raw());
                }
                Edit::RemoveEdge { row, row_id, agent } => {
                    let _ = writeln!(out, "rmedge {} {row_id} {}", row.tag(), agent.raw());
                }
                Edit::AddAgent => out.push_str("addagent\n"),
                Edit::RemoveAgent { agent } => {
                    let _ = writeln!(out, "rmagent {}", agent.raw());
                }
                Edit::AddRow { row, entries } => {
                    let _ = write!(out, "addrow {}", row.tag());
                    for (a, c) in entries {
                        let _ = write!(out, " {}:{c}", a.raw());
                    }
                    out.push('\n');
                }
                Edit::RemoveRow { row, row_id } => {
                    let _ = writeln!(out, "rmrow {} {row_id}", row.tag());
                }
            }
        }
        out
    }

    /// Parses the text form. Like the instance parser it tolerates `#`
    /// comments, blank lines, CRLF/CR endings and stray whitespace; none
    /// of that survives into the canonical form ([`Delta::to_text`]).
    pub fn parse_text(text: &str) -> Result<Delta, DeltaError> {
        let normalized;
        let text = if text.contains('\r') && !text.contains('\n') {
            normalized = text.replace('\r', "\n");
            normalized.as_str()
        } else {
            text
        };
        let err = |line: usize, message: String| DeltaError::Parse { at: line, message };
        let mut saw_header = false;
        let mut base: Option<u64> = None;
        let mut edits = Vec::new();
        for (idx, raw_line) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw_line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut tokens = line.split_ascii_whitespace();
            let head = tokens.next().expect("non-empty line has a token");
            let kind = |tokens: &mut dyn Iterator<Item = &str>| -> Result<RowKind, DeltaError> {
                let t = tokens
                    .next()
                    .ok_or_else(|| err(lineno, format!("{head} needs a row kind (c|o)")))?;
                RowKind::from_tag(t).ok_or_else(|| err(lineno, format!("bad row kind '{t}'")))
            };
            let row_id = |tok: Option<&str>| -> Result<u32, DeltaError> {
                let t = tok.ok_or_else(|| err(lineno, format!("{head} needs a row id")))?;
                t.parse()
                    .map_err(|_| err(lineno, format!("bad row id '{t}'")))
            };
            let pair = |tok: Option<&str>| -> Result<(AgentId, f64), DeltaError> {
                let t = tok.ok_or_else(|| err(lineno, format!("{head} needs agent:coef")))?;
                let (a, c) = t
                    .split_once(':')
                    .ok_or_else(|| err(lineno, format!("expected agent:coef, got '{t}'")))?;
                let agent: u32 = a
                    .parse()
                    .map_err(|_| err(lineno, format!("bad agent '{a}'")))?;
                let coef: f64 = c
                    .parse()
                    .map_err(|_| err(lineno, format!("bad coefficient '{c}'")))?;
                Ok((AgentId::new(agent), coef))
            };
            let agent_tok = |tok: Option<&str>| -> Result<AgentId, DeltaError> {
                let t = tok.ok_or_else(|| err(lineno, format!("{head} needs an agent")))?;
                let a: u32 = t
                    .parse()
                    .map_err(|_| err(lineno, format!("bad agent '{t}'")))?;
                Ok(AgentId::new(a))
            };
            match head {
                "mmlpdelta" => {
                    let version = tokens
                        .next()
                        .ok_or_else(|| err(lineno, "missing format version".into()))?;
                    if version != "1" {
                        return Err(err(lineno, format!("unsupported version {version}")));
                    }
                    saw_header = true;
                }
                "base" => {
                    if !saw_header {
                        return Err(err(lineno, "missing 'mmlpdelta 1' header".into()));
                    }
                    let t = tokens
                        .next()
                        .ok_or_else(|| err(lineno, "missing base hash".into()))?;
                    base = Some(
                        parse_hash_hex(t)
                            .ok_or_else(|| err(lineno, format!("bad base hash '{t}'")))?,
                    );
                }
                "set" | "addedge" => {
                    let row = kind(&mut tokens)?;
                    let id = row_id(tokens.next())?;
                    let (agent, coef) = pair(tokens.next())?;
                    edits.push(if head == "set" {
                        Edit::SetCoef {
                            row,
                            row_id: id,
                            agent,
                            coef,
                        }
                    } else {
                        Edit::AddEdge {
                            row,
                            row_id: id,
                            agent,
                            coef,
                        }
                    });
                }
                "rmedge" => {
                    let row = kind(&mut tokens)?;
                    let id = row_id(tokens.next())?;
                    let agent = agent_tok(tokens.next())?;
                    edits.push(Edit::RemoveEdge {
                        row,
                        row_id: id,
                        agent,
                    });
                }
                "addagent" => edits.push(Edit::AddAgent),
                "rmagent" => {
                    let agent = agent_tok(tokens.next())?;
                    edits.push(Edit::RemoveAgent { agent });
                }
                "addrow" => {
                    let row = kind(&mut tokens)?;
                    let mut entries = Vec::new();
                    for t in tokens.by_ref() {
                        entries.push(pair(Some(t))?);
                    }
                    if entries.is_empty() {
                        return Err(err(lineno, "addrow needs at least one agent:coef".into()));
                    }
                    edits.push(Edit::AddRow { row, entries });
                }
                "rmrow" => {
                    let row = kind(&mut tokens)?;
                    let id = row_id(tokens.next())?;
                    edits.push(Edit::RemoveRow { row, row_id: id });
                }
                other => return Err(err(lineno, format!("unknown directive '{other}'"))),
            }
            if let Some(extra) = tokens.next() {
                return Err(err(lineno, format!("unexpected trailing token '{extra}'")));
            }
        }
        let base = base.ok_or_else(|| err(0, "no 'base' declaration found".into()))?;
        Ok(Delta { base, edits })
    }

    /// Serialises to the binary storage form.
    pub fn to_binary(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + 16 * self.edits.len());
        out.extend_from_slice(BIN_MAGIC);
        out.push(BIN_VERSION);
        out.extend_from_slice(&self.base.to_le_bytes());
        out.extend_from_slice(&(self.edits.len() as u32).to_le_bytes());
        let kind_byte = |r: &RowKind| match r {
            RowKind::Constraint => 0u8,
            RowKind::Objective => 1u8,
        };
        for e in &self.edits {
            match e {
                Edit::SetCoef {
                    row,
                    row_id,
                    agent,
                    coef,
                } => {
                    out.push(1);
                    out.push(kind_byte(row));
                    out.extend_from_slice(&row_id.to_le_bytes());
                    out.extend_from_slice(&agent.raw().to_le_bytes());
                    out.extend_from_slice(&coef.to_bits().to_le_bytes());
                }
                Edit::AddEdge {
                    row,
                    row_id,
                    agent,
                    coef,
                } => {
                    out.push(2);
                    out.push(kind_byte(row));
                    out.extend_from_slice(&row_id.to_le_bytes());
                    out.extend_from_slice(&agent.raw().to_le_bytes());
                    out.extend_from_slice(&coef.to_bits().to_le_bytes());
                }
                Edit::RemoveEdge { row, row_id, agent } => {
                    out.push(3);
                    out.push(kind_byte(row));
                    out.extend_from_slice(&row_id.to_le_bytes());
                    out.extend_from_slice(&agent.raw().to_le_bytes());
                }
                Edit::AddAgent => out.push(4),
                Edit::RemoveAgent { agent } => {
                    out.push(5);
                    out.extend_from_slice(&agent.raw().to_le_bytes());
                }
                Edit::AddRow { row, entries } => {
                    out.push(6);
                    out.push(kind_byte(row));
                    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
                    for (a, c) in entries {
                        out.extend_from_slice(&a.raw().to_le_bytes());
                        out.extend_from_slice(&c.to_bits().to_le_bytes());
                    }
                }
                Edit::RemoveRow { row, row_id } => {
                    out.push(7);
                    out.push(kind_byte(row));
                    out.extend_from_slice(&row_id.to_le_bytes());
                }
            }
        }
        out
    }

    /// Parses the binary storage form.
    pub fn from_binary(bytes: &[u8]) -> Result<Delta, DeltaError> {
        let mut pos = 0usize;
        let err = |at: usize, message: String| DeltaError::Parse { at, message };
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], DeltaError> {
            let end = pos
                .checked_add(n)
                .filter(|&e| e <= bytes.len())
                .ok_or_else(|| err(*pos, "truncated delta".into()))?;
            let s = &bytes[*pos..end];
            *pos = end;
            Ok(s)
        };
        let magic = take(&mut pos, 8)?;
        if magic != BIN_MAGIC {
            return Err(err(0, "bad magic".into()));
        }
        let version = take(&mut pos, 1)?[0];
        if version != BIN_VERSION {
            return Err(err(8, format!("unsupported version {version}")));
        }
        let u32_at = |pos: &mut usize| -> Result<u32, DeltaError> {
            Ok(u32::from_le_bytes(take(pos, 4)?.try_into().expect("4")))
        };
        let u64_at = |pos: &mut usize| -> Result<u64, DeltaError> {
            Ok(u64::from_le_bytes(take(pos, 8)?.try_into().expect("8")))
        };
        let row_at = |pos: &mut usize| -> Result<RowKind, DeltaError> {
            match take(pos, 1)?[0] {
                0 => Ok(RowKind::Constraint),
                1 => Ok(RowKind::Objective),
                b => Err(err(*pos - 1, format!("bad row kind byte {b}"))),
            }
        };
        let base = u64_at(&mut pos)?;
        let n_edits = u32_at(&mut pos)?;
        let mut edits = Vec::with_capacity(n_edits.min(1 << 20) as usize);
        for _ in 0..n_edits {
            let at = pos;
            let op = take(&mut pos, 1)?[0];
            edits.push(match op {
                1 | 2 => {
                    let row = row_at(&mut pos)?;
                    let row_id = u32_at(&mut pos)?;
                    let agent = AgentId::new(u32_at(&mut pos)?);
                    let coef = f64::from_bits(u64_at(&mut pos)?);
                    if op == 1 {
                        Edit::SetCoef {
                            row,
                            row_id,
                            agent,
                            coef,
                        }
                    } else {
                        Edit::AddEdge {
                            row,
                            row_id,
                            agent,
                            coef,
                        }
                    }
                }
                3 => Edit::RemoveEdge {
                    row: row_at(&mut pos)?,
                    row_id: u32_at(&mut pos)?,
                    agent: AgentId::new(u32_at(&mut pos)?),
                },
                4 => Edit::AddAgent,
                5 => Edit::RemoveAgent {
                    agent: AgentId::new(u32_at(&mut pos)?),
                },
                6 => {
                    let row = row_at(&mut pos)?;
                    let n = u32_at(&mut pos)?;
                    let mut entries = Vec::with_capacity(n.min(1 << 20) as usize);
                    for _ in 0..n {
                        let a = AgentId::new(u32_at(&mut pos)?);
                        let c = f64::from_bits(u64_at(&mut pos)?);
                        entries.push((a, c));
                    }
                    Edit::AddRow { row, entries }
                }
                7 => Edit::RemoveRow {
                    row: row_at(&mut pos)?,
                    row_id: u32_at(&mut pos)?,
                },
                b => return Err(err(at, format!("bad edit opcode {b}"))),
            });
        }
        if pos != bytes.len() {
            return Err(err(pos, "trailing bytes after the last edit".into()));
        }
        Ok(Delta { base, edits })
    }

    /// The delta's content hash: FNV-1a over [`Delta::to_text`].
    pub fn delta_hash(&self) -> u64 {
        fnv1a64(self.to_text().as_bytes())
    }

    /// Applies the edits to `base`, which must hash to [`Delta::base`],
    /// returning the edited instance.
    pub fn apply(&self, base: &Instance) -> Result<Instance, DeltaError> {
        let actual = instance_hash(base);
        if actual != self.base {
            return Err(DeltaError::BaseMismatch {
                expected: self.base,
                actual,
            });
        }
        let mut n_agents = base.n_agents() as u32;
        let mut cons: Vec<Vec<(AgentId, f64)>> = base
            .constraints()
            .map(|i| {
                base.constraint_row(i)
                    .iter()
                    .map(|e| (e.agent, e.coef))
                    .collect()
            })
            .collect();
        let mut objs: Vec<Vec<(AgentId, f64)>> = base
            .objectives()
            .map(|k| {
                base.objective_row(k)
                    .iter()
                    .map(|e| (e.agent, e.coef))
                    .collect()
            })
            .collect();
        for e in &self.edits {
            apply_one(e, &mut n_agents, &mut cons, &mut objs)?;
        }
        let mut b = InstanceBuilder::with_agents(n_agents as usize);
        for row in &cons {
            b.add_constraint(row)?;
        }
        for row in &objs {
            b.add_objective(row)?;
        }
        Ok(b.build()?)
    }

    /// [`Delta::apply`] plus the revision [`Lineage`] record.
    pub fn apply_hashed(&self, base: &Instance) -> Result<(Instance, Lineage), DeltaError> {
        let new_inst = self.apply(base)?;
        let lineage = Lineage {
            base: self.base,
            delta: self.delta_hash(),
            new: instance_hash(&new_inst),
        };
        Ok((new_inst, lineage))
    }
}

/// Borrows the side of the decomposed representation a row edit targets.
fn rows_of<'a>(
    row: RowKind,
    cons: &'a mut Vec<Vec<(AgentId, f64)>>,
    objs: &'a mut Vec<Vec<(AgentId, f64)>>,
) -> &'a mut Vec<Vec<(AgentId, f64)>> {
    match row {
        RowKind::Constraint => cons,
        RowKind::Objective => objs,
    }
}

/// Applies one edit to the decomposed row representation.
fn apply_one(
    e: &Edit,
    n_agents: &mut u32,
    cons: &mut Vec<Vec<(AgentId, f64)>>,
    objs: &mut Vec<Vec<(AgentId, f64)>>,
) -> Result<(), DeltaError> {
    let check_coef = |coef: f64| -> Result<(), DeltaError> {
        if coef.is_finite() && coef > 0.0 {
            Ok(())
        } else {
            Err(DeltaError::BadCoefficient { value: coef })
        }
    };
    match e {
        Edit::SetCoef {
            row,
            row_id,
            agent,
            coef,
        } => {
            check_coef(*coef)?;
            let rows = rows_of(*row, cons, objs);
            let r = rows
                .get_mut(*row_id as usize)
                .ok_or(DeltaError::UnknownRow {
                    row: *row,
                    row_id: *row_id,
                })?;
            let slot = r.iter_mut().find(|(a, _)| a == agent).ok_or({
                DeltaError::NoSuchEdge {
                    row: *row,
                    row_id: *row_id,
                    agent: agent.raw(),
                }
            })?;
            slot.1 = *coef;
        }
        Edit::AddEdge {
            row,
            row_id,
            agent,
            coef,
        } => {
            check_coef(*coef)?;
            if agent.raw() >= *n_agents {
                return Err(DeltaError::UnknownAgent { agent: agent.raw() });
            }
            let rows = rows_of(*row, cons, objs);
            let r = rows
                .get_mut(*row_id as usize)
                .ok_or(DeltaError::UnknownRow {
                    row: *row,
                    row_id: *row_id,
                })?;
            if r.iter().any(|(a, _)| a == agent) {
                return Err(DeltaError::DuplicateEdge {
                    row: *row,
                    row_id: *row_id,
                    agent: agent.raw(),
                });
            }
            r.push((*agent, *coef));
        }
        Edit::RemoveEdge { row, row_id, agent } => {
            let rows = rows_of(*row, cons, objs);
            let r = rows
                .get_mut(*row_id as usize)
                .ok_or(DeltaError::UnknownRow {
                    row: *row,
                    row_id: *row_id,
                })?;
            let at = r.iter().position(|(a, _)| a == agent).ok_or({
                DeltaError::NoSuchEdge {
                    row: *row,
                    row_id: *row_id,
                    agent: agent.raw(),
                }
            })?;
            if r.len() == 1 {
                return Err(DeltaError::WouldEmptyRow {
                    row: *row,
                    row_id: *row_id,
                });
            }
            r.remove(at);
        }
        Edit::AddAgent => *n_agents += 1,
        Edit::RemoveAgent { agent } => {
            if agent.raw() >= *n_agents {
                return Err(DeltaError::UnknownAgent { agent: agent.raw() });
            }
            let touched = cons
                .iter()
                .chain(objs.iter())
                .any(|r| r.iter().any(|(a, _)| a == agent));
            if touched {
                return Err(DeltaError::AgentNotIsolated { agent: agent.raw() });
            }
            *n_agents -= 1;
            for r in cons.iter_mut().chain(objs.iter_mut()) {
                for (a, _) in r.iter_mut() {
                    if a.raw() > agent.raw() {
                        *a = AgentId::new(a.raw() - 1);
                    }
                }
            }
        }
        Edit::AddRow { row, entries } => {
            if entries.is_empty() {
                return Err(DeltaError::Build(BuildError::EmptyRow));
            }
            for (idx, (a, c)) in entries.iter().enumerate() {
                check_coef(*c)?;
                if a.raw() >= *n_agents {
                    return Err(DeltaError::UnknownAgent { agent: a.raw() });
                }
                if entries[..idx].iter().any(|(b, _)| b == a) {
                    return Err(DeltaError::Build(BuildError::DuplicateAgentInRow {
                        agent: *a,
                    }));
                }
            }
            let rows = rows_of(*row, cons, objs);
            rows.push(entries.clone());
        }
        Edit::RemoveRow { row, row_id } => {
            let rows = rows_of(*row, cons, objs);
            if *row_id as usize >= rows.len() {
                return Err(DeltaError::UnknownRow {
                    row: *row,
                    row_id: *row_id,
                });
            }
            rows.remove(*row_id as usize);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ConstraintId;

    /// 3 agents, 2 constraints, 2 objectives.
    fn sample() -> Instance {
        let mut b = InstanceBuilder::new();
        let v0 = b.add_agent();
        let v1 = b.add_agent();
        let v2 = b.add_agent();
        b.add_constraint(&[(v0, 1.0), (v1, 2.0)]).unwrap();
        b.add_constraint(&[(v1, 0.5), (v2, 1.0)]).unwrap();
        b.add_objective(&[(v0, 1.0), (v2, 3.0)]).unwrap();
        b.add_objective(&[(v1, 1.0)]).unwrap();
        b.build().unwrap()
    }

    fn set0(base: &Instance, coef: f64) -> Delta {
        Delta::single(
            instance_hash(base),
            Edit::SetCoef {
                row: RowKind::Constraint,
                row_id: 0,
                agent: AgentId::new(1),
                coef,
            },
        )
    }

    #[test]
    fn set_coef_keeps_port_order_and_changes_hash() {
        let base = sample();
        let (new_inst, lineage) = set0(&base, 7.5).apply_hashed(&base).unwrap();
        let row = new_inst.constraint_row(ConstraintId::new(0));
        assert_eq!(row[0].agent.raw(), 0);
        assert_eq!(row[1].agent.raw(), 1);
        assert_eq!(row[1].coef, 7.5);
        assert_eq!(lineage.base, instance_hash(&base));
        assert_eq!(lineage.new, instance_hash(&new_inst));
        assert_ne!(lineage.new, lineage.base);
    }

    #[test]
    fn apply_rejects_wrong_base() {
        let base = sample();
        let mut d = set0(&base, 7.5);
        d.base ^= 1;
        assert!(matches!(
            d.apply(&base),
            Err(DeltaError::BaseMismatch { .. })
        ));
    }

    #[test]
    fn structural_edits_round_trip_through_apply() {
        let base = sample();
        let d = Delta {
            base: instance_hash(&base),
            edits: vec![
                Edit::AddAgent,
                Edit::AddRow {
                    row: RowKind::Constraint,
                    entries: vec![(AgentId::new(3), 1.25)],
                },
                Edit::AddRow {
                    row: RowKind::Objective,
                    entries: vec![(AgentId::new(3), 1.0)],
                },
                Edit::AddEdge {
                    row: RowKind::Constraint,
                    row_id: 2,
                    agent: AgentId::new(0),
                    coef: 0.5,
                },
            ],
        };
        let out = d.apply(&base).unwrap();
        assert_eq!(out.n_agents(), 4);
        assert_eq!(out.n_constraints(), 3);
        assert_eq!(out.n_objectives(), 3);
        let row = out.constraint_row(ConstraintId::new(2));
        assert_eq!(row.len(), 2);
        assert_eq!(row[1].agent.raw(), 0, "addedge appends as the last port");
    }

    #[test]
    fn remove_edits_validate_and_shift_ids() {
        let base = sample();
        // rmedge on a 1-entry row is refused.
        let d = Delta::single(
            instance_hash(&base),
            Edit::RemoveEdge {
                row: RowKind::Objective,
                row_id: 1,
                agent: AgentId::new(1),
            },
        );
        assert!(matches!(
            d.apply(&base),
            Err(DeltaError::WouldEmptyRow { .. })
        ));
        // rmagent requires isolation.
        let d = Delta::single(
            instance_hash(&base),
            Edit::RemoveAgent {
                agent: AgentId::new(1),
            },
        );
        assert!(matches!(
            d.apply(&base),
            Err(DeltaError::AgentNotIsolated { .. })
        ));
        // Detach agent 1 everywhere, then remove it: ids above shift.
        let d = Delta {
            base: instance_hash(&base),
            edits: vec![
                Edit::RemoveEdge {
                    row: RowKind::Constraint,
                    row_id: 0,
                    agent: AgentId::new(1),
                },
                Edit::RemoveEdge {
                    row: RowKind::Constraint,
                    row_id: 1,
                    agent: AgentId::new(1),
                },
                Edit::RemoveRow {
                    row: RowKind::Objective,
                    row_id: 1,
                },
                Edit::RemoveAgent {
                    agent: AgentId::new(1),
                },
            ],
        };
        let out = d.apply(&base).unwrap();
        assert_eq!(out.n_agents(), 2);
        assert_eq!(out.n_objectives(), 1);
        // Old agent 2 is now agent 1.
        assert_eq!(
            out.objective_row(crate::ids::ObjectiveId::new(0))[1]
                .agent
                .raw(),
            1
        );
    }

    #[test]
    fn zeroing_a_coefficient_is_rejected_as_set() {
        // The positivity domain is part of the model: zeroing is spelled
        // rmedge, exactly like the builder's coefficient check.
        let base = sample();
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                set0(&base, bad).apply(&base),
                Err(DeltaError::BadCoefficient { .. })
            ));
        }
    }

    type ErrorCheck = fn(&DeltaError) -> bool;

    #[test]
    fn unknown_targets_are_typed_errors() {
        let base = sample();
        let h = instance_hash(&base);
        let cases: Vec<(Edit, ErrorCheck)> = vec![
            (
                Edit::SetCoef {
                    row: RowKind::Constraint,
                    row_id: 9,
                    agent: AgentId::new(0),
                    coef: 1.0,
                },
                |e| matches!(e, DeltaError::UnknownRow { .. }),
            ),
            (
                Edit::SetCoef {
                    row: RowKind::Constraint,
                    row_id: 0,
                    agent: AgentId::new(2),
                    coef: 1.0,
                },
                |e| matches!(e, DeltaError::NoSuchEdge { .. }),
            ),
            (
                Edit::AddEdge {
                    row: RowKind::Constraint,
                    row_id: 0,
                    agent: AgentId::new(1),
                    coef: 1.0,
                },
                |e| matches!(e, DeltaError::DuplicateEdge { .. }),
            ),
            (
                Edit::AddEdge {
                    row: RowKind::Constraint,
                    row_id: 0,
                    agent: AgentId::new(7),
                    coef: 1.0,
                },
                |e| matches!(e, DeltaError::UnknownAgent { .. }),
            ),
            (
                Edit::RemoveAgent {
                    agent: AgentId::new(9),
                },
                |e| matches!(e, DeltaError::UnknownAgent { .. }),
            ),
        ];
        for (edit, check) in cases {
            let e = Delta::single(h, edit.clone()).apply(&base).unwrap_err();
            assert!(check(&e), "edit {edit:?} gave {e:?}");
        }
    }

    #[test]
    fn text_round_trips_bit_exactly() {
        let base = sample();
        let d = Delta {
            base: instance_hash(&base),
            edits: vec![
                Edit::SetCoef {
                    row: RowKind::Constraint,
                    row_id: 0,
                    agent: AgentId::new(1),
                    coef: 0.3333333333333333,
                },
                Edit::AddAgent,
                Edit::AddRow {
                    row: RowKind::Objective,
                    entries: vec![(AgentId::new(3), 1.0e-300)],
                },
                Edit::RemoveRow {
                    row: RowKind::Constraint,
                    row_id: 1,
                },
            ],
        };
        let text = d.to_text();
        let back = Delta::parse_text(&text).unwrap();
        assert_eq!(back, d);
        assert_eq!(back.to_text(), text, "canonical writer is a fixpoint");
        assert_eq!(back.delta_hash(), d.delta_hash());
    }

    #[test]
    fn text_parser_is_liberal_but_canonicalizes() {
        let base = sample();
        let d = set0(&base, 2.5);
        let noisy = d.to_text().replace('\n', "  # noise\r\n");
        let back = Delta::parse_text(&noisy).unwrap();
        assert_eq!(back, d);
        assert_eq!(back.delta_hash(), d.delta_hash());
    }

    #[test]
    fn text_parser_rejects_junk() {
        for bad in [
            "",
            "mmlpdelta 2\nbase 0000000000000000\n",
            "base 0000000000000000\n", // header missing
            "mmlpdelta 1\n",           // base missing
            "mmlpdelta 1\nbase xyz\n",
            "mmlpdelta 1\nbase 0000000000000000\nset q 0 0:1\n",
            "mmlpdelta 1\nbase 0000000000000000\nset c 0 0:bad\n",
            "mmlpdelta 1\nbase 0000000000000000\nset c 0 0:1 extra\n",
            "mmlpdelta 1\nbase 0000000000000000\naddrow c\n",
            "mmlpdelta 1\nbase 0000000000000000\nfrobnicate\n",
        ] {
            assert!(Delta::parse_text(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn binary_round_trips_every_edit_kind() {
        let d = Delta {
            base: 0xdead_beef_0011_2233,
            edits: vec![
                Edit::SetCoef {
                    row: RowKind::Constraint,
                    row_id: 3,
                    agent: AgentId::new(7),
                    coef: 1.5,
                },
                Edit::AddEdge {
                    row: RowKind::Objective,
                    row_id: 2,
                    agent: AgentId::new(4),
                    coef: 0.25,
                },
                Edit::RemoveEdge {
                    row: RowKind::Constraint,
                    row_id: 1,
                    agent: AgentId::new(0),
                },
                Edit::AddAgent,
                Edit::RemoveAgent {
                    agent: AgentId::new(5),
                },
                Edit::AddRow {
                    row: RowKind::Constraint,
                    entries: vec![(AgentId::new(0), 1.0), (AgentId::new(2), 2.0)],
                },
                Edit::RemoveRow {
                    row: RowKind::Objective,
                    row_id: 3,
                },
            ],
        };
        let bin = d.to_binary();
        assert_eq!(Delta::from_binary(&bin).unwrap(), d);
    }

    #[test]
    fn binary_rejects_corruption() {
        let d = Delta::single(7, Edit::AddAgent);
        let good = d.to_binary();
        assert!(Delta::from_binary(&good[..good.len() - 1]).is_err());
        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xff;
        assert!(Delta::from_binary(&bad_magic).is_err());
        let mut bad_op = good.clone();
        *bad_op.last_mut().unwrap() = 99;
        assert!(Delta::from_binary(&bad_op).is_err());
        let mut trailing = good;
        trailing.push(0);
        assert!(Delta::from_binary(&trailing).is_err());
    }

    #[test]
    fn delta_hash_tracks_content_and_order() {
        let base = sample();
        let h = instance_hash(&base);
        let a = Delta {
            base: h,
            edits: vec![
                Edit::AddAgent,
                Edit::RemoveRow {
                    row: RowKind::Constraint,
                    row_id: 0,
                },
            ],
        };
        let mut b = a.clone();
        b.edits.reverse();
        assert_ne!(a.delta_hash(), b.delta_hash(), "order is semantic");
        assert_eq!(a.delta_hash(), a.clone().delta_hash());
        let mut c = a.clone();
        c.base ^= 1;
        assert_ne!(a.delta_hash(), c.delta_hash(), "base is part of identity");
    }

    #[test]
    fn lineage_composes_across_revisions() {
        // base --d1--> r1 --d2--> r2: each lineage's `new` is the next's
        // `base`, and replaying the chain reproduces r2 exactly.
        let base = sample();
        let d1 = set0(&base, 4.0);
        let (r1, l1) = d1.apply_hashed(&base).unwrap();
        let d2 = Delta::single(
            l1.new,
            Edit::AddEdge {
                row: RowKind::Objective,
                row_id: 1,
                agent: AgentId::new(2),
                coef: 2.0,
            },
        );
        let (r2, l2) = d2.apply_hashed(&r1).unwrap();
        assert_eq!(l1.new, l2.base);
        let replayed = d2.apply(&d1.apply(&base).unwrap()).unwrap();
        assert_eq!(instance_hash(&replayed), l2.new);
        assert_eq!(
            crate::textfmt::write_instance(&replayed),
            crate::textfmt::write_instance(&r2)
        );
    }
}
