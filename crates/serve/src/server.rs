//! The long-running TCP service: an event-driven readiness front-end
//! over the vendored [`reactor`] crate, dispatch onto the bounded
//! worker pool, and graceful drain.
//!
//! Threading model:
//!
//! * a small fixed pool of **event loops** (`event_loops`, default 4;
//!   loop 0 runs on the thread that called [`Server::run`] and owns the
//!   nonblocking listener). Accepted connections are handed round-robin
//!   to a loop and stay there for life; each loop multiplexes its
//!   connections with `epoll` readiness, so ten thousand idle clients
//!   cost ten thousand fds, not ten thousand threads;
//! * `workers` **solver threads** behind a bounded queue
//!   (`mmlp_lab::pool::TaskPool`). A full queue surfaces as `ERR BUSY`
//!   on the wire — the 503 of this protocol — so load spikes degrade
//!   into fast rejections instead of unbounded memory growth.
//!
//! Each connection is an incremental state machine over the line
//! protocol: command lines (including the optional `TRACE` prefix) and
//! length-prefixed bodies are parsed from whatever bytes the last
//! readiness event delivered, so a request split at any byte boundary
//! parses identically to one arriving whole. Requests **pipeline**: a
//! client may write several commands back-to-back without waiting;
//! replies are queued per connection and written back strictly in
//! request order (`specs/PROTOCOL.md`). Cache hits and other cheap
//! commands complete inline on the event loop; only cold solves (and
//! `SLEEP`) consume a worker slot, completing back to their loop via a
//! completion inbox and an `eventfd` waker.
//!
//! **Shutdown.** `SHUTDOWN` flips a flag and wakes every loop. Loop 0
//! drops the listener; idle connections are closed; connections with
//! queued or in-flight requests are served until they drain; the pool
//! runs every accepted task; then [`Server::run`] returns a final
//! [`ServerSummary`]. In-flight work is never dropped.

use crate::delta::DeltaMode;
use crate::engine::{self, CacheKey, Engine, EngineError};
use crate::protocol::{parse_command, parse_trace_line, Command, ErrorCode, Op, Reply, Source};
use crate::stats::ServeMetrics;
use mmlp_instance::hash::hash_hex;
use mmlp_lab::pool::{Outcome, SubmitError, TaskPool, TaskPoolConfig};
use mmlp_obs::journal::{EV_BUSY, EV_CACHE, EV_DELTA, EV_SPAN, EV_STORE};
use mmlp_obs::span::ROOT_SPAN;
use mmlp_obs::{
    next_trace_id, Journal, JournalConfig, JournalRecord, SolveTrace, SpanRecorder, SpanRing,
    TraceRing,
};
use reactor::{Event, Events, Interest, Poll, Token, Waker};
use std::collections::{HashMap, VecDeque};
use std::io::{self, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Server configuration (see `maxmin-lp serve --help` for the CLI
/// surface over it).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (tests).
    pub addr: String,
    /// Solver worker threads.
    pub workers: usize,
    /// Bounded request-queue capacity (backpressure bound).
    pub queue_cap: usize,
    /// Result-cache budget in bytes.
    pub cache_bytes: u64,
    /// Instance-store budget in bytes.
    pub store_bytes: u64,
    /// Per-request solver timeout; `None` disables it.
    pub timeout: Option<Duration>,
    /// Maximum simultaneous client connections.
    pub max_connections: usize,
    /// Largest accepted `PUT`/`inline:` body, in bytes.
    pub max_body_bytes: usize,
    /// Event-loop threads multiplexing client connections (loop 0 runs
    /// on the caller of [`Server::run`]). Warm hits and protocol
    /// chatter are served here; more loops help only when those inline
    /// paths saturate a core (`specs/PERF.md`).
    pub event_loops: usize,
    /// When set, mount a persistent `mmlp-store` at this directory:
    /// `PUT` instances and solved results are appended to disk, and a
    /// restart warm-starts the caches from it (`specs/STORAGE.md`).
    pub store_dir: Option<std::path::PathBuf>,
    /// When set, mount the crash-safe event journal at this directory:
    /// span trees, cache evictions, BUSY rejections, delta resolutions
    /// and store reports are appended as checksummed records
    /// (`specs/OBSERVABILITY.md`), readable with `maxmin-lp obs
    /// journal` / `obs trace` even after a kill -9.
    pub journal_dir: Option<std::path::PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7979".into(),
            workers: 4,
            queue_cap: 256,
            cache_bytes: 64 << 20,
            store_bytes: 64 << 20,
            timeout: Some(Duration::from_secs(30)),
            max_connections: 256,
            max_body_bytes: 16 << 20,
            // One loop per core up to 4: on a single-core host extra
            // loop threads only add scheduler churn, and past a few
            // loops the worker pool is the bottleneck anyway.
            event_loops: std::thread::available_parallelism().map_or(1, |n| n.get().min(4)),
            store_dir: None,
            journal_dir: None,
        }
    }
}

/// Final counters returned by [`Server::run`] after the drain.
#[derive(Clone, Debug, Default)]
pub struct ServerSummary {
    /// Total commands served.
    pub requests: u64,
    /// Result-cache hits.
    pub cache_hits: u64,
    /// Result-cache misses (cold solves).
    pub cache_misses: u64,
    /// `BUSY` rejections.
    pub busy: u64,
    /// Non-`BUSY` error replies.
    pub errors: u64,
    /// Requests killed by the per-request timeout.
    pub timeouts: u64,
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// The slowest recent cold solves still held in the trace ring at
    /// shutdown, slowest first (render with
    /// [`mmlp_obs::render_timeline`]).
    pub slowest: Vec<SolveTrace>,
}

/// Cold solves the trace ring remembers (the `N` in "the N slowest
/// recent solves").
const TRACE_RING_CAP: usize = 64;
/// How many of those the final [`ServerSummary`] carries.
const SUMMARY_SLOWEST: usize = 8;
/// Finished request span trees kept in memory ([`SpanRing`]).
const SPAN_RING_CAP: usize = 256;
/// Without a client-supplied `TRACE` line, one request in this many is
/// traced server-side (the first request always is).
const TRACE_SAMPLE_EVERY: u64 = 64;

/// The waker's registration token on every loop.
const TOK_WAKER: usize = 0;
/// The listener's registration token (loop 0 only).
const TOK_LISTENER: usize = 1;
/// First token handed to an accepted connection.
const TOK_FIRST_CONN: usize = 2;

/// Bytes read from one connection per readiness event before yielding
/// to its loop-mates (level-triggered registrations re-fire while input
/// remains, so nothing is lost).
const READ_BUDGET_PER_EVENT: usize = 256 * 1024;
/// Unwritten reply bytes beyond which a connection stops being read
/// until the client drains its side (per-connection backpressure).
const WRITE_BACKLOG_PAUSE: usize = 1 << 20;

/// A stalled client may sit mid-command or mid-body forever; after
/// this much wall time without completing the read, the connection is
/// dropped so it cannot pin a connection slot indefinitely.
const STALLED_READ_DEADLINE: Duration = Duration::from_secs(30);

/// Cross-thread mailbox of one event loop: freshly accepted
/// connections handed over by the acceptor, and completions of pooled
/// work owned by this loop's connections.
#[derive(Default)]
struct Inbox {
    conns: Vec<TcpStream>,
    completions: Vec<Completion>,
}

/// A finished pooled task, routed back to the loop that owns the
/// connection so the reply lands in its pipeline slot.
struct Completion {
    token: usize,
    seq: u64,
    outcome: Outcome<Result<String, EngineError>>,
}

/// The shareable half of an event loop: anyone holding it can hand the
/// loop work and wake it out of `epoll_wait`.
struct LoopHandle {
    waker: Waker,
    inbox: Mutex<Inbox>,
}

struct Shared {
    engine: Engine,
    pool: TaskPool,
    metrics: ServeMetrics,
    ring: Arc<TraceRing>,
    spans: Arc<SpanRing>,
    journal: Option<Arc<Journal>>,
    trace_counter: AtomicU64,
    shutting_down: AtomicBool,
    live_connections: AtomicUsize,
    cfg: ServeConfig,
    started: Instant,
    /// Set once by [`Server::run`]; lets any connection (notably the
    /// one carrying `SHUTDOWN`) wake every loop.
    loops: OnceLock<Arc<Vec<Arc<LoopHandle>>>>,
}

/// A bound, not-yet-running server. Binding is separate from running
/// so callers (tests, the CLI) can learn the ephemeral port first.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener and spawns the worker pool. With a
    /// `store_dir` configured, this is also where the persistent store
    /// is opened (recovering any crash damage) and the caches are
    /// warm-started from it.
    pub fn bind(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let pool = TaskPool::new(TaskPoolConfig {
            workers: cfg.workers,
            queue_cap: cfg.queue_cap,
            timeout: cfg.timeout,
        });
        let mut store_note = None;
        let engine = match &cfg.store_dir {
            None => Engine::new(cfg.cache_bytes, cfg.store_bytes),
            Some(dir) => {
                let (store, report) = mmlp_store::Store::open(dir)?;
                store_note = Some(report.summary_line());
                Engine::with_store(cfg.cache_bytes, cfg.store_bytes, store)?
            }
        };
        let journal = match &cfg.journal_dir {
            None => None,
            Some(dir) => {
                let (j, _report) = Journal::open(JournalConfig::new(dir))?;
                Some(Arc::new(j))
            }
        };
        // The store's recovery outcome is itself an event worth keeping
        // across restarts: journal it at bind time.
        if let (Some(j), Some(note)) = (&journal, store_note) {
            j.emit(JournalRecord {
                kind: EV_STORE,
                trace_id: 0,
                text: note,
            });
        }
        let shared = Arc::new(Shared {
            engine,
            pool,
            metrics: ServeMetrics::new(),
            ring: Arc::new(TraceRing::new(TRACE_RING_CAP)),
            spans: Arc::new(SpanRing::new(SPAN_RING_CAP)),
            journal,
            trace_counter: AtomicU64::new(0),
            shutting_down: AtomicBool::new(false),
            live_connections: AtomicUsize::new(0),
            cfg,
            started: Instant::now(),
            loops: OnceLock::new(),
        });
        Ok(Server {
            listener,
            local_addr,
            shared,
        })
    }

    /// The actual bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Serves until a `SHUTDOWN` command arrives, then drains and
    /// returns the lifetime counters.
    pub fn run(self) -> std::io::Result<ServerSummary> {
        let Server {
            listener,
            local_addr: _,
            shared,
        } = self;
        listener.set_nonblocking(true)?;
        let n_loops = shared.cfg.event_loops.max(1);
        let mut polls = Vec::with_capacity(n_loops);
        let mut handles = Vec::with_capacity(n_loops);
        for _ in 0..n_loops {
            let poll = Poll::new()?;
            let waker = Waker::new(&poll, Token(TOK_WAKER))?;
            handles.push(Arc::new(LoopHandle {
                waker,
                inbox: Mutex::new(Inbox::default()),
            }));
            polls.push(poll);
        }
        let handles = Arc::new(handles);
        let _ = shared.loops.set(Arc::clone(&handles));

        let mut polls = polls.into_iter();
        let poll0 = polls.next().expect("at least one event loop");
        poll0.register(&listener, Token(TOK_LISTENER), Interest::READABLE)?;

        let mut joins = Vec::new();
        for (i, poll) in polls.enumerate() {
            let shared = Arc::clone(&shared);
            let handles = Arc::clone(&handles);
            joins.push(std::thread::spawn(move || {
                EventLoop::new(i + 1, poll, None, shared, handles).run()
            }));
        }
        let result = EventLoop::new(
            0,
            poll0,
            Some(listener),
            Arc::clone(&shared),
            Arc::clone(&handles),
        )
        .run();
        // Belt and braces: if loop 0 died on an epoll error rather than
        // a drain, make sure the sibling loops can still exit.
        shared.shutting_down.store(true, Ordering::SeqCst);
        wake_all(&shared);
        for j in joins {
            let _ = j.join();
        }
        result?;
        match Arc::try_unwrap(shared) {
            Ok(s) => {
                s.pool.shutdown(); // blocks until accepted work ran
                Ok(summary_of(&s.metrics, &s.ring))
            }
            Err(shared) => {
                // A straggler still holds the Arc (an abandoned
                // timed-out task); the pool drains when it drops.
                Ok(summary_of(&shared.metrics, &shared.ring))
            }
        }
    }
}

fn summary_of(m: &ServeMetrics, ring: &TraceRing) -> ServerSummary {
    ServerSummary {
        requests: m.requests.get(),
        cache_hits: m.cache_hits_total(),
        cache_misses: m.cache_misses_total(),
        busy: m.busy.get(),
        errors: m.errors.get(),
        timeouts: m.timeouts.get(),
        connections: m.connections.get(),
        slowest: ring.slowest(SUMMARY_SLOWEST),
    }
}

/// Wakes every event loop (shutdown broadcast).
fn wake_all(shared: &Shared) {
    if let Some(loops) = shared.loops.get() {
        for h in loops.iter() {
            let _ = h.waker.wake();
        }
    }
}

/// Longest accepted command line. Inline sources put the body *after*
/// the line, so lines are short; anything past this bound is a framing
/// error, not a slow sender.
fn line_limit(cfg: &ServeConfig) -> usize {
    cfg.max_body_bytes.max(64 * 1024)
}

/// Everything one request needs at finalisation time, captured when its
/// command line was parsed: the latency clock, trace identity, span
/// recorder, stats label and the raw line (for `EV_BUSY` journaling).
struct RequestCtx {
    started: Instant,
    trace_id: u64,
    span: Option<Arc<SpanRecorder>>,
    op_label: Option<&'static str>,
    line: String,
}

/// Where the connection's parser is between readiness events.
enum ParseState {
    /// Waiting for (the rest of) a command line.
    Line,
    /// A parsed command is waiting for `need` body bytes.
    Body {
        ctx: RequestCtx,
        cmd: Command,
        need: usize,
    },
}

/// One slot in a connection's in-order reply pipeline.
enum Slot {
    /// Framed wire bytes, ready to flush (once every slot ahead is).
    Ready(Vec<u8>),
    /// A pooled request still running; its completion is matched by
    /// `seq` and replaces the slot in place, preserving request order.
    Pending {
        seq: u64,
        ctx: RequestCtx,
        /// For `Run` requests: the result-cache key and op, so the
        /// completion can record hit/miss stats and insert the body.
        cache: Option<(CacheKey, Op)>,
    },
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    /// Unparsed input; `rpos` is the parse cursor (compacted after each
    /// processing pass).
    rbuf: Vec<u8>,
    rpos: usize,
    /// Framed, unwritten output; `wpos` is the write cursor.
    wbuf: Vec<u8>,
    wpos: usize,
    parse: ParseState,
    /// A `TRACE <hex>` prefix line applies to the next command on this
    /// connection (specs/PROTOCOL.md); it gets no reply of its own.
    pending_trace: Option<u64>,
    replies: VecDeque<Slot>,
    next_seq: u64,
    /// Stop reading; close once every queued reply is flushed.
    close_after_flush: bool,
    /// Drop the connection now, without a reply (unrecoverable input).
    hard_close: bool,
    peer_eof: bool,
    cur_interest: Interest,
    /// Set while a command is partially received; the loop closes the
    /// connection when it exceeds [`STALLED_READ_DEADLINE`].
    stall_since: Option<Instant>,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            rbuf: Vec::new(),
            rpos: 0,
            wbuf: Vec::new(),
            wpos: 0,
            parse: ParseState::Line,
            pending_trace: None,
            replies: VecDeque::new(),
            next_seq: 0,
            close_after_flush: false,
            hard_close: false,
            peer_eof: false,
            cur_interest: Interest::READABLE,
            stall_since: None,
        }
    }

    /// No queued replies and nothing buffered for the wire.
    fn output_drained(&self) -> bool {
        self.replies.is_empty() && self.wpos == self.wbuf.len()
    }
}

/// One event loop: an `epoll` instance, the connections registered with
/// it, and (on loop 0) the listener.
struct EventLoop {
    id: usize,
    poll: Poll,
    listener: Option<TcpListener>,
    shared: Arc<Shared>,
    loops: Arc<Vec<Arc<LoopHandle>>>,
    me: Arc<LoopHandle>,
    conns: HashMap<usize, Conn>,
    next_token: usize,
    accept_rr: usize,
}

impl EventLoop {
    fn new(
        id: usize,
        poll: Poll,
        listener: Option<TcpListener>,
        shared: Arc<Shared>,
        loops: Arc<Vec<Arc<LoopHandle>>>,
    ) -> EventLoop {
        let me = Arc::clone(&loops[id]);
        EventLoop {
            id,
            poll,
            listener,
            shared,
            loops,
            me,
            conns: HashMap::new(),
            next_token: TOK_FIRST_CONN,
            accept_rr: id,
        }
    }

    fn run(mut self) -> io::Result<()> {
        let mut events = Events::with_capacity(256);
        loop {
            if self.shared.shutting_down.load(Ordering::SeqCst)
                && self.conns.is_empty()
                && self.listener.is_none()
            {
                return Ok(());
            }
            self.poll.poll(&mut events, self.poll_timeout())?;
            // The batch is collected first: handling one event can
            // close a connection another event in the batch names.
            let batch: Vec<Event> = events.iter().collect();
            for ev in batch {
                self.handle_event(ev);
            }
            self.drain_inbox();
            self.sweep();
        }
    }

    /// Sleep until readiness — or until the earliest mid-command stall
    /// deadline, so [`sweep`](Self::sweep) can drop the staller.
    fn poll_timeout(&self) -> Option<Duration> {
        let now = Instant::now();
        self.conns
            .values()
            .filter_map(|c| c.stall_since)
            .map(|since| (since + STALLED_READ_DEADLINE).saturating_duration_since(now))
            .min()
    }

    fn handle_event(&mut self, ev: Event) {
        match ev.token().0 {
            TOK_WAKER => self.me.waker.drain(),
            TOK_LISTENER => self.accept_ready(),
            token => {
                let Some(conn) = self.conns.get_mut(&token) else {
                    return; // closed earlier in this batch
                };
                let mut dead = false;
                if ev.is_readable() {
                    match read_into(conn) {
                        Ok(()) => process_input(&self.shared, &self.me, token, conn),
                        Err(_) => dead = true,
                    }
                }
                if dead {
                    self.close_conn(token);
                } else {
                    self.service(token);
                }
            }
        }
    }

    /// Accepts every pending connection, applies the connection limit,
    /// and deals new connections round-robin across the loops.
    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    self.shared.metrics.connections.inc();
                    if self.shared.live_connections.load(Ordering::SeqCst)
                        >= self.shared.cfg.max_connections
                    {
                        self.shared.metrics.busy.inc();
                        let mut stream = stream;
                        let _ = stream.write_all(
                            Reply::Err(ErrorCode::Busy, "connection limit reached".into())
                                .to_wire()
                                .as_bytes(),
                        );
                        continue;
                    }
                    self.shared.live_connections.fetch_add(1, Ordering::SeqCst);
                    if stream.set_nonblocking(true).is_err() {
                        self.shared.live_connections.fetch_sub(1, Ordering::SeqCst);
                        continue;
                    }
                    stream.set_nodelay(true).ok();
                    let target = self.accept_rr % self.loops.len();
                    self.accept_rr = self.accept_rr.wrapping_add(1);
                    if target == self.id {
                        self.register_conn(stream);
                    } else {
                        let h = &self.loops[target];
                        h.inbox.lock().expect("loop inbox").conns.push(stream);
                        let _ = h.waker.wake();
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                // Transient (e.g. the peer aborted before accept); the
                // level-triggered listener re-fires if more are queued.
                Err(_) => return,
            }
        }
    }

    fn register_conn(&mut self, stream: TcpStream) {
        let token = self.next_token;
        self.next_token += 1;
        if self
            .poll
            .register(&stream, Token(token), Interest::READABLE)
            .is_err()
        {
            self.shared.live_connections.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        self.conns.insert(token, Conn::new(stream));
    }

    /// Hands the loop its cross-thread work: connections dealt by the
    /// acceptor and completions of pooled requests.
    fn drain_inbox(&mut self) {
        let (new_conns, completions) = {
            let mut ib = self.me.inbox.lock().expect("loop inbox");
            (
                std::mem::take(&mut ib.conns),
                std::mem::take(&mut ib.completions),
            )
        };
        for stream in new_conns {
            self.register_conn(stream);
        }
        for Completion {
            token,
            seq,
            outcome,
        } in completions
        {
            if let Some(conn) = self.conns.get_mut(&token) {
                apply_completion(&self.shared, conn, seq, outcome);
                self.service(token);
            }
            // else: the connection died while its request ran; the
            // result is dropped, exactly like a thread writing to a
            // closed socket would have been.
        }
    }

    /// Flushes what can be flushed, updates epoll interest, and closes
    /// the connection when it is finished (or broken).
    fn service(&mut self, token: usize) {
        let shutting_down = self.shared.shutting_down.load(Ordering::SeqCst);
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let dead = conn.hard_close
            || flush_conn(conn).is_err()
            || update_interest(&self.poll, token, conn).is_err();
        let drained = conn.output_drained();
        let idle_parse = matches!(conn.parse, ParseState::Line);
        let finished = conn.close_after_flush && drained;
        // EOF: every buffered command has been processed (the parser
        // runs to exhaustion), so an empty buffer means the
        // conversation is over once the replies are out.
        let eof_done = conn.peer_eof && drained && idle_parse && conn.rbuf.len() == conn.rpos;
        // Drain: an idle connection (half-received commands included —
        // they are not in-flight work) does not hold up shutdown.
        let drain_done = shutting_down && drained && idle_parse;
        if dead || finished || eof_done || drain_done {
            self.close_conn(token);
        }
    }

    /// Periodic pass: stalled-read deadlines, shutdown housekeeping.
    fn sweep(&mut self) {
        let shutting_down = self.shared.shutting_down.load(Ordering::SeqCst);
        if shutting_down {
            if let Some(listener) = self.listener.take() {
                let _ = self.poll.deregister(&listener);
            }
        }
        let now = Instant::now();
        let tokens: Vec<usize> = self.conns.keys().copied().collect();
        for token in tokens {
            let Some(conn) = self.conns.get_mut(&token) else {
                continue;
            };
            let stalled = conn
                .stall_since
                .is_some_and(|since| now.duration_since(since) > STALLED_READ_DEADLINE);
            let mid_body = matches!(conn.parse, ParseState::Body { .. });
            if mid_body && (shutting_down || stalled) {
                // The command already exists; it gets an error reply
                // (matching the old blocking read_body behaviour).
                let msg = if shutting_down {
                    "server draining during body read"
                } else {
                    "body read stalled"
                };
                let ParseState::Body { ctx, .. } =
                    std::mem::replace(&mut conn.parse, ParseState::Line)
                else {
                    unreachable!("mid_body checked above")
                };
                conn.stall_since = None;
                finalize_inline(
                    &self.shared,
                    conn,
                    ctx,
                    Reply::Err(ErrorCode::BadReq, format!("body read: {msg}")),
                    true,
                );
            } else if stalled {
                // Half a command line, then silence: drop it.
                self.close_conn(token);
                continue;
            }
            self.service(token);
        }
    }

    fn close_conn(&mut self, token: usize) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.poll.deregister(&conn.stream);
            self.shared.live_connections.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Pulls whatever the socket has (bounded per event) into the
/// connection's read buffer. `Err` means the connection is broken.
fn read_into(conn: &mut Conn) -> io::Result<()> {
    let mut budget = READ_BUDGET_PER_EVENT;
    let mut chunk = [0u8; 16 * 1024];
    while budget > 0 {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.peer_eof = true;
                return Ok(());
            }
            Ok(n) => {
                conn.rbuf.extend_from_slice(&chunk[..n]);
                budget = budget.saturating_sub(n);
                // A short read almost always means the socket is drained;
                // skip the WouldBlock round trip. If bytes do remain, the
                // level-triggered registration re-fires immediately.
                if n < chunk.len() {
                    return Ok(());
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(()),
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Runs the parser to exhaustion over the buffered input: every
/// complete command is dispatched (pipelining), a trailing partial
/// command is left buffered for the next readiness event, and the
/// stalled-read clock is armed exactly while such a partial exists.
fn process_input(shared: &Arc<Shared>, me: &Arc<LoopHandle>, token: usize, conn: &mut Conn) {
    loop {
        if conn.close_after_flush || conn.hard_close {
            break;
        }
        match &conn.parse {
            ParseState::Line => {
                let rest = &conn.rbuf[conn.rpos..];
                let (line_end, consumed) = match rest.iter().position(|&b| b == b'\n') {
                    Some(i) => (i, i + 1),
                    // A final unterminated line before EOF still parses
                    // (BufRead::read_line behaved the same way).
                    None if conn.peer_eof && !rest.is_empty() => (rest.len(), rest.len()),
                    None => {
                        if rest.len() > line_limit(&shared.cfg) {
                            // No command line is this long; the stream
                            // cannot be re-synchronised.
                            shared.metrics.requests.inc();
                            shared.metrics.errors.inc();
                            push_ready(
                                conn,
                                &Reply::Err(
                                    ErrorCode::BadReq,
                                    format!(
                                        "command line exceeds {} bytes",
                                        line_limit(&shared.cfg)
                                    ),
                                ),
                            );
                            conn.close_after_flush = true;
                        }
                        break;
                    }
                };
                let Ok(text) = std::str::from_utf8(&rest[..line_end]) else {
                    conn.hard_close = true; // not even a BADREQ can be framed reliably
                    break;
                };
                let line = text.trim_end_matches(['\n', '\r']).to_string();
                conn.rpos += consumed;
                handle_line(shared, me, token, conn, line);
            }
            ParseState::Body { need, .. } => {
                let need = *need;
                if conn.rbuf.len() - conn.rpos < need {
                    if conn.peer_eof {
                        let ParseState::Body { ctx, .. } =
                            std::mem::replace(&mut conn.parse, ParseState::Line)
                        else {
                            unreachable!("matched Body above")
                        };
                        finalize_inline(
                            shared,
                            conn,
                            ctx,
                            Reply::Err(
                                ErrorCode::BadReq,
                                "body read: connection closed mid-body".into(),
                            ),
                            true,
                        );
                    }
                    break;
                }
                let raw = conn.rbuf[conn.rpos..conn.rpos + need].to_vec();
                conn.rpos += need;
                let ParseState::Body { ctx, cmd, .. } =
                    std::mem::replace(&mut conn.parse, ParseState::Line)
                else {
                    unreachable!("matched Body above")
                };
                match String::from_utf8(raw) {
                    Ok(body) => execute_command(shared, me, token, conn, ctx, cmd, Some(body)),
                    Err(_) => finalize_inline(
                        shared,
                        conn,
                        ctx,
                        Reply::Err(ErrorCode::BadReq, "body is not UTF-8".into()),
                        false,
                    ),
                }
            }
        }
    }
    if conn.rpos > 0 {
        conn.rbuf.drain(..conn.rpos);
        conn.rpos = 0;
    }
    let mid_command = matches!(conn.parse, ParseState::Body { .. }) || !conn.rbuf.is_empty();
    if mid_command {
        conn.stall_since.get_or_insert_with(Instant::now);
    } else {
        conn.stall_since = None;
    }
}

/// One complete line: trace prefix, or command (inline, pooled, or
/// waiting on a body).
fn handle_line(
    shared: &Arc<Shared>,
    me: &Arc<LoopHandle>,
    token: usize,
    conn: &mut Conn,
    line: String,
) {
    if line.trim().is_empty() {
        return;
    }
    match parse_trace_line(&line) {
        Some(Ok(id)) => {
            conn.pending_trace = Some(id);
            return;
        }
        Some(Err(msg)) => {
            shared.metrics.requests.inc();
            shared.metrics.errors.inc();
            push_ready(conn, &Reply::Err(ErrorCode::BadReq, msg));
            return;
        }
        None => {}
    }
    let started = Instant::now();
    shared.metrics.requests.inc();
    let trace_id = conn
        .pending_trace
        .take()
        .unwrap_or_else(|| sample_trace_id(shared));
    let span = (trace_id != 0).then(|| Arc::new(SpanRecorder::new(trace_id, line.clone())));
    let parsed = parse_command(&line);
    let op_label = parsed.as_ref().ok().map(command_label);
    let ctx = RequestCtx {
        started,
        trace_id,
        span,
        op_label,
        line,
    };
    match parsed {
        Err(msg) => finalize_inline(shared, conn, ctx, Reply::Err(ErrorCode::BadReq, msg), false),
        Ok(cmd) => match cmd.body_len() {
            Some(nbytes) if nbytes > shared.cfg.max_body_bytes => {
                // Rejected without consuming the body: the stream is no
                // longer request-aligned, so close after the reply.
                finalize_inline(
                    shared,
                    conn,
                    ctx,
                    Reply::Err(
                        ErrorCode::BadReq,
                        format!(
                            "body of {nbytes} bytes exceeds the limit of {}",
                            shared.cfg.max_body_bytes
                        ),
                    ),
                    true,
                );
            }
            Some(nbytes) => {
                conn.parse = ParseState::Body {
                    ctx,
                    cmd,
                    need: nbytes,
                };
            }
            None => execute_command(shared, me, token, conn, ctx, cmd, None),
        },
    }
}

/// Executes one parsed command whose body (if any) has been read.
/// Cheap commands and cache hits finalise inline on the event loop;
/// solver work goes through the pool.
fn execute_command(
    shared: &Arc<Shared>,
    me: &Arc<LoopHandle>,
    token: usize,
    conn: &mut Conn,
    ctx: RequestCtx,
    cmd: Command,
    body: Option<String>,
) {
    match cmd {
        Command::Ping => finalize_inline(shared, conn, ctx, Reply::Ok("pong\n".into()), false),
        Command::Stats => {
            let body = render_stats(shared);
            finalize_inline(shared, conn, ctx, Reply::Ok(body), false)
        }
        Command::Metrics => {
            set_scrape_gauges(shared);
            let body = shared.metrics.render_prometheus();
            finalize_inline(shared, conn, ctx, Reply::Ok(body), false)
        }
        Command::Shutdown => {
            shared.shutting_down.store(true, Ordering::SeqCst);
            wake_all(shared);
            // One reply per SHUTDOWN, then stop reading from this
            // client; earlier pipelined replies still flush first.
            conn.close_after_flush = true;
            finalize_inline(shared, conn, ctx, Reply::Ok("bye\n".into()), false)
        }
        Command::Sleep { ms } => submit_pooled(shared, me, token, conn, ctx, None, move || {
            std::thread::sleep(Duration::from_millis(ms));
            Ok(format!("slept {ms}\n"))
        }),
        Command::Put { .. } => {
            let body = body.expect("PUT body read by the state machine");
            let reply = match shared.engine.put(&body) {
                Ok(h) => Reply::Ok(format!("hash {}\n", hash_hex(h))),
                Err((code, msg)) => Reply::Err(code, msg),
            };
            finalize_inline(shared, conn, ctx, reply, false)
        }
        Command::PutDelta { .. } => {
            let body = body.expect("PUT_DELTA body read by the state machine");
            let reply = match shared.engine.put_delta(&body) {
                Ok(lin) => {
                    shared.metrics.delta_puts.inc();
                    Reply::Ok(format!(
                        "base {}\ndelta {}\nnew {}\n",
                        hash_hex(lin.base),
                        hash_hex(lin.delta),
                        hash_hex(lin.new)
                    ))
                }
                Err((code, msg)) => Reply::Err(code, msg),
            };
            finalize_inline(shared, conn, ctx, reply, false)
        }
        Command::Run {
            op,
            src,
            big_r,
            threads,
        } => {
            // An untrusted client must not size the server's thread
            // usage: clamp THREADS to the worker count (results are
            // bit-identical across thread counts anyway).
            let threads = threads.min(shared.cfg.workers.max(1));
            if op == Op::SolveDelta {
                return solve_delta(shared, me, token, conn, ctx, src, big_r, threads, body);
            }
            let resolved = match src {
                Source::Hash(h) => shared.engine.fetch(h).map(|i| (h, i)),
                Source::Inline(_) => {
                    // Inline uploads land in the store too, so the
                    // result cache is shared across inline and hash
                    // requests for the same content.
                    let body = body.expect("inline body read by the state machine");
                    shared
                        .engine
                        .put(&body)
                        .and_then(|h| shared.engine.fetch(h).map(|i| (h, i)))
                }
            };
            let (hash, inst) = match resolved {
                Ok(v) => v,
                Err((code, msg)) => {
                    return finalize_inline(shared, conn, ctx, Reply::Err(code, msg), false)
                }
            };
            let key = CacheKey::new(hash, op, big_r, threads);
            let probe = Instant::now();
            if let Some(body) = shared.engine.cached(&key) {
                if let Some(rec) = &ctx.span {
                    rec.add(ROOT_SPAN, "cache:hit", probe, probe.elapsed());
                }
                shared.metrics.cache_hit(op);
                return finalize_inline(shared, conn, ctx, Reply::Ok(body.as_ref().clone()), false);
            }
            if let Some(rec) = &ctx.span {
                rec.add(ROOT_SPAN, "cache:miss", probe, probe.elapsed());
            }
            let metrics = shared.metrics.clone();
            let ring = Arc::clone(&shared.ring);
            let label = format!("{} {} R={big_r}", op.tag(), hash_hex(hash));
            let span_rec = ctx.span.clone();
            submit_pooled(shared, me, token, conn, ctx, Some((key, op)), move || {
                let (body, info) = engine::execute_traced(op, &inst, big_r, threads)
                    .map_err(|msg| (ErrorCode::Internal, msg))?;
                if let Some(i) = info {
                    metrics.observe_solve(&i);
                    let t = i.trace;
                    if let Some(rec) = &span_rec {
                        record_phase_spans(rec, &t);
                    }
                    ring.push(SolveTrace {
                        // A traced request keeps its wire trace id so
                        // the slowest-solves ring and `obs trace` agree
                        // on names.
                        trace_id: span_rec
                            .as_ref()
                            .map_or_else(next_trace_id, |rec| rec.trace_id()),
                        label,
                        total_ns: t.total_ns,
                        phases: vec![
                            ("gather".into(), t.gather_ns),
                            ("t_eval".into(), t.t_eval_ns),
                            ("flood".into(), t.flood_ns),
                            ("g".into(), t.g_ns),
                        ],
                    });
                }
                Ok(body)
            })
        }
    }
}

/// The `SOLVE_DELTA` half of the run path. `hash:` names a registered
/// revision; `inline:` carries a delta text body, registered exactly
/// like `PUT_DELTA` before solving — one round trip for the common
/// edit-then-resolve loop. The incremental solve itself runs on the
/// worker pool and is cached under `SOLVE_DELTA`'s own namespace, so a
/// repeat of the same revision is a hit without touching a solver.
#[allow(clippy::too_many_arguments)]
fn solve_delta(
    shared: &Arc<Shared>,
    me: &Arc<LoopHandle>,
    token: usize,
    conn: &mut Conn,
    ctx: RequestCtx,
    src: Source,
    big_r: usize,
    threads: usize,
    body: Option<String>,
) {
    let revision = match src {
        Source::Hash(h) => h,
        Source::Inline(_) => {
            let body = body.expect("inline delta body read by the state machine");
            match shared.engine.put_delta(&body) {
                Ok(lin) => {
                    shared.metrics.delta_puts.inc();
                    lin.new
                }
                Err((code, msg)) => {
                    return finalize_inline(shared, conn, ctx, Reply::Err(code, msg), false)
                }
            }
        }
    };
    let key = CacheKey::new(revision, Op::SolveDelta, big_r, threads);
    let probe = Instant::now();
    if let Some(body) = shared.engine.cached(&key) {
        if let Some(rec) = &ctx.span {
            rec.add(ROOT_SPAN, "cache:hit", probe, probe.elapsed());
        }
        shared.metrics.cache_hit(Op::SolveDelta);
        return finalize_inline(shared, conn, ctx, Reply::Ok(body.as_ref().clone()), false);
    }
    if let Some(rec) = &ctx.span {
        rec.add(ROOT_SPAN, "cache:miss", probe, probe.elapsed());
    }
    let metrics = shared.metrics.clone();
    let worker_shared = Arc::clone(shared);
    let span_rec = ctx.span.clone();
    submit_pooled(
        shared,
        me,
        token,
        conn,
        ctx,
        Some((key, Op::SolveDelta)),
        move || {
            let (body, info) = worker_shared.engine.solve_delta(revision, big_r, threads)?;
            metrics.observe_delta(&info);
            if let Some(rec) = &span_rec {
                // Zero-length marker naming the resolution path taken.
                rec.open(rec.anchor(), info.mode.tag());
            }
            // The lineage resolution is the delta workload's key event:
            // which path ran, and how local the dirty ball actually was.
            if let Some(j) = &worker_shared.journal {
                j.emit(JournalRecord {
                    kind: EV_DELTA,
                    trace_id: span_rec.as_ref().map_or(0, |rec| rec.trace_id()),
                    text: format!(
                        "delta {} revision={} replayed={} recomputed_x={} agents={} \
                         arena_added={} roots_reused={}",
                        info.mode.tag(),
                        hash_hex(revision),
                        info.replayed,
                        info.recomputed_x,
                        info.n_agents,
                        info.arena_added,
                        info.roots_reused
                    ),
                });
            }
            Ok(body)
        },
    )
}

/// Submits a closure to the worker pool and parks a [`Slot::Pending`]
/// in the connection's reply pipeline. This is where backpressure
/// (`BUSY`) and drain rejections become protocol-visible — and where
/// the queue-wait vs execute split is measured: the submit instant is
/// captured here, the pickup instant inside the task on its worker.
/// The closure returns typed [`EngineError`]s so pooled work can
/// surface precise codes (e.g. `NOBASE` from a delta solve), not just
/// `INTERNAL`. The completion is routed back to the owning loop's
/// inbox; timeouts and panics are mapped at that point.
fn submit_pooled<F>(
    shared: &Arc<Shared>,
    me: &Arc<LoopHandle>,
    token: usize,
    conn: &mut Conn,
    ctx: RequestCtx,
    cache: Option<(CacheKey, Op)>,
    f: F,
) where
    F: FnOnce() -> Result<String, EngineError> + Send + 'static,
{
    if shared.shutting_down.load(Ordering::SeqCst) {
        return finalize_inline(
            shared,
            conn,
            ctx,
            Reply::Err(ErrorCode::Shutdown, "server is draining".into()),
            false,
        );
    }
    let queue_wait = shared.metrics.queue_wait.clone();
    let execute = shared.metrics.execute.clone();
    let submitted = Instant::now();
    let span = ctx.span.clone();
    let task = move || {
        let picked_up = Instant::now();
        queue_wait.record(picked_up.duration_since(submitted).as_micros() as u64);
        // Traced requests get the same split as spans: `queue` from
        // submit to pickup, `execute` around the closure, with the
        // execute id published as the anchor so the closure can nest
        // solver-phase spans underneath it.
        let exec_id = span.as_ref().map(|rec| {
            rec.add(
                ROOT_SPAN,
                "queue",
                submitted,
                picked_up.duration_since(submitted),
            );
            let id = rec.open(ROOT_SPAN, "execute");
            rec.set_anchor(id);
            id
        });
        let result = f();
        if let (Some(rec), Some(id)) = (span.as_ref(), exec_id) {
            rec.close(id);
            rec.set_anchor(ROOT_SPAN);
        }
        execute.record(picked_up.elapsed().as_micros() as u64);
        result
    };
    let seq = conn.next_seq;
    conn.next_seq += 1;
    let loop_handle = Arc::clone(me);
    let complete = move |outcome| {
        {
            let mut ib = loop_handle.inbox.lock().expect("loop inbox");
            ib.completions.push(Completion {
                token,
                seq,
                outcome,
            });
        }
        let _ = loop_handle.waker.wake();
    };
    match shared.pool.submit_with(task, complete) {
        Ok(()) => conn.replies.push_back(Slot::Pending { seq, ctx, cache }),
        Err(SubmitError::Busy) => finalize_inline(
            shared,
            conn,
            ctx,
            Reply::Err(
                ErrorCode::Busy,
                format!("queue full ({} deep); retry", shared.cfg.queue_cap),
            ),
            false,
        ),
        Err(SubmitError::Closed) => finalize_inline(
            shared,
            conn,
            ctx,
            Reply::Err(ErrorCode::Shutdown, "server is draining".into()),
            false,
        ),
    }
}

/// Lands a pooled outcome in its pipeline slot: maps it onto the wire,
/// records hit/miss + cache-insert effects for `Run` requests, and
/// finalises metrics/spans, all while preserving reply order.
fn apply_completion(
    shared: &Shared,
    conn: &mut Conn,
    seq: u64,
    outcome: Outcome<Result<String, EngineError>>,
) {
    let Some(idx) = conn
        .replies
        .iter()
        .position(|s| matches!(s, Slot::Pending { seq: got, .. } if *got == seq))
    else {
        return;
    };
    let Slot::Pending { ctx, cache, .. } =
        std::mem::replace(&mut conn.replies[idx], Slot::Ready(Vec::new()))
    else {
        unreachable!("position matched a Pending slot")
    };
    let reply = match outcome {
        Outcome::Done(Ok(body)) => Reply::Ok(body),
        Outcome::Done(Err((code, msg))) => Reply::Err(code, msg),
        Outcome::Panicked(msg) => Reply::Err(ErrorCode::Panic, msg),
        Outcome::TimedOut => Reply::Err(
            ErrorCode::Timeout,
            format!(
                "request exceeded {} ms",
                shared.cfg.timeout.map_or(0, |d| d.as_millis())
            ),
        ),
    };
    if let Some((key, op)) = cache {
        // A miss is a solve that actually ran (or tried to): BUSY and
        // drain rejections never reached a worker, so they are neither
        // hits nor misses (those finalise before submission).
        if !matches!(reply, Reply::Err(ErrorCode::Busy | ErrorCode::Shutdown, _)) {
            shared.metrics.cache_miss(op);
        }
        if let Reply::Ok(body) = &reply {
            insert_cached(shared, key, body, ctx.span.as_ref());
        }
    }
    let bytes = finalize_record(shared, &ctx, &reply);
    conn.replies[idx] = Slot::Ready(bytes);
}

/// Books a finished request: error/busy/timeout classification, the
/// latency histograms, and the span tree (journaled and ringed). The
/// returned bytes are the framed wire reply.
fn finalize_record(shared: &Shared, ctx: &RequestCtx, reply: &Reply) -> Vec<u8> {
    match reply {
        Reply::Err(ErrorCode::Busy, msg) => {
            shared.metrics.busy.inc();
            if let Some(j) = &shared.journal {
                j.emit(JournalRecord {
                    kind: EV_BUSY,
                    trace_id: ctx.trace_id,
                    text: format!("busy: {}: {msg}", ctx.line),
                });
            }
        }
        Reply::Err(ErrorCode::Timeout, _) => {
            shared.metrics.timeouts.inc();
            shared.metrics.errors.inc();
        }
        Reply::Err(..) => shared.metrics.errors.inc(),
        Reply::Ok(_) => {}
    }
    // The request span, parse → reply framed: one lock-free record.
    // Traced requests stamp the latency exemplar too, so a slow
    // scrape bucket names a findable trace.
    let us = ctx.started.elapsed().as_micros() as u64;
    shared.metrics.latency.record_traced(us, ctx.trace_id);
    if let Some(label) = ctx.op_label {
        shared.metrics.observe_op_latency(label, us, ctx.trace_id);
    }
    if let Some(rec) = &ctx.span {
        let tree = rec.finish();
        if let Some(j) = &shared.journal {
            j.emit(JournalRecord {
                kind: EV_SPAN,
                trace_id: ctx.trace_id,
                text: tree.to_text(),
            });
        }
        shared.spans.push(tree);
    }
    reply.to_wire().into_bytes()
}

/// Finalises a request that completed on the event loop and queues its
/// framed reply; `close` marks the stream unsynchronised (the
/// connection closes once everything queued has flushed).
fn finalize_inline(shared: &Shared, conn: &mut Conn, ctx: RequestCtx, reply: Reply, close: bool) {
    let bytes = finalize_record(shared, &ctx, &reply);
    conn.replies.push_back(Slot::Ready(bytes));
    if close {
        conn.close_after_flush = true;
    }
}

/// Queues a reply that belongs to no request context (malformed TRACE
/// lines, oversize command lines): framed bytes only, no latency or
/// span bookkeeping — matching the historical behaviour.
fn push_ready(conn: &mut Conn, reply: &Reply) {
    conn.replies
        .push_back(Slot::Ready(reply.to_wire().into_bytes()));
}

/// Moves contiguous ready replies into the write buffer and writes as
/// much as the socket accepts. `Err` means the connection is broken.
fn flush_conn(conn: &mut Conn) -> io::Result<()> {
    while matches!(conn.replies.front(), Some(Slot::Ready(_))) {
        let Some(Slot::Ready(bytes)) = conn.replies.pop_front() else {
            unreachable!("front matched Ready")
        };
        if conn.wbuf.is_empty() {
            conn.wbuf = bytes;
        } else {
            conn.wbuf.extend_from_slice(&bytes);
        }
    }
    while conn.wpos < conn.wbuf.len() {
        match conn.stream.write(&conn.wbuf[conn.wpos..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    ErrorKind::WriteZero,
                    "peer stopped accepting",
                ))
            }
            Ok(n) => conn.wpos += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    if conn.wpos > 0 && conn.wpos == conn.wbuf.len() {
        conn.wbuf.clear();
        conn.wpos = 0;
    }
    Ok(())
}

/// Reconciles the connection's epoll interest with its state: read
/// while accepting input (and under the write-backlog pause), write
/// exactly while flushable bytes remain.
fn update_interest(poll: &Poll, token: usize, conn: &mut Conn) -> io::Result<()> {
    let backlog = conn.wbuf.len() - conn.wpos;
    let want_read = !conn.close_after_flush && !conn.peer_eof && backlog < WRITE_BACKLOG_PAUSE;
    let want_write = backlog > 0;
    let desired = match (want_read, want_write) {
        (true, true) => Interest::READABLE | Interest::WRITABLE,
        (true, false) => Interest::READABLE,
        (false, true) => Interest::WRITABLE,
        (false, false) => Interest::NONE,
    };
    if desired != conn.cur_interest {
        poll.reregister(&conn.stream, Token(token), desired)?;
        conn.cur_interest = desired;
    }
    Ok(())
}

/// The `op` label a parsed command's latency is recorded under (see
/// [`crate::stats::OP_LABELS`]).
fn command_label(cmd: &Command) -> &'static str {
    match cmd {
        Command::Ping => "ping",
        Command::Stats => "stats",
        Command::Metrics => "metrics",
        Command::Shutdown => "shutdown",
        Command::Sleep { .. } => "sleep",
        Command::Put { .. } => "put",
        Command::PutDelta { .. } => "put_delta",
        Command::Run { op, .. } => op.tag(),
    }
}

/// Server-side sampling for requests that carried no `TRACE` line:
/// every [`TRACE_SAMPLE_EVERY`]-th request gets a fresh trace id, the
/// rest stay untraced (id 0).
fn sample_trace_id(shared: &Shared) -> u64 {
    let n = shared.trace_counter.fetch_add(1, Ordering::Relaxed);
    if n.is_multiple_of(TRACE_SAMPLE_EVERY) {
        next_trace_id()
    } else {
        0
    }
}

/// Nests the solver's sequential phase spans under the recorder's
/// published anchor (the `execute` span). The phases just finished, so
/// their shared timeline ends "now"; offsets are reconstructed
/// backwards from their summed lengths.
fn record_phase_spans(rec: &SpanRecorder, t: &mmlp_core::distributed::FlatSolveTrace) {
    let phases = t.phase_spans();
    let total: u64 = phases.iter().map(|(_, ns)| *ns).sum();
    let now = Instant::now();
    let base = now.checked_sub(Duration::from_nanos(total)).unwrap_or(now);
    let parent = rec.anchor();
    let mut off = Duration::ZERO;
    for (name, ns) in phases {
        rec.add(parent, name, base + off, Duration::from_nanos(ns));
        off += Duration::from_nanos(ns);
    }
}

/// Inserts a reply body into the result cache under a `store` span and
/// journals any LRU evictions the insert caused.
fn insert_cached(shared: &Shared, key: CacheKey, body: &str, span: Option<&Arc<SpanRecorder>>) {
    let evictions_before = shared.engine.cache_stats().2;
    let t = Instant::now();
    shared.engine.insert(key, Arc::new(body.to_string()));
    if let Some(rec) = span {
        rec.add(ROOT_SPAN, "store", t, t.elapsed());
    }
    if let Some(j) = &shared.journal {
        let (entries, bytes, evictions_after) = shared.engine.cache_stats();
        if evictions_after > evictions_before {
            j.emit(JournalRecord {
                kind: EV_CACHE,
                trace_id: span.map_or(0, |rec| rec.trace_id()),
                text: format!(
                    "cache evicted {} result(s): entries={entries} bytes={bytes}",
                    evictions_after - evictions_before
                ),
            });
        }
    }
}

/// Refreshes the point-in-time gauges before a `METRICS` scrape.
/// Counters and histograms are live at all times; only these
/// snapshot-style values need a read at exposition.
fn set_scrape_gauges(shared: &Shared) {
    let m = &shared.metrics;
    m.uptime_ms.set(shared.started.elapsed().as_millis() as u64);
    m.queue_depth.set(shared.pool.queue_depth() as u64);
    m.in_flight.set(shared.pool.in_flight() as u64);
    m.connections_live
        .set(shared.live_connections.load(Ordering::SeqCst) as u64);
    let (cache_entries, cache_bytes, cache_evictions) = shared.engine.cache_stats();
    m.cache_entries.set(cache_entries as u64);
    m.cache_bytes.set(cache_bytes);
    m.cache_evictions.set(cache_evictions);
    m.set_cache_shard_evictions(&shared.engine.cache_shard_evictions());
    let (store_entries, store_bytes) = shared.engine.store_stats();
    m.store_entries.set(store_entries as u64);
    m.store_bytes.set(store_bytes);
}

/// The historical `STATS` key/value body, now read off the same
/// registry cells `METRICS` exposes. Keys and their order are stable —
/// scripts parse this.
fn render_stats(shared: &Shared) -> String {
    let m = &shared.metrics;
    let lat = m.latency.snapshot();
    let (cache_entries, cache_bytes, cache_evictions) = shared.engine.cache_stats();
    let (store_entries, store_bytes) = shared.engine.store_stats();
    let mut out = String::new();
    use std::fmt::Write as _;
    let _ = writeln!(out, "uptime_ms {}", shared.started.elapsed().as_millis());
    let _ = writeln!(out, "workers {}", shared.cfg.workers);
    let _ = writeln!(out, "queue_cap {}", shared.cfg.queue_cap);
    let _ = writeln!(out, "queue_depth {}", shared.pool.queue_depth());
    let _ = writeln!(out, "in_flight {}", shared.pool.in_flight());
    let _ = writeln!(
        out,
        "connections_live {}",
        shared.live_connections.load(Ordering::SeqCst)
    );
    let _ = writeln!(out, "connections_total {}", m.connections.get());
    let _ = writeln!(out, "requests {}", m.requests.get());
    let _ = writeln!(out, "cache_hits {}", m.cache_hits_total());
    let _ = writeln!(out, "cache_misses {}", m.cache_misses_total());
    let _ = writeln!(out, "busy {}", m.busy.get());
    let _ = writeln!(out, "errors {}", m.errors.get());
    let _ = writeln!(out, "timeouts {}", m.timeouts.get());
    let _ = writeln!(out, "cache_entries {cache_entries}");
    let _ = writeln!(out, "cache_bytes {cache_bytes}");
    let _ = writeln!(out, "cache_evictions {cache_evictions}");
    let _ = writeln!(out, "store_entries {store_entries}");
    let _ = writeln!(out, "store_bytes {store_bytes}");
    let _ = writeln!(
        out,
        "persist_enabled {}",
        u8::from(shared.engine.is_persistent())
    );
    let warm = shared.engine.warm_start();
    let _ = writeln!(out, "warm_instances {}", warm.instances);
    let _ = writeln!(out, "warm_results {}", warm.results);
    let _ = writeln!(out, "persist_errors {}", shared.engine.persist_errors());
    // View-arena dedup aggregates over the flat-path cold solves.
    let _ = writeln!(out, "flat_solves {}", m.flat_solves.get());
    let _ = writeln!(out, "view_interned_nodes {}", m.interned_nodes.get());
    let _ = writeln!(out, "view_logical_bytes {}", m.logical_bytes.get());
    let _ = writeln!(out, "view_arena_bytes {}", m.arena_bytes.get());
    let _ = writeln!(out, "view_peak_arena_bytes {}", m.peak_arena_bytes.get());
    let _ = writeln!(out, "view_dedup_ratio {:.3}", m.dedup_ratio());
    let _ = writeln!(out, "latency_samples {}", lat.total());
    let _ = writeln!(out, "latency_mean_us {}", lat.mean_us());
    let _ = writeln!(out, "p50_us {}", lat.percentile(0.50));
    let _ = writeln!(out, "p95_us {}", lat.percentile(0.95));
    let _ = writeln!(out, "p99_us {}", lat.percentile(0.99));
    let _ = writeln!(out, "max_us {}", lat.max_us());
    // Span accounting over pooled tasks (new keys; appended so older
    // parsers keep working).
    let _ = writeln!(
        out,
        "queue_wait_p95_us {}",
        m.queue_wait.snapshot().percentile(0.95)
    );
    let _ = writeln!(
        out,
        "execute_p95_us {}",
        m.execute.snapshot().percentile(0.95)
    );
    let _ = writeln!(out, "traces_recorded {}", shared.ring.recorded());
    // The delta workload surface (appended keys, older parsers keep
    // working).
    let (lineage_entries, delta_solvers, delta_solver_bytes) = shared.engine.delta_stats();
    let _ = writeln!(out, "delta_puts {}", m.delta_puts.get());
    let _ = writeln!(out, "delta_solves_warm {}", m.delta_solves(DeltaMode::Warm));
    let _ = writeln!(
        out,
        "delta_solves_advanced {}",
        m.delta_solves(DeltaMode::Advanced)
    );
    let _ = writeln!(
        out,
        "delta_solves_booted {}",
        m.delta_solves(DeltaMode::Booted)
    );
    let _ = writeln!(out, "delta_replayed {}", m.delta_replayed.get());
    let _ = writeln!(out, "delta_recomputed_x {}", m.delta_recomputed_x.get());
    let _ = writeln!(out, "delta_agents {}", m.delta_agents.get());
    let _ = writeln!(out, "delta_arena_added {}", m.delta_arena_added.get());
    let _ = writeln!(out, "delta_roots_reused {}", m.delta_roots_reused.get());
    let _ = writeln!(out, "lineage_entries {lineage_entries}");
    let _ = writeln!(out, "delta_solvers {delta_solvers}");
    let _ = writeln!(out, "delta_solver_bytes {delta_solver_bytes}");
    let _ = writeln!(out, "warm_lineage {}", warm.lineage);
    // Tracing + journal surface (appended keys, older parsers keep
    // working). STATS is rare enough to afford a journal flush, which
    // makes `journal_records` deterministic for scripts and tests.
    if let Some(j) = &shared.journal {
        j.flush();
    }
    let (journal_records, journal_dropped) = shared
        .journal
        .as_ref()
        .map_or((0, 0), |j| (j.appended(), j.dropped()));
    let _ = writeln!(out, "spans_recorded {}", shared.spans.recorded());
    let _ = writeln!(out, "journal_records {journal_records}");
    let _ = writeln!(out, "journal_dropped {journal_dropped}");
    // The mutating-loadgen SLO reads these: server-side SOLVE_DELTA
    // latency quantiles, end-to-end per op.
    let delta_lat = m
        .op_latency_snapshot("solve_delta")
        .expect("solve_delta is a registered op label");
    let _ = writeln!(out, "delta_latency_p50_us {}", delta_lat.percentile(0.50));
    let _ = writeln!(out, "delta_latency_p95_us {}", delta_lat.percentile(0.95));
    let _ = writeln!(out, "delta_latency_p99_us {}", delta_lat.percentile(0.99));
    out
}
