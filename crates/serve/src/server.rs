//! The long-running TCP service: accept loop, per-connection handler
//! threads, dispatch onto the bounded worker pool, and graceful drain.
//!
//! Threading model:
//!
//! * one **acceptor** (the thread that called [`Server::run`]);
//! * one **connection thread** per live client, bounded by
//!   `max_connections` (beyond it, connections get one `ERR BUSY` and
//!   are closed);
//! * `workers` **solver threads** behind a bounded queue
//!   (`mmlp_lab::pool::TaskPool`). A full queue surfaces as `ERR BUSY`
//!   on the wire — the 503 of this protocol — so load spikes degrade
//!   into fast rejections instead of unbounded memory growth.
//!
//! Cache hits bypass the pool entirely and are served on the
//! connection thread; only cold solves consume a worker slot.
//!
//! **Shutdown.** `SHUTDOWN` flips a flag and pokes the acceptor with a
//! loopback connection. The acceptor stops accepting; connection
//! threads notice the flag at their next read-poll tick (reads use a
//! short `SO_RCVTIMEO`), finish the request in flight, and exit; the
//! pool drains every accepted task; then [`Server::run`] returns a
//! final [`ServerSummary`]. In-flight work is never dropped.

use crate::delta::DeltaMode;
use crate::engine::{self, CacheKey, Engine, EngineError};
use crate::protocol::{parse_command, parse_trace_line, Command, ErrorCode, Op, Reply, Source};
use crate::stats::ServeMetrics;
use mmlp_instance::hash::hash_hex;
use mmlp_lab::pool::{Outcome, SubmitError, TaskPool, TaskPoolConfig};
use mmlp_obs::journal::{EV_BUSY, EV_CACHE, EV_DELTA, EV_SPAN, EV_STORE};
use mmlp_obs::span::ROOT_SPAN;
use mmlp_obs::{
    next_trace_id, Journal, JournalConfig, JournalRecord, SolveTrace, SpanRecorder, SpanRing,
    TraceRing,
};
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Server configuration (see `maxmin-lp serve --help` for the CLI
/// surface over it).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (tests).
    pub addr: String,
    /// Solver worker threads.
    pub workers: usize,
    /// Bounded request-queue capacity (backpressure bound).
    pub queue_cap: usize,
    /// Result-cache budget in bytes.
    pub cache_bytes: u64,
    /// Instance-store budget in bytes.
    pub store_bytes: u64,
    /// Per-request solver timeout; `None` disables it.
    pub timeout: Option<Duration>,
    /// Maximum simultaneous client connections.
    pub max_connections: usize,
    /// Largest accepted `PUT`/`inline:` body, in bytes.
    pub max_body_bytes: usize,
    /// When set, mount a persistent `mmlp-store` at this directory:
    /// `PUT` instances and solved results are appended to disk, and a
    /// restart warm-starts the caches from it (`specs/STORAGE.md`).
    pub store_dir: Option<std::path::PathBuf>,
    /// When set, mount the crash-safe event journal at this directory:
    /// span trees, cache evictions, BUSY rejections, delta resolutions
    /// and store reports are appended as checksummed records
    /// (`specs/OBSERVABILITY.md`), readable with `maxmin-lp obs
    /// journal` / `obs trace` even after a kill -9.
    pub journal_dir: Option<std::path::PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7979".into(),
            workers: 4,
            queue_cap: 256,
            cache_bytes: 64 << 20,
            store_bytes: 64 << 20,
            timeout: Some(Duration::from_secs(30)),
            max_connections: 256,
            max_body_bytes: 16 << 20,
            store_dir: None,
            journal_dir: None,
        }
    }
}

/// Final counters returned by [`Server::run`] after the drain.
#[derive(Clone, Debug, Default)]
pub struct ServerSummary {
    /// Total commands served.
    pub requests: u64,
    /// Result-cache hits.
    pub cache_hits: u64,
    /// Result-cache misses (cold solves).
    pub cache_misses: u64,
    /// `BUSY` rejections.
    pub busy: u64,
    /// Non-`BUSY` error replies.
    pub errors: u64,
    /// Requests killed by the per-request timeout.
    pub timeouts: u64,
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// The slowest recent cold solves still held in the trace ring at
    /// shutdown, slowest first (render with
    /// [`mmlp_obs::render_timeline`]).
    pub slowest: Vec<SolveTrace>,
}

/// Cold solves the trace ring remembers (the `N` in "the N slowest
/// recent solves").
const TRACE_RING_CAP: usize = 64;
/// How many of those the final [`ServerSummary`] carries.
const SUMMARY_SLOWEST: usize = 8;
/// Finished request span trees kept in memory ([`SpanRing`]).
const SPAN_RING_CAP: usize = 256;
/// Without a client-supplied `TRACE` line, one request in this many is
/// traced server-side (the first request always is).
const TRACE_SAMPLE_EVERY: u64 = 64;

struct Shared {
    engine: Engine,
    pool: TaskPool,
    metrics: ServeMetrics,
    ring: Arc<TraceRing>,
    spans: Arc<SpanRing>,
    journal: Option<Arc<Journal>>,
    trace_counter: AtomicU64,
    shutting_down: AtomicBool,
    live_connections: AtomicUsize,
    cfg: ServeConfig,
    local_addr: SocketAddr,
    started: Instant,
}

/// A bound, not-yet-running server. Binding is separate from running
/// so callers (tests, the CLI) can learn the ephemeral port first.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    shared: Arc<Shared>,
}

/// How often idle connection threads and the acceptor re-check the
/// shutdown flag.
const POLL_TICK: Duration = Duration::from_millis(100);

impl Server {
    /// Binds the listener and spawns the worker pool. With a
    /// `store_dir` configured, this is also where the persistent store
    /// is opened (recovering any crash damage) and the caches are
    /// warm-started from it.
    pub fn bind(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let pool = TaskPool::new(TaskPoolConfig {
            workers: cfg.workers,
            queue_cap: cfg.queue_cap,
            timeout: cfg.timeout,
        });
        let mut store_note = None;
        let engine = match &cfg.store_dir {
            None => Engine::new(cfg.cache_bytes, cfg.store_bytes),
            Some(dir) => {
                let (store, report) = mmlp_store::Store::open(dir)?;
                store_note = Some(report.summary_line());
                Engine::with_store(cfg.cache_bytes, cfg.store_bytes, store)?
            }
        };
        let journal = match &cfg.journal_dir {
            None => None,
            Some(dir) => {
                let (j, _report) = Journal::open(JournalConfig::new(dir))?;
                Some(Arc::new(j))
            }
        };
        // The store's recovery outcome is itself an event worth keeping
        // across restarts: journal it at bind time.
        if let (Some(j), Some(note)) = (&journal, store_note) {
            j.emit(JournalRecord {
                kind: EV_STORE,
                trace_id: 0,
                text: note,
            });
        }
        let shared = Arc::new(Shared {
            engine,
            pool,
            metrics: ServeMetrics::new(),
            ring: Arc::new(TraceRing::new(TRACE_RING_CAP)),
            spans: Arc::new(SpanRing::new(SPAN_RING_CAP)),
            journal,
            trace_counter: AtomicU64::new(0),
            shutting_down: AtomicBool::new(false),
            live_connections: AtomicUsize::new(0),
            cfg,
            local_addr,
            started: Instant::now(),
        });
        Ok(Server {
            listener,
            local_addr,
            shared,
        })
    }

    /// The actual bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Serves until a `SHUTDOWN` command arrives, then drains and
    /// returns the lifetime counters.
    pub fn run(self) -> std::io::Result<ServerSummary> {
        let Server {
            listener,
            local_addr: _,
            shared,
        } = self;
        let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
        for conn in listener.incoming() {
            if shared.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                Err(_) => continue,
            };
            // Reap finished connection threads so the handle list stays
            // proportional to *live* connections, not lifetime ones.
            handles.retain(|h| !h.is_finished());
            shared.metrics.connections.inc();
            if shared.live_connections.load(Ordering::SeqCst) >= shared.cfg.max_connections {
                shared.metrics.busy.inc();
                let mut stream = stream;
                let _ = stream.write_all(
                    Reply::Err(ErrorCode::Busy, "connection limit reached".into())
                        .to_wire()
                        .as_bytes(),
                );
                continue;
            }
            shared.live_connections.fetch_add(1, Ordering::SeqCst);
            let conn_shared = Arc::clone(&shared);
            handles.push(std::thread::spawn(move || {
                let _ = handle_connection(stream, &conn_shared);
                conn_shared.live_connections.fetch_sub(1, Ordering::SeqCst);
            }));
        }
        drop(listener);
        // Drain: connection threads first (they may still submit their
        // request in flight), then the pool (runs everything accepted).
        for h in handles {
            let _ = h.join();
        }
        match Arc::try_unwrap(shared) {
            Ok(s) => {
                s.pool.shutdown(); // blocks until accepted work ran
                Ok(summary_of(&s.metrics, &s.ring))
            }
            Err(shared) => {
                // A straggler still holds the Arc (should not happen
                // after the joins); the pool drains when it drops.
                Ok(summary_of(&shared.metrics, &shared.ring))
            }
        }
    }
}

fn summary_of(m: &ServeMetrics, ring: &TraceRing) -> ServerSummary {
    ServerSummary {
        requests: m.requests.get(),
        cache_hits: m.cache_hits_total(),
        cache_misses: m.cache_misses_total(),
        busy: m.busy.get(),
        errors: m.errors.get(),
        timeouts: m.timeouts.get(),
        connections: m.connections.get(),
        slowest: ring.slowest(SUMMARY_SLOWEST),
    }
}

/// A stalled client may sit mid-command or mid-body forever; after
/// this much wall time without completing the read, the connection is
/// dropped so it cannot pin a connection slot indefinitely.
const STALLED_READ_DEADLINE: Duration = Duration::from_secs(30);

/// Reads one command line, tolerating the read-timeout poll. Returns
/// `Ok(None)` on clean EOF, when shutdown interrupts the wait (a
/// half-received command is not in-flight work — dropping it keeps the
/// drain bounded), or when a mid-line read stalls past the deadline.
fn read_command_line(
    reader: &mut BufReader<TcpStream>,
    shared: &Shared,
) -> std::io::Result<Option<String>> {
    let mut line = String::new();
    let mut stalled_since: Option<Instant> = None;
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(None),
            Ok(_) => {
                let trimmed = line.trim_end_matches(['\n', '\r']).to_string();
                return Ok(Some(trimmed));
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                // Mid-line bytes stay buffered in `line`.
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return Ok(None);
                }
                if !line.is_empty() {
                    let since = *stalled_since.get_or_insert_with(Instant::now);
                    if since.elapsed() > STALLED_READ_DEADLINE {
                        return Ok(None); // half a command, then silence
                    }
                } else {
                    stalled_since = None; // idle between requests is fine
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// Reads exactly `n` body bytes, tolerating the read-timeout poll but
/// bailing on shutdown or a stalled sender (see
/// [`STALLED_READ_DEADLINE`]).
fn read_body(
    reader: &mut BufReader<TcpStream>,
    n: usize,
    shared: &Shared,
) -> std::io::Result<Vec<u8>> {
    let mut buf = vec![0u8; n];
    let mut filled = 0;
    let started = Instant::now();
    while filled < n {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "connection closed mid-body",
                ))
            }
            Ok(k) => filled += k,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return Err(std::io::Error::new(
                        ErrorKind::TimedOut,
                        "server draining during body read",
                    ));
                }
                if started.elapsed() > STALLED_READ_DEADLINE {
                    return Err(std::io::Error::new(
                        ErrorKind::TimedOut,
                        "body read stalled",
                    ));
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(buf)
}

/// The `op` label a parsed command's latency is recorded under (see
/// [`crate::stats::OP_LABELS`]).
fn command_label(cmd: &Command) -> &'static str {
    match cmd {
        Command::Ping => "ping",
        Command::Stats => "stats",
        Command::Metrics => "metrics",
        Command::Shutdown => "shutdown",
        Command::Sleep { .. } => "sleep",
        Command::Put { .. } => "put",
        Command::PutDelta { .. } => "put_delta",
        Command::Run { op, .. } => op.tag(),
    }
}

/// Server-side sampling for requests that carried no `TRACE` line:
/// every [`TRACE_SAMPLE_EVERY`]-th request gets a fresh trace id, the
/// rest stay untraced (id 0).
fn sample_trace_id(shared: &Shared) -> u64 {
    let n = shared.trace_counter.fetch_add(1, Ordering::Relaxed);
    if n.is_multiple_of(TRACE_SAMPLE_EVERY) {
        next_trace_id()
    } else {
        0
    }
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) -> std::io::Result<()> {
    stream.set_read_timeout(Some(POLL_TICK))?;
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    // A `TRACE <hex>` prefix line applies to the next command on this
    // connection (specs/PROTOCOL.md); it gets no reply of its own.
    let mut pending_trace: Option<u64> = None;

    loop {
        let Some(line) = read_command_line(&mut reader, shared)? else {
            return Ok(()); // EOF or idle at shutdown
        };
        if line.trim().is_empty() {
            continue;
        }
        match parse_trace_line(&line) {
            Some(Ok(id)) => {
                pending_trace = Some(id);
                continue;
            }
            Some(Err(msg)) => {
                shared.metrics.requests.inc();
                shared.metrics.errors.inc();
                writer.write_all(Reply::Err(ErrorCode::BadReq, msg).to_wire().as_bytes())?;
                writer.flush()?;
                continue;
            }
            None => {}
        }
        let started = Instant::now();
        shared.metrics.requests.inc();
        let trace_id = pending_trace
            .take()
            .unwrap_or_else(|| sample_trace_id(shared));
        let span = (trace_id != 0).then(|| Arc::new(SpanRecorder::new(trace_id, line.clone())));
        let parsed = parse_command(&line);
        let op_label = parsed.as_ref().ok().map(command_label);
        let is_shutdown = matches!(parsed, Ok(Command::Shutdown));
        let (reply, close_after) = match parsed {
            Err(msg) => (Reply::Err(ErrorCode::BadReq, msg), false),
            Ok(cmd) => dispatch(cmd, &mut reader, shared, span.as_ref()),
        };
        match &reply {
            Reply::Err(ErrorCode::Busy, msg) => {
                shared.metrics.busy.inc();
                if let Some(j) = &shared.journal {
                    j.emit(JournalRecord {
                        kind: EV_BUSY,
                        trace_id,
                        text: format!("busy: {line}: {msg}"),
                    });
                }
            }
            Reply::Err(ErrorCode::Timeout, _) => {
                shared.metrics.timeouts.inc();
                shared.metrics.errors.inc();
            }
            Reply::Err(..) => shared.metrics.errors.inc(),
            Reply::Ok(_) => {}
        }
        // The request span, parse → reply framed: one lock-free record.
        // Traced requests stamp the latency exemplar too, so a slow
        // scrape bucket names a findable trace.
        let us = started.elapsed().as_micros() as u64;
        shared.metrics.latency.record_traced(us, trace_id);
        if let Some(label) = op_label {
            shared.metrics.observe_op_latency(label, us, trace_id);
        }
        if let Some(rec) = &span {
            let tree = rec.finish();
            if let Some(j) = &shared.journal {
                j.emit(JournalRecord {
                    kind: EV_SPAN,
                    trace_id,
                    text: tree.to_text(),
                });
            }
            shared.spans.push(tree);
        }
        writer.write_all(reply.to_wire().as_bytes())?;
        writer.flush()?;
        // One reply per SHUTDOWN, then stop reading from this client;
        // likewise when the request left the stream unsynchronised.
        if is_shutdown || close_after {
            return Ok(());
        }
    }
}

/// Executes one parsed command. Body reads happen here (they belong to
/// the command), solver work goes through the pool. The second element
/// is `true` when the connection must be closed afterwards because the
/// stream can no longer be trusted to be request-aligned.
fn dispatch(
    cmd: Command,
    reader: &mut BufReader<TcpStream>,
    shared: &Arc<Shared>,
    span: Option<&Arc<SpanRecorder>>,
) -> (Reply, bool) {
    match cmd {
        Command::Ping => (Reply::Ok("pong\n".into()), false),
        Command::Stats => (Reply::Ok(render_stats(shared)), false),
        Command::Metrics => {
            set_scrape_gauges(shared);
            (Reply::Ok(shared.metrics.render_prometheus()), false)
        }
        Command::Shutdown => {
            shared.shutting_down.store(true, Ordering::SeqCst);
            // Poke the acceptor out of `accept()`. A wildcard bind
            // (0.0.0.0 / ::) is not connectable everywhere, so aim the
            // poke at loopback on the bound port.
            let mut poke = shared.local_addr;
            if poke.ip().is_unspecified() {
                poke.set_ip(match poke {
                    SocketAddr::V4(_) => std::net::Ipv4Addr::LOCALHOST.into(),
                    SocketAddr::V6(_) => std::net::Ipv6Addr::LOCALHOST.into(),
                });
            }
            drop(TcpStream::connect(poke));
            (Reply::Ok("bye\n".into()), false)
        }
        Command::Sleep { ms } => (
            run_pooled(shared, span.cloned(), move || {
                std::thread::sleep(Duration::from_millis(ms));
                Ok(format!("slept {ms}\n"))
            }),
            false,
        ),
        Command::Put { nbytes } => {
            let body = match checked_body(reader, nbytes, shared) {
                Ok(b) => b,
                Err(fatal) => return fatal,
            };
            match shared.engine.put(&body) {
                Ok(h) => (Reply::Ok(format!("hash {}\n", hash_hex(h))), false),
                Err((code, msg)) => (Reply::Err(code, msg), false),
            }
        }
        Command::PutDelta { nbytes } => {
            let body = match checked_body(reader, nbytes, shared) {
                Ok(b) => b,
                Err(fatal) => return fatal,
            };
            match shared.engine.put_delta(&body) {
                Ok(lin) => {
                    shared.metrics.delta_puts.inc();
                    (
                        Reply::Ok(format!(
                            "base {}\ndelta {}\nnew {}\n",
                            hash_hex(lin.base),
                            hash_hex(lin.delta),
                            hash_hex(lin.new)
                        )),
                        false,
                    )
                }
                Err((code, msg)) => (Reply::Err(code, msg), false),
            }
        }
        Command::Run {
            op,
            src,
            big_r,
            threads,
        } => {
            // An untrusted client must not size the server's thread
            // usage: clamp THREADS to the worker count (results are
            // bit-identical across thread counts anyway).
            let threads = threads.min(shared.cfg.workers.max(1));
            if op == Op::SolveDelta {
                return solve_delta(src, big_r, threads, reader, shared, span);
            }
            let (hash, inst) = match src {
                Source::Hash(h) => match shared.engine.fetch(h) {
                    Ok(i) => (h, i),
                    Err((code, msg)) => return (Reply::Err(code, msg), false),
                },
                Source::Inline(nbytes) => {
                    let body = match checked_body(reader, nbytes, shared) {
                        Ok(b) => b,
                        Err(fatal) => return fatal,
                    };
                    // Inline uploads land in the store too, so the
                    // result cache is shared across inline and hash
                    // requests for the same content.
                    match shared.engine.put(&body) {
                        Ok(h) => match shared.engine.fetch(h) {
                            Ok(i) => (h, i),
                            Err((code, msg)) => return (Reply::Err(code, msg), false),
                        },
                        Err((code, msg)) => return (Reply::Err(code, msg), false),
                    }
                }
            };
            let key = CacheKey::new(hash, op, big_r, threads);
            let probe = Instant::now();
            if let Some(body) = shared.engine.cached(&key) {
                if let Some(rec) = span {
                    rec.add(ROOT_SPAN, "cache:hit", probe, probe.elapsed());
                }
                shared.metrics.cache_hit(op);
                return (Reply::Ok(body.as_ref().clone()), false);
            }
            if let Some(rec) = span {
                rec.add(ROOT_SPAN, "cache:miss", probe, probe.elapsed());
            }
            let metrics = shared.metrics.clone();
            let ring = Arc::clone(&shared.ring);
            let label = format!("{} {} R={big_r}", op.tag(), hash_hex(hash));
            let span_rec = span.cloned();
            let reply = run_pooled(shared, span.cloned(), move || {
                let (body, info) = engine::execute_traced(op, &inst, big_r, threads)
                    .map_err(|msg| (ErrorCode::Internal, msg))?;
                if let Some(i) = info {
                    metrics.observe_solve(&i);
                    let t = i.trace;
                    if let Some(rec) = &span_rec {
                        record_phase_spans(rec, &t);
                    }
                    ring.push(SolveTrace {
                        // A traced request keeps its wire trace id so
                        // the slowest-solves ring and `obs trace` agree
                        // on names.
                        trace_id: span_rec
                            .as_ref()
                            .map_or_else(next_trace_id, |rec| rec.trace_id()),
                        label,
                        total_ns: t.total_ns,
                        phases: vec![
                            ("gather".into(), t.gather_ns),
                            ("t_eval".into(), t.t_eval_ns),
                            ("flood".into(), t.flood_ns),
                            ("g".into(), t.g_ns),
                        ],
                    });
                }
                Ok(body)
            });
            // A miss is a solve that actually ran (or tried to): BUSY
            // and drain rejections never reached a worker, so they are
            // neither hits nor misses.
            if !matches!(reply, Reply::Err(ErrorCode::Busy | ErrorCode::Shutdown, _)) {
                shared.metrics.cache_miss(op);
            }
            if let Reply::Ok(body) = &reply {
                insert_cached(shared, key, body, span);
            }
            (reply, false)
        }
    }
}

/// Nests the solver's sequential phase spans under the recorder's
/// published anchor (the `execute` span). The phases just finished, so
/// their shared timeline ends "now"; offsets are reconstructed
/// backwards from their summed lengths.
fn record_phase_spans(rec: &SpanRecorder, t: &mmlp_core::distributed::FlatSolveTrace) {
    let phases = t.phase_spans();
    let total: u64 = phases.iter().map(|(_, ns)| *ns).sum();
    let now = Instant::now();
    let base = now.checked_sub(Duration::from_nanos(total)).unwrap_or(now);
    let parent = rec.anchor();
    let mut off = Duration::ZERO;
    for (name, ns) in phases {
        rec.add(parent, name, base + off, Duration::from_nanos(ns));
        off += Duration::from_nanos(ns);
    }
}

/// Inserts a reply body into the result cache under a `store` span and
/// journals any LRU evictions the insert caused.
fn insert_cached(shared: &Shared, key: CacheKey, body: &str, span: Option<&Arc<SpanRecorder>>) {
    let evictions_before = shared.engine.cache_stats().2;
    let t = Instant::now();
    shared.engine.insert(key, Arc::new(body.to_string()));
    if let Some(rec) = span {
        rec.add(ROOT_SPAN, "store", t, t.elapsed());
    }
    if let Some(j) = &shared.journal {
        let (entries, bytes, evictions_after) = shared.engine.cache_stats();
        if evictions_after > evictions_before {
            j.emit(JournalRecord {
                kind: EV_CACHE,
                trace_id: span.map_or(0, |rec| rec.trace_id()),
                text: format!(
                    "cache evicted {} result(s): entries={entries} bytes={bytes}",
                    evictions_after - evictions_before
                ),
            });
        }
    }
}

/// The `SOLVE_DELTA` half of the run path. `hash:` names a registered
/// revision; `inline:` carries a delta text body, registered exactly
/// like `PUT_DELTA` before solving — one round trip for the common
/// edit-then-resolve loop. The incremental solve itself runs on the
/// worker pool and is cached under `SOLVE_DELTA`'s own namespace, so a
/// repeat of the same revision is a hit without touching a solver.
fn solve_delta(
    src: Source,
    big_r: usize,
    threads: usize,
    reader: &mut BufReader<TcpStream>,
    shared: &Arc<Shared>,
    span: Option<&Arc<SpanRecorder>>,
) -> (Reply, bool) {
    let revision = match src {
        Source::Hash(h) => h,
        Source::Inline(nbytes) => {
            let body = match checked_body(reader, nbytes, shared) {
                Ok(b) => b,
                Err(fatal) => return fatal,
            };
            match shared.engine.put_delta(&body) {
                Ok(lin) => {
                    shared.metrics.delta_puts.inc();
                    lin.new
                }
                Err((code, msg)) => return (Reply::Err(code, msg), false),
            }
        }
    };
    let key = CacheKey::new(revision, Op::SolveDelta, big_r, threads);
    let probe = Instant::now();
    if let Some(body) = shared.engine.cached(&key) {
        if let Some(rec) = span {
            rec.add(ROOT_SPAN, "cache:hit", probe, probe.elapsed());
        }
        shared.metrics.cache_hit(Op::SolveDelta);
        return (Reply::Ok(body.as_ref().clone()), false);
    }
    if let Some(rec) = span {
        rec.add(ROOT_SPAN, "cache:miss", probe, probe.elapsed());
    }
    let metrics = shared.metrics.clone();
    let worker_shared = Arc::clone(shared);
    let span_rec = span.cloned();
    let reply = run_pooled(shared, span.cloned(), move || {
        let (body, info) = worker_shared.engine.solve_delta(revision, big_r, threads)?;
        metrics.observe_delta(&info);
        if let Some(rec) = &span_rec {
            // Zero-length marker naming the resolution path taken.
            rec.open(rec.anchor(), info.mode.tag());
        }
        // The lineage resolution is the delta workload's key event:
        // which path ran, and how local the dirty ball actually was.
        if let Some(j) = &worker_shared.journal {
            j.emit(JournalRecord {
                kind: EV_DELTA,
                trace_id: span_rec.as_ref().map_or(0, |rec| rec.trace_id()),
                text: format!(
                    "delta {} revision={} replayed={} recomputed_x={} agents={} \
                     arena_added={} roots_reused={}",
                    info.mode.tag(),
                    hash_hex(revision),
                    info.replayed,
                    info.recomputed_x,
                    info.n_agents,
                    info.arena_added,
                    info.roots_reused
                ),
            });
        }
        Ok(body)
    });
    if !matches!(reply, Reply::Err(ErrorCode::Busy | ErrorCode::Shutdown, _)) {
        shared.metrics.cache_miss(Op::SolveDelta);
    }
    if let Reply::Ok(body) = &reply {
        insert_cached(shared, key, body, span);
    }
    (reply, false)
}

/// Submits a closure to the worker pool and maps its outcome onto the
/// wire. This is where backpressure (`BUSY`), per-request timeouts and
/// panic isolation all become protocol-visible — and where the
/// queue-wait vs execute split is measured: the submit instant is
/// captured here, the pickup instant inside the task on its worker.
/// The closure returns typed [`EngineError`]s so pooled work can
/// surface precise codes (e.g. `NOBASE` from a delta solve), not just
/// `INTERNAL`.
fn run_pooled<F>(shared: &Shared, span: Option<Arc<SpanRecorder>>, f: F) -> Reply
where
    F: FnOnce() -> Result<String, EngineError> + Send + 'static,
{
    if shared.shutting_down.load(Ordering::SeqCst) {
        return Reply::Err(ErrorCode::Shutdown, "server is draining".into());
    }
    let queue_wait = shared.metrics.queue_wait.clone();
    let execute = shared.metrics.execute.clone();
    let submitted = Instant::now();
    let task = move || {
        let picked_up = Instant::now();
        queue_wait.record(picked_up.duration_since(submitted).as_micros() as u64);
        // Traced requests get the same split as spans: `queue` from
        // submit to pickup, `execute` around the closure, with the
        // execute id published as the anchor so the closure can nest
        // solver-phase spans underneath it.
        let exec_id = span.as_ref().map(|rec| {
            rec.add(
                ROOT_SPAN,
                "queue",
                submitted,
                picked_up.duration_since(submitted),
            );
            let id = rec.open(ROOT_SPAN, "execute");
            rec.set_anchor(id);
            id
        });
        let result = f();
        if let (Some(rec), Some(id)) = (span.as_ref(), exec_id) {
            rec.close(id);
            rec.set_anchor(ROOT_SPAN);
        }
        execute.record(picked_up.elapsed().as_micros() as u64);
        result
    };
    match shared.pool.submit(task) {
        Err(SubmitError::Busy) => Reply::Err(
            ErrorCode::Busy,
            format!("queue full ({} deep); retry", shared.cfg.queue_cap),
        ),
        Err(SubmitError::Closed) => Reply::Err(ErrorCode::Shutdown, "server is draining".into()),
        Ok(ticket) => match ticket.wait() {
            Outcome::Done(Ok(body)) => Reply::Ok(body),
            Outcome::Done(Err((code, msg))) => Reply::Err(code, msg),
            Outcome::Panicked(msg) => Reply::Err(ErrorCode::Panic, msg),
            Outcome::TimedOut => Reply::Err(
                ErrorCode::Timeout,
                format!(
                    "request exceeded {} ms",
                    shared.cfg.timeout.map_or(0, |d| d.as_millis())
                ),
            ),
        },
    }
}

/// Reads a declared body. `Err` carries the reply *and* whether the
/// connection must close: an oversize declaration is rejected without
/// consuming the body, and a failed read leaves an unknown amount
/// consumed — in both cases the stream is no longer request-aligned,
/// so the connection is closed after the error reply. A non-UTF-8 body
/// was fully consumed and keeps the connection usable.
fn checked_body(
    reader: &mut BufReader<TcpStream>,
    nbytes: usize,
    shared: &Shared,
) -> Result<String, (Reply, bool)> {
    if nbytes > shared.cfg.max_body_bytes {
        return Err((
            Reply::Err(
                ErrorCode::BadReq,
                format!(
                    "body of {nbytes} bytes exceeds the limit of {}",
                    shared.cfg.max_body_bytes
                ),
            ),
            true,
        ));
    }
    let raw = read_body(reader, nbytes, shared).map_err(|e| {
        (
            Reply::Err(ErrorCode::BadReq, format!("body read: {e}")),
            true,
        )
    })?;
    String::from_utf8(raw).map_err(|_| {
        (
            Reply::Err(ErrorCode::BadReq, "body is not UTF-8".into()),
            false,
        )
    })
}

/// Refreshes the point-in-time gauges before a `METRICS` scrape.
/// Counters and histograms are live at all times; only these
/// snapshot-style values need a read at exposition.
fn set_scrape_gauges(shared: &Shared) {
    let m = &shared.metrics;
    m.uptime_ms.set(shared.started.elapsed().as_millis() as u64);
    m.queue_depth.set(shared.pool.queue_depth() as u64);
    m.in_flight.set(shared.pool.in_flight() as u64);
    m.connections_live
        .set(shared.live_connections.load(Ordering::SeqCst) as u64);
    let (cache_entries, cache_bytes, cache_evictions) = shared.engine.cache_stats();
    m.cache_entries.set(cache_entries as u64);
    m.cache_bytes.set(cache_bytes);
    m.cache_evictions.set(cache_evictions);
    let (store_entries, store_bytes) = shared.engine.store_stats();
    m.store_entries.set(store_entries as u64);
    m.store_bytes.set(store_bytes);
}

/// The historical `STATS` key/value body, now read off the same
/// registry cells `METRICS` exposes. Keys and their order are stable —
/// scripts parse this.
fn render_stats(shared: &Shared) -> String {
    let m = &shared.metrics;
    let lat = m.latency.snapshot();
    let (cache_entries, cache_bytes, cache_evictions) = shared.engine.cache_stats();
    let (store_entries, store_bytes) = shared.engine.store_stats();
    let mut out = String::new();
    use std::fmt::Write as _;
    let _ = writeln!(out, "uptime_ms {}", shared.started.elapsed().as_millis());
    let _ = writeln!(out, "workers {}", shared.cfg.workers);
    let _ = writeln!(out, "queue_cap {}", shared.cfg.queue_cap);
    let _ = writeln!(out, "queue_depth {}", shared.pool.queue_depth());
    let _ = writeln!(out, "in_flight {}", shared.pool.in_flight());
    let _ = writeln!(
        out,
        "connections_live {}",
        shared.live_connections.load(Ordering::SeqCst)
    );
    let _ = writeln!(out, "connections_total {}", m.connections.get());
    let _ = writeln!(out, "requests {}", m.requests.get());
    let _ = writeln!(out, "cache_hits {}", m.cache_hits_total());
    let _ = writeln!(out, "cache_misses {}", m.cache_misses_total());
    let _ = writeln!(out, "busy {}", m.busy.get());
    let _ = writeln!(out, "errors {}", m.errors.get());
    let _ = writeln!(out, "timeouts {}", m.timeouts.get());
    let _ = writeln!(out, "cache_entries {cache_entries}");
    let _ = writeln!(out, "cache_bytes {cache_bytes}");
    let _ = writeln!(out, "cache_evictions {cache_evictions}");
    let _ = writeln!(out, "store_entries {store_entries}");
    let _ = writeln!(out, "store_bytes {store_bytes}");
    let _ = writeln!(
        out,
        "persist_enabled {}",
        u8::from(shared.engine.is_persistent())
    );
    let warm = shared.engine.warm_start();
    let _ = writeln!(out, "warm_instances {}", warm.instances);
    let _ = writeln!(out, "warm_results {}", warm.results);
    let _ = writeln!(out, "persist_errors {}", shared.engine.persist_errors());
    // View-arena dedup aggregates over the flat-path cold solves.
    let _ = writeln!(out, "flat_solves {}", m.flat_solves.get());
    let _ = writeln!(out, "view_interned_nodes {}", m.interned_nodes.get());
    let _ = writeln!(out, "view_logical_bytes {}", m.logical_bytes.get());
    let _ = writeln!(out, "view_arena_bytes {}", m.arena_bytes.get());
    let _ = writeln!(out, "view_peak_arena_bytes {}", m.peak_arena_bytes.get());
    let _ = writeln!(out, "view_dedup_ratio {:.3}", m.dedup_ratio());
    let _ = writeln!(out, "latency_samples {}", lat.total());
    let _ = writeln!(out, "latency_mean_us {}", lat.mean_us());
    let _ = writeln!(out, "p50_us {}", lat.percentile(0.50));
    let _ = writeln!(out, "p95_us {}", lat.percentile(0.95));
    let _ = writeln!(out, "p99_us {}", lat.percentile(0.99));
    let _ = writeln!(out, "max_us {}", lat.max_us());
    // Span accounting over pooled tasks (new keys; appended so older
    // parsers keep working).
    let _ = writeln!(
        out,
        "queue_wait_p95_us {}",
        m.queue_wait.snapshot().percentile(0.95)
    );
    let _ = writeln!(
        out,
        "execute_p95_us {}",
        m.execute.snapshot().percentile(0.95)
    );
    let _ = writeln!(out, "traces_recorded {}", shared.ring.recorded());
    // The delta workload surface (appended keys, older parsers keep
    // working).
    let (lineage_entries, delta_solvers, delta_solver_bytes) = shared.engine.delta_stats();
    let _ = writeln!(out, "delta_puts {}", m.delta_puts.get());
    let _ = writeln!(out, "delta_solves_warm {}", m.delta_solves(DeltaMode::Warm));
    let _ = writeln!(
        out,
        "delta_solves_advanced {}",
        m.delta_solves(DeltaMode::Advanced)
    );
    let _ = writeln!(
        out,
        "delta_solves_booted {}",
        m.delta_solves(DeltaMode::Booted)
    );
    let _ = writeln!(out, "delta_replayed {}", m.delta_replayed.get());
    let _ = writeln!(out, "delta_recomputed_x {}", m.delta_recomputed_x.get());
    let _ = writeln!(out, "delta_agents {}", m.delta_agents.get());
    let _ = writeln!(out, "delta_arena_added {}", m.delta_arena_added.get());
    let _ = writeln!(out, "delta_roots_reused {}", m.delta_roots_reused.get());
    let _ = writeln!(out, "lineage_entries {lineage_entries}");
    let _ = writeln!(out, "delta_solvers {delta_solvers}");
    let _ = writeln!(out, "delta_solver_bytes {delta_solver_bytes}");
    let _ = writeln!(out, "warm_lineage {}", warm.lineage);
    // Tracing + journal surface (appended keys, older parsers keep
    // working). STATS is rare enough to afford a journal flush, which
    // makes `journal_records` deterministic for scripts and tests.
    if let Some(j) = &shared.journal {
        j.flush();
    }
    let (journal_records, journal_dropped) = shared
        .journal
        .as_ref()
        .map_or((0, 0), |j| (j.appended(), j.dropped()));
    let _ = writeln!(out, "spans_recorded {}", shared.spans.recorded());
    let _ = writeln!(out, "journal_records {journal_records}");
    let _ = writeln!(out, "journal_dropped {journal_dropped}");
    // The mutating-loadgen SLO reads these: server-side SOLVE_DELTA
    // latency quantiles, end-to-end per op.
    let delta_lat = m
        .op_latency_snapshot("solve_delta")
        .expect("solve_delta is a registered op label");
    let _ = writeln!(out, "delta_latency_p50_us {}", delta_lat.percentile(0.50));
    let _ = writeln!(out, "delta_latency_p95_us {}", delta_lat.percentile(0.95));
    let _ = writeln!(out, "delta_latency_p99_us {}", delta_lat.percentile(0.99));
    out
}
