//! A small blocking client for the wire protocol, used by the load
//! generator, the e2e suite and anyone scripting against the server.

use crate::protocol::{ErrorCode, Op};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::TcpStream;

/// One framed server reply, as seen by a client.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientReply {
    /// `OK` with the body.
    Ok(String),
    /// `ERR` with code and message.
    Err(ErrorCode, String),
}

impl ClientReply {
    /// The body of an `OK` reply, or an error string.
    pub fn into_ok(self) -> Result<String, String> {
        match self {
            ClientReply::Ok(body) => Ok(body),
            ClientReply::Err(code, msg) => Err(format!("{}: {msg}", code.as_str())),
        }
    }

    /// Whether this is an `OK` reply.
    pub fn is_ok(&self) -> bool {
        matches!(self, ClientReply::Ok(_))
    }
}

/// A persistent connection to the server (requests are pipelined one
/// at a time: write command, read reply).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    pending_trace: Option<u64>,
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:7979`).
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            pending_trace: None,
        })
    }

    /// Attaches a client-minted trace id to the **next** request: it
    /// is sent ahead of the command as a `TRACE <hex>` protocol line
    /// (`specs/PROTOCOL.md`), making the request traced end-to-end and
    /// findable later with `maxmin-lp obs trace <id>`. Ids must be
    /// nonzero; zero is the untraced sentinel and is ignored.
    pub fn trace_next(&mut self, trace_id: u64) {
        if trace_id != 0 {
            self.pending_trace = Some(trace_id);
        }
    }

    /// Sends one command line (and optional body), reads one reply.
    pub fn request(&mut self, line: &str, body: Option<&[u8]>) -> std::io::Result<ClientReply> {
        if let Some(id) = self.pending_trace.take() {
            self.writer
                .write_all(format!("TRACE {id:016x}\n").as_bytes())?;
        }
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        if let Some(b) = body {
            self.writer.write_all(b)?;
        }
        self.writer.flush()?;
        self.read_reply()
    }

    fn read_reply(&mut self) -> std::io::Result<ClientReply> {
        read_reply_from(&mut self.reader)
    }

    /// `PUT`s instance text; returns the server-assigned content hash
    /// (16 hex digits).
    pub fn put(&mut self, instance_text: &str) -> std::io::Result<Result<String, String>> {
        let reply = self.request(
            &format!("PUT {}", instance_text.len()),
            Some(instance_text.as_bytes()),
        )?;
        Ok(reply.into_ok().map(|body| {
            body.trim()
                .strip_prefix("hash ")
                .unwrap_or(body.trim())
                .to_string()
        }))
    }

    /// `PUT_DELTA`s delta text; returns the reply's
    /// `(base, delta, new)` hashes on success.
    pub fn put_delta(
        &mut self,
        delta_text: &str,
    ) -> std::io::Result<Result<(String, String, String), String>> {
        let reply = self.request(
            &format!("PUT_DELTA {}", delta_text.len()),
            Some(delta_text.as_bytes()),
        )?;
        Ok(reply.into_ok().and_then(|body| {
            let field = |key: &str| {
                body.lines()
                    .find_map(|l| l.strip_prefix(key).map(|v| v.trim().to_string()))
                    .ok_or_else(|| format!("missing '{key}' in PUT_DELTA reply: {body:?}"))
            };
            Ok((field("base ")?, field("delta ")?, field("new ")?))
        }))
    }

    /// `SOLVE_DELTA` of a registered revision hash.
    pub fn solve_delta_hash(
        &mut self,
        revision: &str,
        big_r: usize,
        threads: usize,
    ) -> std::io::Result<ClientReply> {
        self.request(
            &run_line(Op::SolveDelta, &format!("hash:{revision}"), big_r, threads),
            None,
        )
    }

    /// `SOLVE_DELTA` with the delta text sent inline: registers the
    /// revision like `PUT_DELTA` and solves it in one round trip.
    pub fn solve_delta_inline(
        &mut self,
        delta_text: &str,
        big_r: usize,
        threads: usize,
    ) -> std::io::Result<ClientReply> {
        let src = format!("inline:{}", delta_text.len());
        self.request(
            &run_line(Op::SolveDelta, &src, big_r, threads),
            Some(delta_text.as_bytes()),
        )
    }

    /// Runs `op` against a previously `PUT` instance.
    pub fn run_hash(
        &mut self,
        op: Op,
        hash: &str,
        big_r: usize,
        threads: usize,
    ) -> std::io::Result<ClientReply> {
        self.request(&run_line(op, &format!("hash:{hash}"), big_r, threads), None)
    }

    /// Runs `op` with the instance text sent inline.
    pub fn run_inline(
        &mut self,
        op: Op,
        instance_text: &str,
        big_r: usize,
        threads: usize,
    ) -> std::io::Result<ClientReply> {
        let src = format!("inline:{}", instance_text.len());
        self.request(
            &run_line(op, &src, big_r, threads),
            Some(instance_text.as_bytes()),
        )
    }

    /// Fetches `STATS` parsed into `(key, value)` pairs.
    pub fn stats(&mut self) -> std::io::Result<Vec<(String, u64)>> {
        let reply = self.request("STATS", None)?;
        let body = reply
            .into_ok()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        Ok(body
            .lines()
            .filter_map(|l| {
                let (k, v) = l.split_once(' ')?;
                Some((k.to_string(), v.trim().parse().ok()?))
            })
            .collect())
    }

    /// Fetches the `METRICS` body: the server's full registry in
    /// Prometheus text exposition format.
    pub fn metrics(&mut self) -> std::io::Result<String> {
        self.request("METRICS", None)?
            .into_ok()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Sends `SHUTDOWN`; the server drains and exits.
    pub fn shutdown(&mut self) -> std::io::Result<ClientReply> {
        self.request("SHUTDOWN", None)
    }
}

/// Parses one framed reply (`OK {len}\n{body}` / `ERR {CODE} {msg}\n`)
/// off a buffered stream. Shared by the one-at-a-time [`Client`] and
/// the [`PipelinedClient`].
fn read_reply_from(reader: &mut BufReader<TcpStream>) -> std::io::Result<ClientReply> {
    let mut header = String::new();
    let n = reader.read_line(&mut header)?;
    if n == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "server closed the connection",
        ));
    }
    let header = header.trim_end();
    if let Some(rest) = header.strip_prefix("OK ") {
        let nbytes: usize = rest.trim().parse().map_err(|_| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad OK length in '{header}'"),
            )
        })?;
        let mut body = vec![0u8; nbytes];
        reader.read_exact(&mut body)?;
        let body = String::from_utf8(body)
            .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8 body"))?;
        Ok(ClientReply::Ok(body))
    } else if let Some(rest) = header.strip_prefix("ERR ") {
        let (code, msg) = rest.split_once(' ').unwrap_or((rest, ""));
        let code = ErrorCode::from_token(code).ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unknown error code in '{header}'"),
            )
        })?;
        Ok(ClientReply::Err(code, msg.to_string()))
    } else {
        Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("unparseable reply header '{header}'"),
        ))
    }
}

/// A connection that keeps several requests in flight: `send_*` queues
/// a command without waiting, [`recv`](PipelinedClient::recv) collects
/// the oldest outstanding reply. The server answers strictly in request
/// order (`specs/PROTOCOL.md`), so replies match sends FIFO. Used by
/// the load generator's open-pipeline mode, where per-connection
/// throughput is no longer bounded by one round trip per request.
pub struct PipelinedClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    in_flight: usize,
}

impl PipelinedClient {
    /// Connects to `addr` (e.g. `127.0.0.1:7979`).
    pub fn connect(addr: &str) -> std::io::Result<PipelinedClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = BufWriter::new(stream.try_clone()?);
        Ok(PipelinedClient {
            reader: BufReader::new(stream),
            writer,
            in_flight: 0,
        })
    }

    /// Queues one command line (and optional body). Buffered: nothing
    /// may reach the wire until [`flush`](Self::flush) or
    /// [`recv`](Self::recv).
    pub fn send(&mut self, line: &str, body: Option<&[u8]>) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        if let Some(b) = body {
            self.writer.write_all(b)?;
        }
        self.in_flight += 1;
        Ok(())
    }

    /// Queues a `TRACE <hex>` protocol line ahead of the next queued
    /// command. Trace lines get no reply of their own, so this does not
    /// count toward [`in_flight`](Self::in_flight). Zero (the untraced
    /// sentinel) is ignored.
    pub fn send_trace(&mut self, trace_id: u64) -> std::io::Result<()> {
        if trace_id != 0 {
            self.writer
                .write_all(format!("TRACE {trace_id:016x}\n").as_bytes())?;
        }
        Ok(())
    }

    /// Queues `op` against a previously `PUT` instance.
    pub fn send_run_hash(
        &mut self,
        op: Op,
        hash: &str,
        big_r: usize,
        threads: usize,
    ) -> std::io::Result<()> {
        self.send(&run_line(op, &format!("hash:{hash}"), big_r, threads), None)
    }

    /// Pushes everything queued onto the wire.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.writer.flush()
    }

    /// Flushes, then reads the reply to the oldest outstanding request.
    pub fn recv(&mut self) -> std::io::Result<ClientReply> {
        assert!(self.in_flight > 0, "recv with no request in flight");
        self.writer.flush()?;
        let reply = read_reply_from(&mut self.reader)?;
        self.in_flight -= 1;
        Ok(reply)
    }

    /// Requests sent but not yet `recv`'d.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }
}

pub(crate) fn run_line(op: Op, src: &str, big_r: usize, threads: usize) -> String {
    let verb = match op {
        Op::Solve => "SOLVE",
        Op::Optimum => "OPTIMUM",
        Op::Safe => "SAFE",
        Op::Info => "INFO",
        Op::SolveDelta => "SOLVE_DELTA",
    };
    match op {
        Op::Solve | Op::SolveDelta => format!("{verb} {src} R={big_r} THREADS={threads}"),
        _ => format!("{verb} {src}"),
    }
}

/// Convenience: one `STATS` value by key.
pub fn stat(stats: &[(String, u64)], key: &str) -> u64 {
    stats
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| *v)
        .unwrap_or_else(|| panic!("missing stat '{key}' in {stats:?}"))
}
