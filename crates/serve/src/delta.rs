//! The delta-solve coordinator behind `PUT_DELTA`/`SOLVE_DELTA`: the
//! in-memory revision graph (content-hashed lineage `base → new` per
//! registered delta) plus a byte-budgeted LRU of live
//! [`DynamicSolver`]s, each parked at the revision it last solved.
//!
//! `SOLVE_DELTA hash:<rev>` resolves in one of three ways, cheapest
//! first:
//!
//! 1. **warm** — a solver is already parked at `<rev>` (for this
//!    `(R, threads)`): render the body straight from its state;
//! 2. **advanced** — a solver is parked at an *ancestor* revision:
//!    replay the lineage deltas between the two through
//!    [`DynamicSolver::apply_delta`], which repairs ball-locally for
//!    coefficient edits, then re-park it at `<rev>`;
//! 3. **booted** — no solver anywhere on the chain: rebuild one from
//!    the nearest stored ancestor instance and replay forward. This is
//!    also how a restarted node recovers — lineage records are
//!    persisted through `mmlp-store`, so the chain replays from
//!    segments.
//!
//! In every case the rendered body is **bit-identical** to a `SOLVE` of
//! the same revision: the dynamic solver's state is bitwise equal to a
//! from-scratch solve (asserted catalogue-wide in `mmlp-core`), and on
//! special-form instances the §4 pipeline is the exact identity, so the
//! two code paths format identical floats.

use crate::cache::Lru;
use crate::protocol::ErrorCode;
use mmlp_core::dynamic::{DynamicSolver, UpdateReport};
use mmlp_core::special::SpecialForm;
use mmlp_instance::delta::Delta;
use mmlp_instance::hash::hash_hex;
use mmlp_instance::{DegreeStats, Instance};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

// Lock order: `solvers` before `lineage`. The `solvers` mutex doubles
// as the coordinator's operation gate — it is held across a whole
// resolve (including a boot solve), which serialises concurrent
// `SOLVE_DELTA`s but makes the park/advance/render lifecycle race-free
// by construction: a parked solver can never be observed mid-replay or
// rendered for a revision it has already left.

/// Solvers are keyed by the revision they are parked at **and** the
/// request shape: a different `R` needs a different horizon, and the
/// thread count is kept in the key so the service never has to assume
/// bit-identity across counts (it holds, and tests assert it, but the
/// cache stays honest by construction).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct SolverKey {
    revision: u64,
    big_r: usize,
    threads: usize,
}

/// One registered delta edge of the revision graph.
#[derive(Clone, Debug)]
pub struct LineageEdge {
    /// The base revision the delta applies to.
    pub base: u64,
    /// Canonical delta text (replayable bit-exactly).
    pub delta_text: String,
}

/// How a `SOLVE_DELTA` request reached its revision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeltaMode {
    /// A solver was already parked at the requested revision.
    Warm,
    /// An ancestor's solver was advanced by replaying lineage deltas.
    Advanced,
    /// A fresh solver was booted from a stored instance (plus replay).
    Booted,
}

impl DeltaMode {
    /// Stable lowercase tag used in metric labels and stats keys.
    pub fn tag(&self) -> &'static str {
        match self {
            DeltaMode::Warm => "warm",
            DeltaMode::Advanced => "advanced",
            DeltaMode::Booted => "booted",
        }
    }
}

/// Work accounting for one `SOLVE_DELTA`, fed to the metrics layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeltaSolveInfo {
    /// Resolution path.
    pub mode: DeltaMode,
    /// Lineage deltas replayed during this request.
    pub replayed: u64,
    /// Agents whose output the replays recomputed (the dirty balls).
    pub recomputed_x: u64,
    /// View-arena nodes the replays added (changed subtrees only).
    pub arena_added: u64,
    /// Dirty roots that re-interned to their previous id.
    pub roots_reused: u64,
    /// Agents in the revision (denominator for the dirty fraction).
    pub n_agents: u64,
}

/// Cycle guard on lineage walks. Content-hashed lineage cannot cycle
/// short of an FNV collision, but a walk must still terminate.
const CHAIN_CAP: usize = 100_000;

/// The revision graph + parked-solver cache. All methods are `&self`;
/// locks are never held across a solve.
pub struct DeltaCoordinator {
    lineage: Mutex<HashMap<u64, LineageEdge>>,
    solvers: Mutex<Lru<SolverKey, DynamicSolver>>,
}

impl DeltaCoordinator {
    /// An empty coordinator whose parked solvers share `budget` bytes.
    pub fn new(budget: u64) -> Self {
        DeltaCoordinator {
            lineage: Mutex::new(HashMap::new()),
            solvers: Mutex::new(Lru::new(budget)),
        }
    }

    /// Records one lineage edge `base → new` (idempotent — re-recording
    /// the same new-revision hash overwrites with identical content,
    /// since the hash covers the delta text and its base).
    pub fn record(&self, new: u64, base: u64, delta_text: String) {
        self.lineage
            .lock()
            .expect("lineage lock")
            .insert(new, LineageEdge { base, delta_text });
    }

    /// Number of lineage edges known.
    pub fn lineage_len(&self) -> usize {
        self.lineage.lock().expect("lineage lock").len()
    }

    /// `(parked solvers, approximate resident bytes)`.
    pub fn solver_stats(&self) -> (usize, u64) {
        let s = self.solvers.lock().expect("solver lock");
        (s.len(), s.used())
    }

    /// Resolves `revision` to a solver (warm / advanced / booted, see
    /// the module docs), renders the `SOLVE`-format body from its
    /// state, and re-parks it. `fetch` resolves a revision hash to its
    /// stored instance (the engine's instance store).
    pub fn solve<F>(
        &self,
        revision: u64,
        big_r: usize,
        threads: usize,
        fetch: F,
    ) -> Result<(String, DeltaSolveInfo), (ErrorCode, String)>
    where
        F: Fn(u64) -> Option<Arc<Instance>>,
    {
        let key = SolverKey {
            revision,
            big_r,
            threads,
        };
        let mut solvers = self.solvers.lock().expect("solver lock");
        // Fast path: a solver parked at exactly this revision.
        if let Some(solver) = solvers.get(&key) {
            let info = DeltaSolveInfo {
                mode: DeltaMode::Warm,
                replayed: 0,
                recomputed_x: 0,
                arena_added: 0,
                roots_reused: 0,
                n_agents: solver.special_form().n_agents() as u64,
            };
            return Ok((render_solve_body(solver), info));
        }

        // Walk lineage back from the revision until an ancestor with a
        // parked solver or a stored instance turns up. `pending` ends
        // up newest-first; replay consumes it from the back.
        let mut pending: Vec<String> = Vec::new();
        let mut cursor = revision;
        let (mut solver, mode) = loop {
            if pending.len() > CHAIN_CAP {
                return Err((
                    ErrorCode::Internal,
                    format!("lineage chain exceeds {CHAIN_CAP} edges"),
                ));
            }
            if cursor != revision {
                // Taking the ancestor's solver out (rather than
                // cloning) keeps one canonical solver per chain tip; a
                // later request for the old revision just re-boots.
                if let Some(solver) = solvers.remove(&SolverKey {
                    revision: cursor,
                    big_r,
                    threads,
                }) {
                    break (solver, DeltaMode::Advanced);
                }
            }
            let edge = self
                .lineage
                .lock()
                .expect("lineage lock")
                .get(&cursor)
                .cloned();
            match edge {
                Some(e) => {
                    pending.push(e.delta_text);
                    cursor = e.base;
                }
                None => {
                    // Chain root (or a directly-PUT revision): boot from
                    // the stored instance.
                    let inst = fetch(cursor).ok_or_else(|| {
                        (
                            ErrorCode::NoBase,
                            format!(
                                "no stored revision {} to boot the delta chain from",
                                hash_hex(cursor)
                            ),
                        )
                    })?;
                    let sf = SpecialForm::new((*inst).clone()).map_err(|e| {
                        (
                            ErrorCode::BadDelta,
                            format!(
                                "revision {} is not in special form ({e}); \
                                 SOLVE_DELTA serves special-form chains — use SOLVE",
                                hash_hex(cursor)
                            ),
                        )
                    })?;
                    break (DynamicSolver::new(sf, big_r, threads), DeltaMode::Booted);
                }
            }
        };

        // Replay oldest-first up to the requested revision.
        let mut totals = UpdateReport::default();
        let replayed = pending.len() as u64;
        while let Some(text) = pending.pop() {
            let delta = Delta::parse_text(&text).map_err(|e| {
                (
                    ErrorCode::Internal,
                    format!("recorded lineage delta fails to re-parse: {e}"),
                )
            })?;
            let rep = solver.apply_delta(&delta).map_err(|e| {
                (
                    ErrorCode::BadDelta,
                    format!("lineage replay toward {}: {e}", hash_hex(revision)),
                )
            })?;
            totals.recomputed_t += rep.recomputed_t;
            totals.recomputed_s += rep.recomputed_s;
            totals.recomputed_x += rep.recomputed_x;
            totals.arena_added += rep.arena_added;
            totals.roots_reused += rep.roots_reused;
        }

        let body = render_solve_body(&solver);
        let info = DeltaSolveInfo {
            mode,
            replayed,
            recomputed_x: totals.recomputed_x as u64,
            arena_added: totals.arena_added as u64,
            roots_reused: totals.roots_reused as u64,
            n_agents: solver.special_form().n_agents() as u64,
        };
        let cost = solver_cost(&solver);
        solvers.insert(key, solver, cost);
        Ok((body, info))
    }

    /// Every lineage edge, for warm-start round-trip tests.
    pub fn lineage_snapshot(&self) -> Vec<(u64, LineageEdge)> {
        self.lineage
            .lock()
            .expect("lineage lock")
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect()
    }
}

/// Approximate resident bytes of a parked solver: per-agent state
/// (`t`/`s`/`x` plus `2(R−1)` g-table levels at 8 bytes each, roots,
/// BFS buffers) plus the interned arena.
fn solver_cost(s: &DynamicSolver) -> u64 {
    let n = s.special_form().n_agents() as u64;
    let levels = (s.big_r() - 1) as u64;
    n * (16 * levels + 96) + s.arena_len() as u64 * 48
}

/// Renders the `SOLVE`-format reply body from a dynamic solver's state.
///
/// This mirrors `engine::execute_traced`'s `Op::Solve` arm line for
/// line. For special-form instances the §4 transform is the identity
/// (every stage passes through and the back-map multiplies by exactly
/// `1.0`), so `utility`/`guarantee`/`optimum_upper_bound`/`x` here are
/// computed by the same functions on the same bits — bodies are
/// byte-identical, which the e2e suite and the loadgen `--mutate` probe
/// both assert.
pub fn render_solve_body(solver: &DynamicSolver) -> String {
    let inst = solver.special_form().instance();
    let run = solver.run();
    let stats = DegreeStats::of(inst);
    let mut out = String::new();
    let _ = writeln!(out, "utility {}", run.x.utility(inst));
    let _ = writeln!(
        out,
        "guarantee {}",
        mmlp_core::ratio::guarantee(stats.delta_i.max(2), stats.delta_k.max(2), solver.big_r())
    );
    let _ = writeln!(
        out,
        "optimum_upper_bound {}",
        run.s.iter().copied().fold(f64::INFINITY, f64::min)
    );
    for v in inst.agents() {
        let _ = writeln!(out, "x {} {}", v.raw(), run.x.value(v));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::execute;
    use crate::protocol::Op;
    use mmlp_instance::delta::{Edit, RowKind};
    use mmlp_instance::hash::instance_hash;
    use mmlp_instance::textfmt;

    fn special_instance(size: usize, seed: u64) -> Instance {
        mmlp_gen::catalog()
            .iter()
            .find(|f| f.name == "special-form")
            .unwrap()
            .instance(size, seed)
    }

    fn coef_delta(inst: &Instance, cons: u32, factor: f64) -> Delta {
        let i = mmlp_instance::ConstraintId::new(cons);
        let row = inst.constraint_row(i);
        Delta::single(
            instance_hash(inst),
            Edit::SetCoef {
                row: RowKind::Constraint,
                row_id: cons,
                agent: row[0].agent,
                coef: row[0].coef * factor,
            },
        )
    }

    #[test]
    fn rendered_body_is_bit_identical_to_solve() {
        for (size, seed) in [(16, 0), (24, 7)] {
            let inst = special_instance(size, seed);
            let sf = SpecialForm::new(inst.clone()).unwrap();
            for big_r in [2, 3] {
                let solver = DynamicSolver::new(sf.clone(), big_r, 1);
                let via_delta = render_solve_body(&solver);
                let via_solve = execute(Op::Solve, &inst, big_r, 1).unwrap();
                assert_eq!(
                    via_delta, via_solve,
                    "size {size} seed {seed} R {big_r}: the delta path must \
                     render the same bytes as SOLVE"
                );
            }
        }
    }

    #[test]
    fn warm_advanced_and_booted_all_agree_with_scratch() {
        let coordinator = DeltaCoordinator::new(1 << 20);
        let v0 = special_instance(20, 3);
        let store: Mutex<HashMap<u64, Arc<Instance>>> = Mutex::new(HashMap::new());
        store
            .lock()
            .unwrap()
            .insert(instance_hash(&v0), Arc::new(v0.clone()));
        let fetch = |h: u64| store.lock().unwrap().get(&h).cloned();

        // Register a 3-edit chain v0 → v1 → v2 → v3.
        let mut cur = v0.clone();
        let mut tip = instance_hash(&v0);
        for (cons, factor) in [(0u32, 1.5), (2, 0.8), (1, 1.1)] {
            let d = coef_delta(&cur, cons, factor);
            let (next, lin) = d.apply_hashed(&cur).unwrap();
            coordinator.record(lin.new, lin.base, d.to_text());
            cur = next;
            tip = lin.new;
        }

        // Cold: boots at v0, replays 3 deltas.
        let (body, info) = coordinator.solve(tip, 3, 1, fetch).unwrap();
        assert_eq!(info.mode, DeltaMode::Booted);
        assert_eq!(info.replayed, 3);
        assert!(info.recomputed_x > 0);
        assert_eq!(body, execute(Op::Solve, &cur, 3, 1).unwrap());

        // Warm: the solver is parked at the tip now.
        let (again, info) = coordinator.solve(tip, 3, 1, fetch).unwrap();
        assert_eq!(info.mode, DeltaMode::Warm);
        assert_eq!(again, body);

        // Advanced: one more edit moves the parked solver forward.
        let d = coef_delta(&cur, 4, 2.0);
        let (v4, lin) = d.apply_hashed(&cur).unwrap();
        coordinator.record(lin.new, lin.base, d.to_text());
        let (body4, info) = coordinator.solve(lin.new, 3, 1, fetch).unwrap();
        assert_eq!(info.mode, DeltaMode::Advanced);
        assert_eq!(info.replayed, 1);
        assert_eq!(body4, execute(Op::Solve, &v4, 3, 1).unwrap());
        assert_eq!(coordinator.solver_stats().0, 1, "one solver, re-parked");
    }

    #[test]
    fn unknown_root_is_nobase_and_non_special_is_baddelta() {
        let coordinator = DeltaCoordinator::new(1 << 20);
        let err = coordinator.solve(0xdead, 3, 1, |_| None).unwrap_err();
        assert_eq!(err.0, ErrorCode::NoBase);

        // A general (non-special-form) instance at the chain root.
        let general = mmlp_gen::catalog()
            .iter()
            .find(|f| f.name == "random-3x3")
            .unwrap()
            .instance(12, 0);
        let h = instance_hash(&general);
        let general = Arc::new(general);
        let err = coordinator
            .solve(h, 3, 1, |q| (q == h).then(|| Arc::clone(&general)))
            .unwrap_err();
        assert_eq!(err.0, ErrorCode::BadDelta);
    }

    #[test]
    fn lineage_survives_a_canonical_text_round_trip() {
        // What put_delta persists is what replay parses.
        let inst = special_instance(16, 1);
        let d = coef_delta(&inst, 1, 1.25);
        let text = d.to_text();
        let back = Delta::parse_text(&text).unwrap();
        assert_eq!(back, d);
        let _ = textfmt::write_instance(&d.apply(&inst).unwrap());
    }
}
