//! # `mmlp-serve` — the concurrent solver service
//!
//! The ROADMAP's north star is a system that serves heavy traffic, not
//! a one-shot CLI. This crate turns the workspace's solvers into a
//! **long-running multi-threaded TCP service** with a small
//! line-oriented protocol (`specs/PROTOCOL.md`) and a built-in load
//! generator.
//!
//! Why this is a natural fit for *this* paper: the local algorithm of
//! Floréen–Kaasinen–Kaski–Suomela is a deterministic constant-radius
//! computation, so for a fixed `(instance, R)` every solve is
//! bit-identical — which makes results **perfectly cacheable**. The
//! service exploits that with a content-addressed design:
//!
//! * [`protocol`] — the wire format: `PUT` / `SOLVE` / `OPTIMUM` /
//!   `SAFE` / `INFO` / `STATS` / `METRICS` / `SHUTDOWN` (plus `PING`
//!   and the `SLEEP` diagnostic), length-prefixed bodies, typed error
//!   codes.
//! * [`cache`] — a byte-budgeted O(1) LRU used for both the result
//!   cache (keyed by `(instance-hash, op, R, threads)`) and the
//!   content-addressed instance store fed by `PUT`.
//! * [`engine`] — the sockets-free core: resolve source → probe cache
//!   → execute solver → insert; directly benchmarked by `serve_cache`.
//!   With `ServeConfig::store_dir` set it mounts a persistent
//!   `mmlp-store` underneath: `PUT` instances and solved results are
//!   appended to disk, and a restart **warm-starts** both LRUs, so
//!   previously-solved requests come back as bit-identical cache hits
//!   across process restarts (`specs/STORAGE.md`).
//! * [`server`] — accept loop, per-connection threads, dispatch onto a
//!   bounded `mmlp_lab::pool::TaskPool` (full queue ⇒ `ERR BUSY`
//!   backpressure, never unbounded growth), per-request timeouts with
//!   panic isolation, and graceful drain on `SHUTDOWN`.
//! * [`stats`] — the server's metric surface on the `mmlp-obs`
//!   registry: sharded lock-free counters, HDR-style latency /
//!   queue-wait / execute histograms, per-op cache series and
//!   flat-solve phase timings. `STATS` keeps its historical key/value
//!   body; `METRICS` exposes the same cells as Prometheus text, and a
//!   bounded trace ring remembers the slowest recent solves
//!   (`specs/OBSERVABILITY.md`).
//! * [`delta`] — incremental re-solves as a first-class workload:
//!   `PUT_DELTA` registers a content-hashed edit against a base
//!   revision and `SOLVE_DELTA` answers from a pool of parked
//!   [`mmlp_core::dynamic::DynamicSolver`]s, repairing only the edit's
//!   dirty ball instead of re-solving the instance — bit-identical to
//!   `SOLVE` of the same revision (`specs/DELTA.md`). Lineage edges
//!   persist through `mmlp-store`, so a restarted node replays its
//!   revision graph from segments.
//! * [`client`] — a small blocking protocol client.
//! * [`loadgen`] — a closed-loop multi-client load generator
//!   (`maxmin-lp loadgen`) printing a latency histogram and verifying
//!   that all replies for one request shape are byte-identical.
//!
//! ## Quickstart
//!
//! ```
//! use mmlp_serve::prelude::*;
//! use mmlp_instance::textfmt;
//!
//! // Bind on an ephemeral port and serve in the background.
//! let server = Server::bind(ServeConfig {
//!     addr: "127.0.0.1:0".into(),
//!     workers: 2,
//!     ..ServeConfig::default()
//! })
//! .unwrap();
//! let addr = server.local_addr().to_string();
//! let handle = std::thread::spawn(move || server.run().unwrap());
//!
//! // Upload an instance by content, then solve it by hash — twice.
//! // The second reply is a cache hit, bit-identical to the first.
//! let inst = mmlp_gen::catalog()[0].instance(8, 0);
//! let mut c = Client::connect(&addr).unwrap();
//! let hash = c.put(&textfmt::write_instance(&inst)).unwrap().unwrap();
//! let cold = c.run_hash(Op::Solve, &hash, 3, 1).unwrap().into_ok().unwrap();
//! let warm = c.run_hash(Op::Solve, &hash, 3, 1).unwrap().into_ok().unwrap();
//! assert_eq!(cold, warm);
//!
//! c.shutdown().unwrap();
//! let summary = handle.join().unwrap();
//! assert!(summary.cache_hits >= 1);
//! ```

pub mod cache;
pub mod client;
pub mod delta;
pub mod engine;
pub mod loadgen;
pub mod protocol;
pub mod server;
pub mod stats;

/// One-stop imports for the CLI, tests and downstream users.
pub mod prelude {
    pub use crate::client::{Client, ClientReply};
    pub use crate::delta::{DeltaCoordinator, DeltaMode, DeltaSolveInfo};
    pub use crate::engine::{execute, CacheKey, Engine, WarmStart};
    pub use crate::loadgen::{render_report, run_loadgen, LoadConfig, LoadReport};
    pub use crate::protocol::{Command, ErrorCode, Op, Reply};
    pub use crate::server::{ServeConfig, Server, ServerSummary};
    pub use crate::stats::{Histogram, ServeMetrics};
}
