//! A byte-budgeted LRU map, used twice by the server:
//!
//! * the **result cache** — `(instance-hash, op, R, threads)` → reply
//!   body, budgeted by `--cache-mb`;
//! * the **instance store** — content hash → parsed
//!   [`Instance`](mmlp_instance::Instance), budgeted by serialised
//!   size.
//!
//! Entries carry an explicit `cost`; inserting past the budget evicts
//! from the least-recently-used end until the new entry fits. The
//! recency list is an index-linked doubly-linked list over a slab, so
//! `get`/`insert`/eviction are all O(1) (amortised, modulo the hash
//! map) — no scan, no allocation churn on hits.

//! [`ShardedLru`] wraps 16 independently locked [`Lru`] shards selected
//! by the low bits of the key's hash (the same scheme `mmlp-store` uses
//! for its segment files), so concurrent probes from the serve front-end
//! contend only when they land on the same shard.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Mutex;

const NIL: usize = usize::MAX;

/// Number of shards in a [`ShardedLru`]. Kept in sync with the
/// `mmlp-store` segment count so one hash distributes both.
pub const SHARDS: usize = 16;

struct Slot<K, V> {
    key: K,
    value: V,
    cost: u64,
    prev: usize,
    next: usize,
}

/// The byte-budgeted LRU map.
pub struct Lru<K, V> {
    map: HashMap<K, usize>,
    slots: Vec<Option<Slot<K, V>>>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    budget: u64,
    used: u64,
    evictions: u64,
}

impl<K: Eq + Hash + Clone, V> Lru<K, V> {
    /// An empty cache with the given total cost budget.
    pub fn new(budget: u64) -> Self {
        Lru {
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            budget,
            used: 0,
            evictions: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Sum of the costs of live entries.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// The configured cost budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Total number of entries evicted to make room so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = {
            let s = self.slots[idx].as_ref().expect("live slot");
            (s.prev, s.next)
        };
        if prev != NIL {
            self.slots[prev].as_mut().expect("live slot").next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].as_mut().expect("live slot").prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        {
            let s = self.slots[idx].as_mut().expect("live slot");
            s.prev = NIL;
            s.next = self.head;
        }
        if self.head != NIL {
            self.slots[self.head].as_mut().expect("live slot").prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Looks up `key`, marking it most recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let idx = *self.map.get(key)?;
        if idx != self.head {
            self.unlink(idx);
            self.push_front(idx);
        }
        Some(&self.slots[idx].as_ref().expect("live slot").value)
    }

    /// Whether `key` is present, *without* touching recency.
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Inserts `key → value` with the given cost, evicting LRU entries
    /// until it fits. An entry whose cost alone exceeds the whole
    /// budget is refused (returns `false`) — the cache stays bounded no
    /// matter what is thrown at it. Re-inserting an existing key
    /// replaces its value and cost.
    pub fn insert(&mut self, key: K, value: V, cost: u64) -> bool {
        if cost > self.budget {
            return false;
        }
        if let Some(&idx) = self.map.get(&key) {
            self.unlink(idx);
            let old = self.slots[idx].take().expect("live slot");
            self.used -= old.cost;
            self.free.push(idx);
            self.map.remove(&key);
        }
        while self.used + cost > self.budget {
            self.evict_one();
        }
        let slot = Slot {
            key: key.clone(),
            value,
            cost,
            prev: NIL,
            next: NIL,
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Some(slot);
                i
            }
            None => {
                self.slots.push(Some(slot));
                self.slots.len() - 1
            }
        };
        self.push_front(idx);
        self.map.insert(key, idx);
        self.used += cost;
        true
    }

    fn evict_one(&mut self) {
        let idx = self.tail;
        debug_assert_ne!(idx, NIL, "evict called on an empty cache");
        self.unlink(idx);
        let slot = self.slots[idx].take().expect("live slot");
        self.map.remove(&slot.key);
        self.used -= slot.cost;
        self.free.push(idx);
        self.evictions += 1;
    }

    /// Removes `key`, returning its value. Used by the delta
    /// coordinator, which takes a solver out of the cache while it
    /// advances revisions and re-inserts it under the new key.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let idx = self.map.remove(key)?;
        self.unlink(idx);
        let slot = self.slots[idx].take().expect("live slot");
        self.used -= slot.cost;
        self.free.push(idx);
        Some(slot.value)
    }

    /// Drops every entry (budget unchanged).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.used = 0;
    }
}

/// Maps a key to its shard index (must be `< SHARDS`).
///
/// Implementations use the key's *low bits* so content hashes spread
/// uniformly — `fnv1a64` already mixes well in the low nibble.
pub trait ShardKey {
    /// The shard this key lives in.
    fn shard(&self) -> usize;
}

impl ShardKey for u64 {
    fn shard(&self) -> usize {
        (*self & (SHARDS as u64 - 1)) as usize
    }
}

/// A 16-way sharded [`Lru`]: each shard has its own lock and a slice of
/// the total byte budget, so probes on different shards never contend.
///
/// The budget is split evenly across shards (remainder bytes go to the
/// lowest shards), which preserves the total-budget bound exactly:
/// the sum of shard budgets equals the configured total. The one
/// observable difference from a single LRU is that an entry larger
/// than its *shard's* slice (≈ total/16) is refused rather than
/// evicting everything else, and a hot shard evicts locally while cold
/// shards keep their entries — recency is per-shard, not global.
pub struct ShardedLru<K, V> {
    shards: Vec<Mutex<Lru<K, V>>>,
    budget: u64,
}

impl<K: Eq + Hash + Clone + ShardKey, V: Clone> ShardedLru<K, V> {
    /// An empty sharded cache with the given *total* cost budget.
    pub fn new(budget: u64) -> Self {
        let base = budget / SHARDS as u64;
        let extra = budget % SHARDS as u64;
        let shards = (0..SHARDS)
            .map(|i| Mutex::new(Lru::new(base + u64::from((i as u64) < extra))))
            .collect();
        ShardedLru { shards, budget }
    }

    fn shard(&self, key: &K) -> &Mutex<Lru<K, V>> {
        &self.shards[key.shard() % SHARDS]
    }

    /// Looks up `key`, marking it most recently used within its shard.
    /// Returns a clone, so the shard lock is held only for the probe.
    pub fn get(&self, key: &K) -> Option<V> {
        self.shard(key)
            .lock()
            .expect("lru shard lock")
            .get(key)
            .cloned()
    }

    /// Whether `key` is present, *without* touching recency.
    pub fn contains(&self, key: &K) -> bool {
        self.shard(key)
            .lock()
            .expect("lru shard lock")
            .contains(key)
    }

    /// Inserts `key → value` into its shard, evicting LRU entries there
    /// until it fits. Returns `false` when the cost alone exceeds the
    /// shard's budget slice.
    pub fn insert(&self, key: K, value: V, cost: u64) -> bool {
        self.shard(&key)
            .lock()
            .expect("lru shard lock")
            .insert(key, value, cost)
    }

    /// Removes `key` from its shard, returning its value.
    pub fn remove(&self, key: &K) -> Option<V> {
        self.shard(key).lock().expect("lru shard lock").remove(key)
    }

    /// The configured *total* budget (sum of all shard slices).
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Aggregated `(entries, used bytes, evictions)` across all shards.
    pub fn stats(&self) -> (usize, u64, u64) {
        let mut len = 0;
        let mut used = 0;
        let mut ev = 0;
        for s in &self.shards {
            let g = s.lock().expect("lru shard lock");
            len += g.len();
            used += g.used();
            ev += g.evictions();
        }
        (len, used, ev)
    }

    /// Per-shard eviction counters, indexed by shard.
    pub fn shard_evictions(&self) -> [u64; SHARDS] {
        let mut out = [0u64; SHARDS];
        for (i, s) in self.shards.iter().enumerate() {
            out[i] = s.lock().expect("lru shard lock").evictions();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_recency() {
        let mut c: Lru<u32, &'static str> = Lru::new(100);
        assert!(c.insert(1, "one", 10));
        assert!(c.insert(2, "two", 10));
        assert_eq!(c.get(&1), Some(&"one"));
        assert_eq!(c.get(&3), None);
        assert_eq!(c.len(), 2);
        assert_eq!(c.used(), 20);
    }

    #[test]
    fn evicts_least_recently_used_first() {
        let mut c: Lru<u32, u32> = Lru::new(30);
        c.insert(1, 1, 10);
        c.insert(2, 2, 10);
        c.insert(3, 3, 10);
        // Touch 1 so 2 becomes the LRU, then overflow.
        assert!(c.get(&1).is_some());
        c.insert(4, 4, 10);
        assert!(c.contains(&1) && c.contains(&3) && c.contains(&4));
        assert!(!c.contains(&2), "2 was least recently used");
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn one_insert_can_evict_many() {
        let mut c: Lru<u32, u32> = Lru::new(30);
        c.insert(1, 1, 10);
        c.insert(2, 2, 10);
        c.insert(3, 3, 10);
        c.insert(9, 9, 25);
        assert_eq!(c.len(), 1, "all three small entries had to go");
        assert!(c.contains(&9));
        assert_eq!(c.used(), 25);
        assert_eq!(c.evictions(), 3);
    }

    #[test]
    fn oversized_entries_are_refused() {
        let mut c: Lru<u32, u32> = Lru::new(10);
        assert!(!c.insert(1, 1, 11));
        assert!(c.is_empty());
        assert!(c.insert(2, 2, 10));
    }

    #[test]
    fn reinsert_replaces_value_and_cost() {
        let mut c: Lru<u32, &'static str> = Lru::new(20);
        c.insert(1, "a", 10);
        c.insert(1, "b", 15);
        assert_eq!(c.len(), 1);
        assert_eq!(c.used(), 15);
        assert_eq!(c.get(&1), Some(&"b"));
    }

    #[test]
    fn slab_slots_are_reused_after_eviction() {
        let mut c: Lru<u32, u32> = Lru::new(20);
        for i in 0..1000 {
            c.insert(i, i, 10);
        }
        assert_eq!(c.len(), 2);
        assert!(c.slots.len() <= 3, "slab must recycle, not grow");
    }

    #[test]
    fn remove_returns_the_value_and_frees_budget() {
        let mut c: Lru<u32, &'static str> = Lru::new(30);
        c.insert(1, "one", 10);
        c.insert(2, "two", 10);
        assert_eq!(c.remove(&1), Some("one"));
        assert_eq!(c.remove(&1), None);
        assert_eq!(c.len(), 1);
        assert_eq!(c.used(), 10);
        // The freed slot and budget are reusable.
        assert!(c.insert(3, "three", 20));
        assert!(c.contains(&2) && c.contains(&3));
    }

    #[test]
    fn clear_empties_everything() {
        let mut c: Lru<u32, u32> = Lru::new(50);
        for i in 0..5 {
            c.insert(i, i, 10);
        }
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.used(), 0);
        assert!(c.insert(1, 1, 50));
    }

    // -- ShardedLru --------------------------------------------------------

    #[test]
    fn sharded_budget_slices_sum_to_total() {
        // 100 = 16*6 + 4: four shards get 7, twelve get 6.
        let c: ShardedLru<u64, u32> = ShardedLru::new(100);
        let per_shard: u64 = c.shards.iter().map(|s| s.lock().unwrap().budget()).sum();
        assert_eq!(per_shard, 100);
        assert_eq!(c.budget(), 100);
    }

    #[test]
    fn sharded_keys_land_in_low_bit_shards() {
        let c: ShardedLru<u64, u64> = ShardedLru::new(16 * 100);
        for k in 0..64u64 {
            assert!(c.insert(k, k, 1));
        }
        for (i, s) in c.shards.iter().enumerate() {
            let g = s.lock().unwrap();
            assert_eq!(g.len(), 4, "shard {i} holds exactly the keys ≡ {i} mod 16");
        }
        for k in 0..64u64 {
            assert_eq!(c.get(&k), Some(k));
        }
        let (len, used, ev) = c.stats();
        assert_eq!((len, used, ev), (64, 64, 0));
    }

    #[test]
    fn sharded_evictions_are_per_shard_and_counted() {
        // Each shard gets a budget of 2; three same-shard inserts evict one.
        let c: ShardedLru<u64, u32> = ShardedLru::new(32);
        assert!(c.insert(0x10, 1, 1));
        assert!(c.insert(0x20, 2, 1));
        assert!(c.insert(0x30, 3, 1)); // shard 0 overflows
        assert!(c.insert(0x01, 4, 1)); // shard 1 untouched by shard 0 pressure
        let ev = c.shard_evictions();
        assert_eq!(ev[0], 1);
        assert_eq!(ev[1..].iter().sum::<u64>(), 0);
        assert!(!c.contains(&0x10), "0x10 was shard 0's LRU");
        assert!(c.contains(&0x01));
        assert_eq!(c.stats().2, 1);
    }

    #[test]
    fn sharded_refuses_entries_beyond_shard_slice() {
        let c: ShardedLru<u64, u32> = ShardedLru::new(160); // 10 per shard
        assert!(!c.insert(5, 1, 11), "bigger than the shard slice");
        assert!(c.insert(5, 1, 10));
        assert_eq!(c.remove(&5), Some(1));
        assert_eq!(c.remove(&5), None);
    }
}
