//! A closed-loop load generator driving a running server over real
//! sockets: `--clients` persistent connections, each issuing its share
//! of `--requests` back-to-back, with per-request latency recorded
//! into a merged [`Histogram`].
//!
//! Closed-loop means each client waits for its reply before sending
//! the next request, so offered load adapts to server throughput — the
//! standard shape for latency benchmarking without coordinated
//! omission on saturated servers.
//!
//! `--pipeline D` (with `D > 1`) switches to an **open pipeline**:
//! each connection keeps a window of `D` requests outstanding,
//! exercising the server's incremental parser and in-order reply queue
//! and measuring throughput past the one-round-trip-per-request bound.
//!
//! The generator also doubles as a correctness probe: every `OK` body
//! for the same `(op, R)` must be byte-identical (cache hits included),
//! so a cache-corruption bug shows up as `distinct_bodies > 1` rather
//! than silently skewing an experiment.
//!
//! **Mutate mode** (`--mutate`) turns the probe incremental: each
//! client walks its own chain of random single-coefficient edits,
//! issuing `SOLVE_DELTA inline:` for every step and cross-checking the
//! body bit-for-bit against a from-scratch `SOLVE` of the same
//! revision — two independent server-side computations that must agree
//! exactly. Requires a special-form instance (that is what the
//! incremental solver repairs).

use crate::client::{Client, ClientReply, PipelinedClient};
use crate::protocol::{ErrorCode, Op};
use crate::stats::Histogram;
use mmlp_instance::delta::{Delta, Edit, RowKind};
use mmlp_instance::hash::{hash_hex, instance_hash};
use mmlp_instance::ids::ConstraintId;
use mmlp_instance::{textfmt, Instance};
use std::collections::{BTreeSet, VecDeque};
use std::time::{Duration, Instant};

/// Load-generator configuration.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Server address.
    pub addr: String,
    /// Concurrent client connections.
    pub clients: usize,
    /// Total requests across all clients.
    pub requests: usize,
    /// Operation to issue.
    pub op: Op,
    /// Locality parameter for `SOLVE`.
    pub big_r: usize,
    /// `true`: `PUT` once per client, then request by hash (the cache
    /// amortisation path). `false`: ship the instance inline each time.
    pub by_hash: bool,
    /// The instance text to drive with.
    pub instance_text: String,
    /// Send `SHUTDOWN` after the run (CI smoke uses this).
    pub shutdown_after: bool,
    /// Mutate mode: stream random single edits as `SOLVE_DELTA`,
    /// probing bit-identity against from-scratch `SOLVE`s (ignores
    /// `op` and `by_hash`).
    pub mutate: bool,
    /// PRNG seed for mutate mode (each client derives its own stream).
    pub seed: u64,
    /// Mint a deterministic client-side trace id per request and send
    /// it ahead of the command as a `TRACE <hex>` line, making every
    /// request traced end-to-end (`specs/OBSERVABILITY.md`).
    pub trace: bool,
    /// Requests each connection keeps in flight. `1` is the classic
    /// closed loop (write, wait, repeat). `>1` switches to **open
    /// pipeline** mode: each connection keeps a window of this many
    /// requests outstanding, exercising the server's pipelined parsing
    /// and in-order reply queue — per-connection throughput is then no
    /// longer bounded by one round trip per request. Incompatible with
    /// `mutate` (whose probe is inherently request-then-check).
    pub pipeline: usize,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: "127.0.0.1:7979".into(),
            clients: 4,
            requests: 200,
            op: Op::Solve,
            big_r: 3,
            by_hash: true,
            instance_text: String::new(),
            shutdown_after: false,
            mutate: false,
            seed: 1,
            trace: false,
            pipeline: 1,
        }
    }
}

/// Aggregated result of one load run.
pub struct LoadReport {
    /// Requests attempted.
    pub sent: u64,
    /// `OK` replies.
    pub ok: u64,
    /// `BUSY` rejections (retried up to a small bound, then counted).
    pub busy: u64,
    /// Any other `ERR` reply or transport failure.
    pub errors: u64,
    /// Distinct `OK` body contents observed (must be 1 for a
    /// deterministic op against one instance).
    pub distinct_bodies: usize,
    /// FNV-1a hash of the one body all replies agreed on, when
    /// `distinct_bodies == 1` — lets two runs (e.g. before and after a
    /// server restart) assert byte-identity without keeping bodies.
    pub body_fnv: Option<u64>,
    /// Merged per-request latency histogram.
    pub histogram: Histogram,
    /// Wall-clock duration of the whole run.
    pub wall: Duration,
    /// First error message seen, for diagnostics.
    pub first_error: Option<String>,
    /// Mutate mode: incremental-vs-scratch bit-identity probes run.
    pub delta_checks: u64,
    /// Mutate mode: probes where the bytes differed (must be 0).
    pub delta_mismatches: u64,
    /// Requests sent with a client-minted `TRACE` line.
    pub traced: u64,
    /// The last trace id minted, so smoke scripts can `obs trace` it.
    pub last_trace_id: Option<u64>,
    /// Mutate mode: server-side `SOLVE_DELTA` latency quantiles
    /// `(p50, p95, p99)` in µs, read from `STATS` after the run —
    /// closed-loop client timing hides server-side tail latency, these
    /// do not.
    pub server_delta_us: Option<(u64, u64, u64)>,
}

impl LoadReport {
    /// Closed-loop throughput in requests per second.
    pub fn throughput(&self) -> f64 {
        if self.wall.as_secs_f64() == 0.0 {
            return 0.0;
        }
        self.ok as f64 / self.wall.as_secs_f64()
    }
}

struct ClientTally {
    histogram: Histogram,
    ok: u64,
    busy: u64,
    errors: u64,
    sent: u64,
    bodies: BTreeSet<u64>,
    first_error: Option<String>,
    delta_checks: u64,
    delta_mismatches: u64,
    traced: u64,
    last_trace_id: Option<u64>,
}

impl ClientTally {
    fn new() -> ClientTally {
        ClientTally {
            histogram: Histogram::new(),
            ok: 0,
            busy: 0,
            errors: 0,
            sent: 0,
            bodies: BTreeSet::new(),
            first_error: None,
            delta_checks: 0,
            delta_mismatches: 0,
            traced: 0,
            last_trace_id: None,
        }
    }

    /// Notes a minted trace id about to be sent.
    fn note_trace(&mut self, id: u64) {
        self.traced += 1;
        self.last_trace_id = Some(id);
    }

    fn note_err(&mut self, msg: String) {
        self.errors += 1;
        if self.first_error.is_none() {
            self.first_error = Some(msg);
        }
    }
}

/// How many times a `BUSY` reply is retried (with backoff) before the
/// request is abandoned and counted under `busy`.
const BUSY_RETRIES: usize = 20;

/// Deterministic nonzero trace id for `(seed, client, request)` — a
/// SplitMix64 fold, so reruns of the same config mint the same ids and
/// a failing request can be looked up again by trace.
fn mint_trace_id(seed: u64, client_id: usize, idx: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((client_id as u64) << 32)
        .wrapping_add(idx)
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    (z ^ (z >> 31)) | 1 // nonzero: zero is the untraced sentinel
}

fn drive_one(
    client: &mut Client,
    cfg: &LoadConfig,
    hash: Option<&str>,
    trace_id: Option<u64>,
) -> std::io::Result<ClientReply> {
    for attempt in 0..=BUSY_RETRIES {
        if let Some(id) = trace_id {
            client.trace_next(id);
        }
        let reply = match hash {
            Some(h) => client.run_hash(cfg.op, h, cfg.big_r, 1)?,
            None => client.run_inline(cfg.op, &cfg.instance_text, cfg.big_r, 1)?,
        };
        match &reply {
            ClientReply::Err(ErrorCode::Busy, _) if attempt < BUSY_RETRIES => {
                std::thread::sleep(Duration::from_millis(2 << attempt.min(5)));
            }
            _ => return Ok(reply),
        }
    }
    unreachable!("loop returns on the last attempt")
}

fn client_loop(cfg: &LoadConfig, n_requests: usize, client_id: usize) -> ClientTally {
    let mut tally = ClientTally::new();
    let mut client = match Client::connect(&cfg.addr) {
        Ok(c) => c,
        Err(e) => {
            tally.sent = n_requests as u64;
            tally.note_err(format!("connect {}: {e}", cfg.addr));
            tally.errors = n_requests as u64;
            return tally;
        }
    };
    let hash = if cfg.by_hash {
        match client.put(&cfg.instance_text) {
            Ok(Ok(h)) => Some(h),
            Ok(Err(e)) => {
                tally.note_err(format!("PUT: {e}"));
                return tally;
            }
            Err(e) => {
                tally.note_err(format!("PUT transport: {e}"));
                return tally;
            }
        }
    } else {
        None
    };
    for i in 0..n_requests {
        tally.sent += 1;
        let trace_id = cfg
            .trace
            .then(|| mint_trace_id(cfg.seed, client_id, i as u64));
        if let Some(id) = trace_id {
            tally.note_trace(id);
        }
        let started = Instant::now();
        match drive_one(&mut client, cfg, hash.as_deref(), trace_id) {
            Ok(ClientReply::Ok(body)) => {
                tally.histogram.record(started.elapsed().as_micros() as u64);
                tally.ok += 1;
                tally
                    .bodies
                    .insert(mmlp_instance::hash::fnv1a64(body.as_bytes()));
            }
            Ok(ClientReply::Err(ErrorCode::Busy, _)) => tally.busy += 1,
            Ok(ClientReply::Err(code, msg)) => {
                tally.note_err(format!("{}: {msg}", code.as_str()));
            }
            Err(e) => tally.note_err(format!("transport: {e}")),
        }
    }
    tally
}

/// One open-pipeline client: keeps up to `cfg.pipeline` requests in
/// flight on a single connection, collecting replies in FIFO order (the
/// server guarantees reply order matches request order). Per-request
/// latency is measured from enqueue to reply, so it includes the time a
/// request spends behind its window-mates — the honest number for an
/// open load model. `BUSY` replies are counted, not retried: an open
/// window has no natural point to park and back off, and the point of
/// this mode is measuring the server under sustained offered load.
fn pipeline_loop(cfg: &LoadConfig, n_requests: usize, client_id: usize) -> ClientTally {
    let mut tally = ClientTally::new();
    let fail_all = |tally: &mut ClientTally, n: usize, msg: String| {
        tally.sent = n as u64;
        tally.note_err(msg);
        tally.errors = n as u64;
    };
    let mut pc = match PipelinedClient::connect(&cfg.addr) {
        Ok(c) => c,
        Err(e) => {
            fail_all(&mut tally, n_requests, format!("connect {}: {e}", cfg.addr));
            return tally;
        }
    };
    // The instance rides the same connection: PUT is just the first
    // request through the pipeline.
    let put_line = format!("PUT {}", cfg.instance_text.len());
    let hash = match pc
        .send(&put_line, Some(cfg.instance_text.as_bytes()))
        .and_then(|()| pc.recv())
    {
        Ok(ClientReply::Ok(body)) => body
            .trim()
            .strip_prefix("hash ")
            .unwrap_or(body.trim())
            .to_string(),
        Ok(ClientReply::Err(code, msg)) => {
            fail_all(
                &mut tally,
                n_requests,
                format!("PUT {}: {msg}", code.as_str()),
            );
            return tally;
        }
        Err(e) => {
            fail_all(&mut tally, n_requests, format!("PUT transport: {e}"));
            return tally;
        }
    };
    let mut queued = 0usize;
    let mut starts: VecDeque<Instant> = VecDeque::with_capacity(cfg.pipeline);
    while tally.sent < n_requests as u64 || !starts.is_empty() {
        // Top the window up...
        while queued < n_requests && starts.len() < cfg.pipeline {
            let trace_id = cfg
                .trace
                .then(|| mint_trace_id(cfg.seed, client_id, queued as u64));
            let sent = (|| {
                if let Some(id) = trace_id {
                    pc.send_trace(id)?;
                }
                if cfg.by_hash {
                    pc.send_run_hash(cfg.op, &hash, cfg.big_r, 1)
                } else {
                    let src = format!("inline:{}", cfg.instance_text.len());
                    pc.send(
                        &crate::client::run_line(cfg.op, &src, cfg.big_r, 1),
                        Some(cfg.instance_text.as_bytes()),
                    )
                }
            })();
            queued += 1;
            tally.sent += 1;
            match sent {
                Ok(()) => {
                    if let Some(id) = trace_id {
                        tally.note_trace(id);
                    }
                    starts.push_back(Instant::now());
                }
                Err(e) => tally.note_err(format!("send: {e}")),
            }
        }
        // ...then drain the oldest reply.
        let Some(started) = starts.pop_front() else {
            break;
        };
        match pc.recv() {
            Ok(ClientReply::Ok(body)) => {
                tally.histogram.record(started.elapsed().as_micros() as u64);
                tally.ok += 1;
                tally
                    .bodies
                    .insert(mmlp_instance::hash::fnv1a64(body.as_bytes()));
            }
            Ok(ClientReply::Err(ErrorCode::Busy, _)) => tally.busy += 1,
            Ok(ClientReply::Err(code, msg)) => {
                tally.note_err(format!("{}: {msg}", code.as_str()));
            }
            Err(e) => {
                // The connection is gone; everything still in flight
                // (and everything unsent) is lost with it.
                tally.note_err(format!("transport: {e}"));
                tally.errors += starts.len() as u64 + (n_requests - queued) as u64;
                tally.sent += (n_requests - queued) as u64;
                break;
            }
        }
    }
    tally
}

/// A tiny xorshift64* stream — deterministic per `(seed, client)`, no
/// dependency, good enough to scatter edits across constraints.
struct Rng(u64);

impl Rng {
    fn new(seed: u64, client_id: usize) -> Rng {
        // SplitMix-style fold so nearby seeds/clients diverge at once.
        let mut s =
            seed.wrapping_add(0x9e37_79b9_7f4a_7c15_u64.wrapping_mul(client_id as u64 + 1)) | 1;
        s ^= s >> 30;
        s = s.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        Rng(s | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform-ish in `[0, n)`.
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }

    /// A coefficient scale factor in `[0.6, 1.8]` — strictly positive,
    /// bounded away from underflow so chains of hundreds of edits keep
    /// well-conditioned coefficients.
    fn factor(&mut self) -> f64 {
        0.6 + (self.next() >> 11) as f64 / (1u64 << 53) as f64 * 1.2
    }
}

/// One mutate-mode client: walk a private chain of random single
/// coefficient edits off the shared base, and for every step check the
/// incremental `SOLVE_DELTA` body against a from-scratch `SOLVE` of
/// the same revision, byte for byte. A step counts `ok` only when both
/// replies arrived and agreed.
fn mutate_loop(cfg: &LoadConfig, n_requests: usize, client_id: usize) -> ClientTally {
    let mut tally = ClientTally::new();
    let fail_all = |tally: &mut ClientTally, n: usize, msg: String| {
        tally.sent = n as u64;
        tally.note_err(msg);
        tally.errors = n as u64;
    };
    let mut cur: Instance = match textfmt::parse_instance(&cfg.instance_text) {
        Ok(i) => i,
        Err(e) => {
            fail_all(&mut tally, n_requests, format!("parse instance: {e}"));
            return tally;
        }
    };
    let mut client = match Client::connect(&cfg.addr) {
        Ok(c) => c,
        Err(e) => {
            fail_all(&mut tally, n_requests, format!("connect {}: {e}", cfg.addr));
            return tally;
        }
    };
    match client.put(&cfg.instance_text) {
        Ok(Ok(_)) => {}
        Ok(Err(e)) => {
            fail_all(&mut tally, n_requests, format!("PUT: {e}"));
            return tally;
        }
        Err(e) => {
            fail_all(&mut tally, n_requests, format!("PUT transport: {e}"));
            return tally;
        }
    }
    let mut rng = Rng::new(cfg.seed, client_id);
    for i in 0..n_requests {
        tally.sent += 1;
        let trace_id = cfg
            .trace
            .then(|| mint_trace_id(cfg.seed, client_id, i as u64));
        if let Some(id) = trace_id {
            tally.note_trace(id);
        }
        // A random single edit: scale one existing constraint
        // coefficient. This keeps the instance in special form, so the
        // server repairs it in place instead of rebuilding.
        let row_id = rng.below(cur.n_constraints()) as u32;
        let row = cur.constraint_row(ConstraintId::new(row_id));
        let entry = row[rng.below(row.len())];
        let delta = Delta::single(
            instance_hash(&cur),
            Edit::SetCoef {
                row: RowKind::Constraint,
                row_id,
                agent: entry.agent,
                coef: entry.coef * rng.factor(),
            },
        );
        let next = match delta.apply(&cur) {
            Ok(i) => i,
            Err(e) => {
                tally.note_err(format!("local apply: {e}"));
                continue;
            }
        };
        let revision = hash_hex(instance_hash(&next));
        let started = Instant::now();
        let incr = retry_busy(|| {
            if let Some(id) = trace_id {
                client.trace_next(id);
            }
            client.solve_delta_inline(&delta.to_text(), cfg.big_r, 1)
        });
        let incr = match incr {
            Ok(ClientReply::Ok(body)) => {
                tally.histogram.record(started.elapsed().as_micros() as u64);
                body
            }
            Ok(ClientReply::Err(ErrorCode::Busy, _)) => {
                tally.busy += 1;
                continue;
            }
            Ok(ClientReply::Err(code, msg)) => {
                tally.note_err(format!("SOLVE_DELTA {}: {msg}", code.as_str()));
                continue;
            }
            Err(e) => {
                tally.note_err(format!("SOLVE_DELTA transport: {e}"));
                continue;
            }
        };
        // The oracle: an independent from-scratch solve of the same
        // revision, cached (and computed) under SOLVE's own namespace.
        let scratch = retry_busy(|| client.run_hash(Op::Solve, &revision, cfg.big_r, 1));
        match scratch {
            Ok(ClientReply::Ok(body)) => {
                tally.delta_checks += 1;
                if body.as_bytes() == incr.as_bytes() {
                    tally.ok += 1;
                } else {
                    tally.delta_mismatches += 1;
                    tally.note_err(format!(
                        "bit-identity violated at revision {revision} (edit chain step {})",
                        tally.sent
                    ));
                }
            }
            Ok(ClientReply::Err(ErrorCode::Busy, _)) => tally.busy += 1,
            Ok(ClientReply::Err(code, msg)) => {
                tally.note_err(format!("oracle SOLVE {}: {msg}", code.as_str()));
            }
            Err(e) => tally.note_err(format!("oracle transport: {e}")),
        }
        cur = next;
    }
    tally
}

/// Retries `f` on `BUSY` with the same backoff as [`drive_one`].
fn retry_busy(mut f: impl FnMut() -> std::io::Result<ClientReply>) -> std::io::Result<ClientReply> {
    for attempt in 0..=BUSY_RETRIES {
        let reply = f()?;
        match &reply {
            ClientReply::Err(ErrorCode::Busy, _) if attempt < BUSY_RETRIES => {
                std::thread::sleep(Duration::from_millis(2 << attempt.min(5)));
            }
            _ => return Ok(reply),
        }
    }
    unreachable!("loop returns on the last attempt")
}

/// Runs the load, one thread per client, and aggregates.
pub fn run_loadgen(cfg: &LoadConfig) -> Result<LoadReport, String> {
    if cfg.clients == 0 || cfg.requests == 0 {
        return Err("need at least one client and one request".into());
    }
    if cfg.instance_text.is_empty() {
        return Err("no instance text to drive with".into());
    }
    if cfg.pipeline == 0 {
        return Err("pipeline depth must be at least 1".into());
    }
    if cfg.mutate && cfg.pipeline > 1 {
        return Err("mutate mode is request-then-check; it cannot pipeline".into());
    }
    let started = Instant::now();
    let tallies: Vec<ClientTally> = std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for c in 0..cfg.clients {
            // Spread the total evenly; early clients absorb the remainder.
            let share = cfg.requests / cfg.clients + usize::from(c < cfg.requests % cfg.clients);
            joins.push(scope.spawn(move || {
                if cfg.mutate {
                    mutate_loop(cfg, share, c)
                } else if cfg.pipeline > 1 {
                    pipeline_loop(cfg, share, c)
                } else {
                    client_loop(cfg, share, c)
                }
            }));
        }
        joins
            .into_iter()
            .map(|j| j.join().expect("client thread"))
            .collect()
    });
    let wall = started.elapsed();

    let mut report = LoadReport {
        sent: 0,
        ok: 0,
        busy: 0,
        errors: 0,
        distinct_bodies: 0,
        body_fnv: None,
        histogram: Histogram::new(),
        wall,
        first_error: None,
        delta_checks: 0,
        delta_mismatches: 0,
        traced: 0,
        last_trace_id: None,
        server_delta_us: None,
    };
    let mut bodies = BTreeSet::new();
    for t in tallies {
        report.sent += t.sent;
        report.ok += t.ok;
        report.busy += t.busy;
        report.errors += t.errors;
        report.delta_checks += t.delta_checks;
        report.delta_mismatches += t.delta_mismatches;
        report.traced += t.traced;
        report.histogram.merge(&t.histogram);
        bodies.extend(t.bodies);
        if report.first_error.is_none() {
            report.first_error = t.first_error;
        }
        if t.last_trace_id.is_some() {
            report.last_trace_id = t.last_trace_id;
        }
    }
    report.distinct_bodies = bodies.len();
    if bodies.len() == 1 {
        report.body_fnv = bodies.first().copied();
    }

    // Mutate mode pulls the server's own SOLVE_DELTA quantiles before
    // any shutdown: the closed loop only times round trips it waited
    // for, while the server-side histogram sees every solve.
    if cfg.mutate {
        if let Ok(mut c) = Client::connect(&cfg.addr) {
            if let Ok(stats) = c.stats() {
                let get = |key: &str| stats.iter().find(|(k, _)| k == key).map(|(_, v)| *v);
                if let (Some(p50), Some(p95), Some(p99)) = (
                    get("delta_latency_p50_us"),
                    get("delta_latency_p95_us"),
                    get("delta_latency_p99_us"),
                ) {
                    report.server_delta_us = Some((p50, p95, p99));
                }
            }
        }
    }

    if cfg.shutdown_after {
        let mut c = Client::connect(&cfg.addr).map_err(|e| format!("shutdown connect: {e}"))?;
        c.shutdown().map_err(|e| format!("shutdown: {e}"))?;
    }
    Ok(report)
}

/// Renders the human-readable latency report the CLI prints (and CI
/// uploads as an artifact).
pub fn render_report(cfg: &LoadConfig, r: &LoadReport) -> String {
    let mut out = String::new();
    use std::fmt::Write as _;
    let verb = if cfg.mutate { "mutate" } else { cfg.op.tag() };
    let _ = writeln!(out, "# loadgen {verb} against {}", cfg.addr);
    let _ = writeln!(
        out,
        "clients {}  requests {}  mode {}",
        cfg.clients,
        cfg.requests,
        if cfg.mutate {
            "mutate"
        } else if cfg.by_hash {
            "hash"
        } else {
            "inline"
        }
    );
    if cfg.pipeline > 1 {
        let _ = writeln!(out, "pipeline_depth {}", cfg.pipeline);
    }
    let _ = writeln!(out, "sent {}", r.sent);
    let _ = writeln!(out, "ok {}", r.ok);
    let _ = writeln!(out, "busy {}", r.busy);
    let _ = writeln!(out, "errors {}", r.errors);
    if let Some(e) = &r.first_error {
        let _ = writeln!(out, "first_error {e}");
    }
    if cfg.mutate {
        let _ = writeln!(out, "delta_checks {}", r.delta_checks);
        let _ = writeln!(out, "delta_mismatches {}", r.delta_mismatches);
        if let Some((p50, p95, p99)) = r.server_delta_us {
            let _ = writeln!(out, "server_delta_p50_us {p50}");
            let _ = writeln!(out, "server_delta_p95_us {p95}");
            let _ = writeln!(out, "server_delta_p99_us {p99}");
        }
    }
    if cfg.trace {
        let _ = writeln!(out, "traced {}", r.traced);
        if let Some(id) = r.last_trace_id {
            let _ = writeln!(out, "last_trace_id {id:016x}");
        }
    }
    let _ = writeln!(out, "distinct_bodies {}", r.distinct_bodies);
    if let Some(h) = r.body_fnv {
        let _ = writeln!(out, "body_fnv {}", mmlp_instance::hash::hash_hex(h));
    }
    let _ = writeln!(out, "wall_ms {}", r.wall.as_millis());
    let _ = writeln!(out, "throughput_rps {:.1}", r.throughput());
    let _ = writeln!(out, "p50_us {}", r.histogram.percentile(0.50));
    let _ = writeln!(out, "p95_us {}", r.histogram.percentile(0.95));
    let _ = writeln!(out, "p99_us {}", r.histogram.percentile(0.99));
    let _ = writeln!(out, "max_us {}", r.histogram.max_us());
    let _ = writeln!(out, "mean_us {}", r.histogram.mean_us());
    out.push('\n');
    out.push_str(&r.histogram.render());
    out
}
