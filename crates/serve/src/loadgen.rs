//! A closed-loop load generator driving a running server over real
//! sockets: `--clients` persistent connections, each issuing its share
//! of `--requests` back-to-back, with per-request latency recorded
//! into a merged [`Histogram`].
//!
//! Closed-loop means each client waits for its reply before sending
//! the next request, so offered load adapts to server throughput — the
//! standard shape for latency benchmarking without coordinated
//! omission on saturated servers.
//!
//! The generator also doubles as a correctness probe: every `OK` body
//! for the same `(op, R)` must be byte-identical (cache hits included),
//! so a cache-corruption bug shows up as `distinct_bodies > 1` rather
//! than silently skewing an experiment.

use crate::client::{Client, ClientReply};
use crate::protocol::{ErrorCode, Op};
use crate::stats::Histogram;
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

/// Load-generator configuration.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Server address.
    pub addr: String,
    /// Concurrent client connections.
    pub clients: usize,
    /// Total requests across all clients.
    pub requests: usize,
    /// Operation to issue.
    pub op: Op,
    /// Locality parameter for `SOLVE`.
    pub big_r: usize,
    /// `true`: `PUT` once per client, then request by hash (the cache
    /// amortisation path). `false`: ship the instance inline each time.
    pub by_hash: bool,
    /// The instance text to drive with.
    pub instance_text: String,
    /// Send `SHUTDOWN` after the run (CI smoke uses this).
    pub shutdown_after: bool,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: "127.0.0.1:7979".into(),
            clients: 4,
            requests: 200,
            op: Op::Solve,
            big_r: 3,
            by_hash: true,
            instance_text: String::new(),
            shutdown_after: false,
        }
    }
}

/// Aggregated result of one load run.
pub struct LoadReport {
    /// Requests attempted.
    pub sent: u64,
    /// `OK` replies.
    pub ok: u64,
    /// `BUSY` rejections (retried up to a small bound, then counted).
    pub busy: u64,
    /// Any other `ERR` reply or transport failure.
    pub errors: u64,
    /// Distinct `OK` body contents observed (must be 1 for a
    /// deterministic op against one instance).
    pub distinct_bodies: usize,
    /// FNV-1a hash of the one body all replies agreed on, when
    /// `distinct_bodies == 1` — lets two runs (e.g. before and after a
    /// server restart) assert byte-identity without keeping bodies.
    pub body_fnv: Option<u64>,
    /// Merged per-request latency histogram.
    pub histogram: Histogram,
    /// Wall-clock duration of the whole run.
    pub wall: Duration,
    /// First error message seen, for diagnostics.
    pub first_error: Option<String>,
}

impl LoadReport {
    /// Closed-loop throughput in requests per second.
    pub fn throughput(&self) -> f64 {
        if self.wall.as_secs_f64() == 0.0 {
            return 0.0;
        }
        self.ok as f64 / self.wall.as_secs_f64()
    }
}

struct ClientTally {
    histogram: Histogram,
    ok: u64,
    busy: u64,
    errors: u64,
    sent: u64,
    bodies: BTreeSet<u64>,
    first_error: Option<String>,
}

/// How many times a `BUSY` reply is retried (with backoff) before the
/// request is abandoned and counted under `busy`.
const BUSY_RETRIES: usize = 20;

fn drive_one(
    client: &mut Client,
    cfg: &LoadConfig,
    hash: Option<&str>,
) -> std::io::Result<ClientReply> {
    for attempt in 0..=BUSY_RETRIES {
        let reply = match hash {
            Some(h) => client.run_hash(cfg.op, h, cfg.big_r, 1)?,
            None => client.run_inline(cfg.op, &cfg.instance_text, cfg.big_r, 1)?,
        };
        match &reply {
            ClientReply::Err(ErrorCode::Busy, _) if attempt < BUSY_RETRIES => {
                std::thread::sleep(Duration::from_millis(2 << attempt.min(5)));
            }
            _ => return Ok(reply),
        }
    }
    unreachable!("loop returns on the last attempt")
}

fn client_loop(cfg: &LoadConfig, n_requests: usize) -> ClientTally {
    let mut tally = ClientTally {
        histogram: Histogram::new(),
        ok: 0,
        busy: 0,
        errors: 0,
        sent: 0,
        bodies: BTreeSet::new(),
        first_error: None,
    };
    let note_err = |tally: &mut ClientTally, msg: String| {
        tally.errors += 1;
        if tally.first_error.is_none() {
            tally.first_error = Some(msg);
        }
    };
    let mut client = match Client::connect(&cfg.addr) {
        Ok(c) => c,
        Err(e) => {
            tally.sent = n_requests as u64;
            note_err(&mut tally, format!("connect {}: {e}", cfg.addr));
            tally.errors = n_requests as u64;
            return tally;
        }
    };
    let hash = if cfg.by_hash {
        match client.put(&cfg.instance_text) {
            Ok(Ok(h)) => Some(h),
            Ok(Err(e)) => {
                note_err(&mut tally, format!("PUT: {e}"));
                return tally;
            }
            Err(e) => {
                note_err(&mut tally, format!("PUT transport: {e}"));
                return tally;
            }
        }
    } else {
        None
    };
    for _ in 0..n_requests {
        tally.sent += 1;
        let started = Instant::now();
        match drive_one(&mut client, cfg, hash.as_deref()) {
            Ok(ClientReply::Ok(body)) => {
                tally.histogram.record(started.elapsed().as_micros() as u64);
                tally.ok += 1;
                tally
                    .bodies
                    .insert(mmlp_instance::hash::fnv1a64(body.as_bytes()));
            }
            Ok(ClientReply::Err(ErrorCode::Busy, _)) => tally.busy += 1,
            Ok(ClientReply::Err(code, msg)) => {
                note_err(&mut tally, format!("{}: {msg}", code.as_str()));
            }
            Err(e) => note_err(&mut tally, format!("transport: {e}")),
        }
    }
    tally
}

/// Runs the load, one thread per client, and aggregates.
pub fn run_loadgen(cfg: &LoadConfig) -> Result<LoadReport, String> {
    if cfg.clients == 0 || cfg.requests == 0 {
        return Err("need at least one client and one request".into());
    }
    if cfg.instance_text.is_empty() {
        return Err("no instance text to drive with".into());
    }
    let started = Instant::now();
    let tallies: Vec<ClientTally> = std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for c in 0..cfg.clients {
            // Spread the total evenly; early clients absorb the remainder.
            let share = cfg.requests / cfg.clients + usize::from(c < cfg.requests % cfg.clients);
            joins.push(scope.spawn(move || client_loop(cfg, share)));
        }
        joins
            .into_iter()
            .map(|j| j.join().expect("client thread"))
            .collect()
    });
    let wall = started.elapsed();

    let mut report = LoadReport {
        sent: 0,
        ok: 0,
        busy: 0,
        errors: 0,
        distinct_bodies: 0,
        body_fnv: None,
        histogram: Histogram::new(),
        wall,
        first_error: None,
    };
    let mut bodies = BTreeSet::new();
    for t in tallies {
        report.sent += t.sent;
        report.ok += t.ok;
        report.busy += t.busy;
        report.errors += t.errors;
        report.histogram.merge(&t.histogram);
        bodies.extend(t.bodies);
        if report.first_error.is_none() {
            report.first_error = t.first_error;
        }
    }
    report.distinct_bodies = bodies.len();
    if bodies.len() == 1 {
        report.body_fnv = bodies.first().copied();
    }

    if cfg.shutdown_after {
        let mut c = Client::connect(&cfg.addr).map_err(|e| format!("shutdown connect: {e}"))?;
        c.shutdown().map_err(|e| format!("shutdown: {e}"))?;
    }
    Ok(report)
}

/// Renders the human-readable latency report the CLI prints (and CI
/// uploads as an artifact).
pub fn render_report(cfg: &LoadConfig, r: &LoadReport) -> String {
    let mut out = String::new();
    use std::fmt::Write as _;
    let _ = writeln!(out, "# loadgen {} against {}", cfg.op.tag(), cfg.addr);
    let _ = writeln!(
        out,
        "clients {}  requests {}  mode {}",
        cfg.clients,
        cfg.requests,
        if cfg.by_hash { "hash" } else { "inline" }
    );
    let _ = writeln!(out, "sent {}", r.sent);
    let _ = writeln!(out, "ok {}", r.ok);
    let _ = writeln!(out, "busy {}", r.busy);
    let _ = writeln!(out, "errors {}", r.errors);
    if let Some(e) = &r.first_error {
        let _ = writeln!(out, "first_error {e}");
    }
    let _ = writeln!(out, "distinct_bodies {}", r.distinct_bodies);
    if let Some(h) = r.body_fnv {
        let _ = writeln!(out, "body_fnv {}", mmlp_instance::hash::hash_hex(h));
    }
    let _ = writeln!(out, "wall_ms {}", r.wall.as_millis());
    let _ = writeln!(out, "throughput_rps {:.1}", r.throughput());
    let _ = writeln!(out, "p50_us {}", r.histogram.percentile(0.50));
    let _ = writeln!(out, "p95_us {}", r.histogram.percentile(0.95));
    let _ = writeln!(out, "p99_us {}", r.histogram.percentile(0.99));
    let _ = writeln!(out, "max_us {}", r.histogram.max_us());
    let _ = writeln!(out, "mean_us {}", r.histogram.mean_us());
    out.push('\n');
    out.push_str(&r.histogram.render());
    out
}
