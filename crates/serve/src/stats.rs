//! The server's metric surface, built on the `mmlp-obs` registry.
//!
//! Earlier versions kept hand-rolled `AtomicU64` bundles here
//! (`Counters`, `ViewCounters`) plus a mutex-guarded latency histogram.
//! All of that now lives behind typed [`mmlp_obs`] handles registered
//! once at bind time: hot paths pay one relaxed atomic per update, and
//! the whole registry renders as Prometheus text for the `METRICS` wire
//! op while `STATS` keeps its historical key/value format on top of the
//! same cells.
//!
//! The [`Histogram`] the load generator aggregates client-side is the
//! same log-linear structure the registry's histograms snapshot into;
//! it is re-exported from `mmlp_obs` so `loadgen` and downstream users
//! keep their import path.

pub use mmlp_obs::Histogram;

use crate::cache::SHARDS;
use crate::delta::{DeltaMode, DeltaSolveInfo};
use crate::engine::SolveInfo;
use crate::protocol::Op;
use mmlp_obs::{Counter, Gauge, HistogramHandle, Registry};
use std::sync::Arc;

/// Every instrument the server updates, registered on one shared
/// [`Registry`]. Cloning shares the cells (handles are `Arc`-backed),
/// so worker closures can carry the metrics without touching the
/// registry lock again.
#[derive(Clone)]
pub struct ServeMetrics {
    registry: Arc<Registry>,

    /// Commands accepted and parsed (including `STATS` itself).
    pub requests: Counter,
    /// Connections accepted over the server's lifetime.
    pub connections: Counter,
    /// Requests bounced with `BUSY`.
    pub busy: Counter,
    /// Requests ending in any `ERR` reply other than `BUSY`.
    pub errors: Counter,
    /// Requests killed by the per-request timeout.
    pub timeouts: Counter,

    /// Result-cache hits, one counter per cacheable [`Op`].
    cache_hits: [Counter; 5],
    /// Result-cache misses (cold solves), one counter per [`Op`].
    cache_misses: [Counter; 5],

    /// End-to-end request latency (parse → reply written), µs.
    pub latency: HistogramHandle,
    /// Per-op end-to-end latency, one histogram per command verb —
    /// including `stats` and `metrics`, so scrape cost is visible.
    op_latency: [HistogramHandle; 12],
    /// Time a pooled task waited in the queue before a worker picked it
    /// up, µs.
    pub queue_wait: HistogramHandle,
    /// Time a pooled task spent executing on a worker, µs.
    pub execute: HistogramHandle,

    /// Cold solves that ran the flat network path.
    pub flat_solves: Counter,
    /// Sum of unique interned view nodes across those solves.
    pub interned_nodes: Counter,
    /// Sum of logical protocol payload bytes (tree accounting).
    pub logical_bytes: Counter,
    /// Sum of deduped arena bytes actually materialised.
    pub arena_bytes: Counter,
    /// Largest single-solve arena footprint seen.
    pub peak_arena_bytes: Gauge,

    /// Cumulative flat-solve phase wall time, one counter per phase
    /// (`gather`, `t_eval`, `flood`, `g`), nanoseconds.
    phase_ns: [Counter; 4],
    /// Memo-table lookups by outcome (`hit`, `miss`, `skip`).
    memo: [Counter; 3],

    /// `PUT_DELTA` registrations accepted.
    pub delta_puts: Counter,
    /// `SOLVE_DELTA` solves by resolution mode (`warm`, `advanced`,
    /// `booted`).
    delta_solves: [Counter; 3],
    /// Lineage deltas replayed while advancing/booting solvers.
    pub delta_replayed: Counter,
    /// Agents whose x was recomputed across delta solves (the dirty
    /// balls — compare against `delta_agents` for the locality win).
    pub delta_recomputed_x: Counter,
    /// Agents in the instances those solves covered (the denominator).
    pub delta_agents: Counter,
    /// View-arena nodes added across delta solves.
    pub delta_arena_added: Counter,
    /// Agent view roots reused unchanged across delta solves.
    pub delta_roots_reused: Counter,
    /// Dirty-ball size per delta solve (recomputed x per request).
    pub delta_dirty_x: HistogramHandle,

    /// Server uptime (set at scrape time), milliseconds.
    pub uptime_ms: Gauge,
    /// Tasks waiting in the pool queue (scrape-time).
    pub queue_depth: Gauge,
    /// Tasks executing on workers (scrape-time).
    pub in_flight: Gauge,
    /// Live client connections (scrape-time).
    pub connections_live: Gauge,
    /// Result-cache entries / bytes / evictions (scrape-time).
    pub cache_entries: Gauge,
    /// Result-cache resident bytes (scrape-time).
    pub cache_bytes: Gauge,
    /// Result-cache evictions so far (scrape-time).
    pub cache_evictions: Gauge,
    /// Per-shard result-cache evictions (scrape-time), one gauge per
    /// LRU shard — a skewed workload overflowing one shard's budget
    /// slice shows up here while the aggregate stays quiet.
    cache_shard_evictions: [Gauge; SHARDS],
    /// Instance-store entries (scrape-time).
    pub store_entries: Gauge,
    /// Instance-store resident bytes (scrape-time).
    pub store_bytes: Gauge,
}

/// Phase names, in [`mmlp_core::distributed::FlatSolveTrace`] order.
pub const PHASES: [&str; 4] = ["gather", "t_eval", "flood", "g"];

const OPS: [Op; 5] = [Op::Solve, Op::Optimum, Op::Safe, Op::Info, Op::SolveDelta];

/// Dense slot for the per-op counter arrays. Not `code() - 1`: op codes
/// skip 5 (the persisted-lineage namespace), so `SOLVE_DELTA` is 6.
fn op_slot(op: Op) -> usize {
    match op {
        Op::Solve => 0,
        Op::Optimum => 1,
        Op::Safe => 2,
        Op::Info => 3,
        Op::SolveDelta => 4,
    }
}

/// Per-op latency labels, in `ServeMetrics::op_latency` slot order:
/// every command verb the dispatcher replies to, as a lowercase tag.
pub const OP_LABELS: [&str; 12] = [
    "solve",
    "optimum",
    "safe",
    "info",
    "solve_delta",
    "put",
    "put_delta",
    "stats",
    "metrics",
    "sleep",
    "ping",
    "shutdown",
];

/// Slot of a command verb in [`OP_LABELS`] (`None` for unknown tags —
/// unparseable commands have no verb to attribute).
fn op_label_slot(label: &str) -> Option<usize> {
    OP_LABELS.iter().position(|&l| l == label)
}

/// Resolution-mode tags, in counter-slot order.
const DELTA_MODES: [DeltaMode; 3] = [DeltaMode::Warm, DeltaMode::Advanced, DeltaMode::Booted];

fn mode_slot(mode: DeltaMode) -> usize {
    match mode {
        DeltaMode::Warm => 0,
        DeltaMode::Advanced => 1,
        DeltaMode::Booted => 2,
    }
}

impl ServeMetrics {
    /// Registers the full instrument set on a fresh registry. Called
    /// once per server (`Server::bind`); everything after that is
    /// handle updates.
    pub fn new() -> Self {
        let reg = Arc::new(Registry::new());
        let cache_hits = OPS.map(|op| {
            reg.counter_with(
                "mmlp_serve_cache_hits_total",
                &[("op", op.tag())],
                "Cacheable requests answered from the result cache",
            )
        });
        let cache_misses = OPS.map(|op| {
            reg.counter_with(
                "mmlp_serve_cache_misses_total",
                &[("op", op.tag())],
                "Cacheable requests that had to run a solver",
            )
        });
        let phase_ns = PHASES.map(|p| {
            reg.counter_with(
                "mmlp_solver_phase_ns_total",
                &[("phase", p)],
                "Cumulative flat-solve phase wall time in nanoseconds",
            )
        });
        let memo = ["hit", "miss", "skip"].map(|r| {
            reg.counter_with(
                "mmlp_solver_memo_lookups_total",
                &[("result", r)],
                "Flat-solve memo-table lookups by outcome",
            )
        });
        let op_latency = OP_LABELS.map(|l| {
            reg.histogram_with(
                "mmlp_serve_op_latency_us",
                &[("op", l)],
                "End-to-end request latency by command verb, microseconds",
            )
        });
        let cache_shard_evictions = std::array::from_fn(|i| {
            reg.gauge_with(
                "mmlp_serve_cache_shard_evictions",
                &[("shard", &i.to_string())],
                "Result-cache evictions per LRU shard",
            )
        });
        let delta_solves = DELTA_MODES.map(|m| {
            reg.counter_with(
                "mmlp_serve_delta_solves_total",
                &[("mode", m.tag())],
                "SOLVE_DELTA requests by resolution mode",
            )
        });
        ServeMetrics {
            requests: reg.counter("mmlp_serve_requests_total", "Commands accepted and parsed"),
            connections: reg.counter("mmlp_serve_connections_total", "Connections accepted"),
            busy: reg.counter("mmlp_serve_busy_total", "Requests bounced with BUSY"),
            errors: reg.counter(
                "mmlp_serve_errors_total",
                "Requests ending in a non-BUSY ERR reply",
            ),
            timeouts: reg.counter(
                "mmlp_serve_timeouts_total",
                "Requests killed by the per-request timeout",
            ),
            cache_hits,
            cache_misses,
            latency: reg.histogram(
                "mmlp_serve_request_latency_us",
                "End-to-end request latency in microseconds",
            ),
            op_latency,
            queue_wait: reg.histogram(
                "mmlp_serve_queue_wait_us",
                "Queue wait before a worker picked the task up, microseconds",
            ),
            execute: reg.histogram(
                "mmlp_serve_execute_us",
                "Worker execution time per pooled task, microseconds",
            ),
            flat_solves: reg.counter(
                "mmlp_solver_flat_solves_total",
                "Cold solves that ran the flat network path",
            ),
            interned_nodes: reg.counter(
                "mmlp_solver_view_interned_nodes_total",
                "Unique view nodes interned across flat solves",
            ),
            logical_bytes: reg.counter(
                "mmlp_solver_view_logical_bytes_total",
                "Logical protocol payload bytes (tree accounting)",
            ),
            arena_bytes: reg.counter(
                "mmlp_solver_view_arena_bytes_total",
                "Deduped arena bytes actually materialised",
            ),
            peak_arena_bytes: reg.gauge(
                "mmlp_solver_view_peak_arena_bytes",
                "Largest single-solve arena footprint seen",
            ),
            phase_ns,
            memo,
            delta_puts: reg.counter(
                "mmlp_serve_delta_puts_total",
                "PUT_DELTA registrations accepted",
            ),
            delta_solves,
            delta_replayed: reg.counter(
                "mmlp_serve_delta_replayed_total",
                "Lineage deltas replayed while advancing or booting solvers",
            ),
            delta_recomputed_x: reg.counter(
                "mmlp_serve_delta_recomputed_x_total",
                "Agents whose x was recomputed across delta solves",
            ),
            delta_agents: reg.counter(
                "mmlp_serve_delta_agents_total",
                "Agents in the instances delta solves covered",
            ),
            delta_arena_added: reg.counter(
                "mmlp_serve_delta_arena_added_total",
                "View-arena nodes added across delta solves",
            ),
            delta_roots_reused: reg.counter(
                "mmlp_serve_delta_roots_reused_total",
                "Agent view roots reused unchanged across delta solves",
            ),
            delta_dirty_x: reg.histogram(
                "mmlp_serve_delta_dirty_x",
                "Recomputed x per SOLVE_DELTA request (dirty-ball size)",
            ),
            uptime_ms: reg.gauge("mmlp_serve_uptime_ms", "Server uptime in milliseconds"),
            queue_depth: reg.gauge("mmlp_serve_queue_depth", "Tasks waiting in the pool queue"),
            in_flight: reg.gauge("mmlp_serve_in_flight", "Tasks executing on workers"),
            connections_live: reg.gauge("mmlp_serve_connections_live", "Live client connections"),
            cache_entries: reg.gauge("mmlp_serve_cache_entries", "Result-cache entries"),
            cache_bytes: reg.gauge("mmlp_serve_cache_bytes", "Result-cache resident bytes"),
            cache_evictions: reg.gauge("mmlp_serve_cache_evictions", "Result-cache evictions"),
            cache_shard_evictions,
            store_entries: reg.gauge("mmlp_serve_store_entries", "Instance-store entries"),
            store_bytes: reg.gauge("mmlp_serve_store_bytes", "Instance-store resident bytes"),
            registry: reg,
        }
    }

    /// The underlying registry (for `METRICS` rendering).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Renders every instrument as Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        self.registry.render_prometheus()
    }

    /// Records one request's end-to-end latency under its command
    /// verb's label (see [`OP_LABELS`] — `stats` and `metrics` are
    /// first-class here, so scrape cost shows up in its own series).
    /// The trace id feeds the exemplar when nonzero. Unknown labels
    /// (unparseable commands) are dropped silently.
    pub fn observe_op_latency(&self, label: &str, us: u64, trace_id: u64) {
        if let Some(slot) = op_label_slot(label) {
            self.op_latency[slot].record_traced(us, trace_id);
        }
    }

    /// Snapshot of one verb's latency histogram (`None` for unknown
    /// labels). `STATS` derives the delta percentiles from this.
    pub fn op_latency_snapshot(&self, label: &str) -> Option<Histogram> {
        op_label_slot(label).map(|slot| self.op_latency[slot].snapshot())
    }

    /// Publishes the per-shard eviction counters (scrape-time, like the
    /// other cache gauges).
    pub fn set_cache_shard_evictions(&self, evictions: &[u64; SHARDS]) {
        for (g, &n) in self.cache_shard_evictions.iter().zip(evictions) {
            g.set(n);
        }
    }

    /// One result-cache hit for `op`.
    pub fn cache_hit(&self, op: Op) {
        self.cache_hits[op_slot(op)].inc();
    }

    /// One result-cache miss (a solve actually ran) for `op`.
    pub fn cache_miss(&self, op: Op) {
        self.cache_misses[op_slot(op)].inc();
    }

    /// Cache hits summed over ops (the historical `STATS` aggregate).
    pub fn cache_hits_total(&self) -> u64 {
        self.cache_hits.iter().map(Counter::get).sum()
    }

    /// Cache misses summed over ops.
    pub fn cache_misses_total(&self) -> u64 {
        self.cache_misses.iter().map(Counter::get).sum()
    }

    /// Folds one flat solve's accounting — arena dedup counters, phase
    /// wall times, memo outcomes — into the aggregates.
    pub fn observe_solve(&self, info: &SolveInfo) {
        self.flat_solves.inc();
        self.interned_nodes.add(info.interned_nodes);
        self.logical_bytes.add(info.logical_bytes);
        self.arena_bytes.add(info.arena_bytes);
        self.peak_arena_bytes.set_max(info.peak_arena_bytes);
        let t = &info.trace;
        for (c, ns) in self
            .phase_ns
            .iter()
            .zip([t.gather_ns, t.t_eval_ns, t.flood_ns, t.g_ns])
        {
            c.add(ns);
        }
        for (c, n) in
            self.memo
                .iter()
                .zip([t.batch.memo_hits, t.batch.memo_misses, t.batch.memo_skips])
        {
            c.add(n);
        }
    }

    /// Folds one delta solve's report into the per-mode counters and
    /// the dirty-ball histogram.
    pub fn observe_delta(&self, info: &DeltaSolveInfo) {
        self.delta_solves[mode_slot(info.mode)].inc();
        self.delta_replayed.add(info.replayed);
        self.delta_recomputed_x.add(info.recomputed_x);
        self.delta_agents.add(info.n_agents);
        self.delta_arena_added.add(info.arena_added);
        self.delta_roots_reused.add(info.roots_reused);
        self.delta_dirty_x.record(info.recomputed_x);
    }

    /// `SOLVE_DELTA` requests answered in the given mode.
    pub fn delta_solves(&self, mode: DeltaMode) -> u64 {
        self.delta_solves[mode_slot(mode)].get()
    }

    /// `SOLVE_DELTA` requests answered, all modes.
    pub fn delta_solves_total(&self) -> u64 {
        self.delta_solves.iter().map(Counter::get).sum()
    }

    /// Aggregate dedup ratio: logical bytes per arena byte (0 before
    /// the first flat solve).
    pub fn dedup_ratio(&self) -> f64 {
        let arena = self.arena_bytes.get();
        if arena == 0 {
            0.0
        } else {
            self.logical_bytes.get() as f64 / arena as f64
        }
    }
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmlp_core::distributed::{BatchTelemetry, FlatSolveTrace};

    fn sample_info() -> SolveInfo {
        SolveInfo {
            interned_nodes: 10,
            logical_bytes: 300,
            arena_bytes: 100,
            peak_arena_bytes: 64,
            trace: FlatSolveTrace {
                gather_ns: 5,
                t_eval_ns: 7,
                flood_ns: 3,
                g_ns: 2,
                total_ns: 20,
                batch: BatchTelemetry {
                    memo_hits: 4,
                    memo_misses: 2,
                    memo_skips: 1,
                    workers: 1,
                    chunks: 1,
                    max_chunk_pulls: 1,
                },
            },
        }
    }

    #[test]
    fn cache_counters_are_per_op_and_sum() {
        let m = ServeMetrics::new();
        m.cache_hit(Op::Solve);
        m.cache_hit(Op::Solve);
        m.cache_hit(Op::Info);
        m.cache_miss(Op::Optimum);
        assert_eq!(m.cache_hits_total(), 3);
        assert_eq!(m.cache_misses_total(), 1);
        let text = m.render_prometheus();
        assert!(
            text.contains("mmlp_serve_cache_hits_total{op=\"solve\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("mmlp_serve_cache_hits_total{op=\"info\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("mmlp_serve_cache_misses_total{op=\"optimum\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn observe_solve_feeds_arena_phase_and_memo_series() {
        let m = ServeMetrics::new();
        m.observe_solve(&sample_info());
        m.observe_solve(&sample_info());
        assert_eq!(m.flat_solves.get(), 2);
        assert_eq!(m.interned_nodes.get(), 20);
        assert!((m.dedup_ratio() - 3.0).abs() < 1e-12);
        let text = m.render_prometheus();
        assert!(
            text.contains("mmlp_solver_phase_ns_total{phase=\"gather\"} 10"),
            "{text}"
        );
        assert!(
            text.contains("mmlp_solver_memo_lookups_total{result=\"hit\"} 8"),
            "{text}"
        );
        assert!(
            text.contains("mmlp_solver_view_peak_arena_bytes 64"),
            "{text}"
        );
    }

    #[test]
    fn observe_delta_feeds_mode_and_dirty_series() {
        let m = ServeMetrics::new();
        m.observe_delta(&DeltaSolveInfo {
            mode: DeltaMode::Booted,
            replayed: 2,
            recomputed_x: 9,
            arena_added: 4,
            roots_reused: 3,
            n_agents: 100,
        });
        m.observe_delta(&DeltaSolveInfo {
            mode: DeltaMode::Warm,
            replayed: 0,
            recomputed_x: 5,
            arena_added: 0,
            roots_reused: 10,
            n_agents: 100,
        });
        assert_eq!(m.delta_solves_total(), 2);
        assert_eq!(m.delta_solves(DeltaMode::Warm), 1);
        assert_eq!(m.delta_solves(DeltaMode::Advanced), 0);
        assert_eq!(m.delta_replayed.get(), 2);
        assert_eq!(m.delta_recomputed_x.get(), 14);
        assert_eq!(m.delta_agents.get(), 200);
        let text = m.render_prometheus();
        assert!(
            text.contains("mmlp_serve_delta_solves_total{mode=\"booted\"} 1"),
            "{text}"
        );
        assert!(text.contains("mmlp_serve_delta_dirty_x"), "{text}");
    }

    #[test]
    fn solve_delta_has_its_own_cache_series() {
        let m = ServeMetrics::new();
        m.cache_hit(Op::SolveDelta);
        m.cache_miss(Op::SolveDelta);
        m.cache_miss(Op::Solve);
        assert_eq!(m.cache_hits_total(), 1);
        assert_eq!(m.cache_misses_total(), 2);
        let text = m.render_prometheus();
        assert!(
            text.contains("mmlp_serve_cache_hits_total{op=\"solve_delta\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn op_latency_covers_every_verb_including_scrapes() {
        let m = ServeMetrics::new();
        m.observe_op_latency("solve", 100, 0);
        m.observe_op_latency("stats", 5, 0);
        m.observe_op_latency("metrics", 7, 0xfeed);
        m.observe_op_latency("not_a_verb", 1, 0);
        assert_eq!(m.op_latency_snapshot("solve").unwrap().total(), 1);
        assert_eq!(m.op_latency_snapshot("stats").unwrap().total(), 1);
        assert_eq!(m.op_latency_snapshot("solve_delta").unwrap().total(), 0);
        assert!(m.op_latency_snapshot("not_a_verb").is_none());
        let text = m.render_prometheus();
        assert!(
            text.contains("mmlp_serve_op_latency_us_count{op=\"stats\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("mmlp_serve_op_latency_us_count{op=\"metrics\"} 1"),
            "{text}"
        );
        // The traced metrics scrape left its exemplar behind.
        assert!(
            text.contains(
                "# EXEMPLAR mmlp_serve_op_latency_us{op=\"metrics\"} trace_id=\"000000000000feed\""
            ),
            "{text}"
        );
    }

    #[test]
    fn cache_shard_evictions_render_one_series_per_shard() {
        let m = ServeMetrics::new();
        let mut ev = [0u64; SHARDS];
        ev[3] = 7;
        ev[15] = 2;
        m.set_cache_shard_evictions(&ev);
        let text = m.render_prometheus();
        assert!(
            text.contains("mmlp_serve_cache_shard_evictions{shard=\"3\"} 7"),
            "{text}"
        );
        assert!(
            text.contains("mmlp_serve_cache_shard_evictions{shard=\"15\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("mmlp_serve_cache_shard_evictions{shard=\"0\"} 0"),
            "{text}"
        );
    }

    #[test]
    fn dedup_ratio_is_zero_before_any_solve() {
        let m = ServeMetrics::new();
        assert_eq!(m.dedup_ratio(), 0.0);
    }

    #[test]
    fn clones_share_the_cells() {
        let m = ServeMetrics::new();
        let m2 = m.clone();
        m.requests.inc();
        m2.requests.inc();
        assert_eq!(m.requests.get(), 2);
        assert!(m2
            .render_prometheus()
            .contains("mmlp_serve_requests_total 2"));
    }
}
