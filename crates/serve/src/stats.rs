//! Latency accounting shared by the server's `STATS` endpoint and the
//! load generator's report: a bounded log-linear histogram (HDR-style)
//! plus monotonic request counters.
//!
//! The histogram buckets microsecond values with 8 linear sub-buckets
//! per power of two, so any recorded value is off by at most 12.5%
//! while the whole structure is a few hundred `u64`s — safe to keep
//! hot forever in a long-running server.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-buckets per power of two (8 → ≤ 12.5% relative error).
const SUBS: usize = 8;
/// Values 0..8 land in exact unit buckets; beyond that, log-linear.
/// 34 octaves × 8 sub-buckets covers > 4 hours in microseconds.
const OCTAVES: usize = 34;
const BUCKETS: usize = SUBS + OCTAVES * SUBS;

fn bucket_index(us: u64) -> usize {
    if us < SUBS as u64 {
        return us as usize;
    }
    let e = 63 - us.leading_zeros() as usize; // floor(log2), ≥ 3
    let sub = ((us >> (e - 3)) & 7) as usize;
    ((e - 2) * SUBS + sub).min(BUCKETS - 1)
}

fn bucket_floor(idx: usize) -> u64 {
    if idx < SUBS {
        return idx as u64;
    }
    let g = idx / SUBS;
    let sub = (idx % SUBS) as u64;
    let e = g + 2;
    (SUBS as u64 + sub) << (e - 3)
}

/// A log-linear latency histogram over microseconds.
#[derive(Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum_us: u64,
    max_us: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; BUCKETS],
            total: 0,
            sum_us: 0,
            max_us: 0,
        }
    }

    /// Records one latency sample, in microseconds.
    pub fn record(&mut self, us: u64) {
        self.counts[bucket_index(us)] += 1;
        self.total += 1;
        self.sum_us += us;
        self.max_us = self.max_us.max(us);
    }

    /// Number of recorded samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Largest recorded sample (exact, not bucketed).
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.sum_us.checked_div(self.total).unwrap_or(0)
    }

    /// The latency at quantile `q ∈ (0, 1]`, as the lower bound of the
    /// bucket containing that rank (0 when empty).
    pub fn percentile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_floor(idx);
            }
        }
        self.max_us
    }

    /// Folds another histogram into this one (loadgen aggregates one
    /// per client thread).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_us += other.sum_us;
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Renders the occupied buckets as an aligned text bar chart — the
    /// loadgen's "latency histogram".
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("latency_us        count  share\n");
        if self.total == 0 {
            out.push_str("(no samples)\n");
            return out;
        }
        let peak = self.counts.iter().copied().max().unwrap_or(1).max(1);
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let bar = "#".repeat(((c * 40).div_ceil(peak)) as usize);
            let share = 100.0 * c as f64 / self.total as f64;
            out.push_str(&format!(
                "{:>12} {:>10} {:>5.1}% {}\n",
                bucket_floor(idx),
                c,
                share,
                bar
            ));
        }
        out
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Monotonic server-wide counters, updated lock-free from connection
/// threads and snapshotted by `STATS`.
#[derive(Default)]
pub struct Counters {
    /// Commands accepted and parsed (including `STATS` itself).
    pub requests: AtomicU64,
    /// Cacheable requests answered from the result cache.
    pub cache_hits: AtomicU64,
    /// Cacheable requests that had to run a solver.
    pub cache_misses: AtomicU64,
    /// Requests bounced with `BUSY`.
    pub busy: AtomicU64,
    /// Requests ending in any `ERR` reply other than `BUSY`.
    pub errors: AtomicU64,
    /// Requests killed by the per-request timeout.
    pub timeouts: AtomicU64,
    /// Connections accepted.
    pub connections: AtomicU64,
}

impl Counters {
    /// Relaxed increment — counters are statistics, not synchronisation.
    pub fn bump(field: &AtomicU64) {
        field.fetch_add(1, Ordering::Relaxed);
    }

    /// Relaxed read.
    pub fn read(field: &AtomicU64) -> u64 {
        field.load(Ordering::Relaxed)
    }
}

/// Aggregate view-arena accounting over the cold `SOLVE`s served so far
/// (the flat network path reports per-solve dedup numbers; `STATS`
/// surfaces their running totals). Updated lock-free from worker
/// threads.
#[derive(Default)]
pub struct ViewCounters {
    /// Cold solves that ran the flat network path.
    pub flat_solves: AtomicU64,
    /// Sum of unique interned view nodes across those solves.
    pub interned_nodes: AtomicU64,
    /// Sum of logical protocol payload bytes (what the trees would have
    /// cost on the wire).
    pub logical_bytes: AtomicU64,
    /// Sum of deduped arena bytes actually materialised.
    pub arena_bytes: AtomicU64,
    /// Largest single-solve arena footprint seen.
    pub peak_arena_bytes: AtomicU64,
}

impl ViewCounters {
    /// Folds one solve's arena accounting into the aggregates.
    pub fn record(&self, interned_nodes: u64, logical_bytes: u64, arena_bytes: u64, peak: u64) {
        self.flat_solves.fetch_add(1, Ordering::Relaxed);
        self.interned_nodes
            .fetch_add(interned_nodes, Ordering::Relaxed);
        self.logical_bytes
            .fetch_add(logical_bytes, Ordering::Relaxed);
        self.arena_bytes.fetch_add(arena_bytes, Ordering::Relaxed);
        self.peak_arena_bytes.fetch_max(peak, Ordering::Relaxed);
    }

    /// Aggregate dedup ratio: logical bytes per arena byte (0 before
    /// the first flat solve).
    pub fn dedup_ratio(&self) -> f64 {
        let arena = self.arena_bytes.load(Ordering::Relaxed);
        if arena == 0 {
            0.0
        } else {
            self.logical_bytes.load(Ordering::Relaxed) as f64 / arena as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_contiguous_and_monotone() {
        let mut prev = 0;
        for idx in 1..BUCKETS {
            let f = bucket_floor(idx);
            assert!(f > prev, "floor({idx}) = {f} ≤ floor({}) = {prev}", idx - 1);
            prev = f;
        }
        // Every value maps into the bucket whose floor is ≤ it.
        for v in [0u64, 1, 7, 8, 9, 100, 1023, 1024, 1_000_000, u64::MAX / 2] {
            let idx = bucket_index(v);
            assert!(bucket_floor(idx) <= v);
            if idx + 1 < BUCKETS {
                assert!(v < bucket_floor(idx + 1), "v={v} idx={idx}");
            }
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..8 {
            h.record(v);
        }
        for q in [0.01, 0.5, 1.0] {
            let p = h.percentile(q);
            assert!(p < 8);
        }
        assert_eq!(h.percentile(1.0), 7);
        assert_eq!(h.percentile(0.125), 0);
    }

    #[test]
    fn percentiles_are_order_statistics_within_bucket_error() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.percentile(0.50);
        let p95 = h.percentile(0.95);
        let p99 = h.percentile(0.99);
        assert!(p50 <= 500 && p50 as f64 >= 500.0 * 0.875, "p50 = {p50}");
        assert!(p95 <= 950 && p95 as f64 >= 950.0 * 0.875, "p95 = {p95}");
        assert!(p99 <= 990 && p99 as f64 >= 990.0 * 0.875, "p99 = {p99}");
        assert!(p50 <= p95 && p95 <= p99);
        assert_eq!(h.total(), 1000);
        assert_eq!(h.max_us(), 1000);
        assert_eq!(h.mean_us(), 500);
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in 0..500 {
            a.record(v * 3);
            all.record(v * 3);
        }
        for v in 0..300 {
            b.record(v * 7 + 1);
            all.record(v * 7 + 1);
        }
        a.merge(&b);
        assert_eq!(a.total(), all.total());
        for q in [0.5, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(a.percentile(q), all.percentile(q));
        }
        assert_eq!(a.max_us(), all.max_us());
    }

    #[test]
    fn render_lists_occupied_buckets() {
        let mut h = Histogram::new();
        h.record(5);
        h.record(5);
        h.record(100);
        let r = h.render();
        assert!(r.contains("latency_us"), "{r}");
        assert!(r.lines().count() >= 3, "{r}");
        assert!(Histogram::new().render().contains("no samples"));
    }
}
