//! The wire protocol: a small line-oriented request/response format
//! over TCP, documented normatively in `specs/PROTOCOL.md`.
//!
//! ```text
//! client → server   one command per line (LF; CRLF tolerated)
//!   TRACE <hex>                        optional prefix line: attaches a
//!                                      client-minted trace id (1–16 hex
//!                                      digits, nonzero) to the NEXT
//!                                      command; no reply of its own.
//!                                      Absent ⇒ the server samples by
//!                                      rate. Backward compatible: old
//!                                      clients never send it.
//!   PUT <nbytes>                       upload instance (body follows)
//!   PUT_DELTA <nbytes>                 register an edit delta (body:
//!                                      canonical delta text) against a
//!                                      stored base revision
//!   SOLVE <src> [R=<n>] [THREADS=<n>]  the paper's local algorithm
//!   SOLVE_DELTA <src> [R=] [THREADS=]  incremental re-solve of a
//!                                      revision (hash:<new rev>, or
//!                                      inline:<n> with delta text —
//!                                      PUT_DELTA + solve in one trip)
//!   OPTIMUM <src>                      exact simplex optimum
//!   SAFE <src>                         factor-ΔI safe baseline
//!   INFO <src>                         sizes, degrees, paper bound
//!   STATS                              counters + latency percentiles
//!   METRICS                            Prometheus text exposition
//!   SLEEP <ms>                         diagnostic: occupy a worker
//!   PING                               liveness probe
//!   SHUTDOWN                           graceful drain, then exit
//!   <src> = hash:<16 hex> | inline:<nbytes> (body follows the line)
//!
//! server → client
//!   OK <nbytes>\n<body>                success (body: nbytes of UTF-8)
//!   ERR <CODE> <message>\n             failure, single line
//! ```
//!
//! Bodies are length-prefixed rather than sentinel-terminated so that
//! instance text (which is itself line-oriented) never needs escaping,
//! and a client can frame replies without lookahead.

use mmlp_instance::hash::parse_hash_hex;

/// The solver operation a cacheable request asks for. Part of the
/// result-cache key, so each variant must map to a distinct stable tag.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Op {
    /// `SOLVE` — the paper's local algorithm (`LocalSolver`).
    Solve,
    /// `OPTIMUM` — the exact LP optimum via the two-phase simplex.
    Optimum,
    /// `SAFE` — the factor-ΔI safe baseline.
    Safe,
    /// `INFO` — structural stats and the paper bound.
    Info,
    /// `SOLVE_DELTA` — incremental re-solve of a delta revision via the
    /// ball-local dynamic solver. Bodies are bit-identical to `SOLVE`
    /// of the same revision, but kept in a separate cache namespace so
    /// the two paths stay independently verifiable.
    SolveDelta,
}

impl Op {
    /// Stable lowercase tag used in cache keys and stats.
    pub fn tag(&self) -> &'static str {
        match self {
            Op::Solve => "solve",
            Op::Optimum => "optimum",
            Op::Safe => "safe",
            Op::Info => "info",
            Op::SolveDelta => "solve_delta",
        }
    }

    /// Stable byte used as the `op` namespace of persisted result
    /// records (`mmlp_store::ResultKey`). Codes 1–4 and 6 belong to the
    /// service's reply bodies, and [`LINEAGE_OP_CODE`] (5) to its delta
    /// lineage records; other producers (the lab spiller) use disjoint
    /// ranges.
    pub fn code(&self) -> u8 {
        match self {
            Op::Solve => 1,
            Op::Optimum => 2,
            Op::Safe => 3,
            Op::Info => 4,
            Op::SolveDelta => 6,
        }
    }

    /// Inverse of [`Op::code`]; `None` for foreign namespace bytes.
    pub fn from_code(code: u8) -> Option<Op> {
        Some(match code {
            1 => Op::Solve,
            2 => Op::Optimum,
            3 => Op::Safe,
            4 => Op::Info,
            6 => Op::SolveDelta,
            _ => return None,
        })
    }
}

/// The `op` namespace byte of persisted **lineage** records: one result
/// record per registered delta, keyed by the *new* revision hash with
/// the canonical delta text as body, so a restarted node can replay its
/// revision graph from segments.
pub const LINEAGE_OP_CODE: u8 = 5;

/// Where the request's instance comes from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Source {
    /// `hash:<16 hex>` — a previously `PUT` instance, by content hash.
    Hash(u64),
    /// `inline:<nbytes>` — the instance text follows the command line.
    Inline(usize),
}

/// One parsed client command.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Command {
    /// Upload an instance; body of `nbytes` follows.
    Put { nbytes: usize },
    /// Register an edit delta (canonical delta text body of `nbytes`)
    /// against its base revision; replies with the lineage triple.
    PutDelta { nbytes: usize },
    /// Run a solver [`Op`] against a [`Source`].
    Run {
        op: Op,
        src: Source,
        big_r: usize,
        threads: usize,
    },
    /// Server counters and latency percentiles.
    Stats,
    /// The full metrics registry in Prometheus text exposition format.
    Metrics,
    /// Diagnostic: occupy one worker for `ms` milliseconds.
    Sleep { ms: u64 },
    /// Liveness probe.
    Ping,
    /// Stop accepting, drain in-flight work, exit.
    Shutdown,
}

impl Command {
    /// Length of the raw body that follows this command's line, if it
    /// declares one (`PUT`, `PUT_DELTA`, and `inline:` run sources).
    /// Commands pipeline: the body starts at the byte after the line's
    /// `\n`, and the next command line starts at the byte after the
    /// body — no separator, no padding.
    pub fn body_len(&self) -> Option<usize> {
        match self {
            Command::Put { nbytes } | Command::PutDelta { nbytes } => Some(*nbytes),
            Command::Run {
                src: Source::Inline(nbytes),
                ..
            } => Some(*nbytes),
            _ => None,
        }
    }
}

/// Default locality parameter when `R=` is omitted.
pub const DEFAULT_R: usize = 3;
/// Default solver thread count when `THREADS=` is omitted.
pub const DEFAULT_THREADS: usize = 1;

/// Error codes on the wire. `BUSY` is the backpressure signal; clients
/// are expected to back off and retry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// Malformed command or body.
    BadReq,
    /// `hash:` source not present in the instance store.
    NotFound,
    /// Worker queue at capacity; retry later.
    Busy,
    /// The request exceeded the server's per-request timeout.
    Timeout,
    /// The request panicked inside the solver (isolated; server lives).
    Panic,
    /// The server is draining and accepts no new work.
    Shutdown,
    /// A delta names a base revision hash the server does not hold.
    NoBase,
    /// A delta is malformed or cannot be applied to its base (unknown
    /// row/agent, bad coefficient, would leave the special form, …).
    BadDelta,
    /// Anything else.
    Internal,
}

impl ErrorCode {
    /// The wire token.
    pub fn as_str(&self) -> &'static str {
        match self {
            ErrorCode::BadReq => "BADREQ",
            ErrorCode::NotFound => "NOTFOUND",
            ErrorCode::Busy => "BUSY",
            ErrorCode::Timeout => "TIMEOUT",
            ErrorCode::Panic => "PANIC",
            ErrorCode::Shutdown => "SHUTDOWN",
            ErrorCode::NoBase => "NOBASE",
            ErrorCode::BadDelta => "BADDELTA",
            ErrorCode::Internal => "INTERNAL",
        }
    }

    /// Inverse of [`ErrorCode::as_str`].
    pub fn from_token(s: &str) -> Option<ErrorCode> {
        Some(match s {
            "BADREQ" => ErrorCode::BadReq,
            "NOTFOUND" => ErrorCode::NotFound,
            "BUSY" => ErrorCode::Busy,
            "TIMEOUT" => ErrorCode::Timeout,
            "PANIC" => ErrorCode::Panic,
            "SHUTDOWN" => ErrorCode::Shutdown,
            "NOBASE" => ErrorCode::NoBase,
            "BADDELTA" => ErrorCode::BadDelta,
            "INTERNAL" => ErrorCode::Internal,
            _ => return None,
        })
    }
}

/// A server reply, before framing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Reply {
    /// Success with a UTF-8 body.
    Ok(String),
    /// Failure with a code and a one-line message.
    Err(ErrorCode, String),
}

impl Reply {
    /// Frames the reply for the wire.
    pub fn to_wire(&self) -> String {
        match self {
            Reply::Ok(body) => format!("OK {}\n{}", body.len(), body),
            Reply::Err(code, msg) => {
                // The message must stay on one line to keep framing sane.
                let msg = msg.replace(['\n', '\r'], " ");
                format!("ERR {} {}\n", code.as_str(), msg.trim())
            }
        }
    }
}

/// The verb of the optional trace-context prefix line.
pub const TRACE_PREFIX: &str = "TRACE";

/// Recognises a `TRACE <hex>` prefix line. Returns `None` when the
/// line is not a trace line at all (it should be parsed as a command),
/// `Some(Ok(id))` for a well-formed one, and `Some(Err(msg))` for a
/// malformed one (a `BADREQ` reply — the verb was clearly `TRACE`, so
/// falling through to command parsing would mask the mistake).
pub fn parse_trace_line(line: &str) -> Option<Result<u64, String>> {
    let mut tokens = line.split_ascii_whitespace();
    if tokens.next() != Some(TRACE_PREFIX) {
        return None;
    }
    let Some(hex) = tokens.next() else {
        return Some(Err("TRACE needs a hex trace id".into()));
    };
    if tokens.next().is_some() {
        return Some(Err("TRACE takes exactly one argument".into()));
    }
    match mmlp_obs::parse_trace_id(hex) {
        Some(id) => Some(Ok(id)),
        None => Some(Err(format!(
            "bad trace id '{hex}' (need 1–16 hex digits, nonzero)"
        ))),
    }
}

fn parse_source(tok: &str) -> Result<Source, String> {
    if let Some(hex) = tok.strip_prefix("hash:") {
        let h = parse_hash_hex(hex).ok_or_else(|| format!("bad hash '{hex}'"))?;
        Ok(Source::Hash(h))
    } else if let Some(n) = tok.strip_prefix("inline:") {
        let n: usize = n.parse().map_err(|_| format!("bad inline length '{n}'"))?;
        Ok(Source::Inline(n))
    } else {
        Err(format!(
            "expected hash:<hex> or inline:<nbytes>, got '{tok}'"
        ))
    }
}

/// Parses one command line (without its body). Errors are the
/// human-readable part of a `BADREQ` reply.
pub fn parse_command(line: &str) -> Result<Command, String> {
    let mut tokens = line.split_ascii_whitespace();
    let verb = tokens.next().ok_or("empty command")?;
    let cmd = match verb {
        "PUT" => {
            let n: usize = tokens
                .next()
                .ok_or("PUT needs a byte count")?
                .parse()
                .map_err(|_| "bad PUT byte count".to_string())?;
            Command::Put { nbytes: n }
        }
        "PUT_DELTA" => {
            let n: usize = tokens
                .next()
                .ok_or("PUT_DELTA needs a byte count")?
                .parse()
                .map_err(|_| "bad PUT_DELTA byte count".to_string())?;
            Command::PutDelta { nbytes: n }
        }
        "SOLVE" | "SOLVE_DELTA" | "OPTIMUM" | "SAFE" | "INFO" => {
            let op = match verb {
                "SOLVE" => Op::Solve,
                "SOLVE_DELTA" => Op::SolveDelta,
                "OPTIMUM" => Op::Optimum,
                "SAFE" => Op::Safe,
                _ => Op::Info,
            };
            let src = parse_source(tokens.next().ok_or(format!("{verb} needs a source"))?)?;
            let mut big_r = DEFAULT_R;
            let mut threads = DEFAULT_THREADS;
            // Both parameters are bounded to u32 so the persisted
            // result key (`mmlp_store::ResultKey`, u32 fields) can
            // never truncate-collide two distinct requests.
            for tok in tokens.by_ref() {
                if let Some(v) = tok.strip_prefix("R=") {
                    big_r = v
                        .parse()
                        .ok()
                        .filter(|r| *r >= 2 && *r <= u32::MAX as usize)
                        .ok_or_else(|| format!("bad R '{v}' (need an integer ≥ 2, ≤ 2^32−1)"))?;
                } else if let Some(v) = tok.strip_prefix("THREADS=") {
                    threads = v
                        .parse()
                        .ok()
                        .filter(|t| *t >= 1 && *t <= u32::MAX as usize)
                        .ok_or_else(|| format!("bad THREADS '{v}'"))?;
                } else {
                    return Err(format!("unknown parameter '{tok}'"));
                }
            }
            Command::Run {
                op,
                src,
                big_r,
                threads,
            }
        }
        "STATS" => Command::Stats,
        "METRICS" => Command::Metrics,
        "SLEEP" => {
            let ms: u64 = tokens
                .next()
                .ok_or("SLEEP needs a duration in ms")?
                .parse()
                .map_err(|_| "bad SLEEP duration".to_string())?;
            Command::Sleep { ms }
        }
        "PING" => Command::Ping,
        "SHUTDOWN" => Command::Shutdown,
        other => return Err(format!("unknown command '{other}'")),
    };
    // Verbs above consume exactly their parameters; anything left over
    // is a framing mistake worth rejecting loudly.
    if let Some(extra) = tokens.next() {
        return Err(format!("unexpected trailing token '{extra}'"));
    }
    Ok(cmd)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_command_surface() {
        assert_eq!(parse_command("PUT 120"), Ok(Command::Put { nbytes: 120 }));
        assert_eq!(
            parse_command("PUT_DELTA 64"),
            Ok(Command::PutDelta { nbytes: 64 })
        );
        assert_eq!(
            parse_command("SOLVE_DELTA hash:00deadbeef001122 R=4 THREADS=2"),
            Ok(Command::Run {
                op: Op::SolveDelta,
                src: Source::Hash(0x00de_adbe_ef00_1122),
                big_r: 4,
                threads: 2,
            })
        );
        assert!(matches!(
            parse_command("SOLVE_DELTA inline:33"),
            Ok(Command::Run {
                op: Op::SolveDelta,
                src: Source::Inline(33),
                ..
            })
        ));
        assert_eq!(
            parse_command("SOLVE hash:00deadbeef001122 R=4 THREADS=2"),
            Ok(Command::Run {
                op: Op::Solve,
                src: Source::Hash(0x00de_adbe_ef00_1122),
                big_r: 4,
                threads: 2,
            })
        );
        assert_eq!(
            parse_command("OPTIMUM inline:64"),
            Ok(Command::Run {
                op: Op::Optimum,
                src: Source::Inline(64),
                big_r: DEFAULT_R,
                threads: DEFAULT_THREADS,
            })
        );
        assert!(matches!(
            parse_command("SAFE hash:0000000000000000"),
            Ok(Command::Run { op: Op::Safe, .. })
        ));
        assert!(matches!(
            parse_command("INFO inline:10"),
            Ok(Command::Run { op: Op::Info, .. })
        ));
        assert_eq!(parse_command("STATS"), Ok(Command::Stats));
        assert_eq!(parse_command("METRICS"), Ok(Command::Metrics));
        assert_eq!(parse_command("SLEEP 250"), Ok(Command::Sleep { ms: 250 }));
        assert_eq!(parse_command("PING"), Ok(Command::Ping));
        assert_eq!(parse_command("SHUTDOWN"), Ok(Command::Shutdown));
    }

    #[test]
    fn rejects_malformed_commands() {
        for bad in [
            "",
            "FROBNICATE",
            "PUT",
            "PUT x",
            "PUT_DELTA",
            "PUT_DELTA x",
            "SOLVE_DELTA",
            "SOLVE_DELTA inline:3 R=1",
            "SOLVE",
            "SOLVE nope",
            "SOLVE hash:123",              // not 16 hex digits
            "SOLVE inline:3 R=1",          // R < 2
            "SOLVE inline:3 R=4294967296", // R > u32::MAX would truncate the persisted key
            "SOLVE inline:3 THREADS=4294967296",
            "SOLVE inline:3 BAD=1", // unknown param
            "STATS extra",          // trailing token
            "METRICS now",
            "SLEEP",
            "SLEEP soon",
        ] {
            assert!(parse_command(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn trace_prefix_lines_parse_and_fail_loudly() {
        assert_eq!(
            parse_trace_line("TRACE 00deadbeef001122"),
            Some(Ok(0x00de_adbe_ef00_1122))
        );
        assert_eq!(parse_trace_line("TRACE f"), Some(Ok(0xf)));
        // Not a trace line at all: commands fall through untouched.
        assert_eq!(parse_trace_line("SOLVE hash:0"), None);
        assert_eq!(parse_trace_line("PING"), None);
        // Clearly TRACE, clearly wrong: a typed error, not fallthrough.
        for bad in [
            "TRACE",
            "TRACE 0",
            "TRACE zz",
            "TRACE 1 2",
            "TRACE 00000000000000000",
        ] {
            assert!(matches!(parse_trace_line(bad), Some(Err(_))), "{bad:?}");
        }
    }

    #[test]
    fn reply_framing_round_trips_by_eye() {
        assert_eq!(Reply::Ok("pong\n".into()).to_wire(), "OK 5\npong\n");
        assert_eq!(
            Reply::Err(ErrorCode::Busy, "queue full\nretry".into()).to_wire(),
            "ERR BUSY queue full retry\n"
        );
    }

    #[test]
    fn error_codes_round_trip() {
        for c in [
            ErrorCode::BadReq,
            ErrorCode::NotFound,
            ErrorCode::Busy,
            ErrorCode::Timeout,
            ErrorCode::Panic,
            ErrorCode::Shutdown,
            ErrorCode::NoBase,
            ErrorCode::BadDelta,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::from_token(c.as_str()), Some(c));
        }
        assert_eq!(ErrorCode::from_token("NOPE"), None);
    }

    #[test]
    fn op_codes_round_trip_and_avoid_the_lineage_namespace() {
        for op in [Op::Solve, Op::Optimum, Op::Safe, Op::Info, Op::SolveDelta] {
            assert_eq!(Op::from_code(op.code()), Some(op));
            assert_ne!(op.code(), LINEAGE_OP_CODE, "{op:?} collides with lineage");
        }
        assert_eq!(Op::from_code(LINEAGE_OP_CODE), None);
    }
}
