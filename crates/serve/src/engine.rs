//! The sockets-free core of the service: resolve an instance source,
//! execute a solver op, and cache the reply body under its
//! content-addressed key.
//!
//! Splitting this from the TCP layer keeps the whole hot path — cache
//! probe, solve, insert — directly benchmarkable (see the `serve_cache`
//! criterion bench) and unit-testable without a listener.
//!
//! **Cache correctness.** Every solver in this workspace is
//! deterministic for a fixed `(instance, R, threads)` — the local
//! algorithm is a constant-radius per-node computation, the simplex is
//! sequential, and the parallel bound computation is bit-identical by
//! construction (`tree_bound::all_parallel`). Reply bodies render
//! floats with Rust's shortest-round-trip formatting, so a cache hit is
//! **bit-identical** to the cold solve it replaces; the e2e suite
//! asserts exactly that over real sockets.

use crate::cache::Lru;
use crate::protocol::{ErrorCode, Op};
use mmlp_core::safe::safe_solution;
use mmlp_core::solver::LocalSolver;
use mmlp_instance::hash::{hash_hex, instance_hash};
use mmlp_instance::{textfmt, DegreeStats, Instance};
use mmlp_lp::solve_maxmin;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// The result-cache key: everything that determines a reply body.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Canonical instance content hash.
    pub instance: u64,
    /// The operation.
    pub op: Op,
    /// Locality parameter (0 for R-insensitive ops).
    pub big_r: usize,
    /// Solver thread count (results are bit-identical across thread
    /// counts, but the key keeps the service honest rather than
    /// assuming it).
    pub threads: usize,
}

impl CacheKey {
    /// Builds the key, normalising R away for ops that ignore it so
    /// equivalent requests share one entry.
    pub fn new(instance: u64, op: Op, big_r: usize, threads: usize) -> Self {
        let (big_r, threads) = match op {
            Op::Solve => (big_r, threads),
            // OPTIMUM/SAFE/INFO ignore both parameters.
            _ => (0, 1),
        };
        CacheKey {
            instance,
            op,
            big_r,
            threads,
        }
    }
}

/// A request failure, mapped onto a wire error code.
pub type EngineError = (ErrorCode, String);

/// The cache + store pair behind the server (and the bench).
pub struct Engine {
    results: Mutex<Lru<CacheKey, Arc<String>>>,
    store: Mutex<Lru<u64, Arc<Instance>>>,
}

impl Engine {
    /// Creates an engine with the given result-cache and instance-store
    /// budgets, both in bytes.
    pub fn new(cache_bytes: u64, store_bytes: u64) -> Self {
        Engine {
            results: Mutex::new(Lru::new(cache_bytes)),
            store: Mutex::new(Lru::new(store_bytes)),
        }
    }

    /// Parses and stores an instance; returns its canonical content
    /// hash. Semantically identical uploads (modulo comments,
    /// whitespace, line endings) dedupe onto one entry.
    pub fn put(&self, text: &str) -> Result<u64, EngineError> {
        let inst = textfmt::parse_instance(text)
            .map_err(|e| (ErrorCode::BadReq, format!("parse: {e}")))?;
        let canonical = textfmt::write_instance(&inst);
        let h = mmlp_instance::hash::fnv1a64(canonical.as_bytes());
        let cost = canonical.len() as u64;
        let mut store = self.store.lock().expect("store lock");
        if store.get(&h).is_none() && !store.insert(h, Arc::new(inst), cost) {
            return Err((
                ErrorCode::BadReq,
                format!("instance ({cost} bytes) exceeds the store budget"),
            ));
        }
        Ok(h)
    }

    /// Fetches a previously stored instance by content hash.
    pub fn fetch(&self, hash: u64) -> Result<Arc<Instance>, EngineError> {
        self.store
            .lock()
            .expect("store lock")
            .get(&hash)
            .cloned()
            .ok_or_else(|| {
                (
                    ErrorCode::NotFound,
                    format!("no instance {} (PUT it first)", hash_hex(hash)),
                )
            })
    }

    /// Probes the result cache.
    pub fn cached(&self, key: &CacheKey) -> Option<Arc<String>> {
        self.results.lock().expect("cache lock").get(key).cloned()
    }

    /// Inserts a computed reply body.
    pub fn insert(&self, key: CacheKey, body: Arc<String>) {
        let cost = body.len() as u64;
        self.results
            .lock()
            .expect("cache lock")
            .insert(key, body, cost);
    }

    /// `(entries, used bytes, evictions)` of the result cache.
    pub fn cache_stats(&self) -> (usize, u64, u64) {
        let c = self.results.lock().expect("cache lock");
        (c.len(), c.used(), c.evictions())
    }

    /// `(entries, used bytes)` of the instance store.
    pub fn store_stats(&self) -> (usize, u64) {
        let s = self.store.lock().expect("store lock");
        (s.len(), s.used())
    }
}

/// Executes one solver op against an instance and renders the reply
/// body. Pure compute: no cache, no locks — this is what the server
/// submits to the worker pool, and what the bench calls "cold".
/// `Err` is a one-line reason (e.g. an unbounded instance under
/// `OPTIMUM`), mapped to `ERR INTERNAL` on the wire and never cached.
pub fn execute(op: Op, inst: &Instance, big_r: usize, threads: usize) -> Result<String, String> {
    let mut out = String::new();
    match op {
        Op::Solve => {
            let stats = DegreeStats::of(inst);
            let solver = LocalSolver::new(big_r.max(2)).with_threads(threads.max(1));
            let run = solver.solve(inst);
            let utility = run.solution.utility(inst);
            let _ = writeln!(out, "utility {utility}");
            let _ = writeln!(
                out,
                "guarantee {}",
                solver.guarantee(stats.delta_i.max(2), stats.delta_k.max(2))
            );
            let _ = writeln!(out, "optimum_upper_bound {}", run.optimum_upper_bound());
            for v in inst.agents() {
                let _ = writeln!(out, "x {} {}", v.raw(), run.solution.value(v));
            }
        }
        Op::Optimum => {
            let opt = solve_maxmin(inst).map_err(|e| e.to_string())?;
            let _ = writeln!(out, "optimum {}", opt.omega);
            for v in inst.agents() {
                let _ = writeln!(out, "x {} {}", v.raw(), opt.solution.value(v));
            }
        }
        Op::Safe => {
            let x = safe_solution(inst);
            let _ = writeln!(out, "utility {}", x.utility(inst));
            for v in inst.agents() {
                let _ = writeln!(out, "x {} {}", v.raw(), x.value(v));
            }
        }
        Op::Info => {
            let s = DegreeStats::of(inst);
            let _ = writeln!(out, "agents {}", inst.n_agents());
            let _ = writeln!(out, "constraints {}", inst.n_constraints());
            let _ = writeln!(out, "objectives {}", inst.n_objectives());
            let _ = writeln!(out, "delta_i {}", s.delta_i);
            let _ = writeln!(out, "delta_k {}", s.delta_k);
            let (di, dk) = (s.delta_i.max(2), s.delta_k.max(2));
            let _ = writeln!(out, "paper_bound {}", mmlp_core::ratio::threshold(di, dk));
            let _ = writeln!(out, "hash {}", hash_hex(instance_hash(inst)));
            match mmlp_instance::validate::check(inst) {
                Ok(()) => {
                    let _ = writeln!(out, "valid true");
                }
                Err(e) => {
                    let _ = writeln!(out, "valid false  # {e}");
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmlp_gen::catalog;

    fn inst() -> Instance {
        catalog()
            .iter()
            .find(|f| f.name == "bandwidth")
            .unwrap()
            .instance(16, 1)
    }

    #[test]
    fn put_then_fetch_round_trips_by_content_hash() {
        let e = Engine::new(1 << 20, 1 << 20);
        let text = textfmt::write_instance(&inst());
        let h = e.put(&text).unwrap();
        assert_eq!(h, instance_hash(&inst()));
        let got = e.fetch(h).unwrap();
        assert_eq!(textfmt::write_instance(&got), text);

        // A noisy but equivalent upload dedupes to the same hash.
        let noisy = text.replace('\n', "  # c\r\n");
        assert_eq!(e.put(&noisy).unwrap(), h);
        assert_eq!(e.store_stats().0, 1);
    }

    #[test]
    fn fetch_of_unknown_hash_is_notfound() {
        let e = Engine::new(1024, 1024);
        let err = e.fetch(0xdead_beef).unwrap_err();
        assert_eq!(err.0, ErrorCode::NotFound);
    }

    #[test]
    fn put_rejects_garbage_and_oversize() {
        let e = Engine::new(1024, 64);
        assert_eq!(e.put("not an instance").unwrap_err().0, ErrorCode::BadReq);
        let text = textfmt::write_instance(&inst());
        assert!(text.len() > 64);
        assert_eq!(e.put(&text).unwrap_err().0, ErrorCode::BadReq);
    }

    #[test]
    fn execute_is_deterministic_per_op() {
        let i = inst();
        for op in [Op::Solve, Op::Optimum, Op::Safe, Op::Info] {
            let a = execute(op, &i, 3, 1).unwrap();
            let b = execute(op, &i, 3, 1).unwrap();
            assert_eq!(a, b, "{op:?} must be deterministic");
            assert!(!a.is_empty());
        }
        // Thread count must not change the solve body (bit-identity).
        assert_eq!(
            execute(Op::Solve, &i, 3, 1).unwrap(),
            execute(Op::Solve, &i, 3, 4).unwrap()
        );
    }

    #[test]
    fn cache_key_normalises_r_for_insensitive_ops() {
        let k1 = CacheKey::new(7, Op::Optimum, 3, 4);
        let k2 = CacheKey::new(7, Op::Optimum, 9, 1);
        assert_eq!(k1, k2);
        let s1 = CacheKey::new(7, Op::Solve, 3, 1);
        let s2 = CacheKey::new(7, Op::Solve, 4, 1);
        assert_ne!(s1, s2);
    }

    #[test]
    fn cached_bodies_come_back_bit_identical() {
        let e = Engine::new(1 << 20, 1 << 20);
        let i = inst();
        let key = CacheKey::new(instance_hash(&i), Op::Solve, 3, 1);
        assert!(e.cached(&key).is_none());
        let cold = Arc::new(execute(Op::Solve, &i, 3, 1).unwrap());
        e.insert(key, Arc::clone(&cold));
        let warm = e.cached(&key).expect("hit");
        assert_eq!(warm.as_bytes(), cold.as_bytes());
        assert_eq!(e.cache_stats().0, 1);
    }
}
