//! The sockets-free core of the service: resolve an instance source,
//! execute a solver op, and cache the reply body under its
//! content-addressed key.
//!
//! Splitting this from the TCP layer keeps the whole hot path — cache
//! probe, solve, insert — directly benchmarkable (see the `serve_cache`
//! criterion bench) and unit-testable without a listener.
//!
//! **Cache correctness.** Every solver in this workspace is
//! deterministic for a fixed `(instance, R, threads)` — the local
//! algorithm is a constant-radius per-node computation, the simplex is
//! sequential, and the parallel bound computation is bit-identical by
//! construction (`tree_bound::all_parallel`). Reply bodies render
//! floats with Rust's shortest-round-trip formatting, so a cache hit is
//! **bit-identical** to the cold solve it replaces; the e2e suite
//! asserts exactly that over real sockets.

use crate::cache::{ShardKey, ShardedLru, SHARDS};
use crate::delta::{DeltaCoordinator, DeltaSolveInfo};
use crate::protocol::{ErrorCode, Op, LINEAGE_OP_CODE};
use mmlp_core::safe::safe_solution;
use mmlp_core::solver::LocalSolver;
use mmlp_instance::delta::{Delta, Lineage};
use mmlp_instance::hash::{hash_hex, instance_hash};
use mmlp_instance::{textfmt, DegreeStats, Instance};
use mmlp_lp::solve_maxmin;
use mmlp_store::{ResultKey, Store};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The result-cache key: everything that determines a reply body.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Canonical instance content hash.
    pub instance: u64,
    /// The operation.
    pub op: Op,
    /// Locality parameter (0 for R-insensitive ops).
    pub big_r: usize,
    /// Solver thread count (results are bit-identical across thread
    /// counts, but the key keeps the service honest rather than
    /// assuming it).
    pub threads: usize,
}

impl ShardKey for CacheKey {
    /// Result-cache entries shard by the *instance* hash's low bits, so
    /// all ops on one instance colocate and a STATS aggregation over
    /// shards sees each instance's footprint in one place.
    fn shard(&self) -> usize {
        (self.instance & (SHARDS as u64 - 1)) as usize
    }
}

impl CacheKey {
    /// Builds the key, normalising R away for ops that ignore it so
    /// equivalent requests share one entry.
    pub fn new(instance: u64, op: Op, big_r: usize, threads: usize) -> Self {
        let (big_r, threads) = match op {
            Op::Solve | Op::SolveDelta => (big_r, threads),
            // OPTIMUM/SAFE/INFO ignore both parameters.
            _ => (0, 1),
        };
        CacheKey {
            instance,
            op,
            big_r,
            threads,
        }
    }
}

/// A request failure, mapped onto a wire error code.
pub type EngineError = (ErrorCode, String);

/// What a warm start loaded from the persistent store at boot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WarmStart {
    /// Instances loaded into the in-memory instance store.
    pub instances: u64,
    /// Result bodies loaded into the result cache.
    pub results: u64,
    /// Delta lineage edges replayed into the revision graph.
    pub lineage: u64,
}

/// The cache + store pair behind the server (and the bench), with an
/// optional persistent [`Store`] underneath: when mounted, `PUT`
/// instances and solved results are appended to disk as they arrive,
/// and a fresh engine warm-starts its LRUs from the store at
/// construction — so a restart turns previously-solved requests back
/// into bit-identical cache hits.
pub struct Engine {
    results: ShardedLru<CacheKey, Arc<String>>,
    store: ShardedLru<u64, Arc<Instance>>,
    delta: DeltaCoordinator,
    persist: Option<Store>,
    persist_errors: AtomicU64,
    warm: WarmStart,
}

impl Engine {
    /// Creates a memory-only engine with the given result-cache and
    /// instance-store budgets, both in bytes.
    pub fn new(cache_bytes: u64, store_bytes: u64) -> Self {
        Engine {
            results: ShardedLru::new(cache_bytes),
            store: ShardedLru::new(store_bytes),
            // Parked delta solvers share the instance-store budget: both
            // hold O(instance) state, so one knob bounds both.
            delta: DeltaCoordinator::new(store_bytes),
            persist: None,
            persist_errors: AtomicU64::new(0),
            warm: WarmStart::default(),
        }
    }

    /// Creates an engine backed by a persistent store, warm-starting
    /// both LRUs from it. Result records in foreign `op` namespaces
    /// (e.g. lab spills sharing the store) are left on disk untouched.
    pub fn with_store(cache_bytes: u64, store_bytes: u64, persist: Store) -> std::io::Result<Self> {
        let engine = Engine::new(cache_bytes, store_bytes);
        let mut warm = WarmStart::default();
        {
            // Loading stops once the total budget is reached: decoding a
            // record only to evict an earlier one would make boot time
            // O(store size) for a budget-bounded benefit, and would
            // inflate the warm counters with entries that are already
            // gone. The running totals track successful inserts, so
            // what's loaded is exactly what's resident (an insert can
            // also be refused by a full *shard* before the total is hit).
            let mut store_used = 0u64;
            for (hash, disk_len) in persist.instance_records() {
                // Cost proxy: the framed on-disk length (the binary
                // blob is within ~2× of the canonical text `put` uses,
                // and reading it off the index avoids re-rendering
                // every instance at boot).
                if store_used + u64::from(disk_len) > engine.store.budget() {
                    break;
                }
                if let Some(inst) = persist.get_instance(hash)? {
                    if engine
                        .store
                        .insert(hash, Arc::new(inst), u64::from(disk_len))
                    {
                        warm.instances += 1;
                        store_used += u64::from(disk_len);
                    }
                }
            }
            let mut results_used = 0u64;
            for (rkey, disk_len) in persist.result_records() {
                let Some(op) = Op::from_code(rkey.op) else {
                    continue; // a foreign producer's namespace
                };
                if results_used + u64::from(disk_len) > engine.results.budget() {
                    break;
                }
                if let Some(body) = persist.get_result(&rkey)? {
                    let key = CacheKey {
                        instance: rkey.instance,
                        op,
                        big_r: rkey.big_r as usize,
                        threads: rkey.threads as usize,
                    };
                    let cost = body.len() as u64;
                    if engine.results.insert(key, Arc::new(body), cost) {
                        warm.results += 1;
                        results_used += cost;
                    }
                }
            }
            // Lineage records (op namespace 5) rebuild the revision
            // graph in full — they are tiny (one delta text each) and
            // not LRU-budgeted, so a restarted node can replay any
            // registered chain from segments on demand.
            for (rkey, _len) in persist.result_records() {
                if rkey.op != LINEAGE_OP_CODE {
                    continue;
                }
                let Some(text) = persist.get_result(&rkey)? else {
                    continue;
                };
                let Ok(delta) = Delta::parse_text(&text) else {
                    continue; // tolerate a damaged record; chains re-boot
                };
                engine.delta.record(rkey.instance, delta.base, text);
                warm.lineage += 1;
            }
        }
        Ok(Engine {
            persist: Some(persist),
            warm,
            ..engine
        })
    }

    /// What the warm start loaded (zeros for a memory-only engine).
    pub fn warm_start(&self) -> WarmStart {
        self.warm
    }

    /// Whether a persistent store is mounted.
    pub fn is_persistent(&self) -> bool {
        self.persist.is_some()
    }

    /// Failed disk appends so far (serving continued from memory).
    pub fn persist_errors(&self) -> u64 {
        self.persist_errors.load(Ordering::Relaxed)
    }

    /// A persistence failure must not fail the request — the reply is
    /// already computed and correct; only its durability is degraded.
    fn note_persist<T>(&self, r: std::io::Result<T>) {
        if r.is_err() {
            self.persist_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Parses and stores an instance; returns its canonical content
    /// hash. Semantically identical uploads (modulo comments,
    /// whitespace, line endings) dedupe onto one entry.
    pub fn put(&self, text: &str) -> Result<u64, EngineError> {
        let inst = textfmt::parse_instance(text)
            .map_err(|e| (ErrorCode::BadReq, format!("parse: {e}")))?;
        let canonical = textfmt::write_instance(&inst);
        let h = mmlp_instance::hash::fnv1a64(canonical.as_bytes());
        let cost = canonical.len() as u64;
        let inst = Arc::new(inst);
        if self.store.get(&h).is_none() && !self.store.insert(h, Arc::clone(&inst), cost) {
            return Err((
                ErrorCode::BadReq,
                format!("instance ({cost} bytes) exceeds the store budget"),
            ));
        }
        // Persist outside the LRU lock; `put_instance` dedupes on hash.
        if let Some(p) = &self.persist {
            self.note_persist(p.put_instance(&inst));
        }
        Ok(h)
    }

    /// Fetches a previously stored instance by content hash.
    pub fn fetch(&self, hash: u64) -> Result<Arc<Instance>, EngineError> {
        self.store.get(&hash).ok_or_else(|| {
            (
                ErrorCode::NotFound,
                format!("no instance {} (PUT it first)", hash_hex(hash)),
            )
        })
    }

    /// Probes the result cache.
    pub fn cached(&self, key: &CacheKey) -> Option<Arc<String>> {
        self.results.get(key)
    }

    /// Inserts a computed reply body (and appends it to the persistent
    /// store when one is mounted).
    pub fn insert(&self, key: CacheKey, body: Arc<String>) {
        let cost = body.len() as u64;
        self.results.insert(key, Arc::clone(&body), cost);
        if let Some(p) = &self.persist {
            let rkey = ResultKey {
                instance: key.instance,
                op: key.op.code(),
                big_r: key.big_r as u32,
                threads: key.threads as u32,
            };
            self.note_persist(p.put_result(rkey, &body));
        }
    }

    /// `(entries, used bytes, evictions)` of the result cache,
    /// aggregated across all shards.
    pub fn cache_stats(&self) -> (usize, u64, u64) {
        self.results.stats()
    }

    /// Per-shard eviction counters of the result cache, indexed by
    /// shard (instance-hash low bits). Exposed as the
    /// `cache_shard_evictions` metric so a skewed workload that
    /// hammers one shard's budget slice is visible.
    pub fn cache_shard_evictions(&self) -> [u64; SHARDS] {
        self.results.shard_evictions()
    }

    /// `(entries, used bytes)` of the instance store, aggregated
    /// across all shards.
    pub fn store_stats(&self) -> (usize, u64) {
        let (len, used, _) = self.store.stats();
        (len, used)
    }

    /// Registers an edit delta (canonical or liberal text) against its
    /// base revision: validates and applies it, stores the new revision
    /// instance, records the lineage edge, and persists both when a
    /// store is mounted. Returns the content-hashed lineage triple.
    pub fn put_delta(&self, text: &str) -> Result<Lineage, EngineError> {
        let delta = Delta::parse_text(text)
            .map_err(|e| (ErrorCode::BadDelta, format!("delta parse: {e}")))?;
        let base = self.store.get(&delta.base);
        let base = base.ok_or_else(|| {
            (
                ErrorCode::NoBase,
                format!(
                    "no base revision {} (PUT it or register its lineage first)",
                    hash_hex(delta.base)
                ),
            )
        })?;
        let (new_inst, lineage) = delta
            .apply_hashed(&base)
            .map_err(|e| (ErrorCode::BadDelta, format!("delta apply: {e}")))?;
        // Store the new revision exactly like a PUT of its text would,
        // so SOLVE/INFO by the new hash work immediately.
        let canonical = textfmt::write_instance(&new_inst);
        let cost = canonical.len() as u64;
        let new_inst = Arc::new(new_inst);
        if self.store.get(&lineage.new).is_none()
            && !self.store.insert(lineage.new, Arc::clone(&new_inst), cost)
        {
            return Err((
                ErrorCode::BadReq,
                format!("revision ({cost} bytes) exceeds the store budget"),
            ));
        }
        let canonical_delta = delta.to_text();
        self.delta
            .record(lineage.new, lineage.base, canonical_delta.clone());
        if let Some(p) = &self.persist {
            self.note_persist(p.put_instance(&new_inst));
            self.note_persist(p.put_result(
                ResultKey {
                    instance: lineage.new,
                    op: LINEAGE_OP_CODE,
                    big_r: 0,
                    threads: 0,
                },
                &canonical_delta,
            ));
        }
        Ok(lineage)
    }

    /// Incrementally solves a registered revision via the delta
    /// coordinator (warm / advanced / booted — see [`crate::delta`]).
    /// The body is bit-identical to `SOLVE` of the same revision.
    pub fn solve_delta(
        &self,
        revision: u64,
        big_r: usize,
        threads: usize,
    ) -> Result<(String, DeltaSolveInfo), EngineError> {
        self.delta
            .solve(revision, big_r, threads, |h| self.store.get(&h))
    }

    /// `(lineage edges, parked solvers, parked solver bytes)`.
    pub fn delta_stats(&self) -> (usize, usize, u64) {
        let (solvers, bytes) = self.delta.solver_stats();
        (self.delta.lineage_len(), solvers, bytes)
    }
}

/// Per-solve view-arena accounting, reported by the flat network path
/// for `SOLVE` and aggregated into the `STATS` dedup counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolveInfo {
    /// Unique view nodes interned during the solve.
    pub interned_nodes: u64,
    /// Logical protocol payload bytes (tree accounting).
    pub logical_bytes: u64,
    /// Deduped arena bytes actually materialised.
    pub arena_bytes: u64,
    /// Peak arena footprint during the solve.
    pub peak_arena_bytes: u64,
    /// Per-phase wall times and memo/chunk telemetry of the flat solve
    /// (all-zero only if the network path ever stopped tracing).
    pub trace: mmlp_core::distributed::FlatSolveTrace,
}

/// [`execute`] plus the view-arena accounting of `SOLVE` requests
/// (`None` for ops that build no views). The reply body is unchanged —
/// the accounting travels beside it so caching stays body-only.
pub fn execute_traced(
    op: Op,
    inst: &Instance,
    big_r: usize,
    threads: usize,
) -> Result<(String, Option<SolveInfo>), String> {
    let mut out = String::new();
    let mut info = None;
    match op {
        Op::Solve => {
            let stats = DegreeStats::of(inst);
            // Cold solves run over the flat network path: bit-identical
            // bodies to the centralized path (asserted in tests), plus
            // the dedup accounting STATS surfaces.
            let solver = LocalSolver::new(big_r.max(2))
                .with_threads(threads.max(1))
                .via_network(true);
            let run = solver.solve(inst);
            let utility = run.solution.utility(inst);
            let _ = writeln!(out, "utility {utility}");
            let _ = writeln!(
                out,
                "guarantee {}",
                solver.guarantee(stats.delta_i.max(2), stats.delta_k.max(2))
            );
            let _ = writeln!(out, "optimum_upper_bound {}", run.optimum_upper_bound());
            for v in inst.agents() {
                let _ = writeln!(out, "x {} {}", v.raw(), run.solution.value(v));
            }
            info = run.net_stats.map(|s| SolveInfo {
                interned_nodes: s.interned_nodes,
                logical_bytes: s.bytes,
                arena_bytes: s.arena_bytes,
                peak_arena_bytes: s.peak_arena_bytes,
                trace: run.flat_trace.unwrap_or_default(),
            });
        }
        Op::Optimum => {
            let opt = solve_maxmin(inst).map_err(|e| e.to_string())?;
            let _ = writeln!(out, "optimum {}", opt.omega);
            for v in inst.agents() {
                let _ = writeln!(out, "x {} {}", v.raw(), opt.solution.value(v));
            }
        }
        Op::Safe => {
            let x = safe_solution(inst);
            let _ = writeln!(out, "utility {}", x.utility(inst));
            for v in inst.agents() {
                let _ = writeln!(out, "x {} {}", v.raw(), x.value(v));
            }
        }
        // SOLVE_DELTA never reaches the stateless executor: the server
        // routes it to the delta coordinator, which owns the parked
        // solvers its bodies are rendered from.
        Op::SolveDelta => {
            return Err("SOLVE_DELTA is handled by the delta coordinator".into());
        }
        Op::Info => {
            let s = DegreeStats::of(inst);
            let _ = writeln!(out, "agents {}", inst.n_agents());
            let _ = writeln!(out, "constraints {}", inst.n_constraints());
            let _ = writeln!(out, "objectives {}", inst.n_objectives());
            let _ = writeln!(out, "delta_i {}", s.delta_i);
            let _ = writeln!(out, "delta_k {}", s.delta_k);
            let (di, dk) = (s.delta_i.max(2), s.delta_k.max(2));
            let _ = writeln!(out, "paper_bound {}", mmlp_core::ratio::threshold(di, dk));
            let _ = writeln!(out, "hash {}", hash_hex(instance_hash(inst)));
            match mmlp_instance::validate::check(inst) {
                Ok(()) => {
                    let _ = writeln!(out, "valid true");
                }
                Err(e) => {
                    let _ = writeln!(out, "valid false  # {e}");
                }
            }
        }
    }
    Ok((out, info))
}

/// Executes one solver op against an instance and renders the reply
/// body. Pure compute: no cache, no locks — this is what the server
/// submits to the worker pool, and what the bench calls "cold".
/// `Err` is a one-line reason (e.g. an unbounded instance under
/// `OPTIMUM`), mapped to `ERR INTERNAL` on the wire and never cached.
pub fn execute(op: Op, inst: &Instance, big_r: usize, threads: usize) -> Result<String, String> {
    execute_traced(op, inst, big_r, threads).map(|(body, _)| body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmlp_gen::catalog;

    fn inst() -> Instance {
        catalog()
            .iter()
            .find(|f| f.name == "bandwidth")
            .unwrap()
            .instance(16, 1)
    }

    #[test]
    fn put_then_fetch_round_trips_by_content_hash() {
        let e = Engine::new(1 << 20, 1 << 20);
        let text = textfmt::write_instance(&inst());
        let h = e.put(&text).unwrap();
        assert_eq!(h, instance_hash(&inst()));
        let got = e.fetch(h).unwrap();
        assert_eq!(textfmt::write_instance(&got), text);

        // A noisy but equivalent upload dedupes to the same hash.
        let noisy = text.replace('\n', "  # c\r\n");
        assert_eq!(e.put(&noisy).unwrap(), h);
        assert_eq!(e.store_stats().0, 1);
    }

    #[test]
    fn fetch_of_unknown_hash_is_notfound() {
        let e = Engine::new(1024, 1024);
        let err = e.fetch(0xdead_beef).unwrap_err();
        assert_eq!(err.0, ErrorCode::NotFound);
    }

    #[test]
    fn put_rejects_garbage_and_oversize() {
        let e = Engine::new(1024, 64);
        assert_eq!(e.put("not an instance").unwrap_err().0, ErrorCode::BadReq);
        let text = textfmt::write_instance(&inst());
        assert!(text.len() > 64);
        assert_eq!(e.put(&text).unwrap_err().0, ErrorCode::BadReq);
    }

    #[test]
    fn execute_is_deterministic_per_op() {
        let i = inst();
        for op in [Op::Solve, Op::Optimum, Op::Safe, Op::Info] {
            let a = execute(op, &i, 3, 1).unwrap();
            let b = execute(op, &i, 3, 1).unwrap();
            assert_eq!(a, b, "{op:?} must be deterministic");
            assert!(!a.is_empty());
        }
        // Thread count must not change the solve body (bit-identity).
        assert_eq!(
            execute(Op::Solve, &i, 3, 1).unwrap(),
            execute(Op::Solve, &i, 3, 4).unwrap()
        );
    }

    #[test]
    fn solve_reports_view_dedup_info() {
        let i = inst();
        let (body, info) = execute_traced(Op::Solve, &i, 3, 1).unwrap();
        let info = info.expect("SOLVE runs the flat network path");
        assert!(info.interned_nodes > 0 && info.arena_bytes > 0);
        assert!(
            info.logical_bytes > info.arena_bytes,
            "bandwidth ladders are non-tree: dedup ratio must exceed 1"
        );
        assert!(info.trace.total_ns > 0, "the network path is traced");
        assert!(
            info.trace.batch.memo_hits + info.trace.batch.memo_misses + info.trace.batch.memo_skips
                > 0
        );
        assert_eq!(body, execute(Op::Solve, &i, 3, 1).unwrap());
        // Ops that build no views report no info.
        let (_, none) = execute_traced(Op::Info, &i, 3, 1).unwrap();
        assert_eq!(none, None);
    }

    #[test]
    fn cache_key_normalises_r_for_insensitive_ops() {
        let k1 = CacheKey::new(7, Op::Optimum, 3, 4);
        let k2 = CacheKey::new(7, Op::Optimum, 9, 1);
        assert_eq!(k1, k2);
        let s1 = CacheKey::new(7, Op::Solve, 3, 1);
        let s2 = CacheKey::new(7, Op::Solve, 4, 1);
        assert_ne!(s1, s2);
    }

    #[test]
    fn persistent_engine_warm_starts_bit_identically() {
        let dir = std::env::temp_dir().join(format!(
            "mmlp-engine-warm-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let text = textfmt::write_instance(&inst());
        let cold;
        let key = CacheKey::new(instance_hash(&inst()), Op::Solve, 3, 1);
        {
            let (store, _) = Store::open(&dir).unwrap();
            let e = Engine::with_store(1 << 20, 1 << 20, store).unwrap();
            assert_eq!(e.warm_start(), WarmStart::default());
            let h = e.put(&text).unwrap();
            assert_eq!(h, key.instance);
            cold = Arc::new(execute(Op::Solve, &inst(), 3, 1).unwrap());
            e.insert(key, Arc::clone(&cold));
            assert_eq!(e.persist_errors(), 0);
        }
        // A brand-new engine on the same directory: the instance is
        // fetchable and the result is a warm hit, both bit-identical.
        let (store, report) = Store::open(&dir).unwrap();
        assert_eq!((report.instances, report.results), (1, 1));
        let e = Engine::with_store(1 << 20, 1 << 20, store).unwrap();
        assert_eq!(
            e.warm_start(),
            WarmStart {
                instances: 1,
                results: 1,
                lineage: 0
            }
        );
        let back = e.fetch(key.instance).unwrap();
        assert_eq!(textfmt::write_instance(&back), text);
        let warm = e.cached(&key).expect("warm hit after restart");
        assert_eq!(warm.as_bytes(), cold.as_bytes());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn foreign_result_namespaces_are_skipped_at_warm_start() {
        let dir = std::env::temp_dir().join(format!(
            "mmlp-engine-foreign-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let h;
        {
            let (store, _) = Store::open(&dir).unwrap();
            h = store.put_instance(&inst()).unwrap();
            // A lab spill shares the store under op codes ≥ 16.
            store
                .put_result(
                    ResultKey {
                        instance: h,
                        op: 16,
                        big_r: 3,
                        threads: 0,
                    },
                    "{\"job\":\"x\"}",
                )
                .unwrap();
        }
        let (store, _) = Store::open(&dir).unwrap();
        let e = Engine::with_store(1 << 20, 1 << 20, store).unwrap();
        assert_eq!(
            e.warm_start(),
            WarmStart {
                instances: 1,
                results: 0,
                lineage: 0
            }
        );
        assert_eq!(e.cache_stats().0, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    fn special_inst() -> Instance {
        catalog()
            .iter()
            .find(|f| f.name == "special-form")
            .unwrap()
            .instance(16, 1)
    }

    /// A one-edit delta text bumping constraint 0's first coefficient.
    fn bump_delta(inst: &Instance) -> String {
        let e = inst.constraint_row(mmlp_instance::ids::ConstraintId::new(0))[0];
        format!(
            "mmlpdelta 1\nbase {}\nset c 0 {}:{}\n",
            hash_hex(instance_hash(inst)),
            e.agent.raw(),
            e.coef * 1.5
        )
    }

    #[test]
    fn put_delta_registers_a_solvable_revision() {
        let e = Engine::new(1 << 20, 1 << 20);
        let base = special_inst();
        e.put(&textfmt::write_instance(&base)).unwrap();
        let delta_text = bump_delta(&base);
        let lin = e.put_delta(&delta_text).unwrap();
        assert_eq!(lin.base, instance_hash(&base));
        assert_ne!(lin.new, lin.base);
        // The new revision is fetchable and SOLVE_DELTA's body is
        // bit-identical to a from-scratch SOLVE of it.
        let new_inst = e.fetch(lin.new).unwrap();
        let (body, info) = e.solve_delta(lin.new, 3, 1).unwrap();
        assert_eq!(body, execute(Op::Solve, &new_inst, 3, 1).unwrap());
        assert!(info.recomputed_x > 0);
        let (edges, solvers, bytes) = e.delta_stats();
        assert_eq!((edges, solvers), (1, 1));
        assert!(bytes > 0);
        // Re-registering the same delta is idempotent.
        assert_eq!(e.put_delta(&delta_text).unwrap(), lin);
        assert_eq!(e.delta_stats().0, 1);
    }

    #[test]
    fn put_delta_maps_failures_to_typed_codes() {
        let e = Engine::new(1 << 20, 1 << 20);
        assert_eq!(e.put_delta("junk").unwrap_err().0, ErrorCode::BadDelta);
        // Well-formed delta against a base this node never saw.
        let orphan = "mmlpdelta 1\nbase 00000000deadbeef\nset c 0 0:1.5\n";
        assert_eq!(e.put_delta(orphan).unwrap_err().0, ErrorCode::NoBase);
        // Valid base, invalid edit target.
        let base = special_inst();
        let h = e.put(&textfmt::write_instance(&base)).unwrap();
        let bad = format!("mmlpdelta 1\nbase {}\nset c 9999 0:1.5\n", hash_hex(h));
        assert_eq!(e.put_delta(&bad).unwrap_err().0, ErrorCode::BadDelta);
        // Unregistered revision under SOLVE_DELTA.
        assert_eq!(e.solve_delta(0xbad, 3, 1).unwrap_err().0, ErrorCode::NoBase);
    }

    #[test]
    fn restart_replays_lineage_and_solves_bit_identically() {
        let dir = std::env::temp_dir().join(format!(
            "mmlp-engine-lineage-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let base = special_inst();
        let (lin, before);
        {
            let (store, _) = Store::open(&dir).unwrap();
            let e = Engine::with_store(1 << 20, 1 << 20, store).unwrap();
            e.put(&textfmt::write_instance(&base)).unwrap();
            lin = e.put_delta(&bump_delta(&base)).unwrap();
            before = e.solve_delta(lin.new, 3, 1).unwrap().0;
            assert_eq!(e.persist_errors(), 0);
        }
        // A fresh engine on the same segments: the lineage edge is
        // replayed at warm start and the chain re-solves from the
        // stored base, bit-identically.
        let (store, _) = Store::open(&dir).unwrap();
        let e = Engine::with_store(1 << 20, 1 << 20, store).unwrap();
        assert_eq!(e.warm_start().lineage, 1);
        assert_eq!(e.warm_start().instances, 2, "base + revision persisted");
        let (after, info) = e.solve_delta(lin.new, 3, 1).unwrap();
        assert_eq!(after, before);
        assert_eq!(info.replayed, 1, "restart chain is re-derived, not warm");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cache_shard_evictions_start_at_zero_and_count_locally() {
        let e = Engine::new(16 * 8, 1 << 20); // 8 bytes per result shard
        assert_eq!(e.cache_shard_evictions(), [0u64; SHARDS]);
        // Two bodies on the same shard (same instance hash) overflow it.
        let k1 = CacheKey::new(0x20, Op::Solve, 2, 1);
        let k2 = CacheKey::new(0x20, Op::Solve, 3, 1);
        e.insert(k1, Arc::new("x".repeat(6)));
        e.insert(k2, Arc::new("y".repeat(6)));
        let ev = e.cache_shard_evictions();
        assert_eq!(ev[0], 1, "shard 0 evicted its LRU entry");
        assert_eq!(ev[1..].iter().sum::<u64>(), 0);
        assert_eq!(e.cache_stats().2, 1, "aggregate matches the shard sum");
    }

    #[test]
    fn cached_bodies_come_back_bit_identical() {
        let e = Engine::new(1 << 20, 1 << 20);
        let i = inst();
        let key = CacheKey::new(instance_hash(&i), Op::Solve, 3, 1);
        assert!(e.cached(&key).is_none());
        let cold = Arc::new(execute(Op::Solve, &i, 3, 1).unwrap());
        e.insert(key, Arc::clone(&cold));
        let warm = e.cached(&key).expect("hit");
        assert_eq!(warm.as_bytes(), cold.as_bytes());
        assert_eq!(e.cache_stats().0, 1);
    }
}
