//! Exact simplex over rationals — the validation oracle for the f64
//! solver.
//!
//! Pure Bland's rule (smallest-index entering, smallest-basis-index
//! leaving among exact minimum ratios), which terminates on every input
//! with **no tolerances anywhere**: optimality, feasibility and
//! unboundedness verdicts are exact. Intended for micro-instances with
//! small integer/rational data (see `rational` for the overflow
//! contract); the {0,1}-coefficient gadget families of the lower-bound
//! experiment are exactly representable, so their optima can be
//! certified exactly.

use crate::model::Cmp;
use crate::rational::Rat;
use mmlp_instance::Instance;

/// One sparse rational row: coefficients, comparison, right-hand side.
pub type RatRow = (Vec<(usize, Rat)>, Cmp, Rat);

/// An LP with rational data: maximise `c·x` s.t. rows, `x ≥ 0`.
#[derive(Clone, Debug, Default)]
pub struct RatModel {
    n_vars: usize,
    objective: Vec<Rat>,
    rows: Vec<RatRow>,
}

/// Exact solver outcome.
#[derive(Clone, Debug)]
pub enum ExactOutcome {
    /// Optimal value and point, exactly.
    Optimal {
        /// The exact objective value.
        objective: Rat,
        /// The exact optimal assignment.
        x: Vec<Rat>,
    },
    /// The feasible region is empty (exact verdict).
    Infeasible,
    /// The objective is unbounded above (exact verdict).
    Unbounded,
}

impl RatModel {
    /// Creates a model with `n_vars` nonnegative variables.
    pub fn new(n_vars: usize) -> Self {
        RatModel {
            n_vars,
            objective: vec![Rat::ZERO; n_vars],
            rows: Vec::new(),
        }
    }

    /// Sets an objective coefficient.
    pub fn set_objective(&mut self, j: usize, c: Rat) {
        assert!(j < self.n_vars);
        self.objective[j] = c;
    }

    /// Adds a row.
    pub fn add_row(&mut self, coefs: Vec<(usize, Rat)>, cmp: Cmp, rhs: Rat) {
        assert!(coefs.iter().all(|&(j, _)| j < self.n_vars));
        self.rows.push((coefs, cmp, rhs));
    }
}

struct ExactTableau {
    m: usize,
    ncols: usize,
    art_start: usize,
    t: Vec<Rat>,
    basis: Vec<usize>,
    n_structural: usize,
}

impl ExactTableau {
    fn at(&self, r: usize, c: usize) -> Rat {
        self.t[r * (self.ncols + 1) + c]
    }

    fn build(model: &RatModel) -> ExactTableau {
        let n = model.n_vars;
        let m = model.rows.len();
        let mut n_slack = 0;
        let mut n_art = 0;
        let mut kinds = Vec::with_capacity(m);
        for (_, cmp, rhs) in &model.rows {
            let flip = rhs.is_negative();
            let cmp = match (cmp, flip) {
                (Cmp::Le, false) | (Cmp::Ge, true) => Cmp::Le,
                (Cmp::Ge, false) | (Cmp::Le, true) => Cmp::Ge,
                (Cmp::Eq, _) => Cmp::Eq,
            };
            match cmp {
                Cmp::Le => n_slack += 1,
                Cmp::Ge => {
                    n_slack += 1;
                    n_art += 1;
                }
                Cmp::Eq => n_art += 1,
            }
            kinds.push((flip, cmp));
        }
        let art_start = n + n_slack;
        let ncols = art_start + n_art;
        let width = ncols + 1;
        let mut t = vec![Rat::ZERO; (m + 1) * width];
        let mut basis = vec![usize::MAX; m];
        let mut next_slack = n;
        let mut next_art = art_start;
        for (r, (coefs, _, rhs)) in model.rows.iter().enumerate() {
            let (flip, cmp) = kinds[r];
            let sign = if flip { -Rat::ONE } else { Rat::ONE };
            for &(j, a) in coefs {
                t[r * width + j] = t[r * width + j] + sign * a;
            }
            t[r * width + ncols] = sign * *rhs;
            match cmp {
                Cmp::Le => {
                    t[r * width + next_slack] = Rat::ONE;
                    basis[r] = next_slack;
                    next_slack += 1;
                }
                Cmp::Ge => {
                    t[r * width + next_slack] = -Rat::ONE;
                    next_slack += 1;
                    t[r * width + next_art] = Rat::ONE;
                    basis[r] = next_art;
                    next_art += 1;
                }
                Cmp::Eq => {
                    t[r * width + next_art] = Rat::ONE;
                    basis[r] = next_art;
                    next_art += 1;
                }
            }
        }
        ExactTableau {
            m,
            ncols,
            art_start,
            t,
            basis,
            n_structural: n,
        }
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let width = self.ncols + 1;
        let inv = self.at(row, col).recip();
        for c in 0..width {
            self.t[row * width + c] = self.t[row * width + c] * inv;
        }
        for r in 0..=self.m {
            if r == row {
                continue;
            }
            let factor = self.at(r, col);
            if factor.is_zero() {
                continue;
            }
            for c in 0..width {
                let delta = factor * self.t[row * width + c];
                self.t[r * width + c] = self.t[r * width + c] - delta;
            }
        }
        self.basis[row] = col;
    }

    fn set_objective_row(&mut self, c: &[Rat]) {
        let width = self.ncols + 1;
        for (j, cj) in c.iter().enumerate() {
            self.t[self.m * width + j] = -*cj;
        }
        self.t[self.m * width + self.ncols] = Rat::ZERO;
        for r in 0..self.m {
            let cb = c[self.basis[r]];
            if cb.is_zero() {
                continue;
            }
            for cidx in 0..width {
                let add = cb * self.t[r * width + cidx];
                self.t[self.m * width + cidx] = self.t[self.m * width + cidx] + add;
            }
        }
    }

    /// Bland's rule until exact optimality; `true` = optimal, `false` =
    /// unbounded.
    fn optimize(&mut self, banned_from: usize) -> bool {
        loop {
            let width = self.ncols + 1;
            let enter = (0..banned_from).find(|&j| self.t[self.m * width + j].is_negative());
            let Some(col) = enter else {
                return true;
            };
            let mut leave: Option<(usize, Rat)> = None;
            for r in 0..self.m {
                let a = self.at(r, col);
                if a.is_positive() {
                    let ratio = self.at(r, self.ncols) / a;
                    let better = match &leave {
                        None => true,
                        Some((lr, best)) => {
                            ratio < *best || (ratio == *best && self.basis[r] < self.basis[*lr])
                        }
                    };
                    if better {
                        leave = Some((r, ratio));
                    }
                }
            }
            let Some((row, _)) = leave else {
                return false;
            };
            self.pivot(row, col);
        }
    }
}

/// Solves exactly. Terminates on every input (Bland's rule, exact
/// arithmetic); panics only on `i128` overflow for oversized data.
pub fn solve_exact(model: &RatModel) -> ExactOutcome {
    let mut t = ExactTableau::build(model);
    if t.art_start < t.ncols {
        let mut c1 = vec![Rat::ZERO; t.ncols];
        for c in c1.iter_mut().skip(t.art_start) {
            *c = -Rat::ONE;
        }
        t.set_objective_row(&c1);
        let optimal = t.optimize(t.ncols);
        debug_assert!(optimal, "phase 1 is bounded");
        if t.at(t.m, t.ncols).is_negative() {
            return ExactOutcome::Infeasible;
        }
        for r in 0..t.m {
            if t.basis[r] >= t.art_start {
                if let Some(col) = (0..t.art_start).find(|&j| !t.at(r, j).is_zero()) {
                    t.pivot(r, col);
                }
            }
        }
    }
    let mut c2 = vec![Rat::ZERO; t.ncols];
    c2[..t.n_structural].copy_from_slice(&model.objective);
    t.set_objective_row(&c2);
    if !t.optimize(t.art_start) {
        return ExactOutcome::Unbounded;
    }
    let mut x = vec![Rat::ZERO; t.n_structural];
    for r in 0..t.m {
        if t.basis[r] < t.n_structural {
            x[t.basis[r]] = t.at(r, t.ncols);
        }
    }
    ExactOutcome::Optimal {
        objective: t.at(t.m, t.ncols),
        x,
    }
}

/// Builds the exact max-min LP of an instance whose coefficients are all
/// exactly representable as small rationals `p/q` with `q | scale`
/// (e.g. {0,1} instances with `scale = 1`). Coefficients are read as
/// `round(coef · scale) / scale`; panics if that is not exact.
pub fn exact_maxmin(inst: &Instance, scale: i128) -> ExactOutcome {
    let n = inst.n_agents();
    let mut m = RatModel::new(n + 1);
    m.set_objective(n, Rat::ONE);
    let to_rat = |c: f64| -> Rat {
        let scaled = c * scale as f64;
        let rounded = scaled.round();
        assert!(
            (scaled - rounded).abs() < 1e-12 && rounded.abs() < 1e15,
            "coefficient {c} is not exactly p/{scale}"
        );
        Rat::new(rounded as i128, scale)
    };
    for i in inst.constraints() {
        let coefs: Vec<(usize, Rat)> = inst
            .constraint_row(i)
            .iter()
            .map(|e| (e.agent.idx(), to_rat(e.coef)))
            .collect();
        m.add_row(coefs, Cmp::Le, Rat::ONE);
    }
    for k in inst.objectives() {
        let mut coefs: Vec<(usize, Rat)> = inst
            .objective_row(k)
            .iter()
            .map(|e| (e.agent.idx(), -to_rat(e.coef)))
            .collect();
        coefs.push((n, Rat::ONE));
        m.add_row(coefs, Cmp::Le, Rat::ZERO);
    }
    solve_exact(&m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LpOutcome, Model};
    use crate::simplex;

    #[test]
    fn exact_wyndor() {
        let mut m = RatModel::new(2);
        m.set_objective(0, Rat::from_int(3));
        m.set_objective(1, Rat::from_int(5));
        m.add_row(vec![(0, Rat::ONE)], Cmp::Le, Rat::from_int(4));
        m.add_row(vec![(1, Rat::from_int(2))], Cmp::Le, Rat::from_int(12));
        m.add_row(
            vec![(0, Rat::from_int(3)), (1, Rat::from_int(2))],
            Cmp::Le,
            Rat::from_int(18),
        );
        match solve_exact(&m) {
            ExactOutcome::Optimal { objective, x } => {
                assert_eq!(objective, Rat::from_int(36));
                assert_eq!(x, vec![Rat::from_int(2), Rat::from_int(6)]);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn exact_phase_one_and_verdicts() {
        // min x+y s.t. x+2y ≥ 3, 2x+y ≥ 3 → exact optimum −2 at (1,1).
        let mut m = RatModel::new(2);
        m.set_objective(0, -Rat::ONE);
        m.set_objective(1, -Rat::ONE);
        m.add_row(
            vec![(0, Rat::ONE), (1, Rat::from_int(2))],
            Cmp::Ge,
            Rat::from_int(3),
        );
        m.add_row(
            vec![(0, Rat::from_int(2)), (1, Rat::ONE)],
            Cmp::Ge,
            Rat::from_int(3),
        );
        match solve_exact(&m) {
            ExactOutcome::Optimal { objective, x } => {
                assert_eq!(objective, Rat::from_int(-2));
                assert_eq!(x, vec![Rat::ONE, Rat::ONE]);
            }
            other => panic!("{other:?}"),
        }
        // Infeasible.
        let mut m = RatModel::new(1);
        m.add_row(vec![(0, Rat::ONE)], Cmp::Le, Rat::ONE);
        m.add_row(vec![(0, Rat::ONE)], Cmp::Ge, Rat::from_int(2));
        assert!(matches!(solve_exact(&m), ExactOutcome::Infeasible));
        // Unbounded.
        let mut m = RatModel::new(1);
        m.set_objective(0, Rat::ONE);
        assert!(matches!(solve_exact(&m), ExactOutcome::Unbounded));
    }

    #[test]
    fn exact_beale_is_one_twentieth() {
        // Beale's cycling LP has optimum exactly 1/20; Bland + exact
        // arithmetic nails it with no anti-cycling machinery.
        let mut m = RatModel::new(4);
        m.set_objective(0, Rat::new(3, 4));
        m.set_objective(1, Rat::from_int(-150));
        m.set_objective(2, Rat::new(1, 50));
        m.set_objective(3, Rat::from_int(-6));
        m.add_row(
            vec![
                (0, Rat::new(1, 4)),
                (1, Rat::from_int(-60)),
                (2, Rat::new(-1, 25)),
                (3, Rat::from_int(9)),
            ],
            Cmp::Le,
            Rat::ZERO,
        );
        m.add_row(
            vec![
                (0, Rat::new(1, 2)),
                (1, Rat::from_int(-90)),
                (2, Rat::new(-1, 50)),
                (3, Rat::from_int(3)),
            ],
            Cmp::Le,
            Rat::ZERO,
        );
        m.add_row(vec![(2, Rat::ONE)], Cmp::Le, Rat::ONE);
        match solve_exact(&m) {
            ExactOutcome::Optimal { objective, .. } => {
                assert_eq!(objective, Rat::new(1, 20));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn exact_matches_f64_on_random_integer_lps() {
        let mut state = 0xDEADBEEFu64;
        let mut rng = move |m: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % m
        };
        for _ in 0..10 {
            let n = 3 + (rng(3) as usize);
            let mut em = RatModel::new(n);
            let mut fm = Model::new(n);
            for j in 0..n {
                let c = 1 + rng(5) as i128;
                em.set_objective(j, Rat::from_int(c));
                fm.set_objective(j, c as f64);
            }
            for _ in 0..n + 1 {
                let mut ecoefs = Vec::new();
                let mut fcoefs = Vec::new();
                for j in 0..n {
                    let a = 1 + rng(4) as i128;
                    ecoefs.push((j, Rat::from_int(a)));
                    fcoefs.push((j, a as f64));
                }
                let rhs = 2 + rng(7) as i128;
                em.add_row(ecoefs, Cmp::Le, Rat::from_int(rhs));
                fm.add_row(fcoefs, Cmp::Le, rhs as f64);
            }
            let exact = match solve_exact(&em) {
                ExactOutcome::Optimal { objective, .. } => objective.to_f64(),
                other => panic!("bounded packing LP: {other:?}"),
            };
            let float = match simplex::solve(&fm) {
                LpOutcome::Optimal { objective, .. } => objective,
                other => panic!("{other:?}"),
            };
            assert!(
                (exact - float).abs() <= 1e-6 * exact.abs().max(1.0),
                "exact {exact} vs f64 {float}"
            );
        }
    }

    #[test]
    fn exact_maxmin_certifies_gadget_optima() {
        use mmlp_gen::lower_bound::{regular_gadget, tree_gadget};
        // The averaging argument says exactly 3/2 for d = 3, ΔI = 2.
        let (inst, _) = regular_gadget(8, 3, 2, 4, 0);
        match exact_maxmin(&inst, 1) {
            ExactOutcome::Optimal { objective, .. } => {
                assert_eq!(objective, Rat::new(3, 2), "exactly d/ΔI");
            }
            other => panic!("{other:?}"),
        }
        // Small tree gadget: exact optimum is a ratio of small integers ≥ 2.
        let (tree, _) = tree_gadget(3, 2, 1);
        match exact_maxmin(&tree, 1) {
            ExactOutcome::Optimal { objective, .. } => {
                assert!(objective >= Rat::from_int(2), "tree optimum {objective}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "not exactly")]
    fn exact_maxmin_rejects_irrational_coefficients() {
        let mut b = mmlp_instance::InstanceBuilder::new();
        let v = b.add_agent();
        let w = b.add_agent();
        b.add_constraint(&[(v, 0.30000001), (w, 1.0)]).unwrap();
        b.add_objective(&[(v, 1.0), (w, 1.0)]).unwrap();
        let inst = b.build().unwrap();
        let _ = exact_maxmin(&inst, 10);
    }
}
