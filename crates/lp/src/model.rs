//! A minimal LP model: maximise `c·x` subject to sparse rows and `x ≥ 0`.

/// Row comparison operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cmp {
    /// `Σ a_j x_j ≤ b`
    Le,
    /// `Σ a_j x_j ≥ b`
    Ge,
    /// `Σ a_j x_j = b`
    Eq,
}

/// One sparse constraint row.
#[derive(Clone, Debug)]
pub struct Row {
    /// Sparse coefficients `(variable, value)`; variables may repeat (they
    /// are summed) but generators avoid that for clarity.
    pub coefs: Vec<(usize, f64)>,
    /// Comparison operator.
    pub cmp: Cmp,
    /// Right-hand side.
    pub rhs: f64,
}

/// Result of solving a [`Model`].
#[derive(Clone, Debug)]
pub enum LpOutcome {
    /// Optimal solution found.
    Optimal {
        /// Objective value `c·x` at the optimum.
        objective: f64,
        /// Optimal assignment (length = number of variables).
        x: Vec<f64>,
    },
    /// The feasible region is empty.
    Infeasible,
    /// The objective is unbounded above on the feasible region.
    Unbounded,
    /// Iteration limit exceeded (indicates a numerical pathology; never
    /// expected with the Bland fallback — treated as a hard error by
    /// callers in this workspace).
    IterationLimit,
}

impl LpOutcome {
    /// The optimal objective value, if optimal.
    pub fn objective(&self) -> Option<f64> {
        match self {
            LpOutcome::Optimal { objective, .. } => Some(*objective),
            _ => None,
        }
    }

    /// The optimal assignment, if optimal.
    pub fn solution(&self) -> Option<&[f64]> {
        match self {
            LpOutcome::Optimal { x, .. } => Some(x),
            _ => None,
        }
    }
}

/// An LP in the form `max c·x  s.t.  rows, x ≥ 0`.
#[derive(Clone, Debug)]
pub struct Model {
    n_vars: usize,
    objective: Vec<f64>,
    rows: Vec<Row>,
}

impl Model {
    /// Creates a model with `n_vars` nonnegative variables and an all-zero
    /// objective.
    pub fn new(n_vars: usize) -> Self {
        Self {
            n_vars,
            objective: vec![0.0; n_vars],
            rows: Vec::new(),
        }
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Sets the objective coefficient of variable `j` (maximisation).
    pub fn set_objective(&mut self, j: usize, c: f64) {
        assert!(j < self.n_vars, "variable {j} out of range");
        self.objective[j] = c;
    }

    /// The objective vector.
    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    /// Adds a sparse row; returns its index.
    pub fn add_row(&mut self, coefs: Vec<(usize, f64)>, cmp: Cmp, rhs: f64) -> usize {
        for &(j, a) in &coefs {
            assert!(j < self.n_vars, "variable {j} out of range");
            assert!(a.is_finite(), "coefficient must be finite");
        }
        assert!(rhs.is_finite(), "rhs must be finite");
        self.rows.push(Row { coefs, cmp, rhs });
        self.rows.len() - 1
    }

    /// The rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Evaluates `c·x`.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.objective.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// Largest violation of any row / nonnegativity bound by `x`
    /// (0 when feasible).
    pub fn max_violation(&self, x: &[f64]) -> f64 {
        let mut worst = 0.0f64;
        for xv in x {
            worst = worst.max(-xv);
        }
        for row in &self.rows {
            let lhs: f64 = row.coefs.iter().map(|&(j, a)| a * x[j]).sum();
            let viol = match row.cmp {
                Cmp::Le => lhs - row.rhs,
                Cmp::Ge => row.rhs - lhs,
                Cmp::Eq => (lhs - row.rhs).abs(),
            };
            worst = worst.max(viol);
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_evaluate() {
        let mut m = Model::new(2);
        m.set_objective(0, 3.0);
        m.set_objective(1, 5.0);
        m.add_row(vec![(0, 1.0)], Cmp::Le, 4.0);
        m.add_row(vec![(1, 2.0)], Cmp::Le, 12.0);
        m.add_row(vec![(0, 3.0), (1, 2.0)], Cmp::Le, 18.0);
        assert_eq!(m.n_rows(), 3);
        assert_eq!(m.objective_value(&[2.0, 6.0]), 36.0);
        assert_eq!(m.max_violation(&[2.0, 6.0]), 0.0);
        assert!(m.max_violation(&[5.0, 6.0]) > 0.0);
    }

    #[test]
    fn violation_covers_all_row_kinds() {
        let mut m = Model::new(1);
        m.add_row(vec![(0, 1.0)], Cmp::Ge, 2.0);
        m.add_row(vec![(0, 1.0)], Cmp::Eq, 3.0);
        // x = 1: Ge violated by 1, Eq violated by 2.
        assert_eq!(m.max_violation(&[1.0]), 2.0);
        // Negativity dominates.
        assert_eq!(m.max_violation(&[-5.0]), 8.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_row_checks_indices() {
        let mut m = Model::new(1);
        m.add_row(vec![(1, 1.0)], Cmp::Le, 0.0);
    }

    #[test]
    fn outcome_accessors() {
        let o = LpOutcome::Optimal {
            objective: 7.0,
            x: vec![1.0],
        };
        assert_eq!(o.objective(), Some(7.0));
        assert_eq!(o.solution(), Some(&[1.0][..]));
        assert_eq!(LpOutcome::Infeasible.objective(), None);
        assert_eq!(LpOutcome::Unbounded.solution(), None);
    }
}
