//! # `mmlp-lp`
//!
//! From-scratch linear-programming substrate for the max-min LP
//! reproduction. No external solver is used anywhere in the workspace.
//!
//! * [`model`] — a small LP model builder (maximise `c·x` subject to
//!   sparse `≤ / ≥ / =` rows and `x ≥ 0`).
//! * [`simplex`] — dense two-phase primal simplex. Entering rule is
//!   Dantzig (most negative reduced cost) with an automatic permanent
//!   switch to Bland's rule when the objective stalls, which guarantees
//!   termination on degenerate programs.
//! * [`maxmin`] — the reduction from a max-min LP instance to a plain LP
//!   (`max ω` s.t. `Ax ≤ 1`, `Cx ≥ ω·1`, `x ≥ 0`), an exact optimum
//!   solver, a fixed-`ω` feasibility oracle and a bisection solver used to
//!   cross-validate the simplex.
//! * [`rational`] / [`exact`] — `i128` rationals and an exact Bland-rule
//!   simplex: a tolerance-free validation oracle for micro-instances and
//!   for the {0,1}-coefficient gadget families, whose optima it
//!   certifies exactly.
//!
//! The paper needs LP optima in two places: each node of the local
//! algorithm computes the optimum `t_u` of the LP restricted to its
//! alternating tree (done in `mmlp-core` by the paper's own recursion +
//! bisection — §5.2 notes a binary search suffices), and the *evaluation*
//! compares the local output against the global optimum, which this crate
//! provides.

pub mod exact;
pub mod maxmin;
pub mod model;
pub mod rational;
pub mod simplex;

pub use exact::{exact_maxmin, solve_exact, ExactOutcome, RatModel};
pub use maxmin::{solve_maxmin, MaxMinError, MaxMinOptimum};
pub use model::{Cmp, LpOutcome, Model};
pub use rational::Rat;
pub use simplex::{solve, solve_with, SimplexOptions};
