//! Reduction from a max-min LP instance to a plain LP, exact optimum
//! solver, fixed-`ω` feasibility oracle and bisection cross-check.
//!
//! The max-min LP
//!
//! ```text
//! maximise  min_k Σ_v c_kv x_v   s.t.  Σ_v a_iv x_v ≤ 1,  x ≥ 0
//! ```
//!
//! is the LP `max ω  s.t.  Ax ≤ 1, Cx − ω·1 ≥ 0, x ≥ 0` (eq. (1) of the
//! paper). Writing the covering rows as `−Cx + ω ≤ 0` makes every row a
//! `≤` with nonnegative RHS, so the slack basis is feasible and the
//! simplex needs no phase 1.

use crate::model::{Cmp, LpOutcome, Model};
use crate::simplex::{solve_with, solve_with_duals, SimplexOptions};
use mmlp_instance::{Instance, Solution};

/// The exact optimum of a max-min LP.
#[derive(Clone, Debug)]
pub struct MaxMinOptimum {
    /// The optimal utility `ω*`.
    pub omega: f64,
    /// An optimal assignment.
    pub solution: Solution,
}

/// Why an optimum could not be produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MaxMinError {
    /// `ω` can grow without bound: some objective is not limited by any
    /// constraint (a degeneracy — see `mmlp_instance::validate`).
    Unbounded,
    /// The solver hit its iteration limit (numerical pathology).
    IterationLimit,
    /// The instance has no objectives, so `min_k` is vacuous (+∞).
    NoObjectives,
}

impl std::fmt::Display for MaxMinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MaxMinError::Unbounded => write!(f, "max-min LP is unbounded"),
            MaxMinError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
            MaxMinError::NoObjectives => write!(f, "instance has no objectives"),
        }
    }
}

impl std::error::Error for MaxMinError {}

/// Builds the LP `max ω  s.t.  Ax ≤ 1, −Cx + ω ≤ 0, x ≥ 0`.
///
/// Variable `j < n_agents` is `x_j`; variable `n_agents` is `ω`.
pub fn build_lp(inst: &Instance) -> Model {
    let n = inst.n_agents();
    let mut m = Model::new(n + 1);
    m.set_objective(n, 1.0);
    for i in inst.constraints() {
        let coefs = inst
            .constraint_row(i)
            .iter()
            .map(|e| (e.agent.idx(), e.coef))
            .collect();
        m.add_row(coefs, Cmp::Le, 1.0);
    }
    for k in inst.objectives() {
        let mut coefs: Vec<(usize, f64)> = inst
            .objective_row(k)
            .iter()
            .map(|e| (e.agent.idx(), -e.coef))
            .collect();
        coefs.push((n, 1.0));
        m.add_row(coefs, Cmp::Le, 0.0);
    }
    m
}

/// Solves the max-min LP exactly (simplex on [`build_lp`]).
pub fn solve_maxmin(inst: &Instance) -> Result<MaxMinOptimum, MaxMinError> {
    solve_maxmin_with(inst, &SimplexOptions::default())
}

/// [`solve_maxmin`] with explicit simplex options.
pub fn solve_maxmin_with(
    inst: &Instance,
    opts: &SimplexOptions,
) -> Result<MaxMinOptimum, MaxMinError> {
    if inst.n_objectives() == 0 {
        return Err(MaxMinError::NoObjectives);
    }
    let model = build_lp(inst);
    match solve_with(&model, opts) {
        LpOutcome::Optimal { objective, mut x } => {
            x.truncate(inst.n_agents());
            Ok(MaxMinOptimum {
                omega: objective,
                solution: Solution::from_vec(x),
            })
        }
        LpOutcome::Unbounded => Err(MaxMinError::Unbounded),
        LpOutcome::IterationLimit => Err(MaxMinError::IterationLimit),
        LpOutcome::Infeasible => {
            unreachable!("x = 0, ω = 0 is always feasible for a max-min LP")
        }
    }
}

/// Is there a feasible `x` with `Ax ≤ 1`, `Cx ≥ ω·1`, `x ≥ 0`?
///
/// Uses a phase-1 simplex on the fixed-`ω` system — an independent code
/// path from [`solve_maxmin`], used to cross-validate it.
pub fn feasible_for(inst: &Instance, omega: f64) -> bool {
    let n = inst.n_agents();
    let mut m = Model::new(n);
    for i in inst.constraints() {
        let coefs = inst
            .constraint_row(i)
            .iter()
            .map(|e| (e.agent.idx(), e.coef))
            .collect();
        m.add_row(coefs, Cmp::Le, 1.0);
    }
    for k in inst.objectives() {
        let coefs = inst
            .objective_row(k)
            .iter()
            .map(|e| (e.agent.idx(), e.coef))
            .collect();
        m.add_row(coefs, Cmp::Ge, omega);
    }
    !matches!(
        solve_with(&m, &SimplexOptions::default()),
        LpOutcome::Infeasible
    )
}

/// A dual certificate for the optimum of a max-min LP.
///
/// In the LP `max ω s.t. Ax ≤ 1, ω·1 − Cx ≤ 0`, a dual solution assigns
/// `y_i ≥ 0` to each packing row and `z_k ≥ 0` to each objective row
/// with `Σ_k z_k ≥ 1` and `Aᵀy ≥ Cᵀz`; any such pair proves
/// `ω* ≤ Σ_i y_i`. [`certify_optimum`] extracts one from the final
/// simplex tableau and re-verifies the inequalities *independently*, so
/// a successful certificate does not rely on the solver's internals.
#[derive(Clone, Debug)]
pub struct DualCertificate {
    /// Multipliers on the packing rows.
    pub y: Vec<f64>,
    /// Multipliers on the objective rows (a convex-ish weighting of the
    /// objectives that witnesses the bottleneck).
    pub z: Vec<f64>,
    /// The certified upper bound `Σ_i y_i ≥ ω*`.
    pub bound: f64,
    /// Worst violation of the re-verified dual constraints (≤ tolerance
    /// for a valid certificate).
    pub residual: f64,
}

/// Solves the max-min LP and returns a dual certificate alongside.
///
/// The certificate's `bound` matches `omega` to within the solver's
/// perturbation error (strong duality), and its feasibility is
/// re-checked from the raw instance data.
pub fn certify_optimum(
    inst: &Instance,
    opts: &SimplexOptions,
) -> Result<(MaxMinOptimum, DualCertificate), MaxMinError> {
    if inst.n_objectives() == 0 {
        return Err(MaxMinError::NoObjectives);
    }
    let model = build_lp(inst);
    let (outcome, duals) = solve_with_duals(&model, opts);
    match outcome {
        LpOutcome::Optimal { objective, mut x } => {
            x.truncate(inst.n_agents());
            let duals = duals.expect("optimal ⇒ duals");
            let (y, z) = duals.split_at(inst.n_constraints());
            // Independent re-verification.
            let mut residual = 0.0f64;
            for &v in y.iter().chain(z.iter()) {
                residual = residual.max(-v); // nonnegativity
            }
            // Σ z_k ≥ 1 (dual row of the ω column).
            residual = residual.max(1.0 - z.iter().sum::<f64>());
            // Aᵀy ≥ Cᵀz per agent.
            for v in inst.agents() {
                let lhs: f64 = inst
                    .agent_constraints(v)
                    .iter()
                    .map(|e| e.coef * y[e.cons.idx()])
                    .sum();
                let rhs: f64 = inst
                    .agent_objectives(v)
                    .iter()
                    .map(|e| e.coef * z[e.obj.idx()])
                    .sum();
                residual = residual.max(rhs - lhs);
            }
            let bound: f64 = y.iter().sum();
            Ok((
                MaxMinOptimum {
                    omega: objective,
                    solution: Solution::from_vec(x),
                },
                DualCertificate {
                    y: y.to_vec(),
                    z: z.to_vec(),
                    bound,
                    residual,
                },
            ))
        }
        LpOutcome::Unbounded => Err(MaxMinError::Unbounded),
        LpOutcome::IterationLimit => Err(MaxMinError::IterationLimit),
        LpOutcome::Infeasible => unreachable!("x = 0, ω = 0 is feasible"),
    }
}

/// A trivial upper bound on the optimum: every agent is capped at
/// `min_{i∈Iv} 1/a_iv`, so
/// `ω* ≤ min_k Σ_{v∈Vk} c_kv · cap_v`.
///
/// Infinite when some objective contains only unconstrained agents.
pub fn utility_upper_bound(inst: &Instance) -> f64 {
    inst.objectives()
        .map(|k| {
            inst.objective_row(k)
                .iter()
                .map(|e| e.coef * inst.agent_cap(e.agent))
                .sum::<f64>()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Bisection solver: brackets `ω*` between 0 and [`utility_upper_bound`]
/// and bisects with the [`feasible_for`] oracle to relative precision
/// `rel_tol`. Returns the certified-feasible lower end.
///
/// Independent of [`solve_maxmin`]'s phase-2 pivoting; used in tests to
/// cross-validate the simplex.
pub fn bisect_maxmin(inst: &Instance, rel_tol: f64) -> Result<f64, MaxMinError> {
    if inst.n_objectives() == 0 {
        return Err(MaxMinError::NoObjectives);
    }
    let mut hi = utility_upper_bound(inst);
    if !hi.is_finite() {
        return Err(MaxMinError::Unbounded);
    }
    if hi == 0.0 || feasible_for(inst, hi) {
        return Ok(hi);
    }
    let mut lo = 0.0f64;
    while hi - lo > rel_tol * hi.max(1.0) {
        let mid = 0.5 * (lo + hi);
        if feasible_for(inst, mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmlp_instance::InstanceBuilder;

    /// Two agents sharing one constraint, one objective each:
    /// optimum x = (1/2, 1/2), ω* = 1/2.
    fn shared_constraint() -> Instance {
        let mut b = InstanceBuilder::new();
        let v0 = b.add_agent();
        let v1 = b.add_agent();
        b.add_constraint(&[(v0, 1.0), (v1, 1.0)]).unwrap();
        b.add_objective(&[(v0, 1.0)]).unwrap();
        b.add_objective(&[(v1, 1.0)]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn solves_shared_constraint() {
        let inst = shared_constraint();
        let opt = solve_maxmin(&inst).unwrap();
        assert!((opt.omega - 0.5).abs() < 1e-9);
        assert!(opt.solution.is_feasible(&inst, 1e-9));
        assert!((opt.solution.utility(&inst) - opt.omega).abs() < 1e-9);
    }

    #[test]
    fn asymmetric_coefficients() {
        // x0 ≤ 1/2 (coef 2); objectives x0 and x1 with weight 3.
        // Constraint x0·2 + x1 ≤ 1. ω* solves 2ω + ω/3 = 1 → ω = 3/7.
        let mut b = InstanceBuilder::new();
        let v0 = b.add_agent();
        let v1 = b.add_agent();
        b.add_constraint(&[(v0, 2.0), (v1, 1.0)]).unwrap();
        b.add_objective(&[(v0, 1.0)]).unwrap();
        b.add_objective(&[(v1, 3.0)]).unwrap();
        let inst = b.build().unwrap();
        let opt = solve_maxmin(&inst).unwrap();
        assert!((opt.omega - 3.0 / 7.0).abs() < 1e-9, "got {}", opt.omega);
    }

    #[test]
    fn unbounded_when_objective_has_unconstrained_agent() {
        let mut b = InstanceBuilder::new();
        let v0 = b.add_agent();
        let v1 = b.add_agent();
        b.add_constraint(&[(v0, 1.0)]).unwrap();
        b.add_objective(&[(v0, 1.0), (v1, 1.0)]).unwrap();
        let inst = b.build().unwrap();
        assert_eq!(solve_maxmin(&inst).unwrap_err(), MaxMinError::Unbounded);
        assert_eq!(utility_upper_bound(&inst), f64::INFINITY);
    }

    #[test]
    fn no_objectives_is_an_error() {
        let mut b = InstanceBuilder::new();
        let v0 = b.add_agent();
        b.add_constraint(&[(v0, 1.0)]).unwrap();
        let inst = b.build().unwrap();
        assert_eq!(solve_maxmin(&inst).unwrap_err(), MaxMinError::NoObjectives);
    }

    #[test]
    fn isolated_objective_forces_zero() {
        // An objective whose agents are all shared with a tight
        // constraint system: ω* = 1/3 when three agents share one
        // constraint and one objective each... here instead: one
        // objective, three agents in one constraint: ω* = 1 (put all
        // mass on one agent? no – all three contribute to the same k).
        let mut b = InstanceBuilder::new();
        let v: Vec<_> = (0..3).map(|_| b.add_agent()).collect();
        b.add_constraint(&[(v[0], 1.0), (v[1], 1.0), (v[2], 1.0)])
            .unwrap();
        b.add_objective(&[(v[0], 1.0), (v[1], 1.0), (v[2], 1.0)])
            .unwrap();
        let inst = b.build().unwrap();
        let opt = solve_maxmin(&inst).unwrap();
        assert!((opt.omega - 1.0).abs() < 1e-9);
    }

    #[test]
    fn feasibility_oracle_brackets_optimum() {
        let inst = shared_constraint();
        assert!(feasible_for(&inst, 0.0));
        assert!(feasible_for(&inst, 0.5 - 1e-9));
        assert!(!feasible_for(&inst, 0.5 + 1e-6));
    }

    #[test]
    fn bisection_matches_simplex() {
        let inst = shared_constraint();
        let opt = solve_maxmin(&inst).unwrap();
        let bis = bisect_maxmin(&inst, 1e-10).unwrap();
        assert!((opt.omega - bis).abs() < 1e-6);
    }

    #[test]
    fn upper_bound_bounds_the_optimum() {
        let inst = shared_constraint();
        let opt = solve_maxmin(&inst).unwrap();
        assert!(utility_upper_bound(&inst) >= opt.omega - 1e-12);
    }

    #[test]
    fn lp_model_shape() {
        let inst = shared_constraint();
        let m = build_lp(&inst);
        assert_eq!(m.n_vars(), 3); // two agents + ω
        assert_eq!(m.n_rows(), 3); // one constraint + two objectives
    }

    #[test]
    fn dual_certificate_is_tight_and_valid() {
        let inst = shared_constraint();
        let (opt, cert) =
            certify_optimum(&inst, &crate::simplex::SimplexOptions::default()).unwrap();
        assert!(
            cert.residual <= 1e-7,
            "certificate re-verifies: {}",
            cert.residual
        );
        assert!((cert.bound - opt.omega).abs() < 1e-6, "strong duality");
        assert!(cert.y.len() == 1 && cert.z.len() == 2);
    }

    #[test]
    fn dual_certificate_on_asymmetric_instance() {
        let mut b = InstanceBuilder::new();
        let v0 = b.add_agent();
        let v1 = b.add_agent();
        b.add_constraint(&[(v0, 2.0), (v1, 1.0)]).unwrap();
        b.add_objective(&[(v0, 1.0)]).unwrap();
        b.add_objective(&[(v1, 3.0)]).unwrap();
        let inst = b.build().unwrap();
        let (opt, cert) =
            certify_optimum(&inst, &crate::simplex::SimplexOptions::default()).unwrap();
        assert!((opt.omega - 3.0 / 7.0).abs() < 1e-6);
        assert!(cert.residual <= 1e-7);
        assert!((cert.bound - opt.omega).abs() < 1e-6);
    }
}
