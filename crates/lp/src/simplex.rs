//! Dense two-phase primal simplex.
//!
//! Layout: the tableau has one row per constraint plus an objective row,
//! and one column per structural variable, slack/surplus variable and
//! artificial variable, plus the right-hand side. The objective row stores
//! reduced costs `z_j − c_j` (optimality: all ≥ −tol for maximisation) and
//! the current objective value in the RHS cell.
//!
//! Degeneracy: max-min LPs start with every covering row at RHS 0, which
//! makes the initial basis massively degenerate. The solver therefore
//! **perturbs** inequality right-hand sides by tiny row-specific amounts
//! (the classic anti-cycling perturbation; direction chosen to relax each
//! row, so feasibility is preserved), which keeps the plain Dantzig rule
//! moving. The induced objective error is O(perturbation · ‖duals‖₁) ≈
//! 1e-9 — well below the tolerances used throughout this workspace.
//!
//! Entering rule: Dantzig (most negative reduced cost) until the
//! objective stalls for [`SimplexOptions::stall_limit`] consecutive
//! pivots, then **Bland's rule** as a backstop. Leaving rule: minimum
//! ratio; near-ties are resolved towards the largest pivot element for
//! numerical stability (or the smallest basis index under Bland).

use crate::model::{Cmp, LpOutcome, Model};

/// Numerical knobs for the solver. The defaults suit the well-scaled
/// programs in this workspace (coefficients within a few orders of
/// magnitude of 1).
#[derive(Clone, Copy, Debug)]
pub struct SimplexOptions {
    /// A reduced cost above `-cost_tol` counts as optimal.
    pub cost_tol: f64,
    /// Pivot elements smaller than this in magnitude are not eligible.
    pub pivot_tol: f64,
    /// Consecutive non-improving pivots before switching to Bland's rule.
    pub stall_limit: usize,
    /// Hard cap on pivots per phase; `None` means `1000 + 50·(m + n)`.
    pub max_iters: Option<usize>,
    /// Phase-1 residual above this is reported as infeasible.
    pub feas_tol: f64,
    /// Relative RHS perturbation for degeneracy breaking (0 disables).
    /// Inequality rows are relaxed by `perturbation · max(1, |b|) · u_r`
    /// with a deterministic per-row factor `u_r ∈ (0.5, 1.5)`; equality
    /// rows are never perturbed.
    pub perturbation: f64,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        Self {
            cost_tol: 1e-9,
            pivot_tol: 1e-9,
            stall_limit: 256,
            max_iters: None,
            feas_tol: 1e-7,
            perturbation: 1e-10,
        }
    }
}

/// Solves with default options.
pub fn solve(model: &Model) -> LpOutcome {
    solve_with(model, &SimplexOptions::default())
}

/// Solves with explicit options.
pub fn solve_with(model: &Model, opts: &SimplexOptions) -> LpOutcome {
    Tableau::build(model, opts).solve(model, opts).0
}

/// Like [`solve_with`], additionally returning the **dual solution**
/// (one multiplier per row) when the primal is optimal.
///
/// Duals are read from the final reduced costs of each row's
/// slack/surplus (or artificial, for equalities) column, sign-adjusted
/// for rows that were flipped during normalisation. For a maximisation
/// `max c·x` they satisfy, up to the solver's perturbation error:
/// complementary slackness and strong duality `Σ_i y_i b_i = c·x`.
pub fn solve_with_duals(model: &Model, opts: &SimplexOptions) -> (LpOutcome, Option<Vec<f64>>) {
    Tableau::build(model, opts).solve(model, opts)
}

/// Deterministic per-row perturbation factor in (0.5, 1.5) (splitmix64).
fn noise(r: usize) -> f64 {
    let mut z = (r as u64).wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    0.5 + (z >> 11) as f64 / (1u64 << 53) as f64
}

struct Tableau {
    m: usize,
    /// Total columns excluding RHS.
    ncols: usize,
    /// First artificial column (== ncols when no artificials).
    art_start: usize,
    /// Row-major (m+1) × (ncols+1); last row is the objective row.
    t: Vec<f64>,
    basis: Vec<usize>,
    n_structural: usize,
    /// Per original row: the slack/surplus column and the sign flip
    /// applied during normalisation — used to read dual values out of
    /// the final reduced costs.
    row_slack: Vec<(usize, f64)>,
}

impl Tableau {
    #[inline]
    fn at(&self, r: usize, c: usize) -> f64 {
        self.t[r * (self.ncols + 1) + c]
    }

    fn build(model: &Model, opts: &SimplexOptions) -> Tableau {
        let n = model.n_vars();
        let m = model.n_rows();

        // Normalise rows to nonnegative RHS, counting extra columns.
        // For each row (after sign-normalisation):
        //   Le  -> slack (+1), basis
        //   Ge  -> surplus (−1) + artificial (+1, basis)
        //   Eq  -> artificial (+1, basis)
        let mut n_slack = 0usize;
        let mut n_art = 0usize;
        let mut row_kind = Vec::with_capacity(m); // (flip, cmp)
        for row in model.rows() {
            let flip = row.rhs < 0.0;
            let cmp = match (row.cmp, flip) {
                (Cmp::Le, false) | (Cmp::Ge, true) => Cmp::Le,
                (Cmp::Ge, false) | (Cmp::Le, true) => Cmp::Ge,
                (Cmp::Eq, _) => Cmp::Eq,
            };
            match cmp {
                Cmp::Le => n_slack += 1,
                Cmp::Ge => {
                    n_slack += 1;
                    n_art += 1;
                }
                Cmp::Eq => n_art += 1,
            }
            row_kind.push((flip, cmp));
        }

        let slack_start = n;
        let art_start = n + n_slack;
        let ncols = art_start + n_art;
        let width = ncols + 1;
        let mut t = vec![0.0f64; (m + 1) * width];
        let mut basis = vec![usize::MAX; m];

        let mut next_slack = slack_start;
        let mut next_art = art_start;
        let mut row_slack = vec![(usize::MAX, 1.0); m];
        for (r, row) in model.rows().iter().enumerate() {
            let (flip, cmp) = row_kind[r];
            let sign = if flip { -1.0 } else { 1.0 };
            for &(j, a) in &row.coefs {
                t[r * width + j] += sign * a;
            }
            // Anti-cycling perturbation: relax inequality rows by a tiny
            // row-specific amount (after sign normalisation every row is
            // compared downwards from a nonnegative RHS, so adding to Le
            // rows and to the normalised-Ge RHS... — concretely: Le rows
            // gain slack, Ge rows lose demand; both relax).
            let eps = match cmp {
                Cmp::Eq => 0.0,
                Cmp::Le => opts.perturbation * row.rhs.abs().max(1.0) * noise(r),
                Cmp::Ge => -opts.perturbation * row.rhs.abs().max(1.0) * noise(r),
            };
            t[r * width + ncols] = sign * row.rhs + eps;
            match cmp {
                Cmp::Le => {
                    t[r * width + next_slack] = 1.0;
                    basis[r] = next_slack;
                    row_slack[r] = (next_slack, sign);
                    next_slack += 1;
                }
                Cmp::Ge => {
                    t[r * width + next_slack] = -1.0;
                    row_slack[r] = (next_slack, -sign);
                    next_slack += 1;
                    t[r * width + next_art] = 1.0;
                    basis[r] = next_art;
                    next_art += 1;
                }
                Cmp::Eq => {
                    t[r * width + next_art] = 1.0;
                    basis[r] = next_art;
                    // Equality rows have no slack; the dual is read from
                    // the artificial column's reduced cost instead.
                    row_slack[r] = (next_art, sign);
                    next_art += 1;
                }
            }
        }

        Tableau {
            m,
            ncols,
            art_start,
            t,
            basis,
            n_structural: n,
            row_slack,
        }
    }

    /// Gaussian pivot on (`row`, `col`), updating all rows including the
    /// objective row.
    fn pivot(&mut self, row: usize, col: usize) {
        let width = self.ncols + 1;
        let piv = self.at(row, col);
        debug_assert!(piv.abs() > 0.0);
        let inv = 1.0 / piv;
        let (row_lo, row_hi) = (row * width, (row + 1) * width);
        for c in row_lo..row_hi {
            self.t[c] *= inv;
        }
        // Exact unit pivot to curb drift.
        self.t[row_lo + col] = 1.0;
        for r in 0..=self.m {
            if r == row {
                continue;
            }
            let factor = self.at(r, col);
            if factor == 0.0 {
                continue;
            }
            let r_lo = r * width;
            // Manual split borrows: subtract factor * pivot row.
            let (a, b) = if r < row {
                let (lo, hi) = self.t.split_at_mut(row_lo);
                (&mut lo[r_lo..r_lo + width], &hi[0..width])
            } else {
                let (lo, hi) = self.t.split_at_mut(r_lo);
                (&mut hi[0..width], &lo[row_lo..row_lo + width])
            };
            for (x, y) in a.iter_mut().zip(b.iter()) {
                *x -= factor * y;
            }
            // Exact zero in the pivot column.
            self.t[r_lo + col] = 0.0;
        }
        self.basis[row] = col;
    }

    /// Rebuilds the objective row for coefficient vector `c` (length
    /// ncols; artificials get 0 in phase 2, −1 in phase 1).
    fn set_objective_row(&mut self, c: &[f64]) {
        let width = self.ncols + 1;
        let obj_lo = self.m * width;
        for (j, cj) in c.iter().enumerate() {
            self.t[obj_lo + j] = -*cj;
        }
        self.t[obj_lo + self.ncols] = 0.0;
        for r in 0..self.m {
            let cb = c[self.basis[r]];
            if cb == 0.0 {
                continue;
            }
            let r_lo = r * width;
            let (lo, hi) = self.t.split_at_mut(obj_lo);
            let src = &lo[r_lo..r_lo + width];
            for (x, y) in hi[0..width].iter_mut().zip(src) {
                *x += cb * y;
            }
        }
    }

    /// Runs simplex pivots until optimality/unboundedness for the current
    /// objective row. `banned` columns never enter.
    fn optimize(&mut self, banned_from: usize, opts: &SimplexOptions) -> PhaseResult {
        let width = self.ncols + 1;
        let max_iters = opts.max_iters.unwrap_or(1000 + 50 * (self.m + self.ncols));
        let mut bland = false;
        let mut stall = 0usize;
        let mut last_obj = self.at(self.m, self.ncols);

        for _ in 0..max_iters {
            // Entering column.
            let obj_lo = self.m * width;
            let mut enter = None;
            if bland {
                for j in 0..banned_from {
                    if self.t[obj_lo + j] < -opts.cost_tol {
                        enter = Some(j);
                        break;
                    }
                }
            } else {
                let mut best = -opts.cost_tol;
                for j in 0..banned_from {
                    let d = self.t[obj_lo + j];
                    if d < best {
                        best = d;
                        enter = Some(j);
                    }
                }
            }
            let Some(col) = enter else {
                return PhaseResult::Optimal;
            };

            // Leaving row: minimum ratio (negative RHS drift clamped to
            // zero). Among near-ties, prefer the largest pivot element
            // for numerical stability — except under Bland, where the
            // smallest basis index preserves the termination guarantee.
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            let mut best_piv = 0.0f64;
            for r in 0..self.m {
                let a = self.at(r, col);
                if a > opts.pivot_tol {
                    let ratio = self.at(r, self.ncols).max(0.0) / a;
                    let tie = (ratio - best_ratio).abs() <= 1e-9 * best_ratio.max(1e-30);
                    let better = match leave {
                        None => true,
                        Some(lr) => {
                            if tie {
                                if bland {
                                    self.basis[r] < self.basis[lr]
                                } else {
                                    a > best_piv
                                }
                            } else {
                                ratio < best_ratio
                            }
                        }
                    };
                    if better {
                        best_ratio = ratio;
                        best_piv = a;
                        leave = Some(r);
                    }
                }
            }
            let Some(row) = leave else {
                return PhaseResult::Unbounded;
            };

            self.pivot(row, col);

            if !bland {
                let obj = self.at(self.m, self.ncols);
                if obj > last_obj + 1e-12 {
                    stall = 0;
                } else {
                    stall += 1;
                    if stall >= opts.stall_limit {
                        bland = true;
                    }
                }
                last_obj = obj;
            }
        }
        PhaseResult::IterationLimit
    }

    fn solve(mut self, model: &Model, opts: &SimplexOptions) -> (LpOutcome, Option<Vec<f64>>) {
        // Phase 1: drive artificials to zero (skip when none exist — the
        // slack basis is already feasible, e.g. for max-min LPs).
        if self.art_start < self.ncols {
            let mut c1 = vec![0.0; self.ncols];
            for c in c1.iter_mut().skip(self.art_start) {
                *c = -1.0;
            }
            self.set_objective_row(&c1);
            match self.optimize(self.ncols, opts) {
                PhaseResult::Optimal => {}
                PhaseResult::Unbounded => {
                    unreachable!("phase-1 objective is bounded above by zero")
                }
                PhaseResult::IterationLimit => return (LpOutcome::IterationLimit, None),
            }
            // Objective row RHS holds −Σ artificials.
            if self.at(self.m, self.ncols) < -opts.feas_tol {
                return (LpOutcome::Infeasible, None);
            }
            // Pivot basic artificials (at value 0) out where possible so
            // they cannot re-enter trouble; rows that cannot pivot are
            // redundant and harmless with artificials banned in phase 2.
            for r in 0..self.m {
                if self.basis[r] >= self.art_start {
                    if let Some(col) =
                        (0..self.art_start).find(|&j| self.at(r, j).abs() > opts.pivot_tol)
                    {
                        self.pivot(r, col);
                    }
                }
            }
        }

        // Phase 2: real objective (artificial columns banned).
        let mut c2 = vec![0.0; self.ncols];
        c2[..self.n_structural].copy_from_slice(model.objective());
        self.set_objective_row(&c2);
        match self.optimize(self.art_start, opts) {
            PhaseResult::Optimal => {
                let mut x = vec![0.0; self.n_structural];
                for r in 0..self.m {
                    let b = self.basis[r];
                    if b < self.n_structural {
                        x[b] = self.at(r, self.ncols);
                    }
                }
                // Dual value of row r = reduced cost of its slack column
                // (z_j − c_j with c_j = 0), adjusted for the
                // normalisation sign; for a surplus column the sign is
                // already folded into row_slack.
                let width = self.ncols + 1;
                let duals: Vec<f64> = self
                    .row_slack
                    .iter()
                    .map(|&(col, sign)| sign * self.t[self.m * width + col])
                    .collect();
                (
                    LpOutcome::Optimal {
                        objective: self.at(self.m, self.ncols),
                        x,
                    },
                    Some(duals),
                )
            }
            PhaseResult::Unbounded => (LpOutcome::Unbounded, None),
            PhaseResult::IterationLimit => (LpOutcome::IterationLimit, None),
        }
    }
}

enum PhaseResult {
    Optimal,
    Unbounded,
    IterationLimit,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_optimal(out: &LpOutcome, expect_obj: f64, tol: f64) {
        match out {
            LpOutcome::Optimal { objective, .. } => {
                assert!(
                    (objective - expect_obj).abs() <= tol,
                    "objective {objective} != expected {expect_obj}"
                );
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    /// Classic textbook LP: max 3x + 5y, x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18.
    #[test]
    fn wyndor_glass() {
        let mut m = Model::new(2);
        m.set_objective(0, 3.0);
        m.set_objective(1, 5.0);
        m.add_row(vec![(0, 1.0)], Cmp::Le, 4.0);
        m.add_row(vec![(1, 2.0)], Cmp::Le, 12.0);
        m.add_row(vec![(0, 3.0), (1, 2.0)], Cmp::Le, 18.0);
        let out = solve(&m);
        assert_optimal(&out, 36.0, 1e-6);
        let x = out.solution().unwrap();
        assert!((x[0] - 2.0).abs() < 1e-6 && (x[1] - 6.0).abs() < 1e-6);
        assert!(m.max_violation(x) < 1e-6);
    }

    /// Ge rows force phase 1. min x+y s.t. x+2y ≥ 3, 2x+y ≥ 3 — as max of
    /// the negation; optimum at x=y=1.
    #[test]
    fn phase_one_ge_rows() {
        let mut m = Model::new(2);
        m.set_objective(0, -1.0);
        m.set_objective(1, -1.0);
        m.add_row(vec![(0, 1.0), (1, 2.0)], Cmp::Ge, 3.0);
        m.add_row(vec![(0, 2.0), (1, 1.0)], Cmp::Ge, 3.0);
        let out = solve(&m);
        assert_optimal(&out, -2.0, 1e-6);
        let x = out.solution().unwrap();
        assert!((x[0] - 1.0).abs() < 1e-6 && (x[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn equality_rows() {
        // max x + 2y s.t. x + y = 1, y ≤ 0.4 → x=0.6, y=0.4, obj 1.4.
        let mut m = Model::new(2);
        m.set_objective(0, 1.0);
        m.set_objective(1, 2.0);
        m.add_row(vec![(0, 1.0), (1, 1.0)], Cmp::Eq, 1.0);
        m.add_row(vec![(1, 1.0)], Cmp::Le, 0.4);
        assert_optimal(&solve(&m), 1.4, 1e-6);
    }

    #[test]
    fn detects_infeasible() {
        let mut m = Model::new(1);
        m.add_row(vec![(0, 1.0)], Cmp::Le, 1.0);
        m.add_row(vec![(0, 1.0)], Cmp::Ge, 2.0);
        assert!(matches!(solve(&m), LpOutcome::Infeasible));
    }

    #[test]
    fn detects_infeasible_empty_row() {
        // 0 ≥ 1 encoded as an empty Ge row.
        let mut m = Model::new(1);
        m.add_row(vec![], Cmp::Ge, 1.0);
        assert!(matches!(solve(&m), LpOutcome::Infeasible));
    }

    #[test]
    fn detects_unbounded() {
        let mut m = Model::new(2);
        m.set_objective(0, 1.0);
        m.add_row(vec![(1, 1.0)], Cmp::Le, 1.0);
        assert!(matches!(solve(&m), LpOutcome::Unbounded));
    }

    #[test]
    fn no_rows_zero_objective_is_optimal() {
        let m = Model::new(3);
        assert_optimal(&solve(&m), 0.0, 0.0);
    }

    #[test]
    fn no_rows_positive_objective_is_unbounded() {
        let mut m = Model::new(1);
        m.set_objective(0, 2.0);
        assert!(matches!(solve(&m), LpOutcome::Unbounded));
    }

    /// Beale's classic cycling example; Dantzig's rule cycles forever on
    /// it without anti-cycling. Optimum objective is 1/20.
    #[test]
    fn beale_cycling_terminates() {
        let mut m = Model::new(4);
        m.set_objective(0, 0.75);
        m.set_objective(1, -150.0);
        m.set_objective(2, 0.02);
        m.set_objective(3, -6.0);
        m.add_row(
            vec![(0, 0.25), (1, -60.0), (2, -1.0 / 25.0), (3, 9.0)],
            Cmp::Le,
            0.0,
        );
        m.add_row(
            vec![(0, 0.5), (1, -90.0), (2, -1.0 / 50.0), (3, 3.0)],
            Cmp::Le,
            0.0,
        );
        m.add_row(vec![(2, 1.0)], Cmp::Le, 1.0);
        assert_optimal(&solve(&m), 0.05, 1e-6);
    }

    #[test]
    fn negative_rhs_rows_are_normalised() {
        // x ≥ 2 written as −x ≤ −2; max −x → optimum −2.
        let mut m = Model::new(1);
        m.set_objective(0, -1.0);
        m.add_row(vec![(0, -1.0)], Cmp::Le, -2.0);
        let out = solve(&m);
        assert_optimal(&out, -2.0, 1e-6);
        assert!((out.solution().unwrap()[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_lp_solves() {
        // Multiple redundant constraints through the same vertex.
        let mut m = Model::new(2);
        m.set_objective(0, 1.0);
        m.set_objective(1, 1.0);
        for _ in 0..6 {
            m.add_row(vec![(0, 1.0), (1, 1.0)], Cmp::Le, 1.0);
        }
        m.add_row(vec![(0, 1.0)], Cmp::Le, 1.0);
        m.add_row(vec![(1, 1.0)], Cmp::Le, 1.0);
        assert_optimal(&solve(&m), 1.0, 1e-6);
    }

    #[test]
    fn redundant_equalities_phase1_exits_cleanly() {
        // x + y = 1 twice (second is redundant: artificial cannot pivot
        // out on a fresh column after phase 1 in some pivot orders).
        let mut m = Model::new(2);
        m.set_objective(0, 1.0);
        m.add_row(vec![(0, 1.0), (1, 1.0)], Cmp::Eq, 1.0);
        m.add_row(vec![(0, 1.0), (1, 1.0)], Cmp::Eq, 1.0);
        assert_optimal(&solve(&m), 1.0, 1e-6);
    }

    #[test]
    fn duplicate_variable_entries_are_summed() {
        // (x + x) ≤ 2 means x ≤ 1.
        let mut m = Model::new(1);
        m.set_objective(0, 1.0);
        m.add_row(vec![(0, 1.0), (0, 1.0)], Cmp::Le, 2.0);
        assert_optimal(&solve(&m), 1.0, 1e-6);
    }

    /// Randomised cross-check: maximise Σx over Σ a_i x_i ≤ 1 rows; the
    /// optimum is attained and feasible, and weak duality holds against
    /// hand-built feasible points.
    #[test]
    fn random_packing_solutions_are_feasible_and_dominant() {
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for trial in 0..20 {
            let n = 3 + trial % 5;
            let mut m = Model::new(n);
            for j in 0..n {
                m.set_objective(j, 1.0);
            }
            for _ in 0..n + 2 {
                let coefs: Vec<(usize, f64)> = (0..n).map(|j| (j, 0.1 + rng())).collect();
                m.add_row(coefs, Cmp::Le, 1.0);
            }
            let out = solve(&m);
            let x = out.solution().expect("bounded packing LP");
            assert!(m.max_violation(x) < 1e-7);
            // A scaled uniform point is feasible; optimum must dominate it.
            let worst_row: f64 = m
                .rows()
                .iter()
                .map(|r| r.coefs.iter().map(|&(_, a)| a).sum::<f64>())
                .fold(0.0, f64::max);
            let uniform = 1.0 / worst_row;
            let feas_obj = uniform * n as f64;
            assert!(out.objective().unwrap() >= feas_obj - 1e-6);
        }
    }

    #[test]
    fn duals_satisfy_strong_duality_wyndor() {
        let mut m = Model::new(2);
        m.set_objective(0, 3.0);
        m.set_objective(1, 5.0);
        m.add_row(vec![(0, 1.0)], Cmp::Le, 4.0);
        m.add_row(vec![(1, 2.0)], Cmp::Le, 12.0);
        m.add_row(vec![(0, 3.0), (1, 2.0)], Cmp::Le, 18.0);
        let (out, duals) = solve_with_duals(&m, &SimplexOptions::default());
        let obj = out.objective().unwrap();
        let y = duals.unwrap();
        // Known optimal duals: (0, 3/2, 1).
        assert!(y[0].abs() < 1e-6);
        assert!((y[1] - 1.5).abs() < 1e-6);
        assert!((y[2] - 1.0).abs() < 1e-6);
        // Strong duality: y·b = objective.
        let yb = y[0] * 4.0 + y[1] * 12.0 + y[2] * 18.0;
        assert!((yb - obj).abs() < 1e-6);
        // Dual feasibility: Aᵀy ≥ c.
        assert!(y[0] + 3.0 * y[2] >= 3.0 - 1e-6);
        assert!(2.0 * y[1] + 2.0 * y[2] >= 5.0 - 1e-6);
    }

    #[test]
    fn duals_nonnegative_and_tight_on_random_packing() {
        let mut state = 0xABCDu64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..10 {
            let n = 4;
            let mut m = Model::new(n);
            for j in 0..n {
                m.set_objective(j, 0.5 + rng());
            }
            let mut rhs = Vec::new();
            for _ in 0..n + 2 {
                let coefs: Vec<(usize, f64)> = (0..n).map(|j| (j, 0.1 + rng())).collect();
                let b = 1.0 + rng();
                m.add_row(coefs, Cmp::Le, b);
                rhs.push(b);
            }
            let (out, duals) = solve_with_duals(&m, &SimplexOptions::default());
            let obj = out.objective().expect("bounded packing LP");
            let y = duals.unwrap();
            assert!(y.iter().all(|&v| v >= -1e-7), "duals of Le rows are ≥ 0");
            let yb: f64 = y.iter().zip(&rhs).map(|(a, b)| a * b).sum();
            assert!(
                (yb - obj).abs() <= 1e-6 * obj.abs().max(1.0),
                "strong duality: {yb} vs {obj}"
            );
        }
    }

    #[test]
    fn duals_with_ge_and_eq_rows() {
        // min x + y s.t. x + 2y ≥ 3, x = 1 → y = 1, objective −2 (as max).
        let mut m = Model::new(2);
        m.set_objective(0, -1.0);
        m.set_objective(1, -1.0);
        m.add_row(vec![(0, 1.0), (1, 2.0)], Cmp::Ge, 3.0);
        m.add_row(vec![(0, 1.0)], Cmp::Eq, 1.0);
        let (out, duals) = solve_with_duals(&m, &SimplexOptions::default());
        let obj = out.objective().unwrap();
        assert!((obj + 2.0).abs() < 1e-6);
        let y = duals.unwrap();
        let yb = y[0] * 3.0 + y[1] * 1.0;
        assert!((yb - obj).abs() < 1e-6, "strong duality with Ge/Eq rows");
    }
}
