//! Exact rational arithmetic over `i128` for the validation simplex.
//!
//! Numbers are kept normalised (`den > 0`, `gcd(num, den) = 1`).
//! Arithmetic **panics on overflow** with a clear message: the exact
//! solver is a validation tool for micro-instances (tens of variables,
//! small integer coefficients), where tableau entries are quotients of
//! minor determinants and stay far below the ~1.7e38 range of `i128`.
//! Production solving uses the f64 simplex.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A normalised rational number.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rat {
    num: i128,
    den: i128,
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rat {
    /// Zero.
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    /// One.
    pub const ONE: Rat = Rat { num: 1, den: 1 };

    /// `num / den`; panics when `den == 0`.
    pub fn new(num: i128, den: i128) -> Rat {
        assert!(den != 0, "rational with zero denominator");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num, den).max(1);
        Rat {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// An integer.
    pub fn from_int(n: i128) -> Rat {
        Rat { num: n, den: 1 }
    }

    /// Numerator (after normalisation).
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// Denominator (positive).
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// Conversion for reporting (may round).
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Strictly negative?
    pub fn is_negative(&self) -> bool {
        self.num < 0
    }

    /// Strictly positive?
    pub fn is_positive(&self) -> bool {
        self.num > 0
    }

    /// Zero?
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Multiplicative inverse; panics on zero.
    pub fn recip(&self) -> Rat {
        assert!(self.num != 0, "division by zero rational");
        Rat::new(self.den, self.num)
    }

    fn checked(num: Option<i128>, den: Option<i128>, op: &str) -> Rat {
        match (num, den) {
            (Some(n), Some(d)) => Rat::new(n, d),
            _ => panic!("rational overflow in {op} — instance too large for exact validation"),
        }
    }
}

impl Add for Rat {
    type Output = Rat;
    fn add(self, o: Rat) -> Rat {
        // Reduce by gcd of denominators first to delay overflow.
        let g = gcd(self.den, o.den).max(1);
        let (da, db) = (self.den / g, o.den / g);
        Rat::checked(
            self.num
                .checked_mul(db)
                .and_then(|a| o.num.checked_mul(da).and_then(|b| a.checked_add(b))),
            self.den.checked_mul(db),
            "add",
        )
    }
}

impl Sub for Rat {
    type Output = Rat;
    #[allow(clippy::suspicious_arithmetic_impl)] // subtraction = add the negation
    fn sub(self, o: Rat) -> Rat {
        self + (-o)
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat {
            num: -self.num,
            den: self.den,
        }
    }
}

impl Mul for Rat {
    type Output = Rat;
    fn mul(self, o: Rat) -> Rat {
        // Cross-reduce before multiplying.
        let g1 = gcd(self.num, o.den).max(1);
        let g2 = gcd(o.num, self.den).max(1);
        Rat::checked(
            (self.num / g1).checked_mul(o.num / g2),
            (self.den / g2).checked_mul(o.den / g1),
            "mul",
        )
    }
}

impl Div for Rat {
    type Output = Rat;
    #[allow(clippy::suspicious_arithmetic_impl)] // division = multiply by reciprocal
    fn div(self, o: Rat) -> Rat {
        self * o.recip()
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Rat) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Rat) -> Ordering {
        // a/b vs c/d  ⇔  a·d vs c·b  (b, d > 0). Reduce first.
        let g = gcd(self.den, other.den).max(1);
        let (db, dd) = (self.den / g, other.den / g);
        let lhs = self.num.checked_mul(dd).expect("rational overflow in cmp");
        let rhs = other.num.checked_mul(db).expect("rational overflow in cmp");
        lhs.cmp(&rhs)
    }
}

impl fmt::Debug for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalisation() {
        assert_eq!(Rat::new(2, 4), Rat::new(1, 2));
        assert_eq!(Rat::new(-2, -4), Rat::new(1, 2));
        assert_eq!(Rat::new(2, -4), Rat::new(-1, 2));
        assert_eq!(Rat::new(0, 5), Rat::ZERO);
        assert_eq!(format!("{}", Rat::new(3, 6)), "1/2");
        assert_eq!(format!("{}", Rat::from_int(7)), "7");
    }

    #[test]
    fn arithmetic() {
        let a = Rat::new(1, 2);
        let b = Rat::new(1, 3);
        assert_eq!(a + b, Rat::new(5, 6));
        assert_eq!(a - b, Rat::new(1, 6));
        assert_eq!(a * b, Rat::new(1, 6));
        assert_eq!(a / b, Rat::new(3, 2));
        assert_eq!(-a, Rat::new(-1, 2));
        assert_eq!(a.recip(), Rat::from_int(2));
    }

    #[test]
    fn ordering() {
        assert!(Rat::new(1, 3) < Rat::new(1, 2));
        assert!(Rat::new(-1, 2) < Rat::ZERO);
        assert_eq!(Rat::new(2, 6).cmp(&Rat::new(1, 3)), Ordering::Equal);
        let mut v = vec![Rat::new(3, 4), Rat::new(1, 4), Rat::new(1, 2)];
        v.sort();
        assert_eq!(v, vec![Rat::new(1, 4), Rat::new(1, 2), Rat::new(3, 4)]);
    }

    #[test]
    fn predicates_and_conversion() {
        assert!(Rat::new(-1, 7).is_negative());
        assert!(Rat::new(1, 7).is_positive());
        assert!(Rat::ZERO.is_zero());
        assert!((Rat::new(1, 4).to_f64() - 0.25).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        Rat::new(1, 0);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn zero_reciprocal_panics() {
        Rat::ZERO.recip();
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_is_loud() {
        let big = Rat::new(i128::MAX / 2, 1);
        let _ = big * big;
    }

    #[test]
    fn gcd_reduction_delays_overflow() {
        // Sums of fractions with a common denominator factor stay small.
        let mut acc = Rat::ZERO;
        for _ in 0..1000 {
            acc = acc + Rat::new(1, 1 << 20);
        }
        assert_eq!(acc, Rat::new(1000, 1 << 20));
    }
}
