//! # `mmlp-lab` — the experiment-campaign subsystem
//!
//! The paper's headline claim is a *tight* ratio `ΔI(1 − 1/ΔK) + ε`;
//! checking tightness empirically means sweeping generator families ×
//! sizes × seeds × locality parameters × solver variants. This crate
//! turns that sweep into a first-class object:
//!
//! * [`spec`] — a **declarative campaign spec**: a line-oriented text
//!   format (same idiom as `mmlp_instance::textfmt`) describing the
//!   grid to run.
//! * [`job`] — grid expansion into [`job::Job`]s, each with a **stable
//!   content hash** that identifies it across runs.
//! * [`pool`] — a multithreaded scheduler with per-job **timeouts** and
//!   **panic isolation**.
//! * [`exec`] — runs one job: generate the instance, run the chosen
//!   solver, certify against the exact LP optimum.
//! * [`record`] — the structured per-job result (utility, optimum,
//!   approximation ratio vs. the Theorem 1 guarantee, wall time, and
//!   the protocol's round/message/byte accounting).
//! * [`jsonl`] — the minimal flat-JSON encoder/parser backing the
//!   append-only record log (serde is unavailable offline).
//! * [`campaign`] — orchestration: **resumable** runs (completed job
//!   hashes found in `results.jsonl` are skipped), status inspection.
//! * [`spill`] — re-keys completed measurements into a persistent
//!   content-addressed `mmlp-store` (the same store the solver service
//!   mounts), instance blobs and all.
//! * [`report`] — aggregation into ratio-vs-guarantee, solver
//!   comparison and scaling tables, rendered as aligned text and CSV.
//!
//! ## Quickstart
//!
//! ```
//! use mmlp_lab::prelude::*;
//!
//! let text = "\
//! mmlplab 1
//! name demo
//! families cycle
//! sizes 8
//! seeds 0 1
//! R 2
//! solvers local safe
//! ";
//! let spec = parse_spec(text).unwrap();
//! let records = run_in_memory(&spec, 2);
//! assert_eq!(records.len(), 4); // 2 seeds × (local@R2 + safe)
//! assert!(report::violations(&records).is_empty());
//! println!("{}", report::render_report(&records));
//! ```

pub mod campaign;
pub mod exec;
pub mod job;
pub mod jsonl;
pub mod pool;
pub mod record;
pub mod report;
pub mod spec;
pub mod spill;

/// One-stop imports for the CLI, the experiment harness and tests.
pub mod prelude {
    pub use crate::campaign::{
        load_records, run_campaign, run_in_memory, status, RunOptions, RunSummary, StatusSummary,
    };
    pub use crate::job::{expand, Job, SolverKind};
    pub use crate::record::{JobRecord, JobStatus};
    pub use crate::report;
    pub use crate::spec::{parse_spec, write_spec, CampaignSpec};
    pub use crate::spill::{spill_records, SpillSummary};
}
