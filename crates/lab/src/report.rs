//! Aggregation of record logs into tables: ratio-vs-guarantee, solver
//! comparison, and scaling (wall time / protocol cost), rendered as
//! aligned text and CSV.

use crate::job::SolverKind;
use crate::record::{JobRecord, JobStatus};
use std::collections::BTreeMap;

/// A table rendered as aligned text or CSV.
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders with right-aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = fmt_row(&self.headers);
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  "),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders as a GitHub-flavoured markdown table.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Renders as CSV (RFC-4180 quoting where needed).
    pub fn render_csv(&self) -> String {
        let quote = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        for line in std::iter::once(&self.headers).chain(&self.rows) {
            out.push_str(&line.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

fn ok_records(records: &[JobRecord]) -> impl Iterator<Item = &JobRecord> {
    records.iter().filter(|r| r.status == JobStatus::Ok)
}

fn mean(xs: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0usize);
    for x in xs {
        sum += x;
        n += 1;
    }
    if n == 0 {
        f64::NAN
    } else {
        sum / n as f64
    }
}

/// The ratio-vs-guarantee table: ok records of guarantee-carrying
/// solvers (local / distributed), grouped by family × solver × R.
pub fn ratio_vs_guarantee(records: &[JobRecord]) -> Table {
    let mut groups: BTreeMap<(String, &'static str, usize), Vec<&JobRecord>> = BTreeMap::new();
    for r in ok_records(records) {
        if r.solver.uses_r() {
            groups
                .entry((r.family.clone(), r.solver.name(), r.big_r))
                .or_default()
                .push(r);
        }
    }
    let mut table = Table::new(&[
        "family",
        "solver",
        "ΔI",
        "ΔK",
        "R",
        "jobs",
        "worst ratio",
        "mean ratio",
        "guarantee",
        "threshold",
    ]);
    for ((family, solver, big_r), rs) in &groups {
        let worst = rs.iter().map(|r| r.ratio).fold(0.0f64, f64::max);
        let mean_ratio = mean(rs.iter().map(|r| r.ratio));
        let guarantee = rs.iter().map(|r| r.guarantee).fold(0.0f64, f64::max);
        let threshold = rs.iter().map(|r| r.threshold).fold(0.0f64, f64::max);
        let delta_i = rs.iter().map(|r| r.delta_i).max().unwrap_or(0);
        let delta_k = rs.iter().map(|r| r.delta_k).max().unwrap_or(0);
        table.row(vec![
            family.clone(),
            solver.to_string(),
            delta_i.to_string(),
            delta_k.to_string(),
            big_r.to_string(),
            rs.len().to_string(),
            format!("{worst:.4}"),
            format!("{mean_ratio:.4}"),
            format!("{guarantee:.4}"),
            format!("{threshold:.4}"),
        ]);
    }
    table
}

/// The solver-comparison table, grouped by family: per solver present
/// in the log, mean utility and ratio-of-means — each solver's ratio is
/// computed against the mean optimum **of its own records**, so a
/// solver that failed on part of the grid is not judged against optima
/// of instances it never solved. The ω* column is the mean optimum over
/// distinct grid points (one record per size × seed × R). Solvers with
/// no ok record for a family render as `-`.
pub fn solver_comparison(records: &[JobRecord]) -> Table {
    let mut solvers: Vec<SolverKind> = Vec::new();
    for s in SolverKind::all() {
        if ok_records(records).any(|r| r.solver == s) {
            solvers.push(s);
        }
    }
    let mut headers: Vec<String> = vec!["family".into(), "ω* (mean)".into()];
    for s in &solvers {
        headers.push(format!("ω {}", s.name()));
        headers.push(format!("ratio {}", s.name()));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);

    let mut families: Vec<String> = ok_records(records).map(|r| r.family.clone()).collect();
    families.sort();
    families.dedup();
    for family in &families {
        let fam_records: Vec<&JobRecord> = ok_records(records)
            .filter(|r| &r.family == family)
            .collect();
        // One optimum per grid point, not per record: multi-solver logs
        // carry each instance's optimum once per solver.
        let mut seen = std::collections::HashSet::new();
        let opt = mean(
            fam_records
                .iter()
                .filter(|r| seen.insert((r.size, r.seed)))
                .map(|r| r.optimum),
        );
        let mut cells = vec![family.clone(), format!("{opt:.4}")];
        for s in &solvers {
            let solver_records: Vec<&&JobRecord> =
                fam_records.iter().filter(|r| r.solver == *s).collect();
            if solver_records.is_empty() {
                cells.push("-".into());
                cells.push("-".into());
                continue;
            }
            let util = mean(solver_records.iter().map(|r| r.utility));
            let solver_opt = mean(solver_records.iter().map(|r| r.optimum));
            cells.push(format!("{util:.4}"));
            cells.push(format!("{:.4}", solver_opt / util));
        }
        table.row(cells);
    }
    table
}

/// The scaling table: wall time and protocol cost per family × solver ×
/// R × size, sorted by size within each group.
pub fn scaling(records: &[JobRecord]) -> Table {
    let mut groups: BTreeMap<(String, &'static str, usize, usize), Vec<&JobRecord>> =
        BTreeMap::new();
    for r in ok_records(records) {
        groups
            .entry((r.family.clone(), r.solver.name(), r.big_r, r.size))
            .or_default()
            .push(r);
    }
    let mut table = Table::new(&[
        "family",
        "solver",
        "R",
        "size",
        "agents",
        "jobs",
        "mean wall ms",
        "mean rounds",
        "mean msgs",
        "mean KB",
        "mean interned",
        "mean dedup",
    ]);
    for ((family, solver, big_r, size), rs) in &groups {
        // View-arena dedup of the flat distributed path: logical bytes
        // per deduped arena byte (records without an arena show "-").
        let flat: Vec<&&JobRecord> = rs.iter().filter(|r| r.arena_bytes > 0).collect();
        let (interned, dedup) = if flat.is_empty() {
            ("-".to_string(), "-".to_string())
        } else {
            (
                format!("{:.0}", mean(flat.iter().map(|r| r.interned as f64))),
                format!(
                    "{:.2}",
                    mean(flat.iter().map(|r| r.bytes as f64 / r.arena_bytes as f64))
                ),
            )
        };
        table.row(vec![
            family.clone(),
            solver.to_string(),
            big_r.to_string(),
            size.to_string(),
            format!("{:.0}", mean(rs.iter().map(|r| r.agents as f64))),
            rs.len().to_string(),
            format!("{:.2}", mean(rs.iter().map(|r| r.wall_ms))),
            format!("{:.1}", mean(rs.iter().map(|r| r.rounds as f64))),
            format!("{:.0}", mean(rs.iter().map(|r| r.messages as f64))),
            format!("{:.2}", mean(rs.iter().map(|r| r.bytes as f64 / 1024.0))),
            interned,
            dedup,
        ]);
    }
    table
}

/// Checks every ok record against its proved bounds. Returns one
/// human-readable violation per offending record; an empty vector is
/// the empirical "Theorem 1 holds" verdict.
pub fn violations(records: &[JobRecord]) -> Vec<String> {
    let mut out = Vec::new();
    for r in ok_records(records) {
        if r.ratio > r.guarantee + 1e-6 {
            out.push(format!(
                "job {}: ratio {:.6} exceeds the {} guarantee {:.6} \
                 ({} size={} seed={} R={})",
                r.job_id,
                r.ratio,
                r.solver.name(),
                r.guarantee,
                r.family,
                r.size,
                r.seed,
                r.big_r
            ));
        }
        if r.utility > r.optimum + 1e-6 * r.optimum.abs().max(1.0) {
            out.push(format!(
                "job {}: utility {:.6} exceeds the LP optimum {:.6} — simplex bug?",
                r.job_id, r.utility, r.optimum
            ));
        }
    }
    out
}

/// Renders the full text report: a status header, the three tables and
/// the bound-violation verdict.
pub fn render_report(records: &[JobRecord]) -> String {
    let ok = ok_records(records).count();
    let failed = records.len() - ok;
    let mut out = String::new();
    out.push_str(&format!(
        "== campaign report: {} records ({ok} ok, {failed} failed) ==\n\n",
        records.len()
    ));
    let ratio = ratio_vs_guarantee(records);
    if ratio.n_rows() > 0 {
        out.push_str("--- approximation ratio vs the Theorem 1 guarantee ---\n");
        out.push_str(&ratio.render());
        out.push('\n');
    }
    let cmp = solver_comparison(records);
    if cmp.n_rows() > 0 {
        out.push_str("--- solver comparison (mean utility vs ω*) ---\n");
        out.push_str(&cmp.render());
        out.push('\n');
    }
    let sc = scaling(records);
    if sc.n_rows() > 0 {
        out.push_str("--- scaling (wall time, protocol cost) ---\n");
        out.push_str(&sc.render());
        out.push('\n');
    }
    let v = violations(records);
    if v.is_empty() {
        out.push_str("every measured ratio is within its proved guarantee. ✓\n");
    } else {
        out.push_str(&format!("!! {} bound violations:\n", v.len()));
        for line in &v {
            out.push_str(&format!("  {line}\n"));
        }
    }
    out
}

/// Writes `ratio.csv`, `comparison.csv` and `scaling.csv` into `dir`;
/// returns the paths written.
pub fn write_csv_files(
    records: &[JobRecord],
    dir: &std::path::Path,
) -> std::io::Result<Vec<std::path::PathBuf>> {
    let files = [
        ("ratio.csv", ratio_vs_guarantee(records)),
        ("comparison.csv", solver_comparison(records)),
        ("scaling.csv", scaling(records)),
    ];
    let mut written = Vec::new();
    for (name, table) in files {
        let path = dir.join(name);
        std::fs::write(&path, table.render_csv())?;
        written.push(path);
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;

    fn record(family: &str, solver: SolverKind, big_r: usize, seed: u64, ratio: f64) -> JobRecord {
        let job = Job {
            family: family.into(),
            size: 20,
            seed,
            big_r,
            solver,
        };
        JobRecord {
            ratio,
            utility: 1.0,
            optimum: ratio,
            guarantee: 2.25,
            threshold: 2.0,
            delta_i: 3,
            delta_k: 3,
            agents: 20,
            wall_ms: 1.5,
            rounds: if solver == SolverKind::Distributed {
                18
            } else {
                0
            },
            messages: 100,
            bytes: 2048,
            interned: if solver == SolverKind::Distributed {
                64
            } else {
                0
            },
            arena_bytes: if solver == SolverKind::Distributed {
                1024
            } else {
                0
            },
            gather_ns: 0,
            t_eval_ns: 0,
            flood_ns: 0,
            g_ns: 0,
            memo_hits: 0,
            memo_misses: 0,
            edits: 0,
            recomputed_x: 0,
            status: JobStatus::Ok,
            error: String::new(),
            job_id: job.id(),
            family: job.family,
            size: job.size,
            seed: job.seed,
            big_r: job.big_r,
            solver: job.solver,
        }
    }

    #[test]
    fn ratio_table_groups_and_aggregates() {
        let records = vec![
            record("cycle", SolverKind::Local, 2, 0, 1.1),
            record("cycle", SolverKind::Local, 2, 1, 1.3),
            record("cycle", SolverKind::Local, 3, 0, 1.2),
            record("cycle", SolverKind::Safe, 0, 0, 1.9), // no R: excluded
        ];
        let t = ratio_vs_guarantee(&records);
        assert_eq!(t.n_rows(), 2, "grouped by (family, solver, R)");
        let text = t.render();
        assert!(text.contains("1.3000"), "worst of the R=2 group:\n{text}");
        assert!(text.contains("1.2000"), "mean of the R=2 group:\n{text}");
    }

    #[test]
    fn comparison_table_has_one_column_pair_per_solver() {
        let records = vec![
            record("cycle", SolverKind::Local, 2, 0, 1.1),
            record("cycle", SolverKind::Safe, 0, 0, 1.9),
        ];
        let t = solver_comparison(&records);
        assert_eq!(t.n_rows(), 1);
        let text = t.render();
        assert!(
            text.contains("ω local") && text.contains("ω safe"),
            "{text}"
        );
    }

    #[test]
    fn comparison_judges_each_solver_on_its_own_records() {
        // local covers seeds 0–1 (optima 1 and 3), distributed only
        // seed 0 (optimum 1): distributed's ratio must use its own
        // population (1.0), not the family-wide mean optimum (2.0);
        // and ω* dedupes the grid point both solvers share.
        let records = vec![
            record("cycle", SolverKind::Local, 2, 0, 1.0),
            record("cycle", SolverKind::Local, 2, 1, 3.0),
            record("cycle", SolverKind::Distributed, 2, 0, 1.0),
            record("other", SolverKind::Local, 2, 0, 1.0),
        ];
        let t = solver_comparison(&records);
        let text = t.render();
        let cycle_row = text.lines().find(|l| l.contains("cycle")).unwrap();
        assert!(cycle_row.contains("2.0000"), "deduped ω* mean: {cycle_row}");
        let cells: Vec<&str> = cycle_row.split_whitespace().collect();
        assert_eq!(
            *cells.last().unwrap(),
            "1.0000",
            "distributed ratio from its own records: {cycle_row}"
        );
        let other_row = text.lines().find(|l| l.contains("other")).unwrap();
        assert!(
            other_row.trim_end().ends_with('-'),
            "absent solver renders as '-': {other_row}"
        );
    }

    #[test]
    fn violations_catch_ratio_and_optimum_breaches() {
        let good = record("cycle", SolverKind::Local, 2, 0, 1.5);
        let mut bad_ratio = record("cycle", SolverKind::Local, 2, 1, 2.5);
        bad_ratio.ratio = 2.5; // > guarantee 2.25
        let mut bad_opt = record("cycle", SolverKind::Local, 2, 2, 1.0);
        bad_opt.utility = 2.0;
        bad_opt.optimum = 1.0;
        let v = violations(&[good, bad_ratio, bad_opt]);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].contains("exceeds the local guarantee"));
        assert!(v[1].contains("simplex bug"));
    }

    #[test]
    fn failed_records_do_not_poison_tables() {
        let job = Job {
            family: "cycle".into(),
            size: 8,
            seed: 0,
            big_r: 2,
            solver: SolverKind::Local,
        };
        let records = vec![
            record("cycle", SolverKind::Local, 2, 0, 1.1),
            JobRecord::failed(&job, JobStatus::Panicked, "boom".into()),
        ];
        let report = render_report(&records);
        assert!(report.contains("1 ok, 1 failed"));
        assert!(!report.contains("NaN"), "{report}");
    }

    #[test]
    fn csv_is_quoted_and_complete() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x,y".into(), "plain".into()]);
        t.row(vec!["with \"quote\"".into(), "z".into()]);
        let csv = t.render_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"with \"\"quote\"\"\""));
    }

    #[test]
    fn csv_files_are_written() {
        let dir = std::env::temp_dir().join(format!("mmlp-lab-csv-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let records = vec![record("cycle", SolverKind::Local, 2, 0, 1.1)];
        let written = write_csv_files(&records, &dir).unwrap();
        assert_eq!(written.len(), 3);
        for p in &written {
            assert!(std::fs::read_to_string(p).unwrap().lines().count() >= 1);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
