//! Minimal flat-JSON encoding for the append-only record log.
//!
//! Each log line is one flat JSON object whose values are strings,
//! finite numbers, booleans or `null` — exactly what a
//! [`crate::record::JobRecord`] needs. serde is unavailable offline, so
//! this module hand-rolls the subset: an [`ObjWriter`] builder and a
//! [`parse_object`] scanner. Nested objects and arrays are rejected;
//! non-finite numbers are written as `null`.

/// A parsed JSON scalar.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A JSON string.
    Str(String),
    /// A number written with a fraction or exponent.
    Num(f64),
    /// A number written as a plain integer literal — kept exact, so
    /// `u64` fields round-trip without passing through `f64` (which
    /// would silently corrupt values ≥ 2⁵³).
    Int(i128),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
}

impl Value {
    /// The string payload, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload (`null` reads as NaN, matching the writer's
    /// non-finite convention).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            Value::Int(i) => Some(*i as f64),
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// An exact unsigned integer; `None` for anything else — including
    /// `null` and fractional numbers, so integer record fields cannot
    /// silently read as 0.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }
}

/// Escapes a string for inclusion in a JSON document.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Builder for one flat JSON object, emitted as a single line.
#[derive(Debug, Default)]
pub struct ObjWriter {
    buf: String,
}

impl ObjWriter {
    /// Starts an empty object.
    pub fn new() -> Self {
        ObjWriter { buf: String::new() }
    }

    fn key(&mut self, k: &str) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push('"');
        self.buf.push_str(&escape(k));
        self.buf.push_str("\":");
    }

    /// Adds a string field.
    pub fn str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        self.buf.push('"');
        self.buf.push_str(&escape(v));
        self.buf.push('"');
        self
    }

    /// Adds a numeric field (non-finite values become `null`).
    pub fn num(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k);
        if v.is_finite() {
            // Rust's shortest-round-trip formatting: parses back bit-exactly.
            self.buf.push_str(&format!("{v}"));
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Adds an unsigned integer field.
    pub fn int(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Finishes the object: `{"k":v,...}` with no trailing newline.
    pub fn finish(&self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Parses one flat JSON object into key/value pairs (insertion order
/// preserved). Rejects nesting, arrays and trailing garbage.
pub fn parse_object(line: &str) -> Result<Vec<(String, Value)>, String> {
    let mut chars = line.char_indices().peekable();
    let mut out = Vec::new();

    let skip_ws = |chars: &mut std::iter::Peekable<std::str::CharIndices>| {
        while matches!(chars.peek(), Some((_, c)) if c.is_ascii_whitespace()) {
            chars.next();
        }
    };

    fn parse_string(
        chars: &mut std::iter::Peekable<std::str::CharIndices>,
    ) -> Result<String, String> {
        match chars.next() {
            Some((_, '"')) => {}
            other => return Err(format!("expected '\"', got {other:?}")),
        }
        let mut s = String::new();
        loop {
            match chars.next() {
                Some((_, '"')) => return Ok(s),
                Some((_, '\\')) => match chars.next() {
                    Some((_, '"')) => s.push('"'),
                    Some((_, '\\')) => s.push('\\'),
                    Some((_, '/')) => s.push('/'),
                    Some((_, 'n')) => s.push('\n'),
                    Some((_, 'r')) => s.push('\r'),
                    Some((_, 't')) => s.push('\t'),
                    Some((_, 'u')) => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let (_, c) = chars.next().ok_or("truncated \\u escape")?;
                            code = code * 16
                                + c.to_digit(16).ok_or_else(|| format!("bad hex '{c}'"))?;
                        }
                        s.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some((_, c)) => s.push(c),
                None => return Err("unterminated string".into()),
            }
        }
    }

    skip_ws(&mut chars);
    match chars.next() {
        Some((_, '{')) => {}
        other => return Err(format!("expected '{{', got {other:?}")),
    }
    skip_ws(&mut chars);
    if matches!(chars.peek(), Some((_, '}'))) {
        chars.next();
    } else {
        loop {
            skip_ws(&mut chars);
            let key = parse_string(&mut chars)?;
            skip_ws(&mut chars);
            match chars.next() {
                Some((_, ':')) => {}
                other => return Err(format!("expected ':', got {other:?}")),
            }
            skip_ws(&mut chars);
            let value = match chars.peek().copied() {
                Some((_, '"')) => Value::Str(parse_string(&mut chars)?),
                Some((start, c)) if c == '-' || c.is_ascii_digit() => {
                    let mut end = start;
                    while let Some(&(i, c)) = chars.peek() {
                        if c == '-'
                            || c == '+'
                            || c == '.'
                            || c == 'e'
                            || c == 'E'
                            || c.is_ascii_digit()
                        {
                            end = i + c.len_utf8();
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    let text = &line[start..end];
                    let is_integral = !text.contains(['.', 'e', 'E']);
                    match text.parse::<i128>() {
                        Ok(i) if is_integral => Value::Int(i),
                        _ => Value::Num(
                            text.parse()
                                .map_err(|e| format!("bad number '{text}': {e}"))?,
                        ),
                    }
                }
                Some((start, c)) if c.is_ascii_alphabetic() => {
                    let mut end = start;
                    while let Some(&(i, c)) = chars.peek() {
                        if c.is_ascii_alphabetic() {
                            end = i + c.len_utf8();
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    match &line[start..end] {
                        "true" => Value::Bool(true),
                        "false" => Value::Bool(false),
                        "null" => Value::Null,
                        w => return Err(format!("unexpected word '{w}'")),
                    }
                }
                Some((_, '{')) | Some((_, '[')) => {
                    return Err("nested objects/arrays are not supported".into())
                }
                other => return Err(format!("expected a value, got {other:?}")),
            };
            out.push((key, value));
            skip_ws(&mut chars);
            match chars.next() {
                Some((_, ',')) => continue,
                Some((_, '}')) => break,
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
    skip_ws(&mut chars);
    if let Some((_, c)) = chars.next() {
        return Err(format!("trailing garbage '{c}'"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_parse_round_trips() {
        let mut w = ObjWriter::new();
        w.str("family", "random-3x3")
            .int("size", 40)
            .num("ratio", 1.2345678901234567)
            .num("bad", f64::INFINITY)
            .str("note", "a \"quoted\"\nline\\");
        let line = w.finish();
        let kv = parse_object(&line).unwrap();
        assert_eq!(kv[0], ("family".into(), Value::Str("random-3x3".into())));
        assert_eq!(kv[1], ("size".into(), Value::Int(40)));
        let ratio = kv[2].1.as_f64().unwrap();
        assert_eq!(ratio.to_bits(), 1.2345678901234567f64.to_bits());
        assert_eq!(kv[3].1, Value::Null);
        assert_eq!(kv[4].1.as_str(), Some("a \"quoted\"\nline\\"));
    }

    #[test]
    fn parses_hand_written_json() {
        let kv = parse_object(r#" { "a" : 1e-3 , "b" : true , "c" : null , "d" : "x" } "#).unwrap();
        assert_eq!(kv.len(), 4);
        assert_eq!(kv[0].1, Value::Num(1e-3));
        assert_eq!(kv[1].1, Value::Bool(true));
        assert_eq!(kv[2].1, Value::Null);
    }

    #[test]
    fn empty_object_parses() {
        assert!(parse_object("{}").unwrap().is_empty());
    }

    #[test]
    fn large_integers_round_trip_exactly() {
        // 2^53 + 1 is not representable in f64: the Int variant must
        // carry it through unchanged.
        let mut w = ObjWriter::new();
        w.int("seed", (1u64 << 53) + 1);
        let kv = parse_object(&w.finish()).unwrap();
        assert_eq!(kv[0].1.as_u64(), Some((1u64 << 53) + 1));
    }

    #[test]
    fn as_u64_rejects_null_fractions_and_negatives() {
        let kv = parse_object(r#"{"a":null,"b":1.5,"c":-3,"d":1e3,"e":7}"#).unwrap();
        assert_eq!(kv[0].1.as_u64(), None, "null must not read as 0");
        assert_eq!(kv[1].1.as_u64(), None);
        assert_eq!(kv[2].1.as_u64(), None);
        assert_eq!(kv[3].1.as_u64(), None, "exponent form is a float");
        assert_eq!(kv[4].1.as_u64(), Some(7));
        assert_eq!(kv[3].1.as_f64(), Some(1e3));
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "{\"a\":1,}",
            "{\"a\":{}}",
            "{\"a\":[1]}",
            "{\"a\":1} extra",
            "{\"a\":wat}",
            "{\"a\":\"unterminated}",
        ] {
            assert!(parse_object(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn unicode_escapes_round_trip() {
        let mut w = ObjWriter::new();
        w.str("s", "ctrl\u{1}char — ΔI");
        let kv = parse_object(&w.finish()).unwrap();
        assert_eq!(kv[0].1.as_str(), Some("ctrl\u{1}char — ΔI"));
    }
}
