//! The multithreaded job scheduler: a shared-cursor worker pool with
//! per-job timeouts and panic isolation.
//!
//! Workers pull the next item index from a shared atomic cursor, so
//! load balances itself the way a work-stealing deque would for this
//! shape (independent jobs, no spawning). Two execution modes per job:
//!
//! * **inline** (no timeout): the worker runs the job under
//!   `catch_unwind`, so one panicking job cannot take down the run;
//! * **isolated** (timeout set): the job runs on its own thread and the
//!   worker waits with `recv_timeout`. On timeout the job thread is
//!   abandoned (it cannot be killed safely) and the scheduler moves on;
//!   a panic surfaces as a disconnected channel.
//!
//! Results stream back to the caller's sink on the calling thread, in
//! completion order, so the campaign layer can append each record to
//! the log the moment it exists — which is what makes a killed run
//! resumable.
//!
//! Two consumption shapes share the same execution core
//! ([`run_isolated`]):
//!
//! * [`run_pool`] — **batch**: a fixed item list, drained to completion
//!   (campaigns).
//! * [`TaskPool`] — **service**: a persistent pool behind a *bounded*
//!   submission queue with explicit [`SubmitError::Busy`] backpressure
//!   and graceful drain-on-shutdown (the `mmlp-serve` request path).

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Scheduler configuration.
#[derive(Clone, Copy, Debug)]
pub struct PoolConfig {
    /// Worker-thread count (clamped to ≥ 1).
    pub workers: usize,
    /// Per-job timeout; `None` runs jobs inline (no isolation thread).
    pub timeout: Option<Duration>,
}

/// How one job terminated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome<T> {
    /// The job returned a value.
    Done(T),
    /// The job panicked (payload rendered when it was a string).
    Panicked(String),
    /// The job exceeded the configured timeout.
    TimedOut,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `f` over every item on a worker pool; `sink(index, outcome)` is
/// called on the **calling thread** once per item, in completion order.
///
/// Item and closure bounds are `'static` because timed-out jobs outlive
/// the call on their abandoned isolation threads.
pub fn run_pool<I, T, F, S>(items: Vec<I>, cfg: &PoolConfig, f: F, mut sink: S)
where
    I: Clone + Send + Sync + 'static,
    T: Send + 'static,
    F: Fn(I) -> T + Send + Sync + 'static,
    S: FnMut(usize, Outcome<T>),
{
    let n = items.len();
    if n == 0 {
        return;
    }
    let items = Arc::new(items);
    let f = Arc::new(f);
    let cursor = Arc::new(AtomicUsize::new(0));
    let workers = cfg.workers.max(1).min(n);
    let timeout = cfg.timeout;
    let (tx, rx) = mpsc::channel::<(usize, Outcome<T>)>();

    let mut handles = Vec::with_capacity(workers);
    for _ in 0..workers {
        let items = Arc::clone(&items);
        let f = Arc::clone(&f);
        let cursor = Arc::clone(&cursor);
        let tx = tx.clone();
        handles.push(std::thread::spawn(move || loop {
            let idx = cursor.fetch_add(1, Ordering::Relaxed);
            if idx >= items.len() {
                break;
            }
            let outcome = run_one(&f, items[idx].clone(), timeout);
            if tx.send((idx, outcome)).is_err() {
                break; // receiver gone: the caller is shutting down
            }
        }));
    }
    drop(tx);

    for (idx, outcome) in rx {
        sink(idx, outcome);
    }
    for h in handles {
        let _ = h.join();
    }
}

fn run_one<I, T, F>(f: &Arc<F>, item: I, timeout: Option<Duration>) -> Outcome<T>
where
    I: Send + 'static,
    T: Send + 'static,
    F: Fn(I) -> T + Send + Sync + 'static,
{
    let f = Arc::clone(f);
    run_isolated(move || f(item), timeout)
}

/// Runs one closure with panic isolation and an optional timeout —
/// the execution core shared by [`run_pool`] and [`TaskPool`].
///
/// Without a timeout the closure runs inline under `catch_unwind`. With
/// one, it runs on a dedicated thread and the caller waits at most `d`;
/// on timeout the thread is abandoned (it cannot be killed safely) and
/// [`Outcome::TimedOut`] is returned immediately.
pub fn run_isolated<T, F>(f: F, timeout: Option<Duration>) -> Outcome<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    match timeout {
        None => match std::panic::catch_unwind(AssertUnwindSafe(f)) {
            Ok(v) => Outcome::Done(v),
            Err(payload) => Outcome::Panicked(panic_message(payload)),
        },
        Some(d) => {
            let (jtx, jrx) = mpsc::channel();
            std::thread::spawn(move || {
                // A panic here drops `jtx`, which the waiter observes as
                // a disconnect; distinguishing it from a clean exit is
                // done by sending the value on success only.
                let v = match std::panic::catch_unwind(AssertUnwindSafe(f)) {
                    Ok(v) => v,
                    Err(payload) => {
                        let _ = jtx.send(Err(panic_message(payload)));
                        return;
                    }
                };
                let _ = jtx.send(Ok(v));
            });
            match jrx.recv_timeout(d) {
                Ok(Ok(v)) => Outcome::Done(v),
                Ok(Err(msg)) => Outcome::Panicked(msg),
                Err(RecvTimeoutError::Timeout) => Outcome::TimedOut,
                Err(RecvTimeoutError::Disconnected) => Outcome::Panicked("job thread died".into()),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// TaskPool: a persistent bounded-queue worker pool for request serving.
// ---------------------------------------------------------------------------

/// Configuration for a [`TaskPool`].
#[derive(Clone, Copy, Debug)]
pub struct TaskPoolConfig {
    /// Worker-thread count (clamped to ≥ 1).
    pub workers: usize,
    /// Maximum number of *queued* (not yet running) tasks before
    /// [`TaskPool::submit`] reports [`SubmitError::Busy`] (clamped to
    /// ≥ 1). This is the backpressure bound: the pool never buffers
    /// more than `queue_cap` tasks, so a traffic spike surfaces as
    /// explicit `Busy` replies instead of unbounded memory growth.
    pub queue_cap: usize,
    /// Per-task timeout; `None` runs tasks inline on the worker.
    pub timeout: Option<Duration>,
}

/// Why a submission was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity; retry later.
    Busy,
    /// The pool is shutting down and accepts no new work.
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Busy => write!(f, "queue full"),
            SubmitError::Closed => write!(f, "pool closed"),
        }
    }
}

type Task = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queue: VecDeque<Task>,
    open: bool,
    in_flight: usize,
}

struct PoolShared {
    state: Mutex<PoolState>,
    work_ready: Condvar,
}

/// A persistent worker pool with a bounded submission queue.
///
/// Tasks are arbitrary closures; each runs with the pool's panic
/// isolation and optional timeout (see [`run_isolated`]) and delivers
/// its [`Outcome`] through the [`TaskTicket`] returned at submission.
/// Dropping the pool — or calling [`TaskPool::shutdown`] — closes the
/// queue, *drains* every already-accepted task, and joins the workers,
/// so accepted work is never silently discarded.
pub struct TaskPool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    timeout: Option<Duration>,
    queue_cap: usize,
}

/// The caller's handle to one submitted task.
pub struct TaskTicket<T> {
    rx: mpsc::Receiver<Outcome<T>>,
}

impl<T> TaskTicket<T> {
    /// Blocks until the task's outcome is available.
    pub fn wait(self) -> Outcome<T> {
        self.rx
            .recv()
            .unwrap_or_else(|_| Outcome::Panicked("task dropped by pool".into()))
    }
}

impl TaskPool {
    /// Spawns the worker threads and returns the pool.
    pub fn new(cfg: TaskPoolConfig) -> Self {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                open: true,
                in_flight: 0,
            }),
            work_ready: Condvar::new(),
        });
        let workers = cfg.workers.max(1);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let shared = Arc::clone(&shared);
            handles.push(std::thread::spawn(move || loop {
                let task = {
                    let mut st = shared.state.lock().expect("pool lock");
                    loop {
                        if let Some(t) = st.queue.pop_front() {
                            st.in_flight += 1;
                            break t;
                        }
                        if !st.open {
                            return;
                        }
                        st = shared.work_ready.wait(st).expect("pool lock");
                    }
                };
                task();
                shared.state.lock().expect("pool lock").in_flight -= 1;
            }));
        }
        TaskPool {
            shared,
            handles,
            timeout: cfg.timeout,
            queue_cap: cfg.queue_cap.max(1),
        }
    }

    /// Submits one task. Returns a ticket to wait on, or an error when
    /// the queue is full ([`SubmitError::Busy`]) or the pool is closed.
    pub fn submit<T, F>(&self, f: F) -> Result<TaskTicket<T>, SubmitError>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let (tx, rx) = mpsc::channel();
        self.submit_with(f, move |outcome| {
            let _ = tx.send(outcome);
        })?;
        Ok(TaskTicket { rx })
    }

    /// Submits one task with a completion callback instead of a ticket.
    ///
    /// `complete` runs on the worker thread with the task's [`Outcome`]
    /// (exactly once per accepted task, including during shutdown drain),
    /// so a nonblocking caller — e.g. an event loop — can hand off work
    /// and be notified without parking a thread on a ticket. Panics in
    /// the callback are caught so they cannot take down the worker.
    /// Backpressure is identical to [`TaskPool::submit`].
    pub fn submit_with<T, F, C>(&self, f: F, complete: C) -> Result<(), SubmitError>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
        C: FnOnce(Outcome<T>) + Send + 'static,
    {
        let timeout = self.timeout;
        let task: Task = Box::new(move || {
            let outcome = run_isolated(f, timeout);
            let _ = std::panic::catch_unwind(AssertUnwindSafe(move || complete(outcome)));
        });
        {
            let mut st = self.shared.state.lock().expect("pool lock");
            if !st.open {
                return Err(SubmitError::Closed);
            }
            if st.queue.len() >= self.queue_cap {
                return Err(SubmitError::Busy);
            }
            st.queue.push_back(task);
        }
        self.shared.work_ready.notify_one();
        Ok(())
    }

    /// Number of tasks accepted but not yet picked up by a worker.
    pub fn queue_depth(&self) -> usize {
        self.shared.state.lock().expect("pool lock").queue.len()
    }

    /// Number of tasks currently executing on a worker.
    pub fn in_flight(&self) -> usize {
        self.shared.state.lock().expect("pool lock").in_flight
    }

    /// Closes the queue, drains every accepted task, and joins the
    /// workers. Equivalent to dropping the pool, but explicit.
    pub fn shutdown(mut self) {
        self.close_and_join();
    }

    fn close_and_join(&mut self) {
        self.shared.state.lock().expect("pool lock").open = false;
        self.shared.work_ready.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for TaskPool {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn collect<T>(
        items: Vec<u64>,
        cfg: &PoolConfig,
        f: impl Fn(u64) -> T + Send + Sync + 'static,
    ) -> Vec<(usize, Outcome<T>)>
    where
        T: Send + 'static,
    {
        let mut out = Vec::new();
        run_pool(items, cfg, f, |i, o| out.push((i, o)));
        out
    }

    #[test]
    fn all_items_complete_once() {
        let cfg = PoolConfig {
            workers: 4,
            timeout: None,
        };
        let out = collect((0..100).collect(), &cfg, |x| x * 2);
        assert_eq!(out.len(), 100);
        let indices: HashSet<usize> = out.iter().map(|(i, _)| *i).collect();
        assert_eq!(indices.len(), 100);
        for (i, o) in &out {
            assert_eq!(*o, Outcome::Done((*i as u64) * 2));
        }
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let cfg = PoolConfig {
            workers: 32,
            timeout: None,
        };
        assert_eq!(collect(vec![7], &cfg, |x| x).len(), 1);
        run_pool(
            Vec::<u64>::new(),
            &cfg,
            |x: u64| x,
            |_, _| panic!("sink must not run on empty input"),
        );
    }

    #[test]
    fn panics_are_isolated_inline() {
        let cfg = PoolConfig {
            workers: 3,
            timeout: None,
        };
        let out = collect((0..10).collect(), &cfg, |x| {
            if x == 4 {
                panic!("job {x} exploded");
            }
            x
        });
        assert_eq!(out.len(), 10);
        let panicked: Vec<_> = out
            .iter()
            .filter(|(_, o)| matches!(o, Outcome::Panicked(_)))
            .collect();
        assert_eq!(panicked.len(), 1);
        assert_eq!(panicked[0].0, 4);
        if let Outcome::Panicked(msg) = &panicked[0].1 {
            assert!(msg.contains("exploded"), "{msg}");
        }
    }

    #[test]
    fn panics_are_isolated_on_the_timeout_path() {
        let cfg = PoolConfig {
            workers: 2,
            timeout: Some(Duration::from_secs(5)),
        };
        let out = collect((0..6).collect(), &cfg, |x| {
            if x % 3 == 0 {
                panic!("boom");
            }
            x
        });
        let panicked = out
            .iter()
            .filter(|(_, o)| matches!(o, Outcome::Panicked(_)))
            .count();
        assert_eq!(panicked, 2);
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn slow_jobs_time_out_and_the_rest_finish() {
        let cfg = PoolConfig {
            workers: 2,
            timeout: Some(Duration::from_millis(30)),
        };
        let out = collect((0..8).collect(), &cfg, |x| {
            if x == 1 {
                std::thread::sleep(Duration::from_secs(10));
            }
            x
        });
        assert_eq!(out.len(), 8);
        let timed_out: Vec<_> = out
            .iter()
            .filter(|(_, o)| matches!(o, Outcome::TimedOut))
            .map(|(i, _)| *i)
            .collect();
        assert_eq!(timed_out, vec![1]);
    }

    #[test]
    fn single_worker_preserves_item_order() {
        let cfg = PoolConfig {
            workers: 1,
            timeout: None,
        };
        let out = collect((0..20).collect(), &cfg, |x| x);
        let order: Vec<usize> = out.iter().map(|(i, _)| *i).collect();
        assert_eq!(order, (0..20).collect::<Vec<_>>());
    }

    // -- TaskPool ----------------------------------------------------------

    #[test]
    fn task_pool_runs_submitted_tasks() {
        let pool = TaskPool::new(TaskPoolConfig {
            workers: 4,
            queue_cap: 64,
            timeout: None,
        });
        let tickets: Vec<_> = (0..32u64)
            .map(|x| pool.submit(move || x * 3).unwrap())
            .collect();
        for (x, t) in tickets.into_iter().enumerate() {
            assert_eq!(t.wait(), Outcome::Done(x as u64 * 3));
        }
        pool.shutdown();
    }

    #[test]
    fn task_pool_reports_busy_at_queue_capacity() {
        let pool = TaskPool::new(TaskPoolConfig {
            workers: 1,
            queue_cap: 1,
            timeout: None,
        });
        // Occupy the single worker, deterministically.
        let (block_tx, block_rx) = mpsc::channel::<()>();
        let running = pool
            .submit(move || {
                block_rx.recv().ok();
                1u32
            })
            .unwrap();
        while pool.in_flight() == 0 {
            std::thread::yield_now();
        }
        // One task fits in the queue; the next must bounce.
        let queued = pool.submit(|| 2u32).unwrap();
        let bounced = pool.submit(|| 3u32);
        assert!(matches!(bounced, Err(SubmitError::Busy)));
        assert_eq!(pool.queue_depth(), 1);

        block_tx.send(()).unwrap();
        assert_eq!(running.wait(), Outcome::Done(1));
        assert_eq!(queued.wait(), Outcome::Done(2));
        pool.shutdown();
    }

    #[test]
    fn task_pool_shutdown_drains_accepted_work() {
        let pool = TaskPool::new(TaskPoolConfig {
            workers: 2,
            queue_cap: 64,
            timeout: None,
        });
        let tickets: Vec<_> = (0..16u64)
            .map(|x| {
                pool.submit(move || {
                    std::thread::sleep(Duration::from_millis(5));
                    x
                })
                .unwrap()
            })
            .collect();
        pool.shutdown(); // must block until every accepted task ran
        for (x, t) in tickets.into_iter().enumerate() {
            assert_eq!(t.wait(), Outcome::Done(x as u64));
        }
    }

    #[test]
    fn task_pool_submit_with_delivers_outcomes_via_callback() {
        let pool = TaskPool::new(TaskPoolConfig {
            workers: 2,
            queue_cap: 16,
            timeout: Some(Duration::from_millis(40)),
        });
        let (tx, rx) = mpsc::channel();
        for x in 0..4u64 {
            let tx = tx.clone();
            pool.submit_with(
                move || {
                    if x == 2 {
                        panic!("cb boom");
                    }
                    x * 10
                },
                move |o| {
                    tx.send((x, o)).unwrap();
                },
            )
            .unwrap();
        }
        let mut got: Vec<_> = (0..4).map(|_| rx.recv().unwrap()).collect();
        got.sort_by_key(|(x, _)| *x);
        assert_eq!(got[0].1, Outcome::Done(0));
        assert_eq!(got[1].1, Outcome::Done(10));
        assert!(matches!(got[2].1, Outcome::Panicked(_)));
        assert_eq!(got[3].1, Outcome::Done(30));
        pool.shutdown();
    }

    #[test]
    fn task_pool_submit_with_callback_panic_does_not_kill_worker() {
        let pool = TaskPool::new(TaskPoolConfig {
            workers: 1,
            queue_cap: 8,
            timeout: None,
        });
        pool.submit_with(|| 1u32, |_| panic!("callback exploded"))
            .unwrap();
        // The single worker must survive to run the next task.
        let ticket = pool.submit(|| 2u32).unwrap();
        assert_eq!(ticket.wait(), Outcome::Done(2));
        pool.shutdown();
    }

    #[test]
    fn task_pool_isolates_panics_and_timeouts() {
        let pool = TaskPool::new(TaskPoolConfig {
            workers: 2,
            queue_cap: 8,
            timeout: Some(Duration::from_millis(40)),
        });
        let boom = pool.submit(|| -> u32 { panic!("kaboom") }).unwrap();
        let slow = pool
            .submit(|| {
                std::thread::sleep(Duration::from_secs(10));
                7u32
            })
            .unwrap();
        let fine = pool.submit(|| 9u32).unwrap();
        match boom.wait() {
            Outcome::Panicked(msg) => assert!(msg.contains("kaboom"), "{msg}"),
            other => panic!("expected panic outcome, got {other:?}"),
        }
        assert_eq!(slow.wait(), Outcome::TimedOut);
        assert_eq!(fine.wait(), Outcome::Done(9));
        pool.shutdown();
    }
}
