//! The multithreaded job scheduler: a shared-cursor worker pool with
//! per-job timeouts and panic isolation.
//!
//! Workers pull the next item index from a shared atomic cursor, so
//! load balances itself the way a work-stealing deque would for this
//! shape (independent jobs, no spawning). Two execution modes per job:
//!
//! * **inline** (no timeout): the worker runs the job under
//!   `catch_unwind`, so one panicking job cannot take down the run;
//! * **isolated** (timeout set): the job runs on its own thread and the
//!   worker waits with `recv_timeout`. On timeout the job thread is
//!   abandoned (it cannot be killed safely) and the scheduler moves on;
//!   a panic surfaces as a disconnected channel.
//!
//! Results stream back to the caller's sink on the calling thread, in
//! completion order, so the campaign layer can append each record to
//! the log the moment it exists — which is what makes a killed run
//! resumable.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::Arc;
use std::time::Duration;

/// Scheduler configuration.
#[derive(Clone, Copy, Debug)]
pub struct PoolConfig {
    /// Worker-thread count (clamped to ≥ 1).
    pub workers: usize,
    /// Per-job timeout; `None` runs jobs inline (no isolation thread).
    pub timeout: Option<Duration>,
}

/// How one job terminated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome<T> {
    /// The job returned a value.
    Done(T),
    /// The job panicked (payload rendered when it was a string).
    Panicked(String),
    /// The job exceeded the configured timeout.
    TimedOut,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `f` over every item on a worker pool; `sink(index, outcome)` is
/// called on the **calling thread** once per item, in completion order.
///
/// Item and closure bounds are `'static` because timed-out jobs outlive
/// the call on their abandoned isolation threads.
pub fn run_pool<I, T, F, S>(items: Vec<I>, cfg: &PoolConfig, f: F, mut sink: S)
where
    I: Clone + Send + Sync + 'static,
    T: Send + 'static,
    F: Fn(I) -> T + Send + Sync + 'static,
    S: FnMut(usize, Outcome<T>),
{
    let n = items.len();
    if n == 0 {
        return;
    }
    let items = Arc::new(items);
    let f = Arc::new(f);
    let cursor = Arc::new(AtomicUsize::new(0));
    let workers = cfg.workers.max(1).min(n);
    let timeout = cfg.timeout;
    let (tx, rx) = mpsc::channel::<(usize, Outcome<T>)>();

    let mut handles = Vec::with_capacity(workers);
    for _ in 0..workers {
        let items = Arc::clone(&items);
        let f = Arc::clone(&f);
        let cursor = Arc::clone(&cursor);
        let tx = tx.clone();
        handles.push(std::thread::spawn(move || loop {
            let idx = cursor.fetch_add(1, Ordering::Relaxed);
            if idx >= items.len() {
                break;
            }
            let outcome = run_one(&f, items[idx].clone(), timeout);
            if tx.send((idx, outcome)).is_err() {
                break; // receiver gone: the caller is shutting down
            }
        }));
    }
    drop(tx);

    for (idx, outcome) in rx {
        sink(idx, outcome);
    }
    for h in handles {
        let _ = h.join();
    }
}

fn run_one<I, T, F>(f: &Arc<F>, item: I, timeout: Option<Duration>) -> Outcome<T>
where
    I: Send + 'static,
    T: Send + 'static,
    F: Fn(I) -> T + Send + Sync + 'static,
{
    match timeout {
        None => match std::panic::catch_unwind(AssertUnwindSafe(|| f(item))) {
            Ok(v) => Outcome::Done(v),
            Err(payload) => Outcome::Panicked(panic_message(payload)),
        },
        Some(d) => {
            let (jtx, jrx) = mpsc::channel();
            let f = Arc::clone(f);
            std::thread::spawn(move || {
                // A panic here drops `jtx`, which the waiter observes as
                // a disconnect; distinguishing it from a clean exit is
                // done by sending the value on success only.
                let v = match std::panic::catch_unwind(AssertUnwindSafe(|| f(item))) {
                    Ok(v) => v,
                    Err(payload) => {
                        let _ = jtx.send(Err(panic_message(payload)));
                        return;
                    }
                };
                let _ = jtx.send(Ok(v));
            });
            match jrx.recv_timeout(d) {
                Ok(Ok(v)) => Outcome::Done(v),
                Ok(Err(msg)) => Outcome::Panicked(msg),
                Err(RecvTimeoutError::Timeout) => Outcome::TimedOut,
                Err(RecvTimeoutError::Disconnected) => Outcome::Panicked("job thread died".into()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn collect<T>(
        items: Vec<u64>,
        cfg: &PoolConfig,
        f: impl Fn(u64) -> T + Send + Sync + 'static,
    ) -> Vec<(usize, Outcome<T>)>
    where
        T: Send + 'static,
    {
        let mut out = Vec::new();
        run_pool(items, cfg, f, |i, o| out.push((i, o)));
        out
    }

    #[test]
    fn all_items_complete_once() {
        let cfg = PoolConfig {
            workers: 4,
            timeout: None,
        };
        let out = collect((0..100).collect(), &cfg, |x| x * 2);
        assert_eq!(out.len(), 100);
        let indices: HashSet<usize> = out.iter().map(|(i, _)| *i).collect();
        assert_eq!(indices.len(), 100);
        for (i, o) in &out {
            assert_eq!(*o, Outcome::Done((*i as u64) * 2));
        }
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let cfg = PoolConfig {
            workers: 32,
            timeout: None,
        };
        assert_eq!(collect(vec![7], &cfg, |x| x).len(), 1);
        run_pool(
            Vec::<u64>::new(),
            &cfg,
            |x: u64| x,
            |_, _| panic!("sink must not run on empty input"),
        );
    }

    #[test]
    fn panics_are_isolated_inline() {
        let cfg = PoolConfig {
            workers: 3,
            timeout: None,
        };
        let out = collect((0..10).collect(), &cfg, |x| {
            if x == 4 {
                panic!("job {x} exploded");
            }
            x
        });
        assert_eq!(out.len(), 10);
        let panicked: Vec<_> = out
            .iter()
            .filter(|(_, o)| matches!(o, Outcome::Panicked(_)))
            .collect();
        assert_eq!(panicked.len(), 1);
        assert_eq!(panicked[0].0, 4);
        if let Outcome::Panicked(msg) = &panicked[0].1 {
            assert!(msg.contains("exploded"), "{msg}");
        }
    }

    #[test]
    fn panics_are_isolated_on_the_timeout_path() {
        let cfg = PoolConfig {
            workers: 2,
            timeout: Some(Duration::from_secs(5)),
        };
        let out = collect((0..6).collect(), &cfg, |x| {
            if x % 3 == 0 {
                panic!("boom");
            }
            x
        });
        let panicked = out
            .iter()
            .filter(|(_, o)| matches!(o, Outcome::Panicked(_)))
            .count();
        assert_eq!(panicked, 2);
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn slow_jobs_time_out_and_the_rest_finish() {
        let cfg = PoolConfig {
            workers: 2,
            timeout: Some(Duration::from_millis(30)),
        };
        let out = collect((0..8).collect(), &cfg, |x| {
            if x == 1 {
                std::thread::sleep(Duration::from_secs(10));
            }
            x
        });
        assert_eq!(out.len(), 8);
        let timed_out: Vec<_> = out
            .iter()
            .filter(|(_, o)| matches!(o, Outcome::TimedOut))
            .map(|(i, _)| *i)
            .collect();
        assert_eq!(timed_out, vec![1]);
    }

    #[test]
    fn single_worker_preserves_item_order() {
        let cfg = PoolConfig {
            workers: 1,
            timeout: None,
        };
        let out = collect((0..20).collect(), &cfg, |x| x);
        let order: Vec<usize> = out.iter().map(|(i, _)| *i).collect();
        assert_eq!(order, (0..20).collect::<Vec<_>>());
    }
}
