//! The structured per-job result record and its JSONL encoding.

use crate::job::{Job, SolverKind};
use crate::jsonl::{parse_object, ObjWriter, Value};

/// Terminal status of one job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Solver ran and produced a certified measurement.
    Ok,
    /// Solver reported an error (e.g. an unbounded LP).
    Error,
    /// The job panicked; the panic was isolated to its thread.
    Panicked,
    /// The job exceeded the campaign's per-job timeout.
    TimedOut,
}

impl JobStatus {
    /// Stable name used in the record log.
    pub fn name(&self) -> &'static str {
        match self {
            JobStatus::Ok => "ok",
            JobStatus::Error => "error",
            JobStatus::Panicked => "panic",
            JobStatus::TimedOut => "timeout",
        }
    }

    /// Inverse of [`JobStatus::name`].
    pub fn from_name(name: &str) -> Option<JobStatus> {
        match name {
            "ok" => Some(JobStatus::Ok),
            "error" => Some(JobStatus::Error),
            "panic" => Some(JobStatus::Panicked),
            "timeout" => Some(JobStatus::TimedOut),
            _ => None,
        }
    }
}

/// One line of the record log: everything a report needs, flat.
#[derive(Clone, Debug, PartialEq)]
pub struct JobRecord {
    /// Content hash of the job ([`Job::id`]).
    pub job_id: String,
    /// Generator family name.
    pub family: String,
    /// Instance size.
    pub size: usize,
    /// Generator seed.
    pub seed: u64,
    /// Locality parameter (`0` for R-insensitive solvers).
    pub big_r: usize,
    /// Solver variant.
    pub solver: SolverKind,
    /// Terminal status.
    pub status: JobStatus,
    /// Utility of the solver's output on the original instance.
    pub utility: f64,
    /// Exact LP optimum `ω*` of the instance.
    pub optimum: f64,
    /// Approximation ratio `ω*/utility` (`NaN` when not measured).
    pub ratio: f64,
    /// The proved guarantee for this solver on this instance.
    pub guarantee: f64,
    /// The unconditional local-algorithm threshold `ΔI(1 − 1/ΔK)`.
    pub threshold: f64,
    /// Instance degree bound `ΔI` (as measured).
    pub delta_i: usize,
    /// Instance degree bound `ΔK` (as measured).
    pub delta_k: usize,
    /// Number of agents in the generated instance.
    pub agents: usize,
    /// Solver wall time in milliseconds (excludes the optimum solve).
    pub wall_ms: f64,
    /// Protocol rounds (distributed solver only; 0 otherwise).
    pub rounds: u64,
    /// Protocol messages (distributed solver only; 0 otherwise).
    pub messages: u64,
    /// Protocol payload bytes (distributed solver only; 0 otherwise).
    pub bytes: u64,
    /// Unique view nodes interned by the flat distributed path
    /// (0 for other solvers).
    pub interned: u64,
    /// Deduped view-arena bytes of the flat distributed path — `bytes /
    /// arena_bytes` is the dedup ratio (0 for other solvers).
    pub arena_bytes: u64,
    /// Wall time of the flat solve's view-gather phase, nanoseconds
    /// (distributed solver only; 0 otherwise — likewise the rest of the
    /// phase/memo snapshot below).
    pub gather_ns: u64,
    /// Wall time of the per-agent `t_u` batch phase, nanoseconds.
    pub t_eval_ns: u64,
    /// Wall time of the `min t` flood phase, nanoseconds.
    pub flood_ns: u64,
    /// Wall time of the smoothing/output phase, nanoseconds.
    pub g_ns: u64,
    /// Memo-table hits during the flat solve.
    pub memo_hits: u64,
    /// Memo-table misses during the flat solve.
    pub memo_misses: u64,
    /// Edits streamed through the dynamic solver (mutating jobs;
    /// 0 otherwise — likewise `recomputed_x` below).
    pub edits: u64,
    /// Agents whose output was recomputed across the whole edit chain —
    /// `recomputed_x / edits` against `agents` is the measured dirty-ball
    /// fraction of the §1.3 corollary.
    pub recomputed_x: u64,
    /// Error/panic description (empty when ok).
    pub error: String,
}

impl JobRecord {
    /// A record for a job that did not produce a measurement.
    pub fn failed(job: &Job, status: JobStatus, error: String) -> JobRecord {
        JobRecord {
            job_id: job.id(),
            family: job.family.clone(),
            size: job.size,
            seed: job.seed,
            big_r: job.big_r,
            solver: job.solver,
            status,
            utility: f64::NAN,
            optimum: f64::NAN,
            ratio: f64::NAN,
            guarantee: f64::NAN,
            threshold: f64::NAN,
            delta_i: 0,
            delta_k: 0,
            agents: 0,
            wall_ms: 0.0,
            rounds: 0,
            messages: 0,
            bytes: 0,
            interned: 0,
            arena_bytes: 0,
            gather_ns: 0,
            t_eval_ns: 0,
            flood_ns: 0,
            g_ns: 0,
            memo_hits: 0,
            memo_misses: 0,
            edits: 0,
            recomputed_x: 0,
            error,
        }
    }

    /// Encodes the record as one JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut w = ObjWriter::new();
        w.str("job", &self.job_id)
            .str("family", &self.family)
            .int("size", self.size as u64)
            .int("seed", self.seed)
            .int("R", self.big_r as u64)
            .str("solver", self.solver.name())
            .str("status", self.status.name())
            .num("utility", self.utility)
            .num("optimum", self.optimum)
            .num("ratio", self.ratio)
            .num("guarantee", self.guarantee)
            .num("threshold", self.threshold)
            .int("delta_i", self.delta_i as u64)
            .int("delta_k", self.delta_k as u64)
            .int("agents", self.agents as u64)
            .num("wall_ms", self.wall_ms)
            .int("rounds", self.rounds)
            .int("messages", self.messages)
            .int("bytes", self.bytes)
            .int("interned", self.interned)
            .int("arena_bytes", self.arena_bytes)
            .int("gather_ns", self.gather_ns)
            .int("t_eval_ns", self.t_eval_ns)
            .int("flood_ns", self.flood_ns)
            .int("g_ns", self.g_ns)
            .int("memo_hits", self.memo_hits)
            .int("memo_misses", self.memo_misses)
            .int("edits", self.edits)
            .int("recomputed_x", self.recomputed_x);
        if !self.error.is_empty() {
            w.str("error", &self.error);
        }
        w.finish()
    }

    /// Decodes one JSONL line. Unknown keys are ignored (forward
    /// compatibility); missing required keys are an error.
    pub fn from_json_line(line: &str) -> Result<JobRecord, String> {
        let kv = parse_object(line)?;
        let get =
            |key: &str| -> Option<&Value> { kv.iter().find(|(k, _)| k == key).map(|(_, v)| v) };
        let req_str = |key: &str| -> Result<String, String> {
            get(key)
                .and_then(|v| v.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field '{key}'"))
        };
        let req_num = |key: &str| -> Result<f64, String> {
            get(key)
                .and_then(|v| v.as_f64())
                .ok_or_else(|| format!("missing numeric field '{key}'"))
        };
        // Integer fields demand exact integer literals: no `null`→0, no
        // silent f64 rounding of values ≥ 2⁵³.
        let req_int = |key: &str| -> Result<u64, String> {
            get(key)
                .and_then(|v| v.as_u64())
                .ok_or_else(|| format!("missing integer field '{key}'"))
        };
        let solver_name = req_str("solver")?;
        let status_name = req_str("status")?;
        Ok(JobRecord {
            job_id: req_str("job")?,
            family: req_str("family")?,
            size: req_int("size")? as usize,
            seed: req_int("seed")?,
            big_r: req_int("R")? as usize,
            solver: SolverKind::from_name(&solver_name)
                .ok_or_else(|| format!("unknown solver '{solver_name}'"))?,
            status: JobStatus::from_name(&status_name)
                .ok_or_else(|| format!("unknown status '{status_name}'"))?,
            utility: req_num("utility")?,
            optimum: req_num("optimum")?,
            ratio: req_num("ratio")?,
            guarantee: req_num("guarantee")?,
            threshold: req_num("threshold")?,
            delta_i: req_int("delta_i")? as usize,
            delta_k: req_int("delta_k")? as usize,
            agents: req_int("agents")? as usize,
            wall_ms: req_num("wall_ms")?,
            rounds: req_int("rounds")?,
            messages: req_int("messages")?,
            bytes: req_int("bytes")?,
            // Added after the first record-log format: default to 0 so
            // pre-arena logs keep resuming cleanly.
            interned: get("interned").and_then(|v| v.as_u64()).unwrap_or(0),
            arena_bytes: get("arena_bytes").and_then(|v| v.as_u64()).unwrap_or(0),
            // Added with the mmlp-obs phase snapshot: logs written
            // before it decode with an all-zero breakdown.
            gather_ns: get("gather_ns").and_then(|v| v.as_u64()).unwrap_or(0),
            t_eval_ns: get("t_eval_ns").and_then(|v| v.as_u64()).unwrap_or(0),
            flood_ns: get("flood_ns").and_then(|v| v.as_u64()).unwrap_or(0),
            g_ns: get("g_ns").and_then(|v| v.as_u64()).unwrap_or(0),
            memo_hits: get("memo_hits").and_then(|v| v.as_u64()).unwrap_or(0),
            memo_misses: get("memo_misses").and_then(|v| v.as_u64()).unwrap_or(0),
            // Added with the delta workload: logs written before the
            // mutating job kind decode with a zero edit chain.
            edits: get("edits").and_then(|v| v.as_u64()).unwrap_or(0),
            recomputed_x: get("recomputed_x").and_then(|v| v.as_u64()).unwrap_or(0),
            error: get("error")
                .and_then(|v| v.as_str())
                .unwrap_or("")
                .to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> JobRecord {
        JobRecord {
            job_id: "00ff00ff00ff00ff".into(),
            family: "random-3x3".into(),
            size: 40,
            seed: 3,
            big_r: 3,
            solver: SolverKind::Local,
            status: JobStatus::Ok,
            utility: 0.7311438372,
            optimum: 0.9000000001,
            ratio: 1.2309741,
            guarantee: 2.25,
            threshold: 2.0,
            delta_i: 3,
            delta_k: 3,
            agents: 40,
            wall_ms: 12.75,
            rounds: 18,
            messages: 1024,
            bytes: 65536,
            interned: 96,
            arena_bytes: 4096,
            gather_ns: 120_000,
            t_eval_ns: 80_000,
            flood_ns: 9_000,
            g_ns: 4_000,
            memo_hits: 512,
            memo_misses: 64,
            edits: 3,
            recomputed_x: 17,
            error: String::new(),
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let r = sample();
        let line = r.to_json_line();
        assert!(!line.contains('\n'), "one record per line");
        let back = JobRecord::from_json_line(&line).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.utility.to_bits(), r.utility.to_bits());
    }

    #[test]
    fn failed_records_round_trip_with_nan_measurements() {
        let job = Job {
            family: "cycle".into(),
            size: 8,
            seed: 0,
            big_r: 2,
            solver: SolverKind::Distributed,
        };
        let r = JobRecord::failed(&job, JobStatus::TimedOut, "exceeded 5ms".into());
        let back = JobRecord::from_json_line(&r.to_json_line()).unwrap();
        assert_eq!(back.status, JobStatus::TimedOut);
        assert_eq!(back.error, "exceeded 5ms");
        assert!(back.utility.is_nan());
        assert_eq!(back.job_id, job.id());
    }

    #[test]
    fn unknown_keys_are_ignored_missing_keys_rejected() {
        let line = sample().to_json_line();
        let extended = format!("{},\"future\":\"field\"}}", &line[..line.len() - 1]);
        assert!(JobRecord::from_json_line(&extended).is_ok());
        assert!(JobRecord::from_json_line("{\"job\":\"x\"}").is_err());
        assert!(JobRecord::from_json_line("not json").is_err());
        // Integer fields must be exact integer literals.
        assert!(
            JobRecord::from_json_line(&line.replace("\"seed\":3", "\"seed\":null")).is_err(),
            "null seed must not read as 0"
        );
        assert!(
            JobRecord::from_json_line(&line.replace("\"size\":40", "\"size\":40.5")).is_err(),
            "fractional size is rejected"
        );
    }

    #[test]
    fn pre_arena_lines_decode_with_zero_dedup_fields() {
        // Record logs written before the flat-view arena lack the
        // dedup fields; resuming such a campaign must still work.
        let line = sample().to_json_line();
        let stripped = line.replace(",\"interned\":96,\"arena_bytes\":4096", "");
        assert_ne!(line, stripped, "sample must carry the new fields");
        let back = JobRecord::from_json_line(&stripped).unwrap();
        assert_eq!(back.interned, 0);
        assert_eq!(back.arena_bytes, 0);
    }

    #[test]
    fn pre_obs_lines_decode_with_zero_phase_snapshot() {
        // Logs written before the mmlp-obs phase snapshot lack the
        // phase/memo fields; they decode with an all-zero breakdown.
        let line = sample().to_json_line();
        let stripped = line.replace(
            ",\"gather_ns\":120000,\"t_eval_ns\":80000,\"flood_ns\":9000,\
             \"g_ns\":4000,\"memo_hits\":512,\"memo_misses\":64",
            "",
        );
        assert_ne!(line, stripped, "sample must carry the phase fields");
        let back = JobRecord::from_json_line(&stripped).unwrap();
        assert_eq!(back.gather_ns, 0);
        assert_eq!(back.t_eval_ns, 0);
        assert_eq!(back.memo_hits, 0);
        assert_eq!(back.memo_misses, 0);
    }

    #[test]
    fn pre_delta_lines_decode_with_zero_edit_chain() {
        // Logs written before the mutating job kind lack the edit-chain
        // fields; they decode as an un-mutated measurement.
        let line = sample().to_json_line();
        let stripped = line.replace(",\"edits\":3,\"recomputed_x\":17", "");
        assert_ne!(line, stripped, "sample must carry the delta fields");
        let back = JobRecord::from_json_line(&stripped).unwrap();
        assert_eq!(back.edits, 0);
        assert_eq!(back.recomputed_x, 0);
    }

    #[test]
    fn huge_seeds_round_trip_exactly() {
        let mut r = sample();
        r.seed = (1u64 << 53) + 1; // not representable in f64
        r.bytes = u64::MAX;
        let back = JobRecord::from_json_line(&r.to_json_line()).unwrap();
        assert_eq!(back.seed, r.seed);
        assert_eq!(back.bytes, u64::MAX);
    }

    #[test]
    fn status_names_round_trip() {
        for s in [
            JobStatus::Ok,
            JobStatus::Error,
            JobStatus::Panicked,
            JobStatus::TimedOut,
        ] {
            assert_eq!(JobStatus::from_name(s.name()), Some(s));
        }
    }
}
