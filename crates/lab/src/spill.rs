//! Spilling campaign results into a persistent `mmlp-store`.
//!
//! A campaign's record log already survives restarts, but it is keyed
//! by *job* hash, not by *instance* content hash — so nothing else in
//! the workspace can find those results. Spilling re-keys each
//! completed measurement under the same content-addressed identity the
//! solver service uses: the generated instance goes in as an instance
//! record, and the job's JSONL record goes in as a result record under
//! the lab's own `op` namespace (codes 16–20, one per
//! [`SolverKind`] — disjoint from the service's 1–6, so a campaign and
//! a server can share one store directory without colliding).

use crate::exec::generate_instance;
use crate::job::{Job, SolverKind};
use crate::record::{JobRecord, JobStatus};
use mmlp_store::{ResultKey, Store};
use std::collections::HashMap;

/// First `op` namespace byte used by the lab spiller.
pub const LAB_OP_BASE: u8 = 16;

/// The `op` namespace byte for one solver kind.
pub fn op_code(solver: SolverKind) -> u8 {
    LAB_OP_BASE
        + match solver {
            SolverKind::Local => 0,
            SolverKind::Safe => 1,
            SolverKind::Exact => 2,
            SolverKind::Distributed => 3,
            SolverKind::Mutating => 4,
        }
}

/// What one spill wrote.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpillSummary {
    /// Instance puts issued — one per distinct `(family, size, seed)`
    /// triple; the store dedupes triples whose content coincides.
    pub instances: usize,
    /// Result records persisted.
    pub results: usize,
    /// Records skipped (not `ok`, or their family no longer exists).
    pub skipped: usize,
}

/// Spills every `ok` record into `store`: the generated instance under
/// its content hash, the record's JSONL line under a [`ResultKey`] in
/// the lab namespace. Failed records are skipped (they carry no
/// measurement worth keeping); re-spilling is idempotent because both
/// record kinds dedupe on their keys.
pub fn spill_records(records: &[JobRecord], store: &Store) -> std::io::Result<SpillSummary> {
    let mut summary = SpillSummary::default();
    // Campaigns sweep solvers × R over the same (family, size, seed)
    // triples: generate (and hash) each instance once.
    let mut hashes: HashMap<(String, usize, u64), Option<u64>> = HashMap::new();
    for record in records {
        if record.status != JobStatus::Ok {
            summary.skipped += 1;
            continue;
        }
        let triple = (record.family.clone(), record.size, record.seed);
        let hash = match hashes.get(&triple) {
            Some(h) => *h,
            None => {
                let job = Job {
                    family: record.family.clone(),
                    size: record.size,
                    seed: record.seed,
                    big_r: record.big_r,
                    solver: record.solver,
                };
                let h = match generate_instance(&job) {
                    Ok(inst) => {
                        let h = store.put_instance(&inst)?;
                        summary.instances += 1;
                        Some(h)
                    }
                    Err(_) => None, // family vanished from the catalog
                };
                hashes.insert(triple, h);
                h
            }
        };
        let Some(instance) = hash else {
            summary.skipped += 1;
            continue;
        };
        store.put_result(
            ResultKey {
                instance,
                op: op_code(record.solver),
                big_r: record.big_r as u32,
                threads: 0,
            },
            &record.to_json_line(),
        )?;
        summary.results += 1;
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_in_memory;
    use crate::spec::CampaignSpec;
    use mmlp_instance::hash::instance_hash;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mmlp-spill-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn spec() -> CampaignSpec {
        CampaignSpec {
            name: "spill".into(),
            families: vec!["cycle".into(), "bandwidth".into()],
            sizes: vec![8],
            seeds: vec![0, 1],
            rs: vec![2, 3],
            solvers: vec![SolverKind::Local, SolverKind::Safe],
            timeout_ms: 0,
            workers: 2,
        }
    }

    #[test]
    fn spill_persists_instances_and_rekeyed_results() {
        let dir = temp_dir("basic");
        let records = run_in_memory(&spec(), 2);
        // 2 fam × 1 size × 2 seeds × (local × 2R + safe) = 12 jobs.
        assert_eq!(records.len(), 12);

        let (store, _) = Store::open(&dir).unwrap();
        let summary = spill_records(&records, &store).unwrap();
        assert_eq!(summary.results, 12);
        assert_eq!(summary.skipped, 0);
        // cycle ignores the seed, so its two seeds collapse onto one
        // content hash — and with them their result keys: 2 bandwidth
        // + 1 cycle instances, and 9 distinct (instance, op, R) keys
        // (cycle's second seed re-keys onto the first's results).
        let (n_inst, n_res) = store.counts();
        assert_eq!(n_inst, 3, "content-addressed dedupe across seeds");
        assert_eq!(n_res, 9);
        assert_eq!(summary.instances, 4, "one put per (family,size,seed)");

        // Each result is findable under its instance's content hash
        // and carries the original JSONL line. (Pick a bandwidth
        // record: its seeds generate distinct instances, so its key is
        // unambiguous.)
        let r = records
            .iter()
            .find(|r| r.family == "bandwidth")
            .expect("bandwidth record");
        let job = Job {
            family: r.family.clone(),
            size: r.size,
            seed: r.seed,
            big_r: r.big_r,
            solver: r.solver,
        };
        let h = instance_hash(&generate_instance(&job).unwrap());
        let body = store
            .get_result(&ResultKey {
                instance: h,
                op: op_code(r.solver),
                big_r: r.big_r as u32,
                threads: 0,
            })
            .unwrap()
            .expect("spilled result");
        assert_eq!(body, r.to_json_line());

        // Idempotent: spilling again adds nothing.
        let again = spill_records(&records, &store).unwrap();
        assert_eq!(again.results, 12);
        assert_eq!(store.counts(), (3, 9));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_records_are_skipped() {
        let dir = temp_dir("skip");
        let job = Job {
            family: "cycle".into(),
            size: 8,
            seed: 0,
            big_r: 2,
            solver: SolverKind::Local,
        };
        let records = vec![JobRecord::failed(&job, JobStatus::Panicked, "boom".into())];
        let (store, _) = Store::open(&dir).unwrap();
        let summary = spill_records(&records, &store).unwrap();
        assert_eq!(
            summary,
            SpillSummary {
                instances: 0,
                results: 0,
                skipped: 1
            }
        );
        assert_eq!(store.counts(), (0, 0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn op_codes_are_disjoint_from_the_service_namespace() {
        let codes: Vec<u8> = SolverKind::all().iter().map(|s| op_code(*s)).collect();
        assert_eq!(codes, vec![16, 17, 18, 19, 20]);
    }
}
