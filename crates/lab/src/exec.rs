//! Executes one [`Job`]: generate the instance, run the chosen solver,
//! certify against the exact LP optimum, and package a [`JobRecord`].

use crate::job::{Job, SolverKind};
use crate::record::{JobRecord, JobStatus};
use mmlp_core::dynamic::DynamicSolver;
use mmlp_core::safe::safe_solution;
use mmlp_core::smoothing::solve_special;
use mmlp_core::solver::LocalSolver;
use mmlp_core::transform::to_special_form;
use mmlp_core::{distributed, ratio, SpecialForm};
use mmlp_gen::catalog;
use mmlp_instance::delta::{Delta, Edit, RowKind};
use mmlp_instance::{instance_hash, ConstraintId, DegreeStats, Instance};
use mmlp_lp::solve_maxmin;
use std::time::{Duration, Instant};

/// Generates the job's instance from the family catalogue.
pub fn generate_instance(job: &Job) -> Result<Instance, String> {
    let fams = catalog();
    let fam = fams
        .iter()
        .find(|f| f.name == job.family)
        .ok_or_else(|| format!("unknown family '{}'", job.family))?;
    Ok(fam.instance(job.size, job.seed))
}

/// Runs one job to completion on the calling thread. Never panics on
/// solver errors — they come back as [`JobStatus::Error`] records.
/// (Panics inside the solvers themselves are the scheduler's problem,
/// by design.)
pub fn execute_job(job: &Job) -> JobRecord {
    let inst = match generate_instance(job) {
        Ok(i) => i,
        Err(e) => return JobRecord::failed(job, JobStatus::Error, e),
    };
    if job.solver == SolverKind::Mutating {
        // The instance changes under the edit chain, so certification
        // runs against the *final* revision — a separate flow.
        return execute_mutating_job(job, inst);
    }
    let stats = DegreeStats::of(&inst);
    let (di, dk) = (stats.delta_i.max(2), stats.delta_k.max(2));

    // The certification baseline; timed separately so `wall_ms`
    // measures the variant under study, not the simplex — except for
    // the exact solver, whose cost *is* this solve.
    let optimum_start = Instant::now();
    let optimum = match solve_maxmin(&inst) {
        Ok(o) => o.omega,
        Err(e) => return JobRecord::failed(job, JobStatus::Error, format!("optimum: {e}")),
    };
    let optimum_ms = optimum_start.elapsed().as_secs_f64() * 1e3;

    let start = Instant::now();
    let (mut interned, mut arena_bytes) = (0u64, 0u64);
    let mut trace = distributed::FlatSolveTrace::default();
    let (utility, guarantee, rounds, messages, bytes) = match job.solver {
        SolverKind::Local => {
            let solver = LocalSolver::new(job.big_r);
            let out = solver.solve(&inst);
            (
                out.solution.utility(&inst),
                solver.guarantee(di, dk),
                0,
                0,
                0,
            )
        }
        SolverKind::Safe => {
            // The predecessor works' baseline achieves factor ΔI.
            (safe_solution(&inst).utility(&inst), di as f64, 0, 0, 0)
        }
        SolverKind::Exact => (optimum, 1.0, 0, 0, 0),
        SolverKind::Distributed => {
            let transformed = to_special_form(&inst);
            let sf = match SpecialForm::new(transformed.instance.clone()) {
                Ok(sf) => sf,
                Err(e) => {
                    return JobRecord::failed(job, JobStatus::Error, format!("special form: {e:?}"))
                }
            };
            // The flat (hash-consed) path through the traced entry
            // point (bit-identical to the untraced one): the record
            // carries the dedup counters plus the per-phase/memo
            // snapshot the reports and perf-trajectory pipeline use.
            let (run, flat_trace) = distributed::solve_distributed_flat_traced(&sf, job.big_r, 1);
            let x = transformed.map_back(&run.solution);
            interned = run.stats.interned_nodes;
            arena_bytes = run.stats.arena_bytes;
            trace = flat_trace;
            (
                x.utility(&inst),
                ratio::guarantee(di, dk, job.big_r),
                run.stats.rounds as u64,
                run.stats.messages,
                run.stats.bytes,
            )
        }
        SolverKind::Mutating => unreachable!("dispatched to execute_mutating_job above"),
    };
    let wall_ms = if job.solver == SolverKind::Exact {
        optimum_ms
    } else {
        start.elapsed().as_secs_f64() * 1e3
    };

    let ratio = if utility > 0.0 {
        optimum / utility
    } else {
        f64::INFINITY
    };
    JobRecord {
        job_id: job.id(),
        family: job.family.clone(),
        size: job.size,
        seed: job.seed,
        big_r: job.big_r,
        solver: job.solver,
        status: JobStatus::Ok,
        utility,
        optimum,
        ratio,
        guarantee,
        threshold: ratio::threshold(di, dk),
        delta_i: stats.delta_i,
        delta_k: stats.delta_k,
        agents: inst.n_agents(),
        wall_ms,
        rounds,
        messages,
        bytes,
        interned,
        arena_bytes,
        gather_ns: trace.gather_ns,
        t_eval_ns: trace.t_eval_ns,
        flood_ns: trace.flood_ns,
        g_ns: trace.g_ns,
        memo_hits: trace.batch.memo_hits,
        memo_misses: trace.batch.memo_misses,
        edits: 0,
        recomputed_x: 0,
        error: String::new(),
    }
}

/// Edits streamed through each mutating job's [`DynamicSolver`].
const MUTATING_EDITS: usize = 8;

/// A tiny xorshift64* stream for the edit chain — deterministic per
/// job seed, no dependency.
struct EditRng(u64);

impl EditRng {
    fn new(seed: u64) -> EditRng {
        let mut s = seed.wrapping_add(0x9e37_79b9_7f4a_7c15) | 1;
        s ^= s >> 30;
        s = s.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        EditRng(s | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }

    /// A coefficient scale factor in `[0.6, 1.8]` — strictly positive
    /// and bounded, so a chain of edits keeps coefficients
    /// well-conditioned.
    fn factor(&mut self) -> f64 {
        0.6 + (self.next() >> 11) as f64 / (1u64 << 53) as f64 * 1.2
    }
}

/// Runs a [`SolverKind::Mutating`] job: boot a [`DynamicSolver`] on the
/// generated instance, stream [`MUTATING_EDITS`] random
/// single-coefficient edits through it, and after every edit certify
/// the repaired `(t, s, x)` state bit-identical to a from-scratch
/// solve of the mutated instance. Any divergence is an error record —
/// the campaign's zero-error gate catches it. `wall_ms` measures the
/// incremental repairs only (boot and certification excluded), so the
/// report's scaling table shows the dirty-ball cost of the §1.3
/// corollary, not the from-scratch cost it avoids.
fn execute_mutating_job(job: &Job, inst: Instance) -> JobRecord {
    let sf = match SpecialForm::new(inst) {
        Ok(sf) => sf,
        Err(e) => {
            return JobRecord::failed(
                job,
                JobStatus::Error,
                format!("mutating jobs need a special-form family: {e:?}"),
            )
        }
    };
    let mut dynamic = DynamicSolver::new(sf, job.big_r, 1);
    let mut rng = EditRng::new(job.seed);
    let (mut edits, mut recomputed_x) = (0u64, 0u64);
    let mut wall = Duration::ZERO;
    for step in 0..MUTATING_EDITS {
        let cur = dynamic.special_form().instance();
        let row_id = rng.below(cur.n_constraints()) as u32;
        let row = cur.constraint_row(ConstraintId::new(row_id));
        let entry = row[rng.below(row.len())];
        let delta = Delta::single(
            instance_hash(cur),
            Edit::SetCoef {
                row: RowKind::Constraint,
                row_id,
                agent: entry.agent,
                coef: entry.coef * rng.factor(),
            },
        );
        let started = Instant::now();
        let report = match dynamic.apply_delta(&delta) {
            Ok(r) => r,
            Err(e) => return JobRecord::failed(job, JobStatus::Error, format!("edit {step}: {e}")),
        };
        wall += started.elapsed();
        edits += 1;
        recomputed_x += report.recomputed_x as u64;
        // Certify: the §1.3 claim is that the dirty-ball repair lands
        // on the same bits as starting over.
        let reference = solve_special(dynamic.special_form(), job.big_r, 1);
        let repaired = dynamic.run().x.as_slice();
        if repaired
            .iter()
            .zip(reference.x.as_slice())
            .any(|(a, b)| a.to_bits() != b.to_bits())
        {
            return JobRecord::failed(
                job,
                JobStatus::Error,
                format!("incremental state diverged from a scratch solve at edit {step}"),
            );
        }
    }

    let final_inst = dynamic.special_form().instance();
    let stats = DegreeStats::of(final_inst);
    let (di, dk) = (stats.delta_i.max(2), stats.delta_k.max(2));
    let optimum = match solve_maxmin(final_inst) {
        Ok(o) => o.omega,
        Err(e) => return JobRecord::failed(job, JobStatus::Error, format!("optimum: {e}")),
    };
    let utility = dynamic.run().x.utility(final_inst);
    let ratio = if utility > 0.0 {
        optimum / utility
    } else {
        f64::INFINITY
    };
    JobRecord {
        job_id: job.id(),
        family: job.family.clone(),
        size: job.size,
        seed: job.seed,
        big_r: job.big_r,
        solver: job.solver,
        status: JobStatus::Ok,
        utility,
        optimum,
        ratio,
        guarantee: ratio::guarantee(di, dk, job.big_r),
        threshold: ratio::threshold(di, dk),
        delta_i: stats.delta_i,
        delta_k: stats.delta_k,
        agents: final_inst.n_agents(),
        wall_ms: wall.as_secs_f64() * 1e3,
        rounds: 0,
        messages: 0,
        bytes: 0,
        interned: dynamic.arena_len() as u64,
        arena_bytes: 0,
        gather_ns: 0,
        t_eval_ns: 0,
        flood_ns: 0,
        g_ns: 0,
        memo_hits: 0,
        memo_misses: 0,
        edits,
        recomputed_x,
        error: String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(solver: SolverKind, big_r: usize) -> Job {
        Job {
            family: "random-3x3".into(),
            size: 16,
            seed: 1,
            big_r,
            solver,
        }
    }

    #[test]
    fn every_solver_variant_measures_within_its_guarantee() {
        for solver in SolverKind::all() {
            let mut j = job(solver, if solver.uses_r() { 3 } else { 0 });
            if solver == SolverKind::Mutating {
                // The dynamic solver repairs special-form instances.
                j.family = "special-form".into();
            }
            let r = execute_job(&j);
            assert_eq!(r.status, JobStatus::Ok, "{solver:?}: {}", r.error);
            assert!(r.utility > 0.0, "{solver:?}");
            assert!(
                r.ratio <= r.guarantee + 1e-6,
                "{solver:?}: ratio {} vs guarantee {}",
                r.ratio,
                r.guarantee
            );
            assert!(r.ratio >= 1.0 - 1e-9, "the optimum is an upper bound");
            assert!(r.agents > 0 && r.delta_i > 0 && r.delta_k > 0);
        }
    }

    #[test]
    fn distributed_is_bit_identical_to_local_and_accounts_messages() {
        let local = execute_job(&job(SolverKind::Local, 3));
        let dist = execute_job(&job(SolverKind::Distributed, 3));
        assert_eq!(local.utility.to_bits(), dist.utility.to_bits());
        assert!(dist.rounds > 0 && dist.messages > 0 && dist.bytes > 0);
        assert_eq!(local.rounds, 0, "centralized run has no protocol stats");
        // The flat path reports its arena accounting; the dedup ratio
        // exceeds 1 on the (non-tree) random family.
        assert!(dist.interned > 0 && dist.arena_bytes > 0);
        assert!(dist.bytes > dist.arena_bytes, "dedup ratio must exceed 1");
        assert_eq!(local.interned, 0);
        // The phase snapshot rides along: real wall times, coherent sum.
        let phase_sum = dist.gather_ns + dist.t_eval_ns + dist.flood_ns + dist.g_ns;
        assert!(phase_sum > 0, "distributed jobs carry the phase snapshot");
        assert!(dist.memo_hits + dist.memo_misses > 0);
        assert_eq!(local.gather_ns, 0, "centralized runs are untraced");
    }

    #[test]
    fn exact_solver_has_unit_ratio_and_real_wall_time() {
        let r = execute_job(&job(SolverKind::Exact, 0));
        assert!((r.ratio - 1.0).abs() < 1e-12);
        assert_eq!(r.utility.to_bits(), r.optimum.to_bits());
        assert!(
            r.wall_ms > 0.0,
            "exact jobs must report the simplex cost, not ~0"
        );
    }

    #[test]
    fn mutating_jobs_measure_the_edit_chain() {
        let mut j = job(SolverKind::Mutating, 2);
        j.family = "special-form".into();
        // Locality only shows on instances larger than the dirty ball.
        j.size = 96;
        let r = execute_job(&j);
        assert_eq!(r.status, JobStatus::Ok, "{}", r.error);
        assert_eq!(r.edits, MUTATING_EDITS as u64);
        assert!(r.recomputed_x > 0, "edits must dirty some agents");
        assert!(
            r.recomputed_x < r.edits * r.agents as u64,
            "repairs must stay local: {} recomputations over {} edits on {} agents",
            r.recomputed_x,
            r.edits,
            r.agents
        );
        assert!(r.interned > 0, "the chain reuses a persistent arena");
        // Determinism: the chain is a pure function of the job.
        let again = execute_job(&j);
        assert_eq!(again.utility.to_bits(), r.utility.to_bits());
        assert_eq!(again.recomputed_x, r.recomputed_x);
    }

    #[test]
    fn mutating_jobs_reject_non_special_form_families() {
        let r = execute_job(&job(SolverKind::Mutating, 3));
        assert_eq!(r.status, JobStatus::Error);
        assert!(r.error.contains("special-form family"), "{}", r.error);
    }

    #[test]
    fn unknown_family_is_an_error_record_not_a_panic() {
        let mut j = job(SolverKind::Local, 2);
        j.family = "no-such-family".into();
        let r = execute_job(&j);
        assert_eq!(r.status, JobStatus::Error);
        assert!(r.error.contains("unknown family"));
    }
}
