//! Executes one [`Job`]: generate the instance, run the chosen solver,
//! certify against the exact LP optimum, and package a [`JobRecord`].

use crate::job::{Job, SolverKind};
use crate::record::{JobRecord, JobStatus};
use mmlp_core::safe::safe_solution;
use mmlp_core::solver::LocalSolver;
use mmlp_core::transform::to_special_form;
use mmlp_core::{distributed, ratio, SpecialForm};
use mmlp_gen::catalog;
use mmlp_instance::{DegreeStats, Instance};
use mmlp_lp::solve_maxmin;
use std::time::Instant;

/// Generates the job's instance from the family catalogue.
pub fn generate_instance(job: &Job) -> Result<Instance, String> {
    let fams = catalog();
    let fam = fams
        .iter()
        .find(|f| f.name == job.family)
        .ok_or_else(|| format!("unknown family '{}'", job.family))?;
    Ok(fam.instance(job.size, job.seed))
}

/// Runs one job to completion on the calling thread. Never panics on
/// solver errors — they come back as [`JobStatus::Error`] records.
/// (Panics inside the solvers themselves are the scheduler's problem,
/// by design.)
pub fn execute_job(job: &Job) -> JobRecord {
    let inst = match generate_instance(job) {
        Ok(i) => i,
        Err(e) => return JobRecord::failed(job, JobStatus::Error, e),
    };
    let stats = DegreeStats::of(&inst);
    let (di, dk) = (stats.delta_i.max(2), stats.delta_k.max(2));

    // The certification baseline; timed separately so `wall_ms`
    // measures the variant under study, not the simplex — except for
    // the exact solver, whose cost *is* this solve.
    let optimum_start = Instant::now();
    let optimum = match solve_maxmin(&inst) {
        Ok(o) => o.omega,
        Err(e) => return JobRecord::failed(job, JobStatus::Error, format!("optimum: {e}")),
    };
    let optimum_ms = optimum_start.elapsed().as_secs_f64() * 1e3;

    let start = Instant::now();
    let (mut interned, mut arena_bytes) = (0u64, 0u64);
    let mut trace = distributed::FlatSolveTrace::default();
    let (utility, guarantee, rounds, messages, bytes) = match job.solver {
        SolverKind::Local => {
            let solver = LocalSolver::new(job.big_r);
            let out = solver.solve(&inst);
            (
                out.solution.utility(&inst),
                solver.guarantee(di, dk),
                0,
                0,
                0,
            )
        }
        SolverKind::Safe => {
            // The predecessor works' baseline achieves factor ΔI.
            (safe_solution(&inst).utility(&inst), di as f64, 0, 0, 0)
        }
        SolverKind::Exact => (optimum, 1.0, 0, 0, 0),
        SolverKind::Distributed => {
            let transformed = to_special_form(&inst);
            let sf = match SpecialForm::new(transformed.instance.clone()) {
                Ok(sf) => sf,
                Err(e) => {
                    return JobRecord::failed(job, JobStatus::Error, format!("special form: {e:?}"))
                }
            };
            // The flat (hash-consed) path through the traced entry
            // point (bit-identical to the untraced one): the record
            // carries the dedup counters plus the per-phase/memo
            // snapshot the reports and perf-trajectory pipeline use.
            let (run, flat_trace) = distributed::solve_distributed_flat_traced(&sf, job.big_r, 1);
            let x = transformed.map_back(&run.solution);
            interned = run.stats.interned_nodes;
            arena_bytes = run.stats.arena_bytes;
            trace = flat_trace;
            (
                x.utility(&inst),
                ratio::guarantee(di, dk, job.big_r),
                run.stats.rounds as u64,
                run.stats.messages,
                run.stats.bytes,
            )
        }
    };
    let wall_ms = if job.solver == SolverKind::Exact {
        optimum_ms
    } else {
        start.elapsed().as_secs_f64() * 1e3
    };

    let ratio = if utility > 0.0 {
        optimum / utility
    } else {
        f64::INFINITY
    };
    JobRecord {
        job_id: job.id(),
        family: job.family.clone(),
        size: job.size,
        seed: job.seed,
        big_r: job.big_r,
        solver: job.solver,
        status: JobStatus::Ok,
        utility,
        optimum,
        ratio,
        guarantee,
        threshold: ratio::threshold(di, dk),
        delta_i: stats.delta_i,
        delta_k: stats.delta_k,
        agents: inst.n_agents(),
        wall_ms,
        rounds,
        messages,
        bytes,
        interned,
        arena_bytes,
        gather_ns: trace.gather_ns,
        t_eval_ns: trace.t_eval_ns,
        flood_ns: trace.flood_ns,
        g_ns: trace.g_ns,
        memo_hits: trace.batch.memo_hits,
        memo_misses: trace.batch.memo_misses,
        error: String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(solver: SolverKind, big_r: usize) -> Job {
        Job {
            family: "random-3x3".into(),
            size: 16,
            seed: 1,
            big_r,
            solver,
        }
    }

    #[test]
    fn every_solver_variant_measures_within_its_guarantee() {
        for solver in SolverKind::all() {
            let r = execute_job(&job(solver, if solver.uses_r() { 3 } else { 0 }));
            assert_eq!(r.status, JobStatus::Ok, "{solver:?}: {}", r.error);
            assert!(r.utility > 0.0, "{solver:?}");
            assert!(
                r.ratio <= r.guarantee + 1e-6,
                "{solver:?}: ratio {} vs guarantee {}",
                r.ratio,
                r.guarantee
            );
            assert!(r.ratio >= 1.0 - 1e-9, "the optimum is an upper bound");
            assert!(r.agents > 0 && r.delta_i > 0 && r.delta_k > 0);
        }
    }

    #[test]
    fn distributed_is_bit_identical_to_local_and_accounts_messages() {
        let local = execute_job(&job(SolverKind::Local, 3));
        let dist = execute_job(&job(SolverKind::Distributed, 3));
        assert_eq!(local.utility.to_bits(), dist.utility.to_bits());
        assert!(dist.rounds > 0 && dist.messages > 0 && dist.bytes > 0);
        assert_eq!(local.rounds, 0, "centralized run has no protocol stats");
        // The flat path reports its arena accounting; the dedup ratio
        // exceeds 1 on the (non-tree) random family.
        assert!(dist.interned > 0 && dist.arena_bytes > 0);
        assert!(dist.bytes > dist.arena_bytes, "dedup ratio must exceed 1");
        assert_eq!(local.interned, 0);
        // The phase snapshot rides along: real wall times, coherent sum.
        let phase_sum = dist.gather_ns + dist.t_eval_ns + dist.flood_ns + dist.g_ns;
        assert!(phase_sum > 0, "distributed jobs carry the phase snapshot");
        assert!(dist.memo_hits + dist.memo_misses > 0);
        assert_eq!(local.gather_ns, 0, "centralized runs are untraced");
    }

    #[test]
    fn exact_solver_has_unit_ratio_and_real_wall_time() {
        let r = execute_job(&job(SolverKind::Exact, 0));
        assert!((r.ratio - 1.0).abs() < 1e-12);
        assert_eq!(r.utility.to_bits(), r.optimum.to_bits());
        assert!(
            r.wall_ms > 0.0,
            "exact jobs must report the simplex cost, not ~0"
        );
    }

    #[test]
    fn unknown_family_is_an_error_record_not_a_panic() {
        let mut j = job(SolverKind::Local, 2);
        j.family = "no-such-family".into();
        let r = execute_job(&j);
        assert_eq!(r.status, JobStatus::Error);
        assert!(r.error.contains("unknown family"));
    }
}
